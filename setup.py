"""Legacy setup shim.

The execution environment has setuptools but no ``wheel``, so PEP 660
editable installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation``) works through this shim.
"""

from setuptools import setup

setup()
