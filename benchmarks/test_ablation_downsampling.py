"""Ablation (§7, Boosting Dedupe Factors): per-session downsampling.

Paper: downsampling per *session* instead of per sample raises S (and so
every DedupeFactor) at equal retained volume, without accuracy impact.
"""

import pytest

from repro.core import JaggedTensor, measured_dedupe_factor
from repro.datagen import (
    DatasetSchema,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import (
    cluster_by_session,
    downsample_per_sample,
    downsample_per_session,
    samples_per_session,
)


def _dedupe_factor_after(samples) -> float:
    clustered = cluster_by_session(samples)
    jt = JaggedTensor.from_lists([s.sparse["hist"] for s in clustered[:4096]])
    return measured_dedupe_factor(jt)


def test_per_session_downsampling_boosts_dedupe(benchmark, emit):
    schema = DatasetSchema(
        sparse=(SparseFeatureSpec("hist", avg_length=24, change_prob=0.05),)
    )

    def run():
        samples = generate_partition(schema, 400, TraceConfig(seed=6))
        per_sample = downsample_per_sample(samples, 0.3, seed=1)
        per_session = downsample_per_session(samples, 0.3, seed=1)
        return samples, per_sample, per_session

    samples, per_sample, per_session = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    s_full = samples_per_session(samples)
    s_sample = samples_per_session(per_sample)
    s_session = samples_per_session(per_session)
    f_sample = _dedupe_factor_after(per_sample)
    f_session = _dedupe_factor_after(per_session)
    lines = [
        f"retained volume     : per-sample {len(per_sample)}, "
        f"per-session {len(per_session)} (of {len(samples)})",
        f"S full partition    : {s_full:.2f}",
        f"S per-sample (base) : {s_sample:.2f}",
        f"S per-session (§7)  : {s_session:.2f}",
        f"dedupe factor base  : {f_sample:.2f}x",
        f"dedupe factor §7    : {f_session:.2f}x",
    ]
    emit("Per-session downsampling (§7)", lines)

    # comparable retained volume...
    assert 0.5 < len(per_sample) / len(per_session) < 2.0
    # ...but per-session keeps S (and the dedupe factor) high
    assert s_session > 2.0 * s_sample
    assert s_session == pytest.approx(s_full, rel=0.25)
    assert f_session > f_sample
