"""E1 / Figure 3: samples-per-session histogram, partition vs batch.

Paper: hourly partition averages 16.5 samples/session with a tail beyond
1000; within a 4096-sample batch, interleaving leaves only 1.15
samples/session on average.
"""

from repro.pipeline import fig3_session_histogram


def test_fig3_session_histogram(benchmark, emit):
    res = benchmark.pedantic(
        lambda: fig3_session_histogram(num_sessions=100_000, seed=0),
        rounds=1,
        iterations=1,
    )
    stats = res.partition_stats
    lines = [
        f"partition mean samples/session : {stats['mean']:.2f}  (paper: 16.5)",
        f"partition p50 / p99 / max      : {stats['p50']:.0f} / "
        f"{stats['p99']:.0f} / {stats['max']:.0f}",
        f"sessions with >1000 samples    : {stats['tail_1000']:.0f}  (paper: 'significant tail')",
        f"batch(4096) mean, interleaved  : {res.batch_mean_interleaved:.2f}  (paper: 1.15)",
        f"batch(4096) mean, clustered    : {res.batch_mean_clustered:.2f}  (paper: ~16.5)",
    ]
    emit("Figure 3 — samples per session", lines)

    assert 14.0 < stats["mean"] < 19.0
    assert stats["tail_1000"] >= 1
    assert res.batch_mean_interleaved < 2.0
    assert res.batch_mean_clustered > 10.0
