"""Ablation: column encodings vs the column shapes DLRM tables produce.

The paper notes IKJTs use "a similar encoding mechanism to dictionary
encoding" (§8); this bench quantifies where each stream encoding wins on
realistic DWRF columns: lengths streams (runny), low-cardinality item
columns (dict-friendly), high-cardinality user-history values (varint).
"""

import numpy as np
import pytest

from repro.storage import IntEncoding, best_encoding, encode_int64


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(9)
    return {
        # fixed-length feature's lengths stream: one long run
        "lengths_fixed": np.full(8192, 48, dtype=np.int64),
        # low-cardinality categorical column
        "country_ids": rng.choice(
            np.arange(50, dtype=np.int64) + 10**6, size=8192
        ),
        # high-cardinality user-history IDs
        "history_ids": rng.integers(0, 10**7, size=8192, dtype=np.int64),
    }


def test_encoding_size_matrix(benchmark, emit, columns):
    def build():
        table = {}
        for name, col in columns.items():
            table[name] = {
                enc.name: len(encode_int64(col, enc))
                for enc in IntEncoding
            }
        return table

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = ["column          PLAIN    VARINT     RLE      DICT    chosen"]
    for name, sizes in table.items():
        chosen = best_encoding(columns[name]).name
        lines.append(
            f"{name:14s} {sizes['PLAIN']:7d} {sizes['VARINT']:8d} "
            f"{sizes['RLE']:8d} {sizes['DICT']:8d}    {chosen}"
        )
    emit("Column encoding sizes", lines)

    # the selector picks the right family for each shape
    assert best_encoding(columns["lengths_fixed"]) is IntEncoding.RLE
    assert best_encoding(columns["country_ids"]) is IntEncoding.DICT
    assert best_encoding(columns["history_ids"]) is IntEncoding.VARINT
    # and the picks are actually the small ones
    assert table["lengths_fixed"]["RLE"] == min(
        table["lengths_fixed"].values()
    )
    assert (
        table["country_ids"]["DICT"] < table["country_ids"]["VARINT"]
    )
