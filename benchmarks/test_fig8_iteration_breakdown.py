"""E4 / Figure 8: trainer iteration latency breakdown at equal batch size.

Paper: RecD halves exposed A2A across all RMs; RM1 additionally cuts
GEMM time (transformer dedup, ~12% of iteration); EMB lookups improve
1-2%; overall iteration time falls 44% (RM1) and 23% (RM2).
"""

import pytest

from repro.pipeline import fig8_iteration_breakdown


@pytest.fixture(scope="module")
def rows():
    return fig8_iteration_breakdown(scale=1.0, num_sessions=220)


def test_fig8_iteration_breakdown(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    lines = [
        "RM    phase fractions of baseline iteration (baseline -> RecD)"
    ]
    for r in rows:
        b, n = r.baseline, r.recd_normalized
        bt = b.total
        lines.append(
            f"{r.rm}  emb {b.emb_lookup / bt:.2f}->{n['emb_lookup']:.2f}  "
            f"gemm {b.gemm / bt:.2f}->{n['gemm']:.2f}  "
            f"a2a {b.a2a / bt:.2f}->{n['a2a']:.2f}  "
            f"other {b.other / bt:.2f}->{n['other']:.2f}  "
            f"total 1.00->{n['total']:.2f}"
        )
    emit("Figure 8 — iteration breakdown", lines)

    for r in rows:
        bt = r.baseline.total
        # baseline shape: A2A is a significant exposed component
        assert r.baseline.a2a / bt > 0.25, r.rm
        # RecD at least halves exposed A2A (paper: halves across all RMs)
        assert r.recd.a2a <= 0.55 * r.baseline.a2a, r.rm
        # iteration time shrinks at the same batch size
        assert r.recd_normalized["total"] < 0.8, r.rm
    by_rm = {r.rm: r for r in rows}
    # RM1's GEMM benefits most (transformer dedup)
    rm1 = by_rm["RM1"]
    assert rm1.recd.gemm < rm1.baseline.gemm
