"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables/figures, prints the
paper-style rows, and persists them twice: the rendered text block lands
in ``benchmarks/results/{node}.txt`` (the human-readable view), and the
run — with any machine-readable ``metrics`` the benchmark passes — is
recorded in the results store
(``benchmarks/results/store/runs.sqlite``) as a ``kind="bench"``
:class:`~repro.experiments.store.RunRecord`, where the regression gate
(``check_regression.py``) and ``repro experiments query`` can reach it.
Benchmarks run the experiment once (``benchmark.pedantic(rounds=1)``) —
the interesting output is the rows, not the harness's wall time.
"""

from __future__ import annotations

import pathlib
from datetime import datetime, timezone

import pytest

from repro.experiments import RunRecord, RunStore, environment_fingerprint

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
STORE_PATH = RESULTS_DIR / "store" / "runs.sqlite"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def run_store() -> RunStore:
    """The session-wide results store benchmarks record into."""
    return RunStore(STORE_PATH)


@pytest.fixture(scope="session")
def bench_env() -> dict:
    """One environment fingerprint shared by the whole bench session."""
    return environment_fingerprint()


@pytest.fixture()
def emit(results_dir, run_store, bench_env, request):
    """Print a block of result lines and persist them per-benchmark.

    The ``.txt`` file keeps the rendered view; passing ``metrics=``
    additionally records the numbers in the results store under the
    benchmark's node name (a stable run ID, so re-runs replace).
    """

    def _emit(
        title: str, lines: list[str], metrics: dict | None = None
    ) -> None:
        block = [f"== {title} =="] + lines
        text = "\n".join(block)
        print("\n" + text)
        out = results_dir / f"{request.node.name}.txt"
        out.write_text(text + "\n")
        run_store.record(
            RunRecord(
                run_id=f"bench:{request.node.name}",
                experiment=request.node.module.__name__,
                label=request.node.name,
                kind="bench",
                created_at=datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                spec={"node": request.node.nodeid, "title": title},
                env=bench_env,
                metrics=metrics or {},
                artifact=text + "\n",
            )
        )

    return _emit
