"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables/figures, prints the
paper-style rows, and appends them to ``benchmarks/results/`` so the
output survives pytest's capture.  Benchmarks run the experiment once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the rows,
not the harness's wall time.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, request):
    """Print a block of result lines and persist them per-benchmark."""

    def _emit(title: str, lines: list[str]) -> None:
        block = [f"== {title} =="] + lines
        text = "\n".join(block)
        print("\n" + text)
        out = results_dir / f"{request.node.name}.txt"
        out.write_text(text + "\n")

    return _emit
