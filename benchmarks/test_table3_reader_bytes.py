"""E7 / Table 3: reader ingest & egress bytes for a fixed sample count.

Paper (GB): Baseline 538 read / 837 send; with Cluster 179 / 837; with
IKJT 179 / 713.  Clustering cuts what readers *read*; IKJTs cut what
they *send*.
"""

import pytest

from repro.pipeline import table3_reader_bytes


@pytest.fixture(scope="module")
def rows():
    return table3_reader_bytes(scale=1.0, num_sessions=220)


def test_table3_reader_bytes(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    paper = {
        "Baseline": (538, 837),
        "with Cluster": (179, 837),
        "with IKJT": (179, 713),
    }
    base = rows[0]
    lines = ["config         read(MB)  send(MB)  read_x  send_x  (paper GB)"]
    for r in rows:
        p = paper[r.config]
        lines.append(
            f"{r.config:14s} {r.read_bytes / 2**20:8.2f}  "
            f"{r.send_bytes / 2**20:8.2f}  "
            f"{r.read_bytes / base.read_bytes:5.2f}  "
            f"{r.send_bytes / base.send_bytes:5.2f}  "
            f"({p[0]} / {p[1]})"
        )
    emit("Table 3 — reader bytes", lines)

    by = {r.config: r for r in rows}
    b, c, i = by["Baseline"], by["with Cluster"], by["with IKJT"]
    # clustering: read bytes drop sharply (paper: 538 -> 179, a 3x cut)
    assert c.read_bytes < 0.6 * b.read_bytes
    assert c.send_bytes == pytest.approx(b.send_bytes, rel=0.02)
    # IKJT: send bytes drop, read unchanged (paper: 837 -> 713)
    assert i.read_bytes == pytest.approx(c.read_bytes, rel=0.02)
    assert i.send_bytes < 0.9 * c.send_bytes
