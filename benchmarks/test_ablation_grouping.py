"""Ablation (beyond the paper's figures): grouped vs singleton IKJTs.

Grouped IKJTs (§4.2) share one inverse_lookup across synchronously
updated features.  This bench quantifies the two effects: (a) the wire/
memory saving from shipping one lookup instead of k, and (b) the convert
saving from hashing the group jointly vs per-feature — plus the risk:
grouping *weakens* dedup when members are not perfectly synchronized.
"""

import numpy as np
import pytest

from repro.core import InverseKeyedJaggedTensor, KeyedJaggedTensor


def _grouped_batch(rng, batch=2048, sync=True):
    """Two features updated (a)synchronously across session-like runs."""
    rows = []
    a = b = None
    for i in range(batch):
        if i % 12 == 0 or a is None:
            a = rng.integers(0, 10**6, size=16).tolist()
            b = rng.integers(0, 10**6, size=16).tolist()
        elif not sync and i % 5 == 0:
            b = rng.integers(0, 10**6, size=16).tolist()
        rows.append({"a": a, "b": b})
    return KeyedJaggedTensor.from_rows(rows)


def test_grouping_saves_lookup_bytes_when_synchronized(benchmark, emit):
    rng = np.random.default_rng(2)
    kjt = _grouped_batch(rng, sync=True)

    def build():
        grouped = InverseKeyedJaggedTensor.from_kjt(kjt, ["a", "b"])
        solo = [
            InverseKeyedJaggedTensor.from_kjt(kjt, [k]) for k in ("a", "b")
        ]
        return grouped, solo

    grouped, solo = benchmark.pedantic(build, rounds=1, iterations=1)
    solo_bytes = sum(s.nbytes for s in solo)
    lines = [
        f"grouped IKJT bytes   : {grouped.nbytes}",
        f"2x singleton bytes   : {solo_bytes}",
        f"inverse_lookups saved: {sum(s.inverse_lookup.nbytes for s in solo) - grouped.inverse_lookup.nbytes}",
        f"grouped dedupe factor: {grouped.dedupe_factor():.2f}",
    ]
    emit("Grouping ablation — synchronized", lines)
    # synchronized features: grouping strictly saves (one lookup, same dedup)
    assert grouped.nbytes < solo_bytes
    assert grouped.dedupe_factor() == pytest.approx(
        solo[0].dedupe_factor(), rel=0.01
    )


def test_grouping_weakens_dedup_when_unsynchronized(benchmark, emit):
    rng = np.random.default_rng(3)
    kjt = _grouped_batch(rng, sync=False)
    grouped, solo_a = benchmark.pedantic(
        lambda: (
            InverseKeyedJaggedTensor.from_kjt(kjt, ["a", "b"]),
            InverseKeyedJaggedTensor.from_kjt(kjt, ["a"]),
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"solo feature-a dedupe factor : {solo_a.dedupe_factor():.2f}",
        f"grouped (a,b) dedupe factor  : {grouped.dedupe_factor():.2f}",
    ]
    emit("Grouping ablation — unsynchronized", lines)
    # the §4.2 invariant: unsynchronized rows stay un-deduplicated, so the
    # group's factor drops below the solo factor — engineers should only
    # group features that really update together.
    assert grouped.dedupe_factor() < solo_a.dedupe_factor()
    # but correctness is never at risk
    assert grouped.to_kjt() == kjt


def test_grouping_benchmark_convert(benchmark):
    rng = np.random.default_rng(4)
    kjt = _grouped_batch(rng, sync=True, batch=1024)
    out = benchmark(InverseKeyedJaggedTensor.from_kjt, kjt, ["a", "b"])
    assert out.batch_size == 1024
