"""E10 / §6.1: Scribe compression under session-ID sharding (O1).

Paper: compression ratio at Scribe rose from 1.50x to 2.25x (a 1.5x
relative gain) when sharding logs by session ID.
"""

from repro.pipeline import scribe_sharding_compression


def test_scribe_sharding_compression(benchmark, emit):
    res = benchmark.pedantic(
        lambda: scribe_sharding_compression(scale=1.0, num_sessions=250),
        rounds=1,
        iterations=1,
    )
    gain = res["session"] / res["random"]
    lines = [
        f"random sharding compression  : {res['random']:.2f}x  (paper: 1.50x)",
        f"session sharding compression : {res['session']:.2f}x  (paper: 2.25x)",
        f"relative gain                : {gain:.2f}x  (paper: 1.50x)",
    ]
    emit("Scribe sharding (O1)", lines)

    assert res["session"] > res["random"]
    assert gain > 1.2
