"""E14 / §7: partial IKJTs capture shift-style duplication.

Paper: exact matching captures 81.6% of duplicated bytes; partial
matching (shifted lists) extends that to 89.4% — partial IKJTs encode
rows as [offset, length] windows over a shared buffer.
"""

from repro.pipeline import partial_vs_exact


def test_partial_ikjt(benchmark, emit):
    res = benchmark.pedantic(
        lambda: partial_vs_exact(num_sessions=150), rounds=1, iterations=1
    )
    lines = [
        f"exact dedupe factor    : {res.exact_factor:.2f}x",
        f"partial dedupe factor  : {res.partial_factor:.2f}x",
        f"values captured, exact   : {100 * res.exact_captured_fraction:.1f}%"
        "  (paper: 81.6% of bytes)",
        f"values captured, partial : {100 * res.partial_captured_fraction:.1f}%"
        "  (paper: 89.4% of bytes)",
    ]
    emit("Partial IKJTs (§7)", lines)

    assert res.partial_factor > res.exact_factor
    assert res.partial_captured_fraction > res.exact_captured_fraction
