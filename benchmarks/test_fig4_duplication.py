"""E2 / Figure 4: exact & partial duplicate fractions across 733 features.

Paper: mean exact 80.0%, mean partial 83.9%; byte-weighted 81.6% exact /
89.4% partial; user features dominate the high-duplication plateau.
"""

import numpy as np

from repro.datagen import FeatureKind
from repro.pipeline import fig4_duplication


def test_fig4_duplication(benchmark, emit):
    rep = benchmark.pedantic(
        lambda: fig4_duplication(num_features=733, num_sessions=20_000),
        rounds=1,
        iterations=1,
    )
    user = [f for f in rep.features if f.kind is FeatureKind.USER]
    item = [f for f in rep.features if f.kind is FeatureKind.ITEM]
    lines = [
        f"mean exact duplicate fraction   : {rep.mean_exact:.3f}  (paper: 0.800)",
        f"mean partial duplicate fraction : {rep.mean_partial:.3f}  (paper: 0.839)",
        f"byte-weighted exact             : {rep.byte_weighted_exact:.3f}  (paper: 0.816)",
        f"byte-weighted partial           : {rep.byte_weighted_partial:.3f}  (paper: 0.894)",
        f"user-feature mean exact         : {np.mean([f.exact_fraction for f in user]):.3f}",
        f"item-feature mean exact         : {np.mean([f.exact_fraction for f in item]):.3f}",
    ]
    emit("Figure 4 — feature duplication", lines)

    assert 0.72 < rep.mean_exact < 0.88
    assert rep.mean_partial > rep.mean_exact
    assert rep.byte_weighted_partial > rep.byte_weighted_exact
    assert np.mean([f.exact_fraction for f in user]) > np.mean(
        [f.exact_fraction for f in item]
    )
