"""E9 / Table 4: per-optimization impact summary for RM1.

Paper: O1 improves Scribe compression 1.50x; O1+O2 improve storage
compression 3.71x and cut reader fill time 50%; O3 raises convert time
21% (net -0.01x reader); O4 cuts process time 13% (net +0.01x); O5+O6
give 1.34x training throughput @ 2x batch; O7 reaches 2.48x @ 3x batch.
"""

import pytest

from repro.datagen import rm1
from repro.pipeline import (
    PipelineConfig,
    RecDToggles,
    fig9_ablation,
    run_pipeline,
)


@pytest.fixture(scope="module")
def summary():
    w = rm1(scale=1.0)
    sessions = 220

    def pipeline(toggles, batch=None, train_batches=1):
        return run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=toggles,
                num_sessions=sessions,
                batch_size=batch or w.baseline_batch_size,
                train_batches=train_batches,
            )
        )

    base = pipeline(RecDToggles.baseline())
    o1 = pipeline(RecDToggles(o1_shard_by_session=True))
    o2 = pipeline(
        RecDToggles(o1_shard_by_session=True, o2_cluster_table=True)
    )
    o3 = pipeline(
        RecDToggles(
            o1_shard_by_session=True,
            o2_cluster_table=True,
            o3_ikjt=True,
            o5_dedup_emb=True,
            o6_jagged_index_select=True,
        )
    )
    ablation = fig9_ablation(scale=1.0, num_sessions=sessions)
    return {"base": base, "o1": o1, "o2": o2, "o3": o3, "ablation": ablation}


def test_table4_opt_summary(benchmark, emit, summary):
    benchmark.pedantic(lambda: summary, rounds=1, iterations=1)
    base, o1, o2, o3 = (
        summary["base"],
        summary["o1"],
        summary["o2"],
        summary["o3"],
    )
    ablation = summary["ablation"]
    scribe_x = o1.scribe_compression / base.scribe_compression
    storage_x = o2.storage_compression / base.storage_compression
    fill_cut = 1.0 - o2.reader.cpu.fill / base.reader.cpu.fill
    convert_up = o3.reader.cpu.convert / o2.reader.cpu.convert - 1.0
    process_cut = 1.0 - o3.reader.cpu.process / o2.reader.cpu.process
    o56_x = ablation[2].normalized
    o7_x = ablation[4].normalized
    lines = [
        f"O1 scribe compression gain   : {scribe_x:.2f}x  (paper: 1.50x)",
        f"O2 storage compression gain  : {storage_x:.2f}x  (paper: 3.71x)",
        f"O2 reader fill time cut      : {100 * fill_cut:.0f}%  (paper: 50%)",
        f"O3 convert time increase     : {100 * convert_up:.0f}%  (paper: +21%)",
        f"O4 process time cut          : {100 * process_cut:.0f}%  (paper: 13%)",
        f"O5+O6 trainer throughput     : {o56_x:.2f}x  (paper: 1.34x @ B4096)",
        f"O7 full-stack throughput     : {o7_x:.2f}x  (paper: 2.48x @ B6144)",
    ]
    emit("Table 4 — per-optimization impacts (RM1)", lines)

    assert scribe_x > 1.15
    assert storage_x > 1.5
    assert fill_cut > 0.3
    assert convert_up > 0.0
    assert process_cut > 0.0
    assert o56_x > 1.0
    assert o7_x > o56_x
