"""E6 / Table 2: RM1 trainer throughput, memory, and compute efficiency.

Paper: Baseline (1.00 QPS, 99.9/72.8% mem, 1.00 eff); RecD (1.89, 27.8/
22.2, 1.73); RecD+EMB D256 (1.55, 40.9/31.2, 1.92); RecD+B6144 (2.26,
91.8/51.6, 2.12).
"""

import pytest

from repro.pipeline import table2_resource_util


@pytest.fixture(scope="module")
def rows():
    return table2_resource_util(scale=1.0, num_sessions=220)


def test_table2_resource_util(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    paper = {
        "Baseline": (1.00, 99.9, 72.8, 1.00),
        "RecD": (1.89, 27.8, 22.2, 1.73),
        "RecD + EMB D1.5x": (1.55, 40.9, 31.2, 1.92),  # paper row: D256
        "RecD + B3x": (2.26, 91.8, 51.6, 2.12),  # paper row: B6144
    }
    lines = ["config              qps    max%   avg%   eff    (paper)"]
    for r in rows:
        p = paper[r.config]
        lines.append(
            f"{r.config:18s} {r.norm_qps:5.2f}  {100 * r.max_mem_util:5.1f}  "
            f"{100 * r.avg_mem_util:5.1f}  {r.norm_compute_efficiency:5.2f}  "
            f"({p[0]:.2f}, {p[1]:.1f}, {p[2]:.1f}, {p[3]:.2f})"
        )
    emit("Table 2 — RM1 resource utilization", lines)

    by = {r.config: r for r in rows}
    base, recd = by["Baseline"], by["RecD"]
    dbig, b3x = by["RecD + EMB D1.5x"], by["RecD + B3x"]
    # baseline fills GPU memory (capacity calibrated that way, like §6.1)
    assert base.max_mem_util == pytest.approx(0.999, abs=0.01)
    assert base.max_mem_util > base.avg_mem_util
    # RecD frees a large fraction of memory and lifts QPS + efficiency
    assert recd.max_mem_util < 0.6
    assert recd.norm_qps > 1.3
    assert recd.norm_compute_efficiency > 1.3
    # freed memory reinvested: bigger dims fit; bigger batch lifts QPS more
    assert recd.max_mem_util < dbig.max_mem_util <= 1.0
    assert dbig.norm_compute_efficiency > recd.norm_compute_efficiency
    assert b3x.norm_qps > recd.norm_qps
    assert b3x.max_mem_util <= 1.0
