"""E12 / §6.2: clustering's accuracy mechanism.

Paper: without clustering, a session's duplicate samples land in many
batches, so the model applies repeated sparse updates for the same
feature values across iterations and overfits tail values.  Clustering
concentrates each session in one batch — each row's value is seen (and
updated) in far fewer distinct iterations.
"""

from repro.pipeline import accuracy_clustering


def test_accuracy_clustering(benchmark, emit):
    res = benchmark.pedantic(
        lambda: accuracy_clustering(
            scale=0.5, num_sessions=200, train_batches=6
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "fraction of embedding rows updated in >1 iteration:",
        f"  interleaved (baseline) : {res.interleaved_repeat_fraction:.3f}",
        f"  clustered (O2)         : {res.clustered_repeat_fraction:.3f}",
        f"mean training loss interleaved : {res.interleaved_loss:.4f}",
        f"mean training loss clustered   : {res.clustered_loss:.4f}",
    ]
    emit("Clustering accuracy mechanism (§6.2)", lines)

    assert (
        res.clustered_repeat_fraction < res.interleaved_repeat_fraction
    )
