"""Microbenchmarks of the core kernels (real timed rounds).

These are the operations RecD adds to the hot path: duplicate detection
during feature conversion (O3), jagged index select (O6) vs the dense
baseline it replaces, and the IKJT -> KJT expansion.
"""

import numpy as np
import pytest

from repro.core import (
    InverseKeyedJaggedTensor,
    JaggedTensor,
    KeyedJaggedTensor,
    dense_index_select,
    jagged_index_select,
)


@pytest.fixture(scope="module")
def batch_kjt():
    """A 4096-row, session-duplicated single-feature batch."""
    rng = np.random.default_rng(0)
    rows = []
    current = None
    for i in range(4096):
        if i % 16 == 0 or current is None:
            current = rng.integers(0, 10**6, size=64).tolist()
        rows.append({"f": current})
    return KeyedJaggedTensor.from_rows(rows)


@pytest.fixture(scope="module")
def jagged_and_indices():
    rng = np.random.default_rng(1)
    jt = JaggedTensor.from_lists(
        [rng.integers(0, 10**6, size=rng.integers(1, 64)).tolist()
         for _ in range(512)]
    )
    idx = rng.integers(0, 512, size=4096)
    return jt, idx


def test_bench_ikjt_from_kjt(benchmark, batch_kjt):
    """O3: dedup-by-hashing conversion cost per 4096-row batch."""
    ikjt = benchmark(InverseKeyedJaggedTensor.from_kjt, batch_kjt, ["f"])
    assert ikjt.dedupe_factor() > 10


def test_bench_ikjt_to_kjt(benchmark, batch_kjt):
    """IKJT -> KJT expansion (the trainer-side index select)."""
    ikjt = InverseKeyedJaggedTensor.from_kjt(batch_kjt, ["f"])
    out = benchmark(ikjt.to_kjt)
    assert out == batch_kjt


def test_bench_jagged_index_select(benchmark, jagged_and_indices):
    """O6's kernel."""
    jt, idx = jagged_and_indices
    out = benchmark(jagged_index_select, jt, idx)
    assert out.num_rows == idx.size


def test_bench_dense_index_select(benchmark, jagged_and_indices):
    """The pre-O6 baseline: pad-to-dense then gather (memory-hungry)."""
    jt, idx = jagged_and_indices
    out = benchmark(dense_index_select, jt, idx)
    assert out.num_rows == idx.size


def test_jagged_beats_dense_on_memory(benchmark, jagged_and_indices, emit):
    """O6's motivation: the dense path materializes B x max_len."""
    jt, idx = benchmark.pedantic(
        lambda: jagged_and_indices, rounds=1, iterations=1
    )
    dense_cells = idx.size * int(jt.lengths.max())
    jagged_cells = int(jt.lengths[idx].sum())
    lines = [
        f"dense intermediate cells  : {dense_cells}",
        f"jagged gathered cells     : {jagged_cells}",
        f"memory amplification      : {dense_cells / jagged_cells:.2f}x",
    ]
    emit("O6 memory amplification", lines)
    assert dense_cells > jagged_cells
