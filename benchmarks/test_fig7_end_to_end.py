"""E3 / Figure 7: end-to-end trainer / reader / storage gains per RM.

Paper (RecD vs baseline): trainer 2.48x / 1.25x / 1.43x; reader 1.79x /
1.38x / 1.36x; storage compression 3.71x / 3.71x / 2.06x for RM1/2/3.
The simulation models all communication as exposed (no overlap), so
trainer multipliers run somewhat above the paper's; ordering and
direction must match.
"""

import pytest

from repro.pipeline import fig7_end_to_end


@pytest.fixture(scope="module")
def rows():
    return fig7_end_to_end(scale=1.0, num_sessions=220, train_batches=2)


def test_fig7_end_to_end(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    paper = {
        "RM1": (2.48, 1.79, 3.71),
        "RM2": (1.25, 1.38, 3.71),
        "RM3": (1.43, 1.36, 2.06),
    }
    lines = ["RM    trainer   reader   storage   (paper trainer/reader/storage)"]
    for r in rows:
        p = paper[r.rm]
        lines.append(
            f"{r.rm}   {r.trainer_x:6.2f}x  {r.reader_x:6.2f}x  "
            f"{r.storage_x:6.2f}x   ({p[0]:.2f}x / {p[1]:.2f}x / {p[2]:.2f}x)"
        )
    emit("Figure 7 — end-to-end gains", lines)

    for r in rows:
        # direction: RecD wins on all three axes for every RM
        assert r.trainer_x > 1.2, r.rm
        assert r.reader_x > 1.1, r.rm
        assert r.storage_x > 1.3, r.rm
    by_rm = {r.rm: r for r in rows}
    # RM1's heavy sequence usage gives it the largest trainer gain (paper)
    assert by_rm["RM1"].trainer_x >= by_rm["RM2"].trainer_x
    # RM3's lower samples/session gives it the smallest storage gain
    assert by_rm["RM3"].storage_x <= by_rm["RM1"].storage_x
    assert by_rm["RM3"].storage_x <= by_rm["RM2"].storage_x
