"""Ablation: communication/compute overlap and the throughput gap.

The default latency model exposes all communication (overlap = 0), which
is why this reproduction's trainer multipliers overshoot the paper's
(EXPERIMENTS.md, reading guide).  This bench sweeps the overlap fraction
and shows the RecD-vs-baseline multiplier shrinking toward the paper's
band as overlap grows — quantifying that the gap is an overlap-modeling
artifact, not a dedup-accounting one.
"""

from repro.datagen import TraceConfig, generate_partition, rm1
from repro.distributed import (
    DistributedTrainer,
    TrainerCostConstants,
    sim_cluster,
)
from repro.etl import cluster_by_session
from repro.reader import DataLoaderConfig, convert_rows
from repro.trainer import DLRM, DLRMConfig, TrainerOptFlags


def _batches(w, dedup, batch_size, n=2, seed=0):
    samples = cluster_by_session(
        generate_partition(w.schema, 220, TraceConfig(seed=seed))
    )
    if dedup:
        cfg = DataLoaderConfig(
            batch_size=batch_size,
            sparse_features=tuple(
                f.name for f in w.schema.sparse
                if f.name not in w.dedup_feature_names
            ),
            dedup_sparse_features=w.dedup_groups,
            dense_features=tuple(w.schema.dense_names),
        )
    else:
        cfg = DataLoaderConfig(
            batch_size=batch_size,
            sparse_features=tuple(w.schema.sparse_names),
            dense_features=tuple(w.schema.dense_names),
        )
    return [
        convert_rows(samples[i * batch_size : (i + 1) * batch_size], cfg)[0]
        for i in range(n)
    ]


def test_overlap_sweep(benchmark, emit):
    w = rm1(scale=1.0)
    cluster = sim_cluster(num_gpus=48)
    base_batches = _batches(w, False, w.baseline_batch_size)
    recd_batches = _batches(w, True, w.baseline_batch_size)

    def sweep():
        rows = []
        for overlap in (0.0, 0.25, 0.5, 0.75):
            cc = TrainerCostConstants(comm_overlap_fraction=overlap)
            qps = {}
            for name, flags, batches in [
                ("base", TrainerOptFlags.baseline(), base_batches),
                ("recd", TrainerOptFlags.full(), recd_batches),
            ]:
                model = DLRM(
                    list(w.schema.sparse),
                    DLRMConfig.from_workload(w, max_table_rows=1000, seed=1),
                    flags,
                )
                rep = DistributedTrainer(model, cluster, cc).run(batches)
                qps[name] = rep.mean_samples_per_second
            rows.append((overlap, qps["recd"] / qps["base"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["overlap  RecD/baseline multiplier (same batch size)"]
    for overlap, mult in rows:
        lines.append(f"{overlap:7.2f}  {mult:6.2f}x")
    lines.append("paper RM1 at equal batch: ~1.8x (44% iteration cut)")
    emit("Overlap ablation", lines)

    mults = dict(rows)
    # more overlap -> baseline hides more A2A -> RecD's relative win shrinks
    assert mults[0.75] < mults[0.25] <= mults[0.0]
    # RecD still wins at every overlap level
    assert all(m > 1.2 for m in mults.values())
