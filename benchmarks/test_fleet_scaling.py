"""Reader-fleet scaling: serial vs sharded-fleet throughput.

The reader tier is the stage RecD sizes fleets for (§2.1, Fig 7): N
sharded workers scan disjoint row ranges of one landed partition and
stream bit-identical batches through bounded prefetch queues.  This
benchmark records the serial reader's samples/cpu-second next to fleet
runs at 2 and 4 workers so the BENCH trajectory tracks both the per-node
cost (aggregate CPU) and the fleet-level win (modeled wall-clock =
slowest shard, how the parallel tier actually finishes).
"""

from repro.datagen import TraceConfig, TraceGenerator, rm1
from repro.pipeline import RecDToggles, Session
from repro.pipeline.spec import DataSpec, JobSpec, ReaderSpec, TrainSpec
from repro.reader import ReaderFleet, ReaderNode
from repro.storage import HiveTable, TectonicFS


def _landed_rm1_table(num_sessions=400, seed=0):
    w = rm1(scale=0.5)
    samples = TraceGenerator(
        w.schema, TraceConfig(seed=seed)
    ).generate_partition(num_sessions)
    table = HiveTable(
        "rm1_table", w.schema, TectonicFS(), rows_per_file=2048, stripe_rows=64
    )
    table.land_partition("p0", samples)
    return w, table


def test_fleet_scaling(benchmark, emit):
    w, table = _landed_rm1_table()
    cfg_kwargs = dict(
        sparse_features=tuple(w.schema.sparse_names),
        dense_features=tuple(w.schema.dense_names),
        transforms=("hash_modulo",),
    )
    from repro.reader import DataLoaderConfig

    cfg = DataLoaderConfig(batch_size=256, **cfg_kwargs)

    def run_all():
        out = {}
        serial = ReaderNode(cfg)
        serial.run_all(table.open_readers("p0"))
        out["serial"] = serial.report
        out["fleet"] = {}
        for n in (2, 4):
            fleet = ReaderFleet(n, cfg, executor="process")
            fleet.run(table, "p0")
            out["fleet"][n] = fleet.report
        return out

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)
    serial = res["serial"]
    serial_qps = serial.samples_per_cpu_second
    serial_wall_qps = (
        serial.samples / serial.cpu.total if serial.cpu.total else 0.0
    )

    lines = [
        f"serial : {serial.samples} samples, "
        f"{serial_qps:,.0f} samples/cpu-s, "
        f"modeled wall {serial.cpu.total * 1e3:.1f} ms",
    ]
    speedups = {}
    for n, rep in res["fleet"].items():
        merged = rep.merged
        speedups[n] = (
            rep.modeled_samples_per_second / serial_wall_qps
            if serial_wall_qps
            else 0.0
        )
        lines.append(
            f"fleet x{n} ({rep.executor_used}): {merged.samples} samples, "
            f"{merged.samples_per_cpu_second:,.0f} samples/cpu-s, "
            f"modeled wall {rep.modeled_wall_seconds * 1e3:.1f} ms "
            f"({speedups[n]:.2f}x serial), measured wall "
            f"{rep.wall_seconds * 1e3:.0f} ms, queue wait "
            f"put {rep.queue.put_wait * 1e3:.0f} ms / "
            f"get {rep.queue.get_wait * 1e3:.0f} ms"
        )
    # the store row mirrors the text block in machine-readable form:
    # these modeled throughputs — deterministic given code + data — are
    # what the regression gate (benchmarks/check_regression.py) can
    # compare against committed baselines
    metrics = {
        "serial.samples": float(serial.samples),
        "serial.samples_per_cpu_second": serial_qps,
        "serial.modeled_wall_seconds": serial.cpu.total,
    }
    for n, rep in res["fleet"].items():
        metrics[f"fleet[{n}].samples_per_cpu_second"] = (
            rep.merged.samples_per_cpu_second
        )
        metrics[f"fleet[{n}].modeled_samples_per_second"] = (
            rep.modeled_samples_per_second
        )
        metrics[f"fleet[{n}].speedup_vs_serial"] = speedups[n]
    emit(
        "Reader-fleet scaling (serial vs sharded workers)",
        lines,
        metrics=metrics,
    )

    # every fleet width processes exactly the serial sample count
    for rep in res["fleet"].values():
        assert rep.merged.samples == serial.samples
        assert rep.merged.batches == serial.batches
    # sharding must buy real parallel headroom: the modeled fleet
    # wall-clock throughput (finishing with the straggler shard) clears
    # 1.5x serial well before 4 workers
    assert speedups[2] >= 1.5
    assert speedups[4] >= 1.5


def test_wide_transport_bend(benchmark, emit):
    """Wide async fleets x batch transport: where scaling bends and why.

    The async coroutine executor runs widths {8, 16, 32, 64} over the
    landed RM1 partition in one process, bit-identically to the other
    executors.  Decode parallelizes with width, but under the ``copy``
    transport every batch still pays a serial serialize/copy handoff at
    the consumer, so delivered wall-clock floors at the fleet's total
    transport wait (``queue.transport``) — the Amdahl bend.  The ``shm``
    transport charges nothing, so its delivered wall keeps tracking the
    modeled decode wall all the way out.  The gate names the bend's
    component: at width 64 the copy fleet's delivered wall *is* its
    transport wait, and shm strictly beats copy at every width.
    """
    w, table = _landed_rm1_table()
    from repro.reader import DataLoaderConfig

    cfg = DataLoaderConfig(
        batch_size=64,
        sparse_features=tuple(w.schema.sparse_names),
        dense_features=tuple(w.schema.dense_names),
        transforms=("hash_modulo",),
    )
    widths = (8, 16, 32, 64)

    def run_all():
        out = {}
        for transport in ("copy", "shm"):
            out[transport] = {}
            for n in widths:
                fleet = ReaderFleet(
                    n, cfg, executor="async", transport=transport
                )
                fleet.run(table, "p0")
                out[transport][n] = fleet.report
        return out

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    metrics = {}
    for transport in ("copy", "shm"):
        for n in widths:
            rep = res[transport][n]
            delivered = rep.modeled_delivered_wall_seconds
            lines.append(
                f"{transport:4s} x{n:2d}: decode wall "
                f"{rep.modeled_wall_seconds * 1e3:6.2f} ms, transport "
                f"wait {rep.queue.transport * 1e3:6.2f} ms, delivered "
                f"wall {delivered * 1e3:6.2f} ms "
                f"({rep.modeled_delivered_samples_per_second:,.0f} "
                "samples/s)"
            )
            key = f"{transport}[{n}]"
            metrics[f"{key}.modeled_wall_seconds"] = (
                rep.modeled_wall_seconds
            )
            metrics[f"{key}.transport_wait_seconds"] = rep.queue.transport
            metrics[f"{key}.delivered_wall_seconds"] = delivered
            metrics[f"{key}.delivered_samples_per_second"] = (
                rep.modeled_delivered_samples_per_second
            )
    emit(
        "Wide async fleets x transport (the copy handoff bend)",
        lines,
        metrics=metrics,
    )

    batches = res["copy"][widths[0]].merged.batches
    for transport in ("copy", "shm"):
        for n in widths:
            rep = res[transport][n]
            # every configuration scans the identical batch stream
            assert rep.merged.batches == batches
            assert rep.executor_used == "async"
            # shm strictly reduces the modeled per-batch overhead vs
            # copy at every width: zero transport charge vs a positive
            # one on the identical stream
            if transport == "shm":
                assert rep.queue.transport == 0.0
                assert (
                    rep.modeled_delivered_wall_seconds
                    == rep.modeled_wall_seconds
                )
            else:
                assert rep.queue.transport > 0.0
                assert (
                    rep.modeled_delivered_wall_seconds
                    <= res["copy"][widths[0]].modeled_delivered_wall_seconds
                )
    for n in widths:
        # ...so shm's delivered wall never trails copy's, and beats it
        # strictly once copy goes transport-bound
        assert (
            res["shm"][n].modeled_delivered_wall_seconds
            <= res["copy"][n].modeled_delivered_wall_seconds
        )
        if res["copy"][n].queue.transport > (
            res["copy"][n].modeled_wall_seconds
        ):
            assert (
                res["shm"][n].modeled_delivered_wall_seconds
                < res["copy"][n].modeled_delivered_wall_seconds
            )
    # decode itself keeps scaling: the width-64 decode wall beats width-8
    assert (
        res["shm"][64].modeled_delivered_wall_seconds
        < res["shm"][8].modeled_delivered_wall_seconds
    )
    # the bend, attributed: by width 64 the copy fleet is transport-bound
    # — its delivered wall IS the serial copy handoff (queue.transport),
    # no longer the (parallel) decode wall
    wide_copy = res["copy"][64]
    assert wide_copy.modeled_delivered_wall_seconds == (
        wide_copy.queue.transport
    )
    assert wide_copy.queue.transport > wide_copy.modeled_wall_seconds


def _dedup_job(dedup: bool, width: int) -> JobSpec:
    return JobSpec(
        data=DataSpec(
            workload=rm1(scale=0.5),
            toggles=RecDToggles(
                o1_shard_by_session=True, o2_cluster_table=True
            ),
            num_sessions=250,
            seed=0,
        ),
        reader=ReaderSpec(
            num_readers=width, executor="inprocess", dedup=dedup
        ),
        train=TrainSpec(train_epochs=1, train_batches=None),
    )


def test_dedup_width_compounding(benchmark, emit):
    """Session-dedup x fleet width: the dedup transport's modeled-wall
    win must compound with sharding.

    At every width the deduped stream trains bit-identically to the
    non-dedup run, and its reader fleet finishes faster.  The gate: the
    measured dedupe byte factor ``f`` predicts the margin — only the
    convert/process phases shrink (``fill`` re-reads the same storage
    bytes), so the predicted fleet speedup is
    ``total / (fill + convert + process / f)``.  The dedup path pays a
    real conversion overhead the prediction ignores (row hashing and
    group bookkeeping), so the assertion requires the realized width-4
    speedup to retain >= 85% of the predicted margin.
    """

    def run_all():
        out = {}
        for width in (1, 2, 4):
            out[width] = {
                "base": Session(_dedup_job(False, width)).run(),
                "dedup": Session(_dedup_job(True, width)).run(),
            }
        return out

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    metrics = {}
    factor = res[4]["dedup"].reader.dedupe_byte_factor
    base_cpu = res[4]["base"].reader.cpu
    predicted_margin = base_cpu.total / (
        base_cpu.fill + base_cpu.convert + base_cpu.process / factor
    )
    speedups = {}
    for width, pair in res.items():
        base, dedup = pair["base"], pair["dedup"]
        # bit-identity at every width, full-epoch trajectories
        assert dedup.training.losses == base.training.losses
        assert dedup.reader.send_bytes < base.reader.send_bytes
        assert dedup.reader.expanded_bytes == base.reader.send_bytes
        base_wall = base.fleet.modeled_wall_seconds
        dedup_wall = dedup.fleet.modeled_wall_seconds
        speedups[width] = base_wall / dedup_wall
        lines.append(
            f"width {width}: wall {base_wall * 1e3:7.1f} ms -> "
            f"{dedup_wall * 1e3:7.1f} ms ({speedups[width]:.2f}x), "
            f"decoded {base.reader.send_bytes:,} -> "
            f"{dedup.reader.send_bytes:,} B"
        )
        metrics[f"width[{width}].base_modeled_wall_seconds"] = base_wall
        metrics[f"width[{width}].dedup_modeled_wall_seconds"] = dedup_wall
        metrics[f"width[{width}].dedup_speedup"] = speedups[width]
    lines.append(
        f"dedupe byte factor {factor:.2f}x, predicted margin "
        f"{predicted_margin:.2f}x"
    )
    metrics["dedupe_byte_factor"] = factor
    metrics["predicted_margin"] = predicted_margin
    emit(
        "Session-dedup x fleet width compounding (modeled wall)",
        lines,
        metrics=metrics,
    )

    # the compounding wall: dedup at width 4 beats non-dedup at width 4
    # by at least 85% of the measured factor's predicted margin
    assert speedups[4] >= 1.0 + 0.85 * (predicted_margin - 1.0)
    # and the win holds at every width, compounding with sharding:
    # dedup@4 is strictly the fastest configuration measured
    assert all(s > 1.0 for s in speedups.values())
    fastest = min(
        pair[kind].fleet.modeled_wall_seconds
        for pair in res.values()
        for kind in pair
    )
    assert fastest == res[4]["dedup"].fleet.modeled_wall_seconds
