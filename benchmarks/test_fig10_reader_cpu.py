"""E8 / Figure 10: reader CPU time breakdown (Fill / Convert / Process).

Paper: fill CPU time falls 50/33/46% for RM1/2/3 (clustered tables);
convert rises 21/37/11% (hashing for dedup) but is a small share;
process falls 13/11% for RM1/2 (RM3 ~flat).  Net: readers speed up
1.79/1.38/1.36x.
"""

import pytest

from repro.pipeline import fig10_reader_cpu


@pytest.fixture(scope="module")
def rows():
    return fig10_reader_cpu(scale=1.0, num_sessions=200)


def test_fig10_reader_cpu(benchmark, emit, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    lines = [
        "RM    fraction of baseline reader CPU (baseline -> RecD)"
    ]
    for r in rows:
        bt = r.baseline.total
        n = r.recd_normalized
        lines.append(
            f"{r.rm}  fill {r.baseline.fill / bt:.2f}->{n['fill']:.2f}  "
            f"convert {r.baseline.convert / bt:.2f}->{n['convert']:.2f}  "
            f"process {r.baseline.process / bt:.2f}->{n['process']:.2f}  "
            f"total 1.00->{n['total']:.2f}"
        )
    emit("Figure 10 — reader CPU breakdown", lines)

    for r in rows:
        bt = r.baseline.total
        # fills dominate baseline reader CPU (paper's observation)
        assert r.baseline.fill / bt > 0.4, r.rm
        # RecD cuts fill CPU by 30%+ (paper: 33-50%)
        assert r.recd.fill < 0.7 * r.baseline.fill, r.rm
        # convert rises (hashing overhead)...
        assert r.recd.convert > r.baseline.convert, r.rm
        # ...but conversion stays a small share of total reader CPU
        assert r.recd.convert / bt < 0.25, r.rm
        # process gets cheaper with dedup inputs
        assert r.recd.process <= r.baseline.process, r.rm
        # net reader CPU falls
        assert r.recd_normalized["total"] < 0.85, r.rm
