"""Freshness-SLO scheduling: lag-boosted weights vs round-robin.

Three streamed jobs share a width-4 pool while their micro-partitions
land on the live clock.  Under ``round_robin`` the pool splits evenly
regardless of who is falling behind; with ``stall_weighted`` plus a
``freshness_slo`` the tier multiplies a job's weight by how far its
p99 event-time → trained-on lag overshoots the target, steering
surplus workers toward the laggiest stream.  The benchmark records
both policies' lag percentiles — the headline is the p99 reduction —
and asserts the scheduling change never touches a loss (weights only
move modeled wall-clock, never batch content).
"""

from repro.datagen import rm1, rm2
from repro.pipeline import (
    DataSpec,
    JobSpec,
    ReaderSpec,
    RecDToggles,
    Session,
    StreamSpec,
    TrainSpec,
)

#: target p99 lag (modeled seconds) — intentionally below what the
#: round-robin split achieves, so the boost engages
FRESHNESS_SLO = 0.05


def _job(w, *, seed, sessions, partitions, epochs, interval, name, batches):
    return JobSpec(
        data=DataSpec(
            workload=w,
            toggles=RecDToggles.baseline(),
            num_sessions=sessions,
            num_partitions=partitions,
            seed=seed,
        ),
        reader=ReaderSpec(num_readers=1),
        train=TrainSpec(train_epochs=epochs, train_batches=batches),
        # Sub-second ticks put landing cadence on the same scale as the
        # modeled compute, so worker allocation — not waiting for data
        # — dominates each batch's lag.
        stream=StreamSpec(
            interval_seconds=interval, land_latency_seconds=0.002
        ),
        name=name,
    )


def _jobs():
    return [
        _job(rm1(0.3), seed=1, sessions=120, partitions=4, epochs=6,
             interval=0.02, name="heavy", batches=4),
        _job(rm2(0.2), seed=2, sessions=60, partitions=3, epochs=5,
             interval=0.03, name="light-a", batches=3),
        _job(rm1(0.2), seed=3, sessions=60, partitions=3, epochs=5,
             interval=0.04, name="light-b", batches=3),
    ]


def _run(policy, freshness_slo=None):
    session = Session(
        _jobs(), width=4, policy=policy, freshness_slo=freshness_slo
    )
    res = session.run()
    return res


def test_freshness_weighted_beats_round_robin(benchmark, emit):
    def run_both():
        return {
            "round_robin": _run("round_robin"),
            "weighted": _run("stall_weighted", FRESHNESS_SLO),
        }

    res = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rr, wt = res["round_robin"], res["weighted"]

    # The invariant first: scheduling policy must never touch a loss.
    for a, b in zip(rr.jobs, wt.jobs):
        assert a.name == b.name
        assert list(a.training.losses) == list(b.training.losses)

    rr_fresh, wt_fresh = rr.tier.freshness, wt.tier.freshness
    # The headline: the lag-boosted weights measurably cut the tail.
    assert wt_fresh.p99_lag_seconds < rr_fresh.p99_lag_seconds
    reduction = 1.0 - wt_fresh.p99_lag_seconds / rr_fresh.p99_lag_seconds

    lines = []
    for label, r in (("round_robin", rr), ("freshness-weighted", wt)):
        f = r.tier.freshness
        per = "  ".join(
            f"{j.name}={r.tier.job_freshness(j.name).p99_lag_seconds * 1e3:.1f}ms"
            for j in r.jobs
        )
        lines.append(
            f"{label:18s}: p50 {f.p50_lag_seconds * 1e3:6.1f} ms  "
            f"p99 {f.p99_lag_seconds * 1e3:6.1f} ms  ({per})"
        )
    lines.append(
        f"p99 lag reduction : {100 * reduction:.1f}% "
        f"(SLO target {FRESHNESS_SLO * 1e3:.0f} ms); losses bit-identical"
    )
    emit(
        "stream freshness: lag-boosted weights vs round-robin",
        lines,
        metrics={
            "freshness_p99_round_robin_seconds": rr_fresh.p99_lag_seconds,
            "freshness_p99_weighted_seconds": wt_fresh.p99_lag_seconds,
            "freshness_p50_round_robin_seconds": rr_fresh.p50_lag_seconds,
            "freshness_p50_weighted_seconds": wt_fresh.p50_lag_seconds,
            "freshness_p99_reduction_fraction": reduction,
        },
    )
