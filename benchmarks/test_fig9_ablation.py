"""E5 / Figure 9: RM1 optimization ablation.

Paper stages (normalized trainer throughput): Baseline 1.0; +Clustered
Table 1.0 (no trainer benefit alone); +Dedup EMB & JaggedIndexSelect @
B4096 1.34; +Dedup Compute 2.42; +B6144 2.48.
"""

import pytest

from repro.pipeline import fig9_ablation


@pytest.fixture(scope="module")
def stages():
    return fig9_ablation(scale=1.0, num_sessions=220)


def test_fig9_ablation(benchmark, emit, stages):
    benchmark.pedantic(lambda: stages, rounds=1, iterations=1)
    paper = [1.0, 1.0, 1.34, 2.42, 2.48]
    lines = ["stage                     measured   paper"]
    for s, p in zip(stages, paper):
        lines.append(f"{s.label:24s}  {s.normalized:6.2f}x   {p:.2f}x")
    emit("Figure 9 — RM1 ablation", lines)

    norm = [s.normalized for s in stages]
    assert norm[0] == pytest.approx(1.0)
    # clustering alone is necessary but not sufficient (paper's point)
    assert norm[1] == pytest.approx(1.0, abs=0.35)
    # every RecD stage strictly improves
    assert norm[2] > max(norm[0], norm[1])
    assert norm[3] > norm[2]
    assert norm[4] >= norm[3] * 0.95
    # the full stack is a multi-x win
    assert norm[4] > 1.8
