"""Ablation (§7's heuristic): the DedupeFactor > 1.5 selection threshold.

Sweeps the threshold and reports how many features get deduplicated and
the resulting SDD wire bytes — showing why the paper's 1.5 default sits
at the knee: below it, extra features add inverse_lookup overhead for
little value savings.
"""

import numpy as np

from repro.core import (
    FeatureDedupStats,
    InverseKeyedJaggedTensor,
    KeyedJaggedTensor,
    select_features_to_dedup,
)


def _mixed_batch(rng, batch=1024):
    """Features spanning the dedupe-factor spectrum."""
    specs = [
        ("hot", 0.95, 32),  # high duplication, long
        ("warm", 0.7, 16),
        ("cool", 0.4, 8),
        ("cold", 0.05, 8),  # nearly unique rows
    ]
    rows = []
    state = {}
    for i in range(batch):
        for name, d, length in specs:
            if i == 0 or rng.random() > d:
                state[name] = rng.integers(0, 10**6, size=length).tolist()
        rows.append({k: list(v) for k, v in state.items()})
    return rows, specs


def test_threshold_sweep(benchmark, emit):
    rng = np.random.default_rng(5)
    rows, specs = _mixed_batch(rng)
    kjt = KeyedJaggedTensor.from_rows(rows)
    stats = [
        FeatureDedupStats(name, length, d) for name, d, length in specs
    ]

    def wire_bytes_for(threshold: float) -> tuple[int, int]:
        chosen = select_features_to_dedup(
            stats, batch_size=1024, samples_per_session=16.5,
            threshold=threshold,
        )
        total = 0
        for name, _, _ in specs:
            if name in chosen:
                total += InverseKeyedJaggedTensor.from_kjt(
                    kjt, [name]
                ).nbytes
            else:
                total += kjt[name].nbytes
        return total, len(chosen)

    sweep = benchmark.pedantic(
        lambda: [(t, *wire_bytes_for(t)) for t in (1.0, 1.25, 1.5, 2.0, 4.0, 8.0)],
        rounds=1,
        iterations=1,
    )
    lines = ["threshold  #dedup  batch bytes"]
    for t, nbytes, n in sweep:
        lines.append(f"{t:9.2f}  {n:6d}  {nbytes:11d}")
    emit("Dedup threshold sweep (§7)", lines)

    by_t = {t: nbytes for t, nbytes, _ in sweep}
    # deduplicating the clearly-profitable features shrinks the batch...
    assert by_t[1.5] < by_t[8.0]
    # ...and a permissive threshold buys little beyond the paper default
    assert by_t[1.0] >= by_t[1.5] * 0.95
