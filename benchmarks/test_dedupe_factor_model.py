"""E13 / §4.2: the DedupeFactor analytical model vs measurement.

The paper's model: DedupeFactor(f) = 1 / (1 - (S-1)/S * d(f)).  Sweep S
and d, generate batches satisfying the model's assumptions, and check
the measured dedup ratio tracks the model (it guides which features ML
engineers dedup, §7).
"""

from repro.pipeline import dedupe_factor_model_sweep


def test_dedupe_factor_model(benchmark, emit):
    points = benchmark.pedantic(
        lambda: dedupe_factor_model_sweep(), rounds=1, iterations=1
    )
    lines = ["S     d      modeled   measured"]
    for p in points:
        lines.append(
            f"{p.samples_per_session:<5.0f} {p.d:<5.2f} "
            f"{p.modeled:8.2f}  {p.measured:8.2f}"
        )
    emit("DedupeFactor model validation (§4.2)", lines)

    for p in points:
        assert abs(p.measured - p.modeled) / p.modeled < 0.25, (
            p.samples_per_session,
            p.d,
        )
    # the paper's dedup band: S=16.5, d~0.9 -> factor ~4-15
    high = [p for p in points if p.samples_per_session == 16 and p.d >= 0.8]
    assert all(4.0 < p.measured < 16.0 for p in high)
