"""E11 / §6.2: single-node training speedup.

Paper: a downsized RM1 on one ZionEX node (8 GPUs, NVLink) still gains
2.18x from RecD — less exposed communication, but compute and memory
savings remain.
"""

from repro.pipeline import single_node_speedup


def test_single_node_speedup(benchmark, emit):
    res = benchmark.pedantic(
        lambda: single_node_speedup(scale=0.5, num_sessions=250),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"baseline QPS : {res['baseline']:.0f}",
        f"RecD QPS     : {res['recd']:.0f}",
        f"speedup      : {res['speedup']:.2f}x  (paper: 2.18x)",
    ]
    emit("Single-node training (§6.2)", lines)
    assert res["speedup"] > 1.4
