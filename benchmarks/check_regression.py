#!/usr/bin/env python
"""Fail when reader-fleet scaling throughput regresses vs committed results.

Compares the freshly generated ``benchmarks/results/fleet_scaling.json``
(written by ``pytest benchmarks/test_fleet_scaling.py``) against the copy
committed to git (``git show HEAD:...``, or an explicit ``--baseline``
file).  The compared numbers are *modeled* throughputs — deterministic
functions of the code and generated data, not of machine load — so a
drop means a real code regression, not noise.  Exits non-zero when any
tracked metric drops more than ``--threshold`` (default 20%).

Usage::

    python -m pytest benchmarks/test_fleet_scaling.py -q
    python benchmarks/check_regression.py [--threshold 0.2]
    python benchmarks/check_regression.py --baseline old.json --current new.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

RESULTS = pathlib.Path(__file__).parent / "results" / "fleet_scaling.json"
REPO_ROOT = pathlib.Path(__file__).parent.parent
GIT_PATH = "benchmarks/results/fleet_scaling.json"


def load_baseline(path: str | None) -> dict:
    if path is not None:
        return json.loads(pathlib.Path(path).read_text())
    proc = subprocess.run(
        ["git", "show", f"HEAD:{GIT_PATH}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.exit(
            f"error: no committed baseline at HEAD:{GIT_PATH} "
            f"({proc.stderr.strip()}); pass --baseline explicitly"
        )
    return json.loads(proc.stdout)


def tracked_metrics(doc: dict) -> dict[str, float]:
    """The throughput numbers the gate watches, flattened."""
    out = {
        "serial.samples_per_cpu_second": doc["serial"][
            "samples_per_cpu_second"
        ]
    }
    for width, rep in sorted(doc.get("fleet", {}).items(), key=lambda kv: int(kv[0])):
        out[f"fleet[{width}].modeled_samples_per_second"] = rep[
            "modeled_samples_per_second"
        ]
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        help="baseline JSON (default: the committed copy, via git show)",
    )
    parser.add_argument(
        "--current",
        default=str(RESULTS),
        help="freshly generated JSON (default: benchmarks/results/)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="max allowed fractional drop (default 0.2 = 20%%)",
    )
    args = parser.parse_args(argv)

    current_path = pathlib.Path(args.current)
    if not current_path.exists():
        sys.exit(
            f"error: {current_path} not found — run "
            "`python -m pytest benchmarks/test_fleet_scaling.py` first"
        )
    baseline = tracked_metrics(load_baseline(args.baseline))
    current = tracked_metrics(json.loads(current_path.read_text()))

    failures = []
    for key, base_value in baseline.items():
        if key not in current:
            failures.append(f"{key}: missing from current results")
            continue
        now = current[key]
        drop = 0.0 if base_value == 0 else (base_value - now) / base_value
        status = "FAIL" if drop > args.threshold else "ok"
        print(
            f"{status:4s} {key:45s} baseline {base_value:12,.0f} "
            f"current {now:12,.0f} ({-drop:+.1%})"
        )
        if drop > args.threshold:
            failures.append(
                f"{key}: {now:,.0f} is {drop:.1%} below baseline "
                f"{base_value:,.0f} (threshold {args.threshold:.0%})"
            )
    if failures:
        print(
            "\nthroughput regression vs committed results:\n  "
            + "\n  ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("\nno regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
