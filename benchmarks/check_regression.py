#!/usr/bin/env python
"""Store-backed regression gate: stored metrics vs committed baselines.

Reads the results store (``benchmarks/results/store/runs.sqlite``,
populated by ``repro experiments run`` and by the benchmark scripts) and
compares every metric named in a committed baselines file against the
latest stored value, with per-metric tolerances.  All compared numbers
are *modeled* — deterministic functions of the code and generated data,
not of machine load — so a miss means a real code regression, not noise.

Usage::

    python -m repro experiments run --profile smoke
    python benchmarks/check_regression.py --profile smoke
    python benchmarks/check_regression.py --profile paper \\
        --summary "$GITHUB_STEP_SUMMARY"
    python benchmarks/check_regression.py --profile smoke --update

``--update`` regenerates the baselines file's values from the store
(preserving any per-metric ``tolerance``/``direction`` overrides)
instead of checking; commit the result to move the baseline.  Exits 1
on any regression or missing metric, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import (  # noqa: E402
    RunStore,
    check_store,
    load_baselines,
    markdown_summary,
    update_baselines,
)
from repro.experiments.store import DEFAULT_STORE_PATH  # noqa: E402

BASELINES_DIR = REPO_ROOT / "benchmarks" / "baselines"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store",
        default=str(REPO_ROOT / DEFAULT_STORE_PATH),
        help="results store (SQLite) path",
    )
    parser.add_argument(
        "--profile",
        default="smoke",
        help="which profile's runs and baselines to compare "
        "(default: smoke)",
    )
    parser.add_argument(
        "--baselines",
        default=None,
        help="baselines JSON (default: "
        "benchmarks/baselines/{profile}.json)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="regenerate the baselines file's values from the store "
        "instead of checking",
    )
    parser.add_argument(
        "--summary",
        default=None,
        metavar="FILE",
        help="append a markdown metric-by-metric table to FILE "
        "(for $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    baselines_path = pathlib.Path(
        args.baselines
        if args.baselines is not None
        else BASELINES_DIR / f"{args.profile}.json"
    )
    store_path = pathlib.Path(args.store)
    if not store_path.exists():
        sys.exit(
            f"error: no results store at {store_path} — run "
            f"'python -m repro experiments run --profile "
            f"{args.profile}' first"
        )
    store = RunStore(store_path)

    if args.update:
        data = update_baselines(
            store, baselines_path, profile=args.profile
        )
        print(
            f"wrote {len(data['metrics'])} baseline metrics to "
            f"{baselines_path}"
        )
        return 0

    if not baselines_path.exists():
        sys.exit(
            f"error: no baselines at {baselines_path} — generate "
            "them with --update and commit the file"
        )
    result = check_store(
        store, load_baselines(baselines_path), profile=args.profile
    )
    for row in result.rows:
        value = "missing" if row.value is None else f"{row.value:12,.2f}"
        delta = (
            ""
            if row.delta_fraction is None
            else f" ({row.delta_fraction:+.1%})"
        )
        mark = "ok  " if row.status == "ok" else "FAIL"
        print(
            f"{mark} {row.key:70s} baseline {row.baseline:12,.2f} "
            f"current {value}{delta}"
        )
    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(
                markdown_summary(
                    result,
                    title=f"Regression gate ({args.profile})",
                )
            )
    if result.failed:
        print(
            f"\n{len(result.regressions)} metric(s) regressed past "
            "tolerance or went missing:\n  "
            + "\n  ".join(
                f"{r.key}: {r.status}" for r in result.regressions
            ),
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(result.rows)} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
