"""Seeded fault plans: what goes wrong, when, deterministically.

A :class:`FaultPlan` is the full misfortune schedule for one scenario
run — reader-worker crashes, straggling shards, job preemptions (with
checkpoint/resume), and bursty mid-run job arrivals — keyed by the
tier's *round* index, the only clock the scheduler has.  Plans are
plain frozen data: build one by hand, draw one from
:meth:`FaultPlan.seeded` (same seed, same plan, forever), or let
hypothesis generate adversarial ones in the chaos test tier.

The plan deliberately speaks rounds while a job's
:class:`~repro.pipeline.spec.FaultSpec` speaks the job's own epochs:
the scenario runner injects plan faults through the tier's round-level
hook and falls back to any per-spec faults, so both surfaces compose.

Injected :class:`~repro.reader.fleet.FleetFaults` need a deterministic
executor: the serial ``inprocess`` one, or — for wide pools like the
``wide-crash-resume`` scenario's width-64 tier — the ``async``
coroutine executor, whose crash/straggler arithmetic is bit-identical
to the serial executor at any width.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..reader.fleet import FleetFaults

__all__ = [
    "CrashFault",
    "StragglerFault",
    "Preemption",
    "Arrival",
    "FaultPlan",
]


def _require_round(kind: str, value: int) -> None:
    """Raise unless ``value`` is a valid (non-negative) round index."""
    if value < 0:
        raise ValueError(f"{kind}.round must be non-negative, got {value}")


@dataclass(frozen=True)
class CrashFault:
    """One reader-worker crash: the shard's scan is redone.

    Attributes:
        round: tier round the crash lands in.
        job: the job whose leased fleet takes the hit.
        shard: shard position (modulo the epoch's shard count).
        lost_fraction: fraction of the shard's work lost and redone.
    """

    round: int
    job: str
    shard: int = 0
    lost_fraction: float = 0.5

    def __post_init__(self) -> None:
        _require_round("CrashFault", self.round)
        if self.shard < 0:
            raise ValueError(
                f"CrashFault.shard must be non-negative, got {self.shard}"
            )
        if not 0.0 <= self.lost_fraction <= 1.0:
            raise ValueError(
                "CrashFault.lost_fraction must be in [0, 1], got "
                f"{self.lost_fraction}"
            )


@dataclass(frozen=True)
class StragglerFault:
    """One straggling shard: its scan costs ``factor``x the CPU.

    Attributes:
        round: tier round the slowdown lands in.
        job: the job whose leased fleet takes the hit.
        shard: shard position (modulo the epoch's shard count).
        factor: CPU slowdown factor, >= 1.0.
    """

    round: int
    job: str
    shard: int = 0
    factor: float = 2.0

    def __post_init__(self) -> None:
        _require_round("StragglerFault", self.round)
        if self.shard < 0:
            raise ValueError(
                "StragglerFault.shard must be non-negative, got "
                f"{self.shard}"
            )
        if not self.factor >= 1.0:
            raise ValueError(
                f"StragglerFault.factor must be >= 1.0, got {self.factor}"
            )


@dataclass(frozen=True)
class Preemption:
    """One job preemption: checkpoint, deschedule, resume later.

    Attributes:
        round: tier round *before* which the job is preempted.
        job: the job to preempt.
        resume_after: full rounds the job stays descheduled before it
            is re-admitted (resumed from its checkpoint).
    """

    round: int
    job: str
    resume_after: int = 1

    def __post_init__(self) -> None:
        _require_round("Preemption", self.round)
        if self.resume_after < 1:
            raise ValueError(
                "Preemption.resume_after must be >= 1, got "
                f"{self.resume_after}"
            )


@dataclass(frozen=True)
class Arrival:
    """One bursty mid-run job arrival.

    Attributes:
        round: tier round *before* which the job is admitted.
        name: the arriving job's report name.
        spec: the arriving job's :class:`~repro.pipeline.spec.JobSpec`.
    """

    round: int
    name: str
    spec: object

    def __post_init__(self) -> None:
        _require_round("Arrival", self.round)
        if not self.name:
            raise ValueError("Arrival.name must be non-empty")


@dataclass(frozen=True)
class FaultPlan:
    """The full, deterministic misfortune schedule for one scenario.

    Attributes:
        crashes: reader-worker crashes, any order.
        stragglers: straggling shards, any order.
        preemptions: job preemptions (at most one per job per round).
        arrivals: bursty job arrivals (names must be unique).
        seed: the seed the plan was drawn from (bookkeeping; ``None``
            for hand-built plans).
    """

    crashes: tuple[CrashFault, ...] = ()
    stragglers: tuple[StragglerFault, ...] = ()
    preemptions: tuple[Preemption, ...] = ()
    arrivals: tuple[Arrival, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        seen = set()
        for p in self.preemptions:
            key = (p.round, p.job)
            if key in seen:
                raise ValueError(
                    f"duplicate preemption of job {p.job!r} at round "
                    f"{p.round}"
                )
            seen.add(key)
        names = [a.name for a in self.arrivals]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate arrival names: {names}")

    def fleet_faults(self, round_index: int, job: str) -> FleetFaults | None:
        """The reader faults hitting one job's fleet in one round.

        Crashes and stragglers for the same (round, job) merge into one
        :class:`~repro.reader.fleet.FleetFaults`; when several crashes
        name the round the largest ``lost_fraction`` wins (a worst-case
        merge, and deterministic regardless of plan order).

        Returns:
            The merged faults, or ``None`` when the round runs clean.
        """
        crashed = sorted(
            c.shard
            for c in self.crashes
            if c.round == round_index and c.job == job
        )
        lost = [
            c.lost_fraction
            for c in self.crashes
            if c.round == round_index and c.job == job
        ]
        factors: dict[int, float] = {}
        for s in self.stragglers:
            if s.round == round_index and s.job == job:
                factors[s.shard] = max(
                    factors.get(s.shard, 1.0), s.factor
                )
        if not crashed and not factors:
            return None
        return FleetFaults(
            crashed_shards=tuple(crashed),
            straggler_factors=factors,
            lost_fraction=max(lost) if lost else 0.5,
        )

    def preemptions_at(self, round_index: int) -> list[Preemption]:
        """Preemptions scheduled before the given round, job-sorted."""
        return sorted(
            (p for p in self.preemptions if p.round == round_index),
            key=lambda p: p.job,
        )

    def arrivals_at(self, round_index: int) -> list[Arrival]:
        """Arrivals scheduled before the given round, name-sorted."""
        return sorted(
            (a for a in self.arrivals if a.round == round_index),
            key=lambda a: a.name,
        )

    @property
    def horizon(self) -> int:
        """The last round any scheduled event names (-1 when empty)."""
        rounds = (
            [c.round for c in self.crashes]
            + [s.round for s in self.stragglers]
            + [p.round for p in self.preemptions]
            + [a.round for a in self.arrivals]
        )
        return max(rounds, default=-1)

    @classmethod
    def seeded(
        cls,
        seed: int,
        jobs: list[str],
        rounds: int,
        *,
        crashes: int = 1,
        stragglers: int = 1,
        preemptions: int = 1,
        max_shard: int = 8,
    ) -> "FaultPlan":
        """Draw a reproducible plan from a seed.

        The same ``(seed, jobs, rounds, ...)`` always yields the same
        plan — the chaos tests replay scenarios through this.

        Args:
            seed: the plan's seed.
            jobs: job names eligible for faults.
            rounds: rounds to spread events over (events land in
                ``[0, rounds)``; preemptions in ``[1, rounds)`` so a
                preempted job always has at least one epoch done).
            crashes: crash events to draw.
            stragglers: straggler events to draw.
            preemptions: preemption events to draw (capped at one per
                (round, job) pair).
            max_shard: shard positions are drawn from ``[0, max_shard)``.

        Raises:
            ValueError: on an empty job list or non-positive rounds.
        """
        if not jobs:
            raise ValueError("FaultPlan.seeded needs at least one job")
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        rng = random.Random(seed)
        crash_events = tuple(
            CrashFault(
                round=rng.randrange(rounds),
                job=rng.choice(jobs),
                shard=rng.randrange(max_shard),
                lost_fraction=round(rng.uniform(0.1, 0.9), 3),
            )
            for _ in range(crashes)
        )
        straggler_events = tuple(
            StragglerFault(
                round=rng.randrange(rounds),
                job=rng.choice(jobs),
                shard=rng.randrange(max_shard),
                factor=round(rng.uniform(1.5, 4.0), 3),
            )
            for _ in range(stragglers)
        )
        preempt_events: dict[tuple[int, str], Preemption] = {}
        for _ in range(preemptions):
            rnd = rng.randrange(1, max(2, rounds))
            job = rng.choice(jobs)
            preempt_events[(rnd, job)] = Preemption(
                round=rnd, job=job, resume_after=rng.randrange(1, 3)
            )
        return cls(
            crashes=crash_events,
            stragglers=straggler_events,
            preemptions=tuple(preempt_events.values()),
            seed=seed,
        )
