"""The scenario runner: a fault plan executed over a live Session.

:class:`ScenarioRunner` holds the open scheduling loop the tier's
``start``/``step``/``finish`` surface exposes: before every round it
applies the plan's due events — admit bursty arrivals, resume
checkpointed jobs, preempt victims (checkpointing them into the
session's :class:`~repro.trainer.checkpoint.ModelStore`) — and wires
the plan's crashes/stragglers into the tier's fault-injector hook.

Everything a run perturbs is the modeled cost surface; batch content
and model updates are untouched, so each job's stitched loss
trajectory (pre-preemption segments + resumed tail) is **bit-identical**
to the same job run clean — :meth:`ScenarioRunner.baseline` computes
that clean reference, and :meth:`ScenarioResult.fingerprint` is the
replay-stable digest the chaos tests compare across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.slo import SLOReport
from ..metrics.tier import TierReport
from ..pipeline.session import Session
from ..pipeline.spec import JobSpec
from ..storage.tectonic import TectonicFS
from ..trainer.checkpoint import ModelStore
from .faults import FaultPlan

__all__ = ["ScenarioResult", "ScenarioRunner"]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    Attributes:
        slo: the run's service-level scoreboard.
        tier: the tier's round-by-round report.
        losses: per-job full loss trajectories, stitched across
            preemption segments — the bit-identity fingerprint.
        trace: the applied fault trace, in application order (plan
            events that never fired — e.g. a preemption scheduled past
            the run's end — are absent).
    """

    slo: SLOReport
    tier: TierReport
    losses: dict[str, list[float]] = field(default_factory=dict)
    trace: list[dict] = field(default_factory=list)

    def fingerprint(self) -> dict:
        """A replay-stable digest: same seed, same fingerprint, bit for
        bit — losses, SLO scoreboard, and fault trace."""
        return {
            "losses": {k: list(v) for k, v in self.losses.items()},
            "slo": self.slo.as_dict(),
            "trace": [dict(ev) for ev in self.trace],
        }


class ScenarioRunner:
    """Execute one :class:`~repro.sim.faults.FaultPlan` over a Session.

    Build with the scenario's jobs and plan, then :meth:`run`.  The
    runner owns a fresh :class:`~repro.trainer.checkpoint.ModelStore`
    (on its own simulated Tectonic namespace) unless one is passed in.
    """

    def __init__(
        self,
        jobs,
        plan: FaultPlan,
        *,
        width: int,
        names=None,
        policy: str = "stall_weighted",
        model_store: ModelStore | None = None,
        freshness_slo: float | None = None,
    ):
        """Configure the run.

        Args:
            jobs: the initially admitted job specs (``JobSpec`` or
                legacy flat configs), in admission order.
            plan: the misfortune schedule.
            width: the shared pool's width.
            names: report names overriding each spec's own.
            policy: the tier's worker-allocation policy.
            model_store: snapshot store for preempted jobs; a fresh
                in-simulator store is created when ``None``.
            freshness_slo: target p99 event-time → trained-on lag for
                streaming jobs (the tier's lag-boosted weights).

        Raises:
            ValueError: from Session validation (empty jobs, duplicate
                names) or if an arrival's name collides with an initial
                job's.
        """
        self.plan = plan
        self.width = width
        self.policy = policy
        self.model_store = model_store or ModelStore(TectonicFS())
        self.session = Session(
            list(jobs),
            width=width,
            policy=policy,
            names=names,
            model_store=self.model_store,
            freshness_slo=freshness_slo,
        )
        clash = {a.name for a in plan.arrivals} & set(self.session.names)
        if clash:
            raise ValueError(
                f"arrival names collide with initial jobs: {sorted(clash)}"
            )

    def run(self) -> ScenarioResult:
        """Execute the plan to completion.

        Returns:
            The run's :class:`ScenarioResult`.

        Raises:
            RuntimeError: if called twice (the underlying Session runs
                once).
        """
        session = self.session
        plan = self.plan
        tier = session.prepare()

        trace: list[dict] = []
        spec_injector = tier.fault_injector

        def injector(round_index, name, epoch):
            """Plan faults first, then any per-spec FaultSpec faults."""
            faults = plan.fleet_faults(round_index, name)
            if faults is None and spec_injector is not None:
                faults = spec_injector(round_index, name, epoch)
            if faults is not None:
                trace.append(
                    {
                        "round": round_index,
                        "job": name,
                        "event": "fleet_faults",
                        "crashed_shards": list(faults.crashed_shards),
                        "straggler_factors": dict(
                            sorted(faults.straggler_factors.items())
                        ),
                        "lost_fraction": faults.lost_fraction,
                    }
                )
            return faults

        tier.fault_injector = injector

        segments: dict[str, list[float]] = {}
        pending_resumes: list[tuple[int, str, JobSpec]] = []
        pending_arrivals = [
            (a.round, a.name, a.spec) for a in plan.arrivals
        ]
        pending_preempts = list(plan.preemptions)
        preempt_count = 0

        tier.start()
        while True:
            rnd = tier.round_index
            due_arrivals = sorted(
                (a for a in pending_arrivals if a[0] <= rnd),
                key=lambda a: a[1],
            )
            pending_arrivals = [
                a for a in pending_arrivals if a[0] > rnd
            ]
            for _, name, spec in due_arrivals:
                session.admit(JobSpec.coerce(spec), name)
                trace.append(
                    {"round": rnd, "job": name, "event": "arrival"}
                )
            due_resumes = sorted(
                (r for r in pending_resumes if r[0] <= rnd),
                key=lambda r: r[1],
            )
            pending_resumes = [
                r for r in pending_resumes if r[0] > rnd
            ]
            for _, name, spec in due_resumes:
                session.admit(spec, name)
                trace.append(
                    {
                        "round": rnd,
                        "job": name,
                        "event": "resume",
                        "start_epoch": spec.checkpoint.start_epoch,
                    }
                )
            # Each preemption event fires at most once: if its round
            # arrives while the victim is descheduled (or after a
            # resume collapsed the idle gap back to this round), the
            # event is spent, not retried — otherwise a preempt whose
            # resume lands on the same round index would loop forever.
            due_preempts = sorted(
                (p for p in pending_preempts if p.round <= rnd),
                key=lambda p: (p.round, p.job),
            )
            pending_preempts = [
                p for p in pending_preempts if p.round > rnd
            ]
            for p in due_preempts:
                try:
                    runtime = session.runtime(p.job)
                except KeyError:
                    continue  # arrived later, or currently descheduled
                done = runtime.start_epoch + tier.epochs_completed(p.job)
                if done >= runtime.spec.train.train_epochs:
                    continue  # already finished; nothing to preempt
                losses = list(runtime.trainer.report.losses)
                resume_spec = session.preempt(p.job)
                segments.setdefault(p.job, []).extend(losses)
                pending_resumes.append(
                    (rnd + p.resume_after, p.job, resume_spec)
                )
                preempt_count += 1
                trace.append(
                    {
                        "round": rnd,
                        "job": p.job,
                        "event": "preempt",
                        "epochs_done": resume_spec.checkpoint.start_epoch,
                        "resume_round": rnd + p.resume_after,
                    }
                )
            # Land every micro-partition the modeled clock has made due
            # before scheduling: a round only ever trains over data
            # that existed when it started.
            session.pump_streams()
            if tier.step():
                continue
            if tier.epochs_remaining:
                # Jobs are gated on data, not finished: jump the clock
                # to the next landing tick and go around again.
                nxt = session.next_stream_event()
                if nxt is not None:
                    tier.advance_clock(nxt)
                    continue
            if pending_resumes or pending_arrivals:
                # Nothing left to schedule but events still owed: the
                # idle gap collapses — everything pending is due now.
                pending_resumes = [
                    (rnd, n, s) for _, n, s in pending_resumes
                ]
                pending_arrivals = [
                    (rnd, n, s) for _, n, s in pending_arrivals
                ]
                continue
            break
        report = tier.finish()

        losses: dict[str, list[float]] = {}
        for name in report.jobs:
            full = list(segments.get(name, []))
            try:
                full.extend(session.runtime(name).trainer.report.losses)
            except KeyError:
                pass  # preempted with a full plan and never re-run
            losses[name] = full
        return ScenarioResult(
            slo=SLOReport.from_run(
                report, tier.job_fleets, preemptions=preempt_count
            ),
            tier=report,
            losses=losses,
            trace=trace,
        )

    def baseline(self) -> dict[str, list[float]]:
        """Per-job loss trajectories with *no* faults, preemptions, or
        staggered arrivals — every job (initial and arriving) admitted
        up front in one clean session.

        This is the reference the bit-identity acceptance criterion
        compares against: a scenario run's stitched losses must equal
        these exactly.
        """
        specs = [
            s.with_(checkpoint=None, faults=None)
            for s in self.session.specs
        ]
        names = list(self.session.names)
        for a in self.plan.arrivals:
            spec = JobSpec.coerce(a.spec)
            specs.append(spec.with_(checkpoint=None, faults=None))
            names.append(a.name)
        clean = Session(
            specs, width=self.width, policy=self.policy, names=names
        )
        if any(s.stream is not None for s in specs):
            # Land-everything-first: the strongest reference for a
            # streamed scenario — the live loop's losses must match a
            # run whose whole stream was on disk before round one.
            clean.prepare()
            clean.land_all_streams()
            clean.tier.run()
            result = clean.collect()
        else:
            result = clean.run()
        return {
            job.name: list(job.training.losses) for job in result.jobs
        }
