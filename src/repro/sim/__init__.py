"""Deterministic fault-injection scenario simulator (chaos, replayable).

The production reality the paper's tier lives in — reader workers
crash, shards straggle, jobs preempt and resume, new jobs burst in —
reproduced as *seeded, bit-replayable* scenarios over the real
:class:`~repro.pipeline.session.Session` /
:class:`~repro.reader.tier_scheduler.SharedReaderTier` stack:

* :mod:`repro.sim.faults` — :class:`FaultPlan`: the misfortune
  schedule (crashes, stragglers, preemptions, arrivals), hand-built or
  drawn from a seed.
* :mod:`repro.sim.runner` — :class:`ScenarioRunner`: executes a plan
  over a live session, checkpointing preempted jobs into a
  :class:`~repro.trainer.checkpoint.ModelStore` and resuming them
  bit-identically.
* :mod:`repro.sim.scenarios` — the named catalog behind the
  ``repro simulate`` CLI subcommand.

The load-bearing invariant: faults perturb only the modeled cost
surface.  Batch content and model updates never depend on scheduling,
so every job's stitched loss trajectory equals its clean run bit for
bit, and replaying a seed reproduces the identical
:class:`~repro.metrics.slo.SLOReport` and fault trace.
"""

from .faults import Arrival, CrashFault, FaultPlan, Preemption, StragglerFault
from .runner import ScenarioResult, ScenarioRunner
from .scenarios import SCENARIOS, Scenario, build_scenario, scenario_names

__all__ = [
    "Arrival",
    "CrashFault",
    "FaultPlan",
    "Preemption",
    "StragglerFault",
    "ScenarioResult",
    "ScenarioRunner",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "scenario_names",
]
