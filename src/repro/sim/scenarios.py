"""The named scenario catalog behind ``repro simulate``.

Each scenario is a self-contained, seeded chaos experiment: a small
fleet of RM workload jobs (from :mod:`repro.datagen.workloads`), a
:class:`~repro.sim.faults.FaultPlan`, and a pool width.  The catalog
names the shapes the paper's production tier actually weathers:

* ``crash-resume`` — one worker crash plus a job preemption that
  checkpoints, sits out a round, and resumes (the CI chaos-smoke
  scenario).
* ``dedup-crash-resume`` — the same fault shape with every job
  streaming session-deduplicated IKJT batches (``ReaderSpec.dedup``),
  proving the dedup hot path rides out crashes and preemptions
  bit-identically.
* ``stragglers`` — slow shards dilating rounds without changing
  batches.
* ``wide-crash-resume`` — the crash/straggler/preempt shape on a
  width-64 pool with every job on the async coroutine executor (the
  only executor that makes a 64-wide faulted tier tier-1-fast), one
  job streaming dedup batches over the shm transport.
* ``stream-crash-resume`` — two live-loop streaming jobs whose
  micro-partitions land on the modeled clock mid-run, weathering a
  crash, a straggler, and a preempt/resume; losses must match the
  land-everything-first baseline bit for bit (the CI stream-smoke
  scenario).
* ``churn`` — crashes, stragglers, a preemption, *and* a bursty
  mid-run arrival at once (the acceptance-criteria scenario).
* ``burst`` — a quiet tier hit by a wave of late arrivals.

Every scenario is deterministic given its seed: replaying it must
reproduce the identical fingerprint, and its stitched per-job losses
must equal the clean baseline bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datagen.workloads import rm1, rm2, rm3
from ..pipeline.config import RecDToggles
from ..pipeline.spec import (
    DataSpec,
    JobSpec,
    ReaderSpec,
    RetentionSpec,
    StreamSpec,
    TrainSpec,
)
from .faults import Arrival, CrashFault, FaultPlan, Preemption, StragglerFault
from .runner import ScenarioRunner

__all__ = ["Scenario", "SCENARIOS", "build_scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """One named, fully specified chaos experiment.

    Attributes:
        name: catalog name (the CLI's ``--scenario`` argument).
        description: one-line human summary.
        jobs: ``(name, spec)`` pairs admitted up front.
        plan: the misfortune schedule.
        width: the shared pool's width.
        freshness_slo: target p99 event-time → trained-on lag for
            streaming jobs (``None`` = no lag-boosted weights).
    """

    name: str
    description: str
    jobs: tuple[tuple[str, JobSpec], ...]
    plan: FaultPlan
    width: int = 6
    freshness_slo: float | None = None

    def runner(self) -> ScenarioRunner:
        """A fresh :class:`~repro.sim.runner.ScenarioRunner` for this
        scenario (fresh model store, fresh session)."""
        return ScenarioRunner(
            [spec for _, spec in self.jobs],
            self.plan,
            width=self.width,
            names=[name for name, _ in self.jobs],
            freshness_slo=self.freshness_slo,
        )


def _job(
    workload,
    *,
    seed: int,
    epochs: int = 4,
    sessions: int = 60,
    recd: bool = False,
    dedup: bool = False,
    executor: str = "inprocess",
    transport: str = "copy",
    batch_size: int = 32,
    train_batches: int | None = 2,
    partitions: int = 1,
    stream: StreamSpec | None = None,
    retention: RetentionSpec | None = None,
) -> JobSpec:
    """A small, fast job spec for simulator scenarios.

    Simulator jobs need a deterministic executor — fault injection
    requires one — and tiny tables, so whole scenario sweeps stay
    test-tier fast.  The default is the serial in-process executor;
    wide scenarios pass ``executor="async"`` (the coroutine scheduler,
    equally deterministic but cheap at width 64) and lift the per-epoch
    batch cap (``train_batches=None``) so a wide pool actually has a
    shard per worker.  ``dedup=True`` makes the job's fleet ship
    session-deduplicated IKJT batches (the streaming hot path) without
    touching batch size or layout; ``transport`` picks the batch
    handoff model (``copy`` or the zero-copy ``shm``).
    """
    return JobSpec(
        data=DataSpec(
            workload=workload,
            toggles=RecDToggles.full() if recd else RecDToggles.baseline(),
            num_sessions=sessions,
            num_partitions=partitions,
            seed=seed,
        ),
        reader=ReaderSpec(
            num_readers=2,
            executor=executor,
            dedup=dedup,
            transport=transport,
        ),
        train=TrainSpec(
            train_epochs=epochs,
            train_batches=train_batches,
            batch_size=batch_size,
        ),
        stream=stream,
        retention=retention,
    )


def _crash_resume(seed: int, scale: float) -> Scenario:
    """One crash, one straggler, one preempt/resume — the smoke shape."""
    jobs = (
        ("alpha", _job(rm1(scale=scale), seed=seed + 1, epochs=4)),
        ("beta", _job(rm2(scale=scale), seed=seed + 2, epochs=4, recd=True)),
    )
    plan = FaultPlan(
        crashes=(CrashFault(round=1, job="alpha", shard=0),),
        stragglers=(
            StragglerFault(round=2, job="beta", shard=1, factor=3.0),
        ),
        preemptions=(Preemption(round=2, job="alpha", resume_after=1),),
        seed=seed,
    )
    return Scenario(
        name="crash-resume",
        description=(
            "worker crash + straggler + one preemption that checkpoints "
            "and resumes bit-identically"
        ),
        jobs=jobs,
        plan=plan,
    )


def _dedup_crash_resume(seed: int, scale: float) -> Scenario:
    """The crash-resume shape with dedup streaming on every job.

    Both jobs ship session-deduplicated IKJT batches over the prefetch
    queues while a worker crashes, a shard straggles, and one job is
    preempted/checkpointed/resumed — the acceptance check that the
    dedup hot path survives the full fault surface bit-identically.
    """
    jobs = (
        (
            "alpha",
            _job(rm1(scale=scale), seed=seed + 1, epochs=4, dedup=True),
        ),
        (
            "beta",
            _job(rm2(scale=scale), seed=seed + 2, epochs=4, dedup=True),
        ),
    )
    plan = FaultPlan(
        crashes=(CrashFault(round=1, job="alpha", shard=0),),
        stragglers=(
            StragglerFault(round=2, job="beta", shard=1, factor=3.0),
        ),
        preemptions=(Preemption(round=2, job="alpha", resume_after=1),),
        seed=seed,
    )
    return Scenario(
        name="dedup-crash-resume",
        description=(
            "crash + straggler + preempt/resume with session-dedup "
            "IKJT streaming on every job"
        ),
        jobs=jobs,
        plan=plan,
    )


def _wide_crash_resume(seed: int, scale: float) -> Scenario:
    """The crash-resume shape on a width-64 pool, async executor.

    Both jobs lift the per-epoch batch cap and shrink the batch size so
    a 64-wide pool really fans out (an epoch never plans more shards
    than batches); the async coroutine executor keeps the whole faulted
    run deterministic and tier-1-fast at that width.  ``beta`` also
    streams dedup batches over the zero-copy shm transport — the
    compounding configuration — while a worker crashes, a shard
    straggles, and ``alpha`` is preempted/checkpointed/resumed.
    """
    wide = dict(
        epochs=3,
        sessions=48,
        executor="async",
        batch_size=12,
        train_batches=None,
    )
    jobs = (
        ("alpha", _job(rm1(scale=scale), seed=seed + 1, **wide)),
        (
            "beta",
            _job(
                rm2(scale=scale),
                seed=seed + 2,
                dedup=True,
                transport="shm",
                **wide,
            ),
        ),
    )
    plan = FaultPlan(
        crashes=(CrashFault(round=1, job="alpha", shard=7),),
        stragglers=(
            StragglerFault(round=2, job="beta", shard=13, factor=3.0),
        ),
        preemptions=(Preemption(round=2, job="alpha", resume_after=1),),
        seed=seed,
    )
    return Scenario(
        name="wide-crash-resume",
        description=(
            "width-64 async tier: crash + straggler + preempt/resume "
            "with dedup+shm streaming on one job, bit-identical to the "
            "uninterrupted run"
        ),
        jobs=jobs,
        plan=plan,
        width=64,
    )


def _stream_crash_resume(seed: int, scale: float) -> Scenario:
    """Live landing under fire: two streaming jobs, crash + preempt.

    Both jobs train on micro-partitions that land on the modeled clock
    *while* the tier schedules them — ``alpha`` over a rolling 2-tick
    retention window, ``beta`` over the growing full history — and the
    plan crashes a worker, straggles a shard, and preempts/resumes
    ``alpha`` mid-stream.  The acceptance check: the stitched losses
    must equal a run whose entire stream was landed before round one,
    bit for bit, and the replayed fingerprint (including every
    freshness lag) must be identical.
    """
    jobs = (
        (
            "alpha",
            _job(
                rm1(scale=scale),
                seed=seed + 1,
                epochs=5,
                partitions=4,
                stream=StreamSpec(interval_seconds=60.0),
                retention=RetentionSpec(window=2),
            ),
        ),
        (
            "beta",
            _job(
                rm2(scale=scale),
                seed=seed + 2,
                epochs=4,
                partitions=3,
                stream=StreamSpec(
                    interval_seconds=45.0, land_latency_seconds=10.0
                ),
            ),
        ),
    )
    plan = FaultPlan(
        crashes=(CrashFault(round=1, job="alpha", shard=0),),
        stragglers=(
            StragglerFault(round=2, job="beta", shard=1, factor=3.0),
        ),
        preemptions=(Preemption(round=2, job="alpha", resume_after=1),),
        seed=seed,
    )
    return Scenario(
        name="stream-crash-resume",
        description=(
            "micro-partitions land on the live clock while a crash, a "
            "straggler, and a preempt/resume hit the tier; losses match "
            "the land-everything-first baseline bit for bit"
        ),
        jobs=jobs,
        plan=plan,
        freshness_slo=120.0,
    )


def _stragglers(seed: int, scale: float) -> Scenario:
    """Slow shards only: wall dilates, batches never change."""
    jobs = (
        ("alpha", _job(rm1(scale=scale), seed=seed + 1)),
        ("beta", _job(rm2(scale=scale), seed=seed + 2)),
        ("gamma", _job(rm3(scale=scale), seed=seed + 3, recd=True)),
    )
    plan = FaultPlan(
        stragglers=(
            StragglerFault(round=0, job="alpha", shard=0, factor=2.0),
            StragglerFault(round=1, job="beta", shard=1, factor=4.0),
            StragglerFault(round=2, job="gamma", shard=0, factor=2.5),
        ),
        seed=seed,
    )
    return Scenario(
        name="stragglers",
        description="straggling shards dilate rounds; losses untouched",
        jobs=jobs,
        plan=plan,
    )


def _churn(seed: int, scale: float) -> Scenario:
    """Everything at once — the acceptance-criteria scenario."""
    jobs = (
        ("alpha", _job(rm1(scale=scale), seed=seed + 1, epochs=5)),
        ("beta", _job(rm2(scale=scale), seed=seed + 2, epochs=4, recd=True)),
    )
    plan = FaultPlan(
        crashes=(
            CrashFault(round=0, job="beta", shard=1, lost_fraction=0.7),
            CrashFault(round=3, job="alpha", shard=0),
        ),
        stragglers=(
            StragglerFault(round=1, job="alpha", shard=2, factor=2.5),
        ),
        preemptions=(Preemption(round=2, job="alpha", resume_after=2),),
        arrivals=(
            Arrival(
                round=1,
                name="late",
                spec=_job(rm3(scale=scale), seed=seed + 9, epochs=3),
            ),
        ),
        seed=seed,
    )
    return Scenario(
        name="churn",
        description=(
            "crashes + straggler + preempt/resume + a bursty mid-run "
            "arrival, all in one run"
        ),
        jobs=jobs,
        plan=plan,
    )


def _burst(seed: int, scale: float) -> Scenario:
    """A quiet tier hit by a wave of arrivals."""
    jobs = (("alpha", _job(rm1(scale=scale), seed=seed + 1, epochs=6)),)
    plan = FaultPlan(
        arrivals=(
            Arrival(
                round=1,
                name="burst0",
                spec=_job(rm2(scale=scale), seed=seed + 4, epochs=3),
            ),
            Arrival(
                round=1,
                name="burst1",
                spec=_job(rm3(scale=scale), seed=seed + 5, epochs=3),
            ),
            Arrival(
                round=2,
                name="burst2",
                spec=_job(
                    rm2(scale=scale), seed=seed + 6, epochs=2, recd=True
                ),
            ),
        ),
        seed=seed,
    )
    return Scenario(
        name="burst",
        description="bursty arrivals pile onto a quiet tier mid-run",
        jobs=jobs,
        plan=plan,
    )


#: catalog: scenario name -> factory(seed, scale)
SCENARIOS = {
    "crash-resume": _crash_resume,
    "dedup-crash-resume": _dedup_crash_resume,
    "wide-crash-resume": _wide_crash_resume,
    "stream-crash-resume": _stream_crash_resume,
    "stragglers": _stragglers,
    "churn": _churn,
    "burst": _burst,
}


def scenario_names() -> list[str]:
    """The catalog's scenario names, sorted."""
    return sorted(SCENARIOS)


def build_scenario(
    name: str, *, seed: int = 0, scale: float = 0.25
) -> Scenario:
    """Instantiate a named scenario from the catalog.

    Args:
        name: a name from :func:`scenario_names`.
        seed: the scenario's seed (jobs and plan both derive from it).
        scale: workload scale factor (smaller = faster).

    Raises:
        KeyError: for an unknown scenario name.
    """
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return SCENARIOS[name](seed, scale)
