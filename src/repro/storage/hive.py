"""Hive-style partitioned tables over Tectonic (§2.1).

Training samples land in time-partitioned tables; each partition is a set
of DWRF files.  RecD's clustered tables (O2) contain *the same rows* as
the baseline table, reordered — the table layer only differs in what row
order the ETL job handed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datagen.schema import DatasetSchema
from ..datagen.session import Sample
from .compression import Codec
from .dwrf import DwrfReader, DwrfWriter
from .encoding import IntEncoding
from .tectonic import TectonicFS

__all__ = ["HiveTable", "PartitionInfo"]


@dataclass
class PartitionInfo:
    """Metadata for one landed partition."""

    name: str
    files: list[str] = field(default_factory=list)
    num_rows: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Raw over compressed bytes (1.0 for an empty partition)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


class HiveTable:
    """A partitioned training table stored as DWRF files in Tectonic."""

    def __init__(
        self,
        name: str,
        schema: DatasetSchema,
        fs: TectonicFS,
        rows_per_file: int = 8192,
        stripe_rows: int = 1024,
        codec: Codec = Codec.ZLIB,
        int_encoding: IntEncoding = IntEncoding.VARINT,
    ):
        self.name = name
        self.schema = schema
        self.fs = fs
        self.rows_per_file = rows_per_file
        self.stripe_rows = stripe_rows
        self.codec = codec
        self.int_encoding = int_encoding
        self.partitions: dict[str, PartitionInfo] = {}
        #: names of partitions aged out via :meth:`drop_partition`
        self.dropped: list[str] = []

    def land_partition(
        self, partition: str, samples: list[Sample]
    ) -> PartitionInfo:
        """Write one partition's rows, in the order given, as DWRF files."""
        if partition in self.partitions:
            raise ValueError(f"partition {partition} already landed")
        writer = DwrfWriter(
            self.schema, self.stripe_rows, self.codec, self.int_encoding
        )
        info = PartitionInfo(name=partition)
        for file_idx, start in enumerate(
            range(0, len(samples), self.rows_per_file)
        ):
            chunk = samples[start : start + self.rows_per_file]
            blob, stats = writer.write(chunk)
            path = f"{self.name}/{partition}/part-{file_idx:05d}.dwrf"
            self.fs.write(path, blob)
            info.files.append(path)
            info.num_rows += stats.num_rows
            info.raw_bytes += stats.raw_bytes
            info.compressed_bytes += stats.compressed_bytes
        self.partitions[partition] = info
        return info

    def drop_partition(self, partition: str) -> PartitionInfo:
        """Retention: delete an aged-out partition's files (§2.1).

        Returns the dropped partition's metadata (useful for retention
        bookkeeping); raises ``KeyError`` if the partition is not live.
        """
        info = self.partitions.pop(partition, None)
        if info is None:
            raise KeyError(
                f"partition {partition!r} is not live in table "
                f"{self.name!r} (never landed, or already dropped)"
            )
        self.dropped.append(partition)
        for path in info.files:
            self.fs.delete(path)
        return info

    @property
    def live_partitions(self) -> list[str]:
        """Names of the currently live partitions, in landing order."""
        return list(self.partitions)

    def open_readers(self, partition: str) -> list[DwrfReader]:
        """One reader per file of the partition (how a reader tier scans)."""
        if partition not in self.partitions:
            raise KeyError(
                f"partition {partition!r} is not live in table "
                f"{self.name!r} (never landed, or dropped by retention); "
                f"live: {self.live_partitions}"
            )
        info = self.partitions[partition]
        return [
            DwrfReader(self.fs.read(path), self.schema) for path in info.files
        ]

    def read_partition(self, partition: str) -> list[Sample]:
        """Every row of the partition, in landed order (serial scan)."""
        out: list[Sample] = []
        for reader in self.open_readers(partition):
            out.extend(reader.read_all())
        return out

    def partition_stored_bytes(self, partition: str) -> int:
        """Bytes the partition's files occupy on the filesystem."""
        info = self.partitions[partition]
        return sum(self.fs.size(p) for p in info.files)
