"""Hive-style partitioned tables over Tectonic (§2.1).

Training samples land in time-partitioned tables; each partition is a set
of DWRF files.  RecD's clustered tables (O2) contain *the same rows* as
the baseline table, reordered — the table layer only differs in what row
order the ETL job handed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datagen.schema import DatasetSchema
from ..datagen.session import Sample
from .compression import Codec
from .dwrf import DwrfReader, DwrfWriter
from .encoding import IntEncoding
from .tectonic import TectonicFS

__all__ = ["HiveTable", "PartitionInfo"]


@dataclass
class PartitionInfo:
    """Metadata for one landed partition."""

    name: str
    files: list[str] = field(default_factory=list)
    num_rows: int = 0
    raw_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def compression_ratio(self) -> float:
        """Raw over compressed bytes (1.0 for an empty partition)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


class HiveTable:
    """A partitioned training table stored as DWRF files in Tectonic."""

    def __init__(
        self,
        name: str,
        schema: DatasetSchema,
        fs: TectonicFS,
        rows_per_file: int = 8192,
        stripe_rows: int = 1024,
        codec: Codec = Codec.ZLIB,
        int_encoding: IntEncoding = IntEncoding.VARINT,
    ):
        self.name = name
        self.schema = schema
        self.fs = fs
        self.rows_per_file = rows_per_file
        self.stripe_rows = stripe_rows
        self.codec = codec
        self.int_encoding = int_encoding
        self.partitions: dict[str, PartitionInfo] = {}
        #: names of partitions aged out via :meth:`drop_partition`
        self.dropped: list[str] = []
        #: compressed bytes ever written, across drops and compactions
        self.bytes_ever_landed = 0
        #: number of small files merged away by :meth:`compact_partition`
        self.files_compacted = 0

    def land_partition(
        self, partition: str, samples: list[Sample]
    ) -> PartitionInfo:
        """Write one partition's rows, in the order given, as DWRF files."""
        if partition in self.partitions:
            raise ValueError(f"partition {partition} already landed")
        writer = DwrfWriter(
            self.schema, self.stripe_rows, self.codec, self.int_encoding
        )
        info = PartitionInfo(name=partition)
        for file_idx, start in enumerate(
            range(0, len(samples), self.rows_per_file)
        ):
            chunk = samples[start : start + self.rows_per_file]
            blob, stats = writer.write(chunk)
            path = f"{self.name}/{partition}/part-{file_idx:05d}.dwrf"
            self.fs.write(path, blob)
            info.files.append(path)
            info.num_rows += stats.num_rows
            info.raw_bytes += stats.raw_bytes
            info.compressed_bytes += stats.compressed_bytes
        self.partitions[partition] = info
        self.bytes_ever_landed += info.compressed_bytes
        return info

    def drop_partition(self, partition: str) -> int:
        """Retention: delete an aged-out partition's files (§2.1).

        Returns the freed byte count (the partition's compressed bytes,
        for retention-aware storage accounting); raises ``KeyError`` if
        the partition is not live.
        """
        info = self.partitions.pop(partition, None)
        if info is None:
            raise KeyError(
                f"partition {partition!r} is not live in table "
                f"{self.name!r} (never landed, or already dropped)"
            )
        self.dropped.append(partition)
        for path in info.files:
            self.fs.delete(path)
        return info.compressed_bytes

    def compact_partition(self, partition: str) -> int:
        """Merge a partition's small files into ``rows_per_file`` files.

        Streaming landers write micro-partitions as many small files;
        as the retention window slides past, rewriting them at the
        table's full file size keeps the file count bounded.  Row order
        is preserved exactly, so readers see an identical row stream
        (losses are untouched) — only the file layout and compressed
        size change.  Returns the number of files merged away (0 when
        the partition is already compact); raises ``KeyError`` if the
        partition is not live.
        """
        if partition not in self.partitions:
            raise KeyError(
                f"partition {partition!r} is not live in table "
                f"{self.name!r} (never landed, or dropped by retention); "
                f"live: {self.live_partitions}"
            )
        old = self.partitions[partition]
        want = max(1, -(-old.num_rows // self.rows_per_file))
        if len(old.files) <= want:
            return 0
        rows = self.read_partition(partition)
        order = list(self.partitions)
        for path in old.files:
            self.fs.delete(path)
        del self.partitions[partition]
        new = self.land_partition(partition, rows)
        # land_partition appends at the end of the dict; restore the
        # original landing order so live_partitions stays chronological.
        self.partitions = {name: self.partitions[name] for name in order}
        merged = len(old.files) - len(new.files)
        self.files_compacted += merged
        return merged

    @property
    def live_partitions(self) -> list[str]:
        """Names of the currently live partitions, in landing order."""
        return list(self.partitions)

    @property
    def bytes_live(self) -> int:
        """Compressed bytes currently live across every partition."""
        return sum(p.compressed_bytes for p in self.partitions.values())

    def open_readers(self, partition: str) -> list[DwrfReader]:
        """One reader per file of the partition (how a reader tier scans)."""
        if partition not in self.partitions:
            raise KeyError(
                f"partition {partition!r} is not live in table "
                f"{self.name!r} (never landed, or dropped by retention); "
                f"live: {self.live_partitions}"
            )
        info = self.partitions[partition]
        return [
            DwrfReader(self.fs.read(path), self.schema) for path in info.files
        ]

    def read_partition(self, partition: str) -> list[Sample]:
        """Every row of the partition, in landed order (serial scan)."""
        out: list[Sample] = []
        for reader in self.open_readers(partition):
            out.extend(reader.read_all())
        return out

    def partition_stored_bytes(self, partition: str) -> int:
        """Bytes the partition's files occupy on the filesystem."""
        info = self.partitions[partition]
        return sum(self.fs.size(p) for p in info.files)
