"""Black-box stream compression for file stripes.

Production DWRF compresses each stripe's streams with zstd (§4.1); this
reproduction uses stdlib zlib, which shares the windowed-LZ behaviour O2
exploits (adjacent duplicate rows compress away).  Each compressed blob
is framed with the codec id and raw length so readers self-describe.
"""

from __future__ import annotations

import enum
import struct
import zlib

__all__ = ["Codec", "compress", "decompress"]

_FRAME = struct.Struct("<BQ")  # codec, raw length


class Codec(enum.Enum):
    """The stream codecs a frame may declare."""

    NONE = 0
    ZLIB = 1


def compress(data: bytes, codec: Codec = Codec.ZLIB, level: int = 6) -> bytes:
    """Frame + compress ``data``; NONE framing still records raw length."""
    if codec is Codec.NONE:
        body = data
    elif codec is Codec.ZLIB:
        body = zlib.compress(data, level)
    else:
        raise ValueError(f"unknown codec {codec}")
    return _FRAME.pack(codec.value, len(data)) + body


def decompress(blob: bytes) -> bytes:
    """Invert :func:`compress`, validating the frame's recorded length."""
    codec_id, raw_len = _FRAME.unpack_from(blob, 0)
    body = blob[_FRAME.size :]
    codec = Codec(codec_id)
    if codec is Codec.NONE:
        out = body
    elif codec is Codec.ZLIB:
        out = zlib.decompress(body)
    else:  # pragma: no cover - Codec() raises first
        raise ValueError(f"unknown codec {codec}")
    if len(out) != raw_len:
        raise ValueError(
            f"corrupt frame: raw length {len(out)} != recorded {raw_len}"
        )
    return out
