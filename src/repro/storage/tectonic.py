"""Tectonic: an instrumented (in-memory) distributed filesystem stand-in.

The paper stores DWRF files in Tectonic, Meta's exabyte-scale filesystem.
For the reproduction, what matters is the *accounting*: storage bytes
(Fig 7's compression-driven savings), read bytes and read IOPS (Table 3,
Fig 10's fill costs).  This FS tracks all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TectonicFS", "FSStats"]


@dataclass
class FSStats:
    """Byte and operation counters for one filesystem instance."""

    bytes_written: int = 0
    bytes_read: int = 0
    read_ops: int = 0
    write_ops: int = 0


class TectonicFS:
    """A flat path -> bytes store with byte/op counters."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self.stats = FSStats()

    def write(self, path: str, data: bytes) -> None:
        """Persist one immutable file; counts the written bytes."""
        if path in self._files:
            raise FileExistsError(f"{path} already exists (files are immutable)")
        self._files[path] = data
        self.stats.bytes_written += len(data)
        self.stats.write_ops += 1

    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read a byte range (the whole file by default); counts one
        read op plus the bytes returned — Table 3's ingest accounting."""
        try:
            data = self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        if offset < 0 or offset > len(data):
            raise ValueError(f"offset {offset} out of range for {path}")
        chunk = data[offset:] if length is None else data[offset : offset + length]
        self.stats.bytes_read += len(chunk)
        self.stats.read_ops += 1
        return chunk

    def size(self, path: str) -> int:
        """Stored size of one file in bytes."""
        try:
            return len(self._files[path])
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        """Whether a file is currently stored at ``path``."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Partition retention: old partitions are constantly deleted (§2.1)."""
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def listdir(self, prefix: str) -> list[str]:
        """Every stored path under ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def total_stored_bytes(self) -> int:
        """Bytes currently stored (deleted files no longer count)."""
        return sum(len(d) for d in self._files.values())
