"""DWRF-like columnar file format (§2.1, Dataset Schema and Storage).

Files are composed of *stripes*, each holding a small run of rows stored
as columnar streams: feature columns are flattened (one column per
feature key) and each column's values/lengths are encoded and compressed
into independent streams.  The layout reproduces what matters to RecD:

* stripe-local black-box compression — O2's clustering gains appear as
  higher stripe compression ratios because a session's duplicate rows sit
  in the same stripe;
* per-stripe reads — readers fetch and decode stripes, so smaller files
  directly reduce fill bytes and IOPS (Table 3).

Binary layout (little endian)::

    file   := MAGIC u16:version u32:num_stripes stripe*
    stripe := u32:byte_len u32:num_rows u16:num_streams stream*
    stream := u16:name_len name u8:encoding u32:count u64:blob_len blob

where ``blob`` is a framed, compressed byte string
(:mod:`repro.storage.compression`) of the encoded stream.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..datagen.schema import DatasetSchema
from ..datagen.session import Sample
from .compression import Codec, compress, decompress
from .encoding import IntEncoding, decode_int64, encode_int64

__all__ = ["DwrfWriter", "DwrfReader", "StripeStats", "FileStats"]

MAGIC = b"DWRF"
_FILE_HEADER = struct.Struct("<4sHI")
_STRIPE_HEADER = struct.Struct("<IIH")
_STREAM_HEADER = struct.Struct("<H")
_STREAM_META = struct.Struct("<BIQ")

# Reserved stream names for row metadata columns.
_SESSION = "__session_id"
_TIMESTAMP = "__timestamp"
_LABEL = "__label"
_SAMPLE_ID = "__sample_id"


@dataclass
class StripeStats:
    """Byte and row accounting for one written stripe."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    num_rows: int = 0


@dataclass
class FileStats:
    """Aggregate accounting for one written file."""

    stripes: list[StripeStats] = field(default_factory=list)

    @property
    def raw_bytes(self) -> int:
        """Uncompressed stream bytes across every stripe."""
        return sum(s.raw_bytes for s in self.stripes)

    @property
    def compressed_bytes(self) -> int:
        """Compressed stream bytes across every stripe."""
        return sum(s.compressed_bytes for s in self.stripes)

    @property
    def num_rows(self) -> int:
        """Rows written across every stripe."""
        return sum(s.num_rows for s in self.stripes)

    @property
    def compression_ratio(self) -> float:
        """Raw over compressed bytes (1.0 for an empty file)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


def _encode_stream(
    name: str, payload: bytes, encoding: IntEncoding, count: int, codec: Codec
) -> tuple[bytes, int, int]:
    blob = compress(payload, codec)
    encoded_name = name.encode()
    head = _STREAM_HEADER.pack(len(encoded_name)) + encoded_name
    meta = _STREAM_META.pack(encoding.value, count, len(blob))
    return head + meta + blob, len(payload), len(blob)


class DwrfWriter:
    """Serializes sample rows into a DWRF-like byte blob."""

    def __init__(
        self,
        schema: DatasetSchema,
        stripe_rows: int = 1024,
        codec: Codec = Codec.ZLIB,
        int_encoding: IntEncoding = IntEncoding.VARINT,
    ):
        if stripe_rows <= 0:
            raise ValueError("stripe_rows must be positive")
        self.schema = schema
        self.stripe_rows = stripe_rows
        self.codec = codec
        self.int_encoding = int_encoding

    def write(self, samples: list[Sample]) -> tuple[bytes, FileStats]:
        """Serialize the rows into one file blob, ``stripe_rows`` rows
        per stripe; returns the blob and its per-stripe accounting."""
        stats = FileStats()
        stripes: list[bytes] = []
        for start in range(0, len(samples), self.stripe_rows):
            chunk = samples[start : start + self.stripe_rows]
            stripe, sstat = self._write_stripe(chunk)
            stripes.append(stripe)
            stats.stripes.append(sstat)
        header = _FILE_HEADER.pack(MAGIC, 1, len(stripes))
        return header + b"".join(stripes), stats

    def _write_stripe(self, rows: list[Sample]) -> tuple[bytes, StripeStats]:
        streams: list[bytes] = []
        sstat = StripeStats(num_rows=len(rows))

        def add_int(name: str, values: np.ndarray) -> None:
            payload = encode_int64(values, self.int_encoding)
            data, raw, comp = _encode_stream(
                name, payload, self.int_encoding, values.size, self.codec
            )
            streams.append(data)
            sstat.raw_bytes += raw
            sstat.compressed_bytes += comp

        def add_float(name: str, values: np.ndarray) -> None:
            payload = np.ascontiguousarray(values, dtype=np.float64).tobytes()
            data, raw, comp = _encode_stream(
                name, payload, IntEncoding.PLAIN, values.size, self.codec
            )
            streams.append(data)
            sstat.raw_bytes += raw
            sstat.compressed_bytes += comp

        add_int(_SESSION, np.array([r.session_id for r in rows], dtype=np.int64))
        add_float(_TIMESTAMP, np.array([r.timestamp for r in rows]))
        add_int(_LABEL, np.array([r.label for r in rows], dtype=np.int64))
        add_int(_SAMPLE_ID, np.array([r.sample_id for r in rows], dtype=np.int64))
        for spec in self.schema.sparse:
            lists = [
                np.asarray(r.sparse.get(spec.name, ()), dtype=np.int64)
                for r in rows
            ]
            lengths = np.array([a.size for a in lists], dtype=np.int64)
            values = (
                np.concatenate(lists)
                if lists and lengths.sum() > 0
                else np.empty(0, dtype=np.int64)
            )
            add_int(f"s:{spec.name}:len", lengths)
            add_int(f"s:{spec.name}:val", values)
        for dspec in self.schema.dense:
            add_float(
                f"d:{dspec.name}",
                np.array([r.dense.get(dspec.name, 0.0) for r in rows]),
            )

        body = _STRIPE_HEADER.pack(0, len(rows), len(streams)) + b"".join(streams)
        # patch stripe byte_len (first u32) now the size is known
        body = _STRIPE_HEADER.pack(len(body), len(rows), len(streams)) + b"".join(
            streams
        )
        return body, sstat


class DwrfReader:
    """Reads stripes of a DWRF blob back into sample rows.

    Tracks the byte accounting the reader cost model consumes:
    ``bytes_read`` (compressed, what travels from Tectonic),
    ``raw_bytes`` (decompressed) and ``values_decoded``.
    """

    def __init__(self, blob: bytes, schema: DatasetSchema):
        magic, version, num_stripes = _FILE_HEADER.unpack_from(blob, 0)
        if magic != MAGIC:
            raise ValueError("not a DWRF blob")
        if version != 1:
            raise ValueError(f"unsupported version {version}")
        self.schema = schema
        self._blob = blob
        self._stripe_offsets: list[int] = []
        self._stripe_rows: list[int] = []
        pos = _FILE_HEADER.size
        for _ in range(num_stripes):
            self._stripe_offsets.append(pos)
            (byte_len, stripe_rows, _) = _STRIPE_HEADER.unpack_from(blob, pos)
            self._stripe_rows.append(stripe_rows)
            pos += byte_len
        self.bytes_read = 0
        self.raw_bytes = 0
        self.values_decoded = 0

    @property
    def num_stripes(self) -> int:
        """Stripes in the file, known from the file header alone."""
        return len(self._stripe_offsets)

    @property
    def num_rows(self) -> int:
        """Total rows in the file, known from stripe headers alone."""
        return sum(self._stripe_rows)

    def stripe_num_rows(self, index: int) -> int:
        """Rows in one stripe without fetching/decoding it — what lets a
        row-range shard skip stripes outside its window for free."""
        if not 0 <= index < self.num_stripes:
            raise IndexError(f"stripe {index} out of range")
        return self._stripe_rows[index]

    def read_stripe(self, index: int) -> list[Sample]:
        """Fetch + decode one stripe back into rows, accounting the
        bytes read and values decoded (the reader tier's fill costs)."""
        if not 0 <= index < self.num_stripes:
            raise IndexError(f"stripe {index} out of range")
        blob = self._blob
        pos = self._stripe_offsets[index]
        byte_len, num_rows, num_streams = _STRIPE_HEADER.unpack_from(blob, pos)
        self.bytes_read += byte_len
        pos += _STRIPE_HEADER.size
        columns: dict[str, np.ndarray] = {}
        for _ in range(num_streams):
            (name_len,) = _STREAM_HEADER.unpack_from(blob, pos)
            pos += _STREAM_HEADER.size
            name = blob[pos : pos + name_len].decode()
            pos += name_len
            enc_id, count, blob_len = _STREAM_META.unpack_from(blob, pos)
            pos += _STREAM_META.size
            payload = decompress(blob[pos : pos + blob_len])
            pos += blob_len
            self.raw_bytes += len(payload)
            if name == _TIMESTAMP or name.startswith("d:"):
                columns[name] = np.frombuffer(payload, dtype=np.float64).copy()
            else:
                columns[name] = decode_int64(
                    payload, count, IntEncoding(enc_id)
                )
            self.values_decoded += count
        return self._rows_from_columns(columns, num_rows)

    def _rows_from_columns(
        self, columns: dict[str, np.ndarray], num_rows: int
    ) -> list[Sample]:
        session = columns[_SESSION]
        ts = columns[_TIMESTAMP]
        label = columns[_LABEL]
        sample_id = columns[_SAMPLE_ID]
        sparse_split: dict[str, list[np.ndarray]] = {}
        for spec in self.schema.sparse:
            lengths = columns[f"s:{spec.name}:len"]
            values = columns[f"s:{spec.name}:val"]
            bounds = np.cumsum(lengths)[:-1]
            sparse_split[spec.name] = np.split(values, bounds)
        rows: list[Sample] = []
        for i in range(num_rows):
            rows.append(
                Sample(
                    sample_id=int(sample_id[i]),
                    session_id=int(session[i]),
                    timestamp=float(ts[i]),
                    label=int(label[i]),
                    sparse={
                        name: lists[i] for name, lists in sparse_split.items()
                    },
                    dense={
                        d.name: float(columns[f"d:{d.name}"][i])
                        for d in self.schema.dense
                    },
                )
            )
        return rows

    def read_all(self) -> list[Sample]:
        """Every row in the file, in stripe order (the serial scan)."""
        out: list[Sample] = []
        for i in range(self.num_stripes):
            out.extend(self.read_stripe(i))
        return out
