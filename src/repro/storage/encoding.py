"""Column stream encodings for the DWRF-like file format.

DWRF/ORC encode each flattened feature column as streams (§2.1).  We
implement the encodings that matter for this reproduction:

* ``PLAIN`` — raw little-endian int64 (the floor for compression ratios);
* ``VARINT`` — LEB128 with zigzag, shrinking small IDs/lengths the way
  ORC's integer RLE family does;
* ``RLE`` — run-length over varint, ideal for the lengths streams of
  fixed-length features (every row the same length);
* ``DICT`` — dictionary encoding (distinct values + varint codes), the
  mechanism the paper compares IKJTs to ("a similar encoding mechanism
  to dictionary encoding commonly used in file formats such as
  Parquet", §8).

All are exact round-trip codecs over int64 arrays.  Dense (float)
columns always use plain float64.
"""

from __future__ import annotations

import enum
import struct

import numpy as np

__all__ = [
    "IntEncoding",
    "encode_int64",
    "decode_int64",
    "zigzag",
    "unzigzag",
    "best_encoding",
]


class IntEncoding(enum.Enum):
    """The int64 stream encodings a DWRF column chunk may use."""

    PLAIN = 0
    VARINT = 1
    RLE = 2
    DICT = 3


def zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed -> unsigned so small magnitudes stay small."""
    v = values.astype(np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def unzigzag(values: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`zigzag`."""
    v = values.astype(np.uint64)
    return ((v >> np.uint64(1)) ^ (~(v & np.uint64(1)) + np.uint64(1))).astype(
        np.int64
    )


def _varint_encode(values: np.ndarray) -> bytes:
    """Vectorized LEB128: emit 7 bits per byte, high bit = continuation."""
    u = zigzag(values)
    if u.size == 0:
        return b""
    # max 10 bytes per int64; build columns of byte planes then compact.
    planes = []
    remaining = u.copy()
    more = np.ones(u.shape, dtype=bool)
    for _ in range(10):
        byte = (remaining & np.uint64(0x7F)).astype(np.uint8)
        remaining = remaining >> np.uint64(7)
        cont = remaining != 0
        byte = byte | (cont.astype(np.uint8) << np.uint8(7))
        byte = np.where(more, byte, np.uint8(0))
        planes.append((byte, more.copy()))
        more = more & cont
        if not more.any():
            break
    # interleave: for each value, its valid plane bytes in order
    nbytes_per_val = np.zeros(u.shape, dtype=np.int64)
    for _, valid in planes:
        nbytes_per_val += valid
    total = int(nbytes_per_val.sum())
    out = np.empty(total, dtype=np.uint8)
    # position of each value's first byte
    starts = np.zeros(u.shape, dtype=np.int64)
    np.cumsum(nbytes_per_val[:-1], out=starts[1:])
    for plane_idx, (byte, valid) in enumerate(planes):
        pos = starts[valid] + plane_idx
        out[pos] = byte[valid]
    return out.tobytes()


def _varint_decode(data: bytes, count: int) -> np.ndarray:
    buf = np.frombuffer(data, dtype=np.uint8)
    values = np.zeros(count, dtype=np.uint64)
    # byte index cursor per value, decoded sequentially over planes
    is_cont = (buf & 0x80) != 0
    # value boundaries: a value ends at the first byte with cont bit clear
    ends = np.flatnonzero(~is_cont)
    if ends.size != count:
        raise ValueError(
            f"varint stream holds {ends.size} values, expected {count}"
        )
    starts = np.concatenate([[0], ends[:-1] + 1])
    payload = (buf & 0x7F).astype(np.uint64)
    nbytes_per_val = ends - starts + 1
    # accumulate one byte-plane at a time (<= 10 vectorized passes)
    for plane in range(int(nbytes_per_val.max(initial=0))):
        mask = nbytes_per_val > plane
        values[mask] |= payload[starts[mask] + plane] << np.uint64(7 * plane)
    return unzigzag(values)


def _rle_encode(values: np.ndarray) -> bytes:
    """(run_value, run_length) pairs, each varint-encoded."""
    if values.size == 0:
        return b""
    change = np.flatnonzero(np.diff(values)) + 1
    starts = np.concatenate([[0], change])
    run_values = values[starts]
    run_lengths = np.diff(np.concatenate([starts, [values.size]]))
    interleaved = np.empty(2 * run_values.size, dtype=np.int64)
    interleaved[0::2] = run_values
    interleaved[1::2] = run_lengths
    return struct.pack("<Q", run_values.size) + _varint_encode(interleaved)


def _rle_decode(data: bytes, count: int) -> np.ndarray:
    if not data:
        if count:
            raise ValueError("empty RLE stream for non-empty column")
        return np.empty(0, dtype=np.int64)
    (num_runs,) = struct.unpack_from("<Q", data, 0)
    interleaved = _varint_decode(data[8:], 2 * num_runs)
    values = np.repeat(interleaved[0::2], interleaved[1::2])
    if values.size != count:
        raise ValueError(
            f"RLE stream expands to {values.size} values, expected {count}"
        )
    return values


def _dict_encode(values: np.ndarray) -> bytes:
    """Distinct values (varint) + per-element codes (varint)."""
    uniques, codes = np.unique(values, return_inverse=True)
    head = struct.pack("<Q", uniques.size)
    return (
        head
        + struct.pack("<Q", len(_varint_encode(uniques)))
        + _varint_encode(uniques)
        + _varint_encode(codes.astype(np.int64))
    )


def _dict_decode(data: bytes, count: int) -> np.ndarray:
    if not data:
        if count:
            raise ValueError("empty DICT stream for non-empty column")
        return np.empty(0, dtype=np.int64)
    num_uniques, dict_len = struct.unpack_from("<QQ", data, 0)
    pos = 16
    uniques = _varint_decode(data[pos : pos + dict_len], num_uniques)
    codes = _varint_decode(data[pos + dict_len :], count)
    if codes.size and (codes.min() < 0 or codes.max() >= num_uniques):
        raise ValueError("DICT codes out of range")
    return uniques[codes]


def encode_int64(values: np.ndarray, encoding: IntEncoding) -> bytes:
    """Encode an int64 array as the given stream encoding's bytes."""
    values = np.ascontiguousarray(values, dtype=np.int64)
    if encoding is IntEncoding.PLAIN:
        return values.tobytes()
    if encoding is IntEncoding.VARINT:
        return _varint_encode(values)
    if encoding is IntEncoding.RLE:
        return _rle_encode(values)
    if encoding is IntEncoding.DICT:
        return _dict_encode(values)
    raise ValueError(f"unknown encoding {encoding}")


def decode_int64(
    data: bytes, count: int, encoding: IntEncoding
) -> np.ndarray:
    """Exact round-trip inverse of :func:`encode_int64` for ``count``
    values."""
    if encoding is IntEncoding.PLAIN:
        if len(data) != count * 8:
            raise ValueError(
                f"plain stream is {len(data)} bytes, expected {count * 8}"
            )
        return np.frombuffer(data, dtype=np.int64, count=count).copy()
    if encoding is IntEncoding.VARINT:
        return _varint_decode(data, count)
    if encoding is IntEncoding.RLE:
        return _rle_decode(data, count)
    if encoding is IntEncoding.DICT:
        return _dict_decode(data, count)
    raise ValueError(f"unknown encoding {encoding}")


def best_encoding(values: np.ndarray) -> IntEncoding:
    """Pick the cheapest non-plain encoding for a column chunk.

    A lightweight version of ORC's encoding selection: prefer RLE for
    runny columns (lengths of fixed-size features), DICT when the value
    set is tiny relative to the column, varint otherwise.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    if values.size == 0:
        return IntEncoding.VARINT
    runs = 1 + int(np.count_nonzero(np.diff(values)))
    if runs <= values.size // 4:
        return IntEncoding.RLE
    uniques = np.unique(values).size
    if uniques <= max(values.size // 8, 1):
        return IntEncoding.DICT
    return IntEncoding.VARINT
