"""Storage substrate: DWRF-like columnar files, Tectonic FS, Hive tables."""

from .compression import Codec, compress, decompress
from .dwrf import DwrfReader, DwrfWriter, FileStats, StripeStats
from .encoding import (
    IntEncoding,
    best_encoding,
    decode_int64,
    encode_int64,
    unzigzag,
    zigzag,
)
from .hive import HiveTable, PartitionInfo
from .tectonic import FSStats, TectonicFS

__all__ = [
    "Codec",
    "compress",
    "decompress",
    "IntEncoding",
    "best_encoding",
    "encode_int64",
    "decode_int64",
    "zigzag",
    "unzigzag",
    "DwrfWriter",
    "DwrfReader",
    "FileStats",
    "StripeStats",
    "TectonicFS",
    "FSStats",
    "HiveTable",
    "PartitionInfo",
]
