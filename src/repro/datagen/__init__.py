"""Synthetic session-centric DLRM trace generation (substitute for the
paper's production inference logs; see DESIGN.md)."""

from .characterization import (
    CharacterizationReport,
    FeatureDuplication,
    batch_samples_per_session,
    characterization_schema,
    characterize_schema,
    simulate_feature_duplication,
)
from .generator import TraceConfig, TraceGenerator, generate_partition
from .schema import (
    DatasetSchema,
    DenseFeatureSpec,
    FeatureKind,
    PoolingKind,
    SparseFeatureSpec,
)
from .session import Sample, sample_session_sizes, session_size_stats
from .workloads import RMWorkload, all_workloads, rm1, rm2, rm3

__all__ = [
    "DatasetSchema",
    "DenseFeatureSpec",
    "SparseFeatureSpec",
    "FeatureKind",
    "PoolingKind",
    "Sample",
    "sample_session_sizes",
    "session_size_stats",
    "TraceConfig",
    "TraceGenerator",
    "generate_partition",
    "RMWorkload",
    "rm1",
    "rm2",
    "rm3",
    "all_workloads",
    "CharacterizationReport",
    "FeatureDuplication",
    "characterize_schema",
    "characterization_schema",
    "simulate_feature_duplication",
    "batch_samples_per_session",
]
