"""Session and sample models for the synthetic trace generator.

A *session* is a set of user impressions within a fixed time window
(§3, footnote 1); each impression yields one training sample.  The number
of samples per session follows a heavy-tailed distribution — the paper's
hourly partition averages S = 16.5 samples/session with a tail beyond
1000 (Fig 3, left) — which we model as a discrete log-normal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Sample", "sample_session_sizes", "session_size_stats"]


@dataclass
class Sample:
    """One training sample = one impression outcome (§2.1).

    ``sparse`` maps feature name -> list of int64 IDs; ``dense`` maps
    feature name -> float.  ``timestamp`` is the inference time used by
    the (baseline) data generation pipeline to order rows.
    """

    sample_id: int
    session_id: int
    timestamp: float
    label: int
    sparse: dict[str, np.ndarray] = field(default_factory=dict)
    dense: dict[str, float] = field(default_factory=dict)

    def payload_values(self) -> int:
        """Total sparse IDs carried (the dominant byte cost, §2.1)."""
        return int(sum(v.size for v in self.sparse.values()))


def sample_session_sizes(
    num_sessions: int,
    mean: float = 16.5,
    sigma: float = 1.4,
    rng: np.random.Generator | None = None,
    max_size: int = 5000,
) -> np.ndarray:
    """Draw per-session sample counts from a discretized log-normal.

    ``sigma`` controls tail heaviness; the default gives a >1000-sample
    tail at realistic partition scales while the *mean* is held at
    ``mean`` by solving for mu (log-normal mean = exp(mu + sigma^2/2)).
    Sizes are clipped to [1, max_size].
    """
    if num_sessions < 0:
        raise ValueError("num_sessions must be non-negative")
    if mean < 1:
        raise ValueError("mean must be >= 1")
    rng = rng or np.random.default_rng()
    mu = np.log(mean) - sigma**2 / 2.0
    raw = rng.lognormal(mean=mu, sigma=sigma, size=num_sessions)
    return np.clip(np.rint(raw), 1, max_size).astype(np.int64)


def session_size_stats(sizes: np.ndarray) -> dict[str, float]:
    """Summary stats used by the Fig 3 characterization bench."""
    sizes = np.asarray(sizes)
    if sizes.size == 0:
        return {"mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0, "tail_1000": 0.0}
    return {
        "mean": float(sizes.mean()),
        "p50": float(np.percentile(sizes, 50)),
        "p99": float(np.percentile(sizes, 99)),
        "max": float(sizes.max()),
        "tail_1000": float((sizes > 1000).sum()),
    }
