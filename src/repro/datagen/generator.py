"""Synthetic session-centric trace generator.

Reproduces the statistical structure the paper characterizes in §3:

* each session produces a heavy-tailed number of samples (mean S ≈ 16.5);
* USER sparse features keep their value across impressions with
  probability d(f); when they change they *shift* (drop the oldest ID,
  append a fresh one) — exactly the paper's "lists will be shifted with
  most elements being the same";
* grouped features update synchronously (one coin flip per group);
* ITEM features change nearly every impression (different items ranked);
* samples are ordered by inference timestamp, which interleaves sessions
  across the partition — the property that makes trainer-only dedup
  useless (Fig 3, right) and motivates O2's clustering.

Unchanged feature values are stored as *shared ndarray references*, so an
hourly partition with 80% duplication costs roughly 20% of the naive
memory, mirroring what makes this data deduplicable in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import DatasetSchema, SparseFeatureSpec
from .session import Sample, sample_session_sizes

__all__ = ["TraceConfig", "TraceGenerator", "generate_partition"]


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic trace; defaults match §3's characterization."""

    mean_samples_per_session: float = 16.5
    #: log-normal sigma controlling the Fig 3 tail
    session_size_sigma: float = 1.4
    #: the hourly-partition time window, seconds
    window_seconds: float = 3600.0
    #: a session's impressions are spread uniformly over a duration drawn
    #: from this range (fraction of the window), *independent of sample
    #: count* — a session is a fixed time window of impressions (§3 fn 1).
    #: Long durations relative to a batch's time span are what interleave
    #: sessions and give Fig 3's ~1.15 samples/session per batch.
    session_duration_frac: tuple[float, float] = (0.3, 1.0)
    #: click-through base rate for labels
    label_rate: float = 0.05
    seed: int = 0


class TraceGenerator:
    """Generates training-sample partitions for a :class:`DatasetSchema`."""

    def __init__(self, schema: DatasetSchema, config: TraceConfig | None = None):
        self.schema = schema
        self.config = config or TraceConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._next_sample_id = 0
        self._next_session_id = 0

    # -- feature evolution --------------------------------------------------

    def _initial_value(self, spec: SparseFeatureSpec) -> np.ndarray:
        length = spec.avg_length
        return self._rng.integers(
            0, spec.cardinality, size=length, dtype=np.int64
        )

    def _shift_value(
        self, spec: SparseFeatureSpec, current: np.ndarray
    ) -> np.ndarray:
        """Append a fresh ID, dropping the oldest (user history shift)."""
        new_id = self._rng.integers(0, spec.cardinality, dtype=np.int64)
        if current.size == 0:
            return np.array([new_id], dtype=np.int64)
        return np.concatenate([current[1:], [new_id]])

    def _session_samples(self, session_id: int, size: int, start_ts: float):
        rng = self._rng
        cfg = self.config
        lo, hi = cfg.session_duration_frac
        duration = rng.uniform(lo, hi) * cfg.window_seconds
        timestamps = start_ts + np.sort(rng.uniform(0, duration, size=size))

        # Per-feature mutable state; grouped features flip one shared coin.
        user_specs = self.schema.user_features()
        item_specs = self.schema.item_features()
        state = {f.name: self._initial_value(f) for f in user_specs}
        groups = self.schema.groups()
        feature_to_group = {
            name: g for g, members in groups.items() for name in members
        }

        samples = []
        for i in range(size):
            if i > 0:
                # Decide group changes once, solo features independently.
                group_changed = {
                    g: rng.random() < self.schema.sparse_spec(members[0]).change_prob
                    for g, members in groups.items()
                }
                for f in user_specs:
                    g = feature_to_group.get(f.name)
                    changed = (
                        group_changed[g]
                        if g is not None
                        else rng.random() < f.change_prob
                    )
                    if changed:
                        state[f.name] = self._shift_value(f, state[f.name])
            sparse = dict(state)  # shared references for unchanged values
            for f in item_specs:
                # Item features: a new value per impression with prob
                # change_prob (ranked items mostly differ, §3).
                if i == 0 or rng.random() < f.change_prob:
                    sparse[f.name] = self._initial_value(f)
                else:
                    sparse[f.name] = samples[-1].sparse[f.name]
            dense = {
                d.name: float(rng.normal()) for d in self.schema.dense
            }
            samples.append(
                Sample(
                    sample_id=self._next_sample_id,
                    session_id=session_id,
                    timestamp=float(timestamps[i]),
                    label=int(rng.random() < cfg.label_rate),
                    sparse=sparse,
                    dense=dense,
                )
            )
            self._next_sample_id += 1
        return samples

    # -- partition generation -------------------------------------------------

    def generate_partition(self, num_sessions: int) -> list[Sample]:
        """One (hourly) partition: all sessions' samples, ordered by
        inference timestamp — the baseline, interleaved layout (§3)."""
        if num_sessions < 0:
            raise ValueError("num_sessions must be non-negative")
        cfg = self.config
        sizes = sample_session_sizes(
            num_sessions,
            mean=cfg.mean_samples_per_session,
            sigma=cfg.session_size_sigma,
            rng=self._rng,
        )
        starts = self._rng.uniform(0, cfg.window_seconds, size=num_sessions)
        all_samples: list[Sample] = []
        for size, start in zip(sizes, starts):
            sid = self._next_session_id
            self._next_session_id += 1
            all_samples.extend(self._session_samples(sid, int(size), float(start)))
        all_samples.sort(key=lambda s: s.timestamp)
        return all_samples


def generate_partition(
    schema: DatasetSchema,
    num_sessions: int,
    config: TraceConfig | None = None,
) -> list[Sample]:
    """Convenience wrapper: one partition from a fresh generator."""
    return TraceGenerator(schema, config).generate_partition(num_sessions)
