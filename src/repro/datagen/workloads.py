"""Representative workloads: RM1, RM2, RM3 (§6.1), scaled to laptop size.

The paper evaluates three industrial DLRMs:

=====  ==========  =========  ==============================  ==========
RM     params      EMB bytes  dedup features                  batch size
=====  ==========  =========  ==============================  ==========
RM1    O(1e9)      O(10GB)    16 seq in 5 groups + ~100 ewise 2048->6144
RM2    O(100e9)    O(100GB)   6 seq in 1 group + ~100 ewise   2048
RM3    O(100e9)    O(100GB)   11 seq in 1 group + ~100 ewise  1152->2048
=====  ==========  =========  ==============================  ==========

on 48/48/64 A100s.  We keep every *structural* property — the number of
sequence features and their grouping, which model uses transformer
pooling (RM1), the batch-size growth RecD enables, the relative model
mix — and scale the magnitudes (batch, GPU count, embedding dims, feature
counts) down by ``scale`` so an experiment runs in seconds on a CPU.
DedupeFactor for deduplicated features lands in the paper's 4–15 band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .schema import (
    DatasetSchema,
    DenseFeatureSpec,
    FeatureKind,
    PoolingKind,
    SparseFeatureSpec,
)

__all__ = ["RMWorkload", "rm1", "rm2", "rm3", "all_workloads"]


@dataclass(frozen=True)
class RMWorkload:
    """A representative model + its training configuration."""

    name: str
    schema: DatasetSchema
    #: per-iteration global batch size before RecD
    baseline_batch_size: int
    #: batch size RecD's freed GPU memory allows (§6.1)
    recd_batch_size: int
    num_gpus: int
    embedding_dim: int
    #: dense-feature MLP sizes (bottom) and prediction MLP sizes (top)
    bottom_mlp: tuple[int, ...] = (64, 32)
    top_mlp: tuple[int, ...] = (64, 32, 1)
    #: feature groups to deduplicate (List[List[key]], the DataLoader field)
    dedup_groups: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    @property
    def dedup_feature_names(self) -> list[str]:
        return [name for group in self.dedup_groups for name in group]

    @property
    def sequence_feature_names(self) -> list[str]:
        return [f.name for f in self.schema.sparse if f.is_sequence]


def _elementwise_features(
    count: int, prefix: str = "ew", avg_length: int = 8
) -> list[SparseFeatureSpec]:
    """The ~100 element-wise (sum/max) pooled features every RM dedups,
    scaled down; mostly user features with high d(f)."""
    specs = []
    for i in range(count):
        user = i % 4 != 3  # 3 of 4 are user features, matching Fig 4's mix
        specs.append(
            SparseFeatureSpec(
                name=f"{prefix}_{i}",
                kind=FeatureKind.USER if user else FeatureKind.ITEM,
                avg_length=avg_length,
                change_prob=0.06 if user else 0.9,
                cardinality=50_000,
                pooling=PoolingKind.SUM if i % 2 == 0 else PoolingKind.MAX,
            )
        )
    return specs


def _sequence_features(
    count: int,
    groups: int,
    pooling: PoolingKind,
    avg_length: int,
    prefix: str = "seq",
) -> list[SparseFeatureSpec]:
    """Long user-history sequence features, assigned round-robin to
    synchronous-update groups (grouped IKJT candidates)."""
    specs = []
    for i in range(count):
        specs.append(
            SparseFeatureSpec(
                name=f"{prefix}_{i}",
                kind=FeatureKind.USER,
                avg_length=avg_length,
                change_prob=0.05,
                cardinality=200_000,
                group=f"{prefix}_g{i % groups}",
                pooling=pooling,
            )
        )
    return specs


def _dense_features(count: int) -> list[DenseFeatureSpec]:
    return [DenseFeatureSpec(f"dense_{i}") for i in range(count)]


def _dedup_groups_from_schema(
    schema: DatasetSchema, include_solo: bool = True
) -> tuple[tuple[str, ...], ...]:
    """Dedup spec: every synchronous group, plus each highly-duplicated
    solo user feature as its own singleton group."""
    groups = [tuple(members) for members in schema.groups().values()]
    if include_solo:
        grouped = {n for g in groups for n in g}
        for f in schema.sparse:
            if f.name not in grouped and f.kind is FeatureKind.USER:
                groups.append((f.name,))
    return tuple(groups)


def rm1(scale: float = 1.0) -> RMWorkload:
    """RM1: transformer pooling over 16 sequence features in 5 groups.

    The model whose heavy sequence compute makes RecD shine (2.48x).
    """
    seq = _sequence_features(
        16, groups=5, pooling=PoolingKind.TRANSFORMER, avg_length=max(8, int(48 * scale))
    )
    ewise = _elementwise_features(max(4, int(24 * scale)))
    schema = DatasetSchema(
        sparse=tuple(seq + ewise), dense=tuple(_dense_features(8))
    )
    return RMWorkload(
        name="RM1",
        schema=schema,
        baseline_batch_size=max(32, int(256 * scale)),
        recd_batch_size=max(96, int(768 * scale)),  # paper: 2048 -> 6144
        num_gpus=8,
        embedding_dim=max(16, int(64 * scale)),
        dedup_groups=_dedup_groups_from_schema(schema),
    )


def rm2(scale: float = 1.0) -> RMWorkload:
    """RM2: 6 sequence features in one group, attention pooling; batch size
    could not grow past the baseline (§6.1)."""
    seq = _sequence_features(
        6, groups=1, pooling=PoolingKind.ATTENTION, avg_length=max(8, int(32 * scale))
    )
    ewise = _elementwise_features(max(4, int(24 * scale)))
    schema = DatasetSchema(
        sparse=tuple(seq + ewise), dense=tuple(_dense_features(8))
    )
    return RMWorkload(
        name="RM2",
        schema=schema,
        baseline_batch_size=max(32, int(256 * scale)),
        recd_batch_size=max(32, int(256 * scale)),  # paper: stays at 2048
        num_gpus=8,
        embedding_dim=max(16, int(96 * scale)),
        dedup_groups=_dedup_groups_from_schema(schema),
    )


def rm3(scale: float = 1.0) -> RMWorkload:
    """RM3: 11 sequence features in one group, attention pooling, smaller
    baseline batch (paper: 1152 -> 2048), lower samples/session table."""
    seq = _sequence_features(
        11, groups=1, pooling=PoolingKind.ATTENTION, avg_length=max(8, int(32 * scale))
    )
    ewise = _elementwise_features(max(4, int(24 * scale)))
    schema = DatasetSchema(
        sparse=tuple(seq + ewise), dense=tuple(_dense_features(8))
    )
    return RMWorkload(
        name="RM3",
        schema=schema,
        baseline_batch_size=max(32, int(144 * scale)),
        recd_batch_size=max(32, int(256 * scale)),
        num_gpus=8,
        embedding_dim=max(16, int(96 * scale)),
        dedup_groups=_dedup_groups_from_schema(schema),
    )


def all_workloads(scale: float = 1.0) -> list[RMWorkload]:
    return [rm1(scale), rm2(scale), rm3(scale)]
