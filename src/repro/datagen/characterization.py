"""Section 3 characterization: duplication statistics at partition scale.

The paper measures, over an O(100PB) hourly partition with 733 sparse
features (Fig 3, Fig 4):

* samples/session histograms for the partition and for 4096-row batches;
* per-feature % of exact-duplicate values (mean ≈ 80.0%);
* per-feature % of partially-duplicated list IDs (mean ≈ 83.9%);
* byte-weighted totals: 81.6% exact / 89.4% partial.

Materializing 733 features of real lists at meaningful scale is
prohibitive in pure Python, so this module computes the statistics from
the *change-event process* directly, vectorized over sessions — a
duplicate count only depends on when values change, never on the IDs
themselves.  The small-scale list-based functions in
:mod:`repro.core.dedup` serve as the ground-truth oracle; the test suite
asserts both agree on common inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import DatasetSchema, FeatureKind, SparseFeatureSpec
from .session import sample_session_sizes

__all__ = [
    "FeatureDuplication",
    "simulate_feature_duplication",
    "characterize_schema",
    "characterization_schema",
    "batch_samples_per_session",
    "CharacterizationReport",
]


@dataclass(frozen=True)
class FeatureDuplication:
    """Measured duplication for one feature over one simulated partition."""

    name: str
    kind: FeatureKind
    avg_length: float
    exact_fraction: float
    partial_fraction: float

    @property
    def exact_bytes(self) -> float:
        """Duplicated bytes ∝ duplicated IDs = fraction × length weight."""
        return self.exact_fraction * self.avg_length

    @property
    def partial_bytes(self) -> float:
        return self.partial_fraction * self.avg_length


def simulate_feature_duplication(
    spec: SparseFeatureSpec,
    session_sizes: np.ndarray,
    rng: np.random.Generator,
) -> FeatureDuplication:
    """Duplication stats for one feature from its change-event process.

    For a session with ``n`` samples and ``c`` value changes (each a
    Bernoulli(change_prob) event per transition):

    * distinct runs = ``c + 1``; exact duplicates = ``n - runs`` *except*
      runs of a value seen before — with shift updates values never
      recur, so runs are distinct values.
    * with shift updates of a length-``l`` list, the union of IDs across
      the session is ``l + c`` (each change introduces one fresh ID), so
      partially-duplicated IDs = ``n*l - (l + c)``.

    Item-kind features draw a whole fresh list on change, making partial
    duplication equal exact duplication in expectation.
    """
    sizes = np.asarray(session_sizes, dtype=np.int64)
    total_samples = int(sizes.sum())
    if total_samples == 0:
        return FeatureDuplication(
            spec.name, spec.kind, spec.avg_length, 0.0, 0.0
        )
    # changes per session ~ Binomial(n - 1, change_prob), vectorized
    changes = rng.binomial(np.maximum(sizes - 1, 0), spec.change_prob)
    runs = changes + 1
    exact_dups = (sizes - runs).sum()
    exact_fraction = float(exact_dups) / total_samples

    length = max(spec.avg_length, 1)
    if spec.kind is FeatureKind.USER:
        unique_ids = np.minimum(length + changes, sizes * length)
        partial_dups = (sizes * length - unique_ids).sum()
        partial_fraction = float(partial_dups) / float(
            total_samples * length
        )
    else:
        # fresh lists on change: no cross-value ID sharing beyond runs
        partial_fraction = exact_fraction
    return FeatureDuplication(
        spec.name, spec.kind, spec.avg_length, exact_fraction, partial_fraction
    )


@dataclass(frozen=True)
class CharacterizationReport:
    """Aggregate Fig 4-style report over a schema."""

    features: tuple[FeatureDuplication, ...]

    @property
    def mean_exact(self) -> float:
        return float(np.mean([f.exact_fraction for f in self.features]))

    @property
    def mean_partial(self) -> float:
        return float(np.mean([f.partial_fraction for f in self.features]))

    @property
    def byte_weighted_exact(self) -> float:
        w = np.array([f.avg_length for f in self.features], dtype=np.float64)
        e = np.array([f.exact_fraction for f in self.features])
        return float((e * w).sum() / w.sum())

    @property
    def byte_weighted_partial(self) -> float:
        w = np.array([f.avg_length for f in self.features], dtype=np.float64)
        p = np.array([f.partial_fraction for f in self.features])
        return float((p * w).sum() / w.sum())

    def sorted_exact(self) -> list[FeatureDuplication]:
        """Features by descending exact duplication (the Fig 4 x-axis)."""
        return sorted(
            self.features, key=lambda f: f.exact_fraction, reverse=True
        )


def characterize_schema(
    schema: DatasetSchema,
    num_sessions: int = 20_000,
    mean_samples_per_session: float = 16.5,
    sigma: float = 1.4,
    seed: int = 0,
) -> CharacterizationReport:
    """Fig 4 over every sparse feature of ``schema``."""
    rng = np.random.default_rng(seed)
    sizes = sample_session_sizes(
        num_sessions, mean=mean_samples_per_session, sigma=sigma, rng=rng
    )
    feats = tuple(
        simulate_feature_duplication(f, sizes, rng) for f in schema.sparse
    )
    return CharacterizationReport(feats)


def characterization_schema(
    num_features: int = 733, user_fraction: float = 0.85, seed: int = 7
) -> DatasetSchema:
    """A 733-feature schema shaped like the paper's characterized table.

    User features: high d(f) (0.90–0.99), longer lists — the Fig 4 plateau
    left of the knee.  Item features: low d(f), shorter lists — the tail
    right of the knee.  The 85/15 user/item mix and change probabilities
    are calibrated so the partition-level means land on §3's numbers
    (mean exact ≈ 80%, byte-weighted exact ≈ 81.6% / partial ≈ 89.4%).
    """
    rng = np.random.default_rng(seed)
    specs = []
    n_user = int(round(num_features * user_fraction))
    for i in range(num_features):
        if i < n_user:
            specs.append(
                SparseFeatureSpec(
                    name=f"user_f{i}",
                    kind=FeatureKind.USER,
                    avg_length=int(rng.integers(8, 128)),
                    change_prob=float(rng.uniform(0.01, 0.10)),
                )
            )
        else:
            specs.append(
                SparseFeatureSpec(
                    name=f"item_f{i}",
                    kind=FeatureKind.ITEM,
                    avg_length=int(rng.integers(1, 16)),
                    change_prob=float(rng.uniform(0.5, 0.95)),
                )
            )
    return DatasetSchema(sparse=tuple(specs))


def batch_samples_per_session(
    session_ids: np.ndarray, batch_size: int
) -> np.ndarray:
    """Mean samples/session within each consecutive batch (Fig 3, right).

    Takes the partition's session-ID column in row order; returns one mean
    per full batch.
    """
    session_ids = np.asarray(session_ids)
    n_batches = session_ids.size // batch_size
    means = np.empty(n_batches, dtype=np.float64)
    for b in range(n_batches):
        chunk = session_ids[b * batch_size : (b + 1) * batch_size]
        means[b] = chunk.size / np.unique(chunk).size
    return means
