"""Dataset schema: feature specifications for synthetic DLRM traces.

The paper's characterization (§3) shows duplication is a *per-feature*
property governed by how often a feature's value changes across a
session's samples.  A :class:`SparseFeatureSpec` therefore carries:

* ``kind`` — USER features (liked/shared post history, cart contents)
  rarely change within a session and dominate dataset bytes; ITEM features
  (the ranked item's ID) change almost every impression (§3, Fig 4).
* ``change_prob`` — probability the value changes between consecutive
  impressions; the paper's d(f) is ``1 - change_prob``.
* ``avg_length`` — l(f), the mean list length.
* ``group`` — features sharing a group are updated *synchronously*
  (the cart item-ID/seller-ID example of §4.2) and are eligible for
  grouped IKJTs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "FeatureKind",
    "PoolingKind",
    "SparseFeatureSpec",
    "DenseFeatureSpec",
    "DatasetSchema",
]


class FeatureKind(enum.Enum):
    """Whether a sparse feature reflects user or item traits (§3)."""

    USER = "user"
    ITEM = "item"


class PoolingKind(enum.Enum):
    """How the trainer pools this feature's embedding activations (§5)."""

    SUM = "sum"
    MEAN = "mean"
    MAX = "max"
    ATTENTION = "attention"
    TRANSFORMER = "transformer"


@dataclass(frozen=True)
class SparseFeatureSpec:
    """One sparse (categorical, variable-length list) feature."""

    name: str
    kind: FeatureKind = FeatureKind.USER
    avg_length: int = 10
    #: probability the value changes between consecutive same-session rows
    change_prob: float = 0.1
    #: sparse-ID vocabulary size (rows of the embedding table)
    cardinality: int = 100_000
    #: synchronous-update group; None means the feature updates alone
    group: str | None = None
    pooling: PoolingKind = PoolingKind.SUM

    def __post_init__(self) -> None:
        if not 0.0 <= self.change_prob <= 1.0:
            raise ValueError(f"change_prob must be in [0,1], got {self.change_prob}")
        if self.avg_length < 0:
            raise ValueError("avg_length must be non-negative")
        if self.cardinality < 1:
            raise ValueError("cardinality must be positive")

    @property
    def d(self) -> float:
        """The paper's d(f): probability the value repeats across rows."""
        return 1.0 - self.change_prob

    @property
    def is_sequence(self) -> bool:
        """Sequence features are the long, attention/transformer-pooled ones."""
        return self.pooling in (PoolingKind.ATTENTION, PoolingKind.TRANSFORMER)


@dataclass(frozen=True)
class DenseFeatureSpec:
    """One dense (continuous scalar) feature."""

    name: str


@dataclass(frozen=True)
class DatasetSchema:
    """The full feature schema of a training table."""

    sparse: tuple[SparseFeatureSpec, ...]
    dense: tuple[DenseFeatureSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [f.name for f in self.sparse] + [f.name for f in self.dense]
        if len(names) != len(set(names)):
            raise ValueError("duplicate feature names in schema")

    @property
    def sparse_names(self) -> list[str]:
        return [f.name for f in self.sparse]

    @property
    def dense_names(self) -> list[str]:
        return [f.name for f in self.dense]

    def sparse_spec(self, name: str) -> SparseFeatureSpec:
        for f in self.sparse:
            if f.name == name:
                return f
        raise KeyError(name)

    def groups(self) -> dict[str, list[str]]:
        """Map group name -> member feature names (insertion order)."""
        out: dict[str, list[str]] = {}
        for f in self.sparse:
            if f.group is not None:
                out.setdefault(f.group, []).append(f.name)
        return out

    def user_features(self) -> list[SparseFeatureSpec]:
        return [f for f in self.sparse if f.kind is FeatureKind.USER]

    def item_features(self) -> list[SparseFeatureSpec]:
        return [f for f in self.sparse if f.kind is FeatureKind.ITEM]
