"""Deterministic micro-partition landing on the cost-model clock.

The :class:`StreamLander` is the ingestion half of continuous training:
it re-stamps a job's synthetic trace onto a modeled event-time axis,
cuts it into ``DataSpec.num_partitions`` micro-partitions, and — every
time the driver pumps it with the tier's current clock — pushes each
due tick through the *same* transport and landing stages a static run
uses (scribe log → seal → drain → ETL join → Hive landing), just one
interval at a time.

Nothing here depends on wall-clock or scheduling: micro-partition ``i``
becomes scannable at exactly ``(i + 1) * interval_seconds +
land_latency_seconds`` modeled seconds, and its row content is a pure
function of the spec's seed, so pumping the lander from any driver — a
live loop, a crash-resumed session, or a land-everything-first
baseline — lands bitwise-identical partitions in the same order.

This module must stay import-clean of ``repro.pipeline`` (the session
engine imports *us*); it builds only on datagen, scribe, ETL, and
storage.
"""

from __future__ import annotations

from dataclasses import replace

from ..datagen.generator import TraceConfig, TraceGenerator
from ..datagen.session import Sample
from ..etl.pipeline import ETLConfig, ETLJob
from ..scribe.bus import ScribeCluster
from ..scribe.message import (
    EventLogRecord,
    FeatureLogRecord,
    split_sample,
)
from ..scribe.sharding import ShardKeyPolicy
from ..storage.hive import HiveTable, PartitionInfo
from ..storage.tectonic import TectonicFS

__all__ = ["StreamLander", "partition_slices", "plan_stream_windows"]


def partition_slices(
    total_rows: int, num_partitions: int
) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` row slices per partition.

    The same split the static engine uses to cut an ETL output into
    time partitions, so a streamed table's partition boundaries match a
    land-everything-first table's exactly.
    """
    base, extra = divmod(total_rows, num_partitions)
    slices: list[tuple[int, int]] = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


def plan_stream_windows(
    num_partitions: int,
    retain_partitions: int | None,
    train_epochs: int,
) -> list[list[int]]:
    """Which micro-partition indices each live epoch scans.

    Epoch ``e`` scans the window *ending* at micro-partition
    ``min(e, num_partitions - 1)`` — the newest data that can possibly
    be landed when the epoch becomes runnable — reaching back at most
    ``retain_partitions`` ticks (unbounded growth when ``None``).
    Epochs past the end of the stream re-scan the final window.

    This is the streaming counterpart of
    :func:`repro.pipeline.session.plan_retention_windows`: that plan
    opens on a full window of pre-landed history, while a live job has
    no history — its first epoch trains on the very first tick alone.

    Args:
        num_partitions: total micro-partitions in the stream.
        retain_partitions: maximum live partitions at any moment
            (``None`` = retain everything).
        train_epochs: epochs to plan.

    Returns:
        One list of micro-partition indices per epoch.

    Raises:
        ValueError: if any count is not positive.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if retain_partitions is not None and retain_partitions <= 0:
        raise ValueError("retain_partitions must be positive")
    if train_epochs <= 0:
        raise ValueError("train_epochs must be positive")
    windows: list[list[int]] = []
    for e in range(train_epochs):
        hi = min(e, num_partitions - 1)
        lo = 0
        if retain_partitions is not None:
            lo = max(0, hi - retain_partitions + 1)
        windows.append(list(range(lo, hi + 1)))
    return windows


class StreamLander:
    """Land one job's trace as micro-partitions on the modeled clock.

    Built from a :class:`~repro.pipeline.spec.JobSpec` carrying a
    :class:`~repro.pipeline.spec.StreamSpec`.  The full trace is
    generated up front (it is the *model* of the upstream event
    stream), re-stamped onto the stream's event-time axis — sample
    ``j`` of ``n`` in micro-partition ``i`` happens at
    ``i * interval + (j + 1) / n * interval`` — and held back: rows
    only reach the scribe cluster, the ETL join, and the table when
    :meth:`pump` observes a clock past their tick's landing time.

    Attributes:
        table: the job's live :class:`~repro.storage.hive.HiveTable`
            (empty until the first pump).
        samples: the re-stamped trace, in event-time order (the row
            count ground truth for admission validation).
        scribe: the lander's transport cluster; its ``stats`` accrue
            tick by tick.
        partitions: every landed
            :class:`~repro.storage.hive.PartitionInfo`, in land order.
        ingest_bytes: scribe bytes the per-tick ETL joins consumed.
    """

    def __init__(self, spec) -> None:
        """Generate and re-stamp the trace; land nothing yet.

        Args:
            spec: the job's composed :class:`JobSpec`; ``spec.stream``
                must be set.

        Raises:
            ValueError: if the spec has no ``StreamSpec``.
        """
        if spec.stream is None:
            raise ValueError(
                "StreamLander needs a JobSpec with stream=StreamSpec(...)"
            )
        self.spec = spec
        self.stream = spec.stream
        d = spec.data
        w = d.workload
        raw = TraceGenerator(
            w.schema,
            TraceConfig(
                seed=d.seed,
                mean_samples_per_session=d.mean_samples_per_session,
            ),
        ).generate_partition(d.num_sessions)
        self.slices = partition_slices(len(raw), d.num_partitions)
        interval = self.stream.interval_seconds
        self.samples: list[Sample] = []
        for i, (start, stop) in enumerate(self.slices):
            n = stop - start
            for j, s in enumerate(raw[start:stop]):
                self.samples.append(
                    replace(
                        s,
                        timestamp=i * interval + (j + 1) / n * interval,
                    )
                )
        policy = (
            ShardKeyPolicy.SESSION_ID
            if d.toggles.o1_shard_by_session
            else ShardKeyPolicy.RANDOM
        )
        self.scribe = ScribeCluster(
            num_shards=d.num_scribe_shards, policy=policy
        )
        self._etl = ETLJob(ETLConfig(cluster=d.toggles.o2_cluster_table))
        self.table = HiveTable(
            f"{w.name.lower()}_table",
            w.schema,
            TectonicFS(),
            rows_per_file=8192,
            stripe_rows=64,
        )
        self.partitions: list[PartitionInfo] = []
        self.ingest_bytes = 0
        self._landed = 0

    @property
    def num_partitions(self) -> int:
        """Micro-partitions the stream will produce in total."""
        return len(self.slices)

    @property
    def landed_count(self) -> int:
        """Micro-partitions landed so far (they land strictly in order)."""
        return self._landed

    @property
    def exhausted(self) -> bool:
        """Whether every micro-partition has landed."""
        return self._landed >= len(self.slices)

    def partition_rows(self) -> dict[str, int]:
        """Declared rows per micro-partition (the admission stream)."""
        return {
            f"p{i}": stop - start
            for i, (start, stop) in enumerate(self.slices)
        }

    def avail(self, index: int) -> float:
        """Modeled clock at which micro-partition ``index`` is scannable.

        Tick ``index`` seals at ``(index + 1) * interval_seconds`` and
        pays the scribe→ETL→storage latency on top.

        Raises:
            IndexError: if ``index`` is outside the stream.
        """
        if not 0 <= index < len(self.slices):
            raise IndexError(
                f"micro-partition {index} outside stream of "
                f"{len(self.slices)}"
            )
        return (
            (index + 1) * self.stream.interval_seconds
            + self.stream.land_latency_seconds
        )

    def next_event(self, clock: float) -> float | None:
        """The next landing time strictly after ``clock``.

        ``None`` once the stream is exhausted.  A driver with no
        runnable work advances the tier clock here and pumps again.
        """
        if self.exhausted:
            return None
        nxt = self.avail(self._landed)
        return nxt if nxt > clock else clock

    def pump(self, clock: float) -> list[str]:
        """Land every micro-partition whose landing time has passed.

        Each due tick replays the static pipeline's stages on just its
        own rows: log to the scribe cluster, :meth:`~repro.scribe.bus.
        ScribeCluster.seal` the tick boundary, drain the sealed blocks,
        length-discriminate and re-order the records exactly as
        :meth:`~repro.etl.pipeline.ETLJob.run_from_scribe` does, join,
        and land.  Micro-partitions land at the stream's small
        ``rows_per_file``; once tick ``i`` lands, tick ``i - 1`` is
        compacted back to the table's full file size (when
        ``StreamSpec.compact`` is set and the partition is still live).

        Args:
            clock: the tier's current modeled clock.

        Returns:
            Names of the partitions landed by this pump, in land order.
        """
        landed: list[str] = []
        while (
            not self.exhausted and self.avail(self._landed) <= clock
        ):
            landed.append(self._land_next())
        return landed

    def land_all(self) -> list[str]:
        """Land the whole stream now — the land-everything-first
        baseline a live run's losses must match bit for bit."""
        if self.exhausted:
            return []
        return self.pump(self.avail(len(self.slices) - 1))

    def _land_next(self) -> str:
        """Push the next tick through scribe → ETL → landing."""
        i = self._landed
        start, stop = self.slices[i]
        for s in self.samples[start:stop]:
            feat, ev = split_sample(s)
            self.scribe.log_features(feat)
            self.scribe.log_event(ev)
        self.scribe.seal()
        payloads = self.scribe.drain_all()
        self.ingest_bytes += sum(len(p) for p in payloads)
        features: list[FeatureLogRecord] = []
        events: list[EventLogRecord] = []
        event_size = EventLogRecord._FMT.size
        for payload in payloads:
            if len(payload) == event_size:
                events.append(EventLogRecord.deserialize(payload))
            else:
                features.append(FeatureLogRecord.deserialize(payload))
        features.sort(key=lambda r: (r.timestamp, r.request_id))
        result = self._etl.run_from_records(features, events)
        name = f"p{i}"
        base_rows_per_file = self.table.rows_per_file
        self.table.rows_per_file = self.stream.rows_per_file
        try:
            info = self.table.land_partition(name, result.samples)
        finally:
            self.table.rows_per_file = base_rows_per_file
        self.partitions.append(info)
        self._landed = i + 1
        if self.stream.compact and i > 0:
            prev = f"p{i - 1}"
            if prev in self.table.partitions:
                self.table.compact_partition(prev)
        return name
