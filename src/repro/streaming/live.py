"""The live-loop driver: landing ticks interleaved with tier rounds.

A static session runs its tier to completion and never looks back at
storage.  A streaming session cannot: epochs near the end of a job's
plan scan micro-partitions that have not landed yet, so the scheduling
loop must alternate between *pumping* every job's
:class:`~repro.streaming.lander.StreamLander` (landing whatever the
modeled clock has made due) and *stepping* the shared tier (training
whatever is runnable).  When no job is runnable — everyone is waiting
on data — the loop advances the tier's clock straight to the next
landing time instead of spinning, which is the modeled equivalent of
the platform sitting idle until the next scribe tick seals.

The interleaving only moves modeled time around.  Batch content is a
pure function of landed row values and order, both of which the lander
fixes from the spec's seed, so a live run's per-step losses are
bit-identical to :meth:`~repro.pipeline.session.Session.
land_all_streams` followed by a plain closed-loop run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..metrics.tier import TierReport
    from ..pipeline.session import Session

__all__ = ["LiveLoop"]


class LiveLoop:
    """Drive one prepared streaming session to completion.

    The loop invariant: before every tier round, every stream is
    pumped up to the tier's current clock, so a round only ever trains
    over partitions that were live at the modeled moment it started.
    """

    def __init__(self, session: "Session") -> None:
        """Wrap a session whose tier is built (``prepare()`` ran).

        Raises:
            RuntimeError: if the session was never prepared.
        """
        if session.tier is None:
            raise RuntimeError(
                "LiveLoop needs a prepared session: call "
                "Session.prepare() first"
            )
        self.session = session

    def drive(self) -> "TierReport":
        """Run landing ticks and scheduling rounds until both drain.

        Each iteration pumps all streams at the current clock, then
        tries one tier round.  A round that cannot run means every
        remaining job is either finished or gated on data; if any
        stream still has ticks pending, the clock jumps to the next
        landing time and the loop continues, otherwise the run is
        complete.

        Returns:
            The finished tier's
            :class:`~repro.metrics.tier.TierReport`.
        """
        session = self.session
        tier = session.tier
        tier.start()
        while True:
            session.pump_streams()
            if tier.step():
                continue
            if not tier.epochs_remaining:
                break
            nxt = session.next_stream_event()
            if nxt is None:
                # Every lander is drained yet some job is still gated:
                # its ready hook can never satisfy.  Admission
                # validates plans against the declared stream, so this
                # is a driver bug worth failing loudly on, not a state
                # to spin in.
                raise RuntimeError(
                    "live loop deadlocked: jobs are waiting on data "
                    "but every stream is exhausted"
                )
            tier.advance_clock(nxt)
        return tier.finish()
