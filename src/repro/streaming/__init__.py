"""Continuous online training: live landing on the modeled clock.

Static runs land their whole table before the first scheduling round.
This package closes the loop instead: a :class:`StreamLander` drains
sealed scribe blocks into Hive micro-partitions as the tier's
cost-model clock advances, and a :class:`LiveLoop` interleaves those
landing ticks with the shared tier's scheduling rounds, so jobs train
on partitions that did not exist when they were admitted.  Because
every tick fires on modeled time and batch content depends only on row
values and order, a live run's losses are bit-identical to landing the
same stream up front (``Session.land_all_streams``) and training over
it — the invariant the ``repro stream --verify`` gate asserts.
"""

from .lander import StreamLander, partition_slices, plan_stream_windows
from .live import LiveLoop

__all__ = [
    "LiveLoop",
    "StreamLander",
    "partition_slices",
    "plan_stream_windows",
]
