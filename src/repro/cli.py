"""Command-line entry points: regenerate paper experiments from a shell.

Usage::

    python -m repro fig3
    python -m repro fig7 --scale 0.5 --sessions 150
    python -m repro ablation --scale 1.0
    python -m repro pipeline --rm RM2 --recd
    python -m repro multijob --jobs 2 --num-readers 8
    python -m repro multijob --job RM1 --job RM2:recd:sessions=80
    python -m repro stream --num-partitions 4 --freshness-slo 120 --verify
    python -m repro simulate --scenario stream-crash-resume --verify
    python -m repro list

Each subcommand prints the same paper-style rows the benchmark harness
writes to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys

from .datagen import rm1, rm2, rm3
from .experiments import (
    DEFAULT_STORE_PATH,
    PROFILES,
    RunStore,
    expand_grid,
    get_profile,
    render_report,
    run_grid,
    run_profile,
)
from .pipeline import (
    DataSpec,
    JobSpec,
    ReaderSpec,
    RecDToggles,
    RetentionSpec,
    ScalingSpec,
    Session,
    StreamSpec,
    TrainSpec,
    dedupe_factor_model_sweep,
    fig3_session_histogram,
    fig4_duplication,
    fig7_end_to_end,
    fig8_iteration_breakdown,
    fig9_ablation,
    fig10_reader_cpu,
    partial_vs_exact,
    scribe_sharding_compression,
    single_node_speedup,
    table2_resource_util,
    table3_reader_bytes,
)
from .sim import build_scenario, scenario_names

__all__ = ["main", "build_parser"]

_WORKLOADS = {"RM1": rm1, "RM2": rm2, "RM3": rm3}


def _cmd_fig3(args) -> int:
    res = fig3_session_histogram(num_sessions=args.sessions_large, seed=args.seed)
    s = res.partition_stats
    print(f"partition mean samples/session : {s['mean']:.2f} (paper 16.5)")
    print(f"tail >1000                     : {s['tail_1000']:.0f} sessions")
    print(f"batch mean interleaved         : {res.batch_mean_interleaved:.2f} (paper 1.15)")
    print(f"batch mean clustered           : {res.batch_mean_clustered:.2f} (paper ~16.5)")
    return 0


def _cmd_fig4(args) -> int:
    rep = fig4_duplication(num_sessions=args.sessions_large, seed=args.seed)
    print(f"mean exact     : {rep.mean_exact:.3f} (paper 0.800)")
    print(f"mean partial   : {rep.mean_partial:.3f} (paper 0.839)")
    print(f"byte-wt exact  : {rep.byte_weighted_exact:.3f} (paper 0.816)")
    print(f"byte-wt partial: {rep.byte_weighted_partial:.3f} (paper 0.894)")
    return 0


def _cmd_fig7(args) -> int:
    rows = fig7_end_to_end(
        scale=args.scale, num_sessions=args.sessions, seed=args.seed
    )
    print("RM    trainer  reader  storage")
    for r in rows:
        print(
            f"{r.rm}   {r.trainer_x:6.2f}x {r.reader_x:6.2f}x "
            f"{r.storage_x:6.2f}x"
        )
    return 0


def _cmd_fig8(args) -> int:
    rows = fig8_iteration_breakdown(
        scale=args.scale, num_sessions=args.sessions, seed=args.seed
    )
    for r in rows:
        n = r.recd_normalized
        bt = r.baseline.total
        print(
            f"{r.rm}: emb {r.baseline.emb_lookup / bt:.2f}->{n['emb_lookup']:.2f} "
            f"gemm {r.baseline.gemm / bt:.2f}->{n['gemm']:.2f} "
            f"a2a {r.baseline.a2a / bt:.2f}->{n['a2a']:.2f} "
            f"other {r.baseline.other / bt:.2f}->{n['other']:.2f}"
        )
    return 0


def _cmd_fig9(args) -> int:
    for s in fig9_ablation(scale=args.scale, num_sessions=args.sessions,
                           seed=args.seed):
        print(f"{s.label:24s} {s.normalized:6.2f}x")
    return 0


def _cmd_fig10(args) -> int:
    for r in fig10_reader_cpu(scale=args.scale, num_sessions=args.sessions,
                              seed=args.seed):
        n = r.recd_normalized
        print(
            f"{r.rm}: fill->{n['fill']:.2f} convert->{n['convert']:.2f} "
            f"process->{n['process']:.2f} total->{n['total']:.2f}"
        )
    return 0


def _cmd_table2(args) -> int:
    for r in table2_resource_util(scale=args.scale, num_sessions=args.sessions,
                                  seed=args.seed):
        print(
            f"{r.config:18s} qps {r.norm_qps:5.2f} "
            f"max {100 * r.max_mem_util:5.1f}% avg {100 * r.avg_mem_util:5.1f}% "
            f"eff {r.norm_compute_efficiency:5.2f}"
        )
    return 0


def _cmd_table3(args) -> int:
    for r in table3_reader_bytes(scale=args.scale, num_sessions=args.sessions,
                                 seed=args.seed):
        print(
            f"{r.config:14s} read {r.read_bytes / 2**20:8.2f} MB  "
            f"send {r.send_bytes / 2**20:8.2f} MB"
        )
    return 0


def _cmd_scribe(args) -> int:
    res = scribe_sharding_compression(
        scale=args.scale, num_sessions=args.sessions, seed=args.seed
    )
    print(f"random  : {res['random']:.2f}x")
    print(f"session : {res['session']:.2f}x")
    return 0


def _cmd_single_node(args) -> int:
    res = single_node_speedup(
        scale=args.scale, num_sessions=args.sessions, seed=args.seed
    )
    print(f"speedup: {res['speedup']:.2f}x (paper 2.18x)")
    return 0


def _cmd_dedupe_model(args) -> int:
    for p in dedupe_factor_model_sweep(seed=args.seed):
        print(
            f"S={p.samples_per_session:<4.0f} d={p.d:<5.2f} "
            f"modeled {p.modeled:6.2f} measured {p.measured:6.2f}"
        )
    return 0


def _cmd_partial(args) -> int:
    res = partial_vs_exact(num_sessions=args.sessions, seed=args.seed)
    print(f"exact factor   : {res.exact_factor:.2f}x")
    print(f"partial factor : {res.partial_factor:.2f}x")
    return 0


def _spec_from_args(
    args,
    *,
    shared: bool = False,
    rm: str | None = None,
    recd: bool | None = None,
    scale: float | None = None,
    name: str | None = None,
    weight: float = 1.0,
    dedup: bool | None = None,
    **overrides,
) -> JobSpec:
    """One :class:`JobSpec` from the spec-derived argument groups.

    Shared by ``pipeline`` (one job) and ``multijob`` (clones and
    ``--job`` specs): the flags each argument group contributes map
    1:1 onto the spec the group is named after, and ``overrides`` are
    per-job ``key=value`` refinements keyed like ``_JOB_SPEC_KEYS``.

    With ``shared=True`` the pool-level knobs (``--num-readers``,
    ``--autoscale``/``--target-stall``/``--max-readers``) stay off the
    per-job spec — they size and scale the *shared pool*, which the
    multijob command passes to ``Session(width=..., scaling=...)``.
    """
    rm = args.rm if rm is None else rm
    recd = args.recd if recd is None else recd
    scale = args.scale if scale is None else scale
    dedup = args.dedup if dedup is None else dedup
    toggles = RecDToggles.full() if recd else RecDToggles.baseline()
    get = overrides.get
    retain = get("retain_partitions", args.retain_partitions)
    return JobSpec(
        data=DataSpec(
            workload=_WORKLOADS[rm](scale),
            toggles=toggles,
            num_sessions=get("num_sessions", args.sessions),
            num_partitions=get("num_partitions", args.num_partitions),
            seed=get("seed", args.seed),
        ),
        reader=ReaderSpec(
            num_readers=1 if shared else args.num_readers,
            prefetch_depth=args.prefetch_depth,
            executor=args.reader_executor,
            transport=args.transport,
            streaming=args.streaming,
            dedup=dedup,
        ),
        train=TrainSpec(
            train_epochs=get("train_epochs", args.train_epochs),
            train_batches=get("train_batches", args.train_batches),
            batch_size=get("batch_size", None),
        ),
        scaling=(
            ScalingSpec(
                target_stall=args.target_stall,
                max_readers=args.max_readers,
            )
            if args.autoscale and not shared
            else None
        ),
        retention=(
            RetentionSpec(window=retain) if retain is not None else None
        ),
        weight=weight,
        name=name,
    )


def _cmd_pipeline(args) -> int:
    res = Session(_spec_from_args(args)).run()
    mode = "RecD" if args.recd else "baseline"
    print(f"{args.rm} ({mode}):")
    print(f"  samples landed      : {res.samples_landed}")
    print(
        f"  partitions          : {len(res.partitions)} "
        f"({res.partition.num_rows} rows), {res.config.train_epochs} epoch(s)"
    )
    print(f"  scribe compression  : {res.scribe_compression:.2f}x")
    print(f"  storage compression : {res.storage_compression:.2f}x")
    print(f"  reader throughput   : {res.reader_qps:,.0f} samples/cpu-s")
    print(f"  trainer throughput  : {res.trainer_qps:,.0f} samples/s")
    fleet = res.fleet
    if fleet is not None:
        print(
            f"  reader fleet        : {len(fleet.workers)} workers "
            f"({fleet.executor_used}), modeled wall "
            f"{fleet.modeled_wall_seconds * 1e3:.1f} ms, queue wait "
            f"put {fleet.queue.put_wait * 1e3:.1f} ms / "
            f"get {fleet.queue.get_wait * 1e3:.1f} ms"
        )
        merged = fleet.merged
        if merged.bytes_copied or merged.copies_avoided:
            print(
                f"  transport           : "
                f"copied {merged.bytes_copied:,} B / "
                f"avoided {merged.copies_avoided:,} B, transport wait "
                f"{fleet.queue.transport * 1e3:.1f} ms, delivered wall "
                f"{fleet.modeled_delivered_wall_seconds * 1e3:.1f} ms"
            )
    ov = res.overlap
    if ov is not None:
        mode = "streaming" if ov.streaming else "materialized"
        print(
            f"  overlap ({mode[:6]})  : reader-stall "
            f"{100 * ov.reader_stall_fraction:.1f}% / trainer "
            f"{100 * ov.trainer_stall_fraction:.1f}% / other "
            f"{100 * ov.other_fraction:.1f}% of "
            f"{ov.wall_seconds * 1e3:.1f} ms wall"
        )
        if ov.decoded_bytes:
            print(
                f"  bytes               : read {ov.read_bytes:,}, "
                f"decoded {ov.decoded_bytes:,}, expanded "
                f"{ov.expanded_bytes:,} (saved {ov.bytes_saved:,}, "
                f"{ov.dedupe_byte_factor:.2f}x)"
            )
    if res.dropped_partitions:
        print(
            f"  retention           : window {args.retain_partitions}, "
            f"dropped {', '.join(res.dropped_partitions)}; live "
            f"{', '.join(res.epoch_partitions[-1])}"
        )
    trace = res.scaling
    if trace is not None:
        converged = (
            f"converged at epoch {trace.converged_epoch}"
            if trace.converged_epoch is not None
            else "did not converge"
        )
        print(
            f"  autoscale           : target reader-stall "
            f"<= {trace.target_stall:.2f}, {converged}, "
            f"final width {trace.final_width}"
        )
        for d in trace.decisions:
            print(
                f"    epoch {d.epoch}: width {d.width_before:3d} "
                f"stall {d.reader_stall_fraction:.2f}/"
                f"{d.trainer_stall_fraction:.2f} -> {d.action:6s} "
                f"-> {d.width_after}"
            )
    return 0


#: keys a ``--job`` spec may set, mapped to (spec-override key, cast)
_JOB_SPEC_KEYS = {
    "seed": ("seed", int),
    "sessions": ("num_sessions", int),
    "epochs": ("train_epochs", int),
    "batches": ("train_batches", int),
    "partitions": ("num_partitions", int),
    "batch_size": ("batch_size", int),
    "retain": ("retain_partitions", int),
}


def _parse_job_spec(spec: str, args, name: str) -> JobSpec:
    """One ``--job`` spec -> a :class:`JobSpec`.

    Format: ``RM[:recd|baseline][:key=value ...]``, e.g.
    ``RM2:recd:sessions=80:seed=3:weight=2``.  Unset keys inherit the
    subcommand's argument-group defaults
    (``--scale/--sessions/--seed/--train-epochs/...``).
    """
    parts = spec.split(":")
    rm = parts[0].upper()
    if rm not in _WORKLOADS:
        raise SystemExit(
            f"--job {spec!r}: workload must be one of "
            f"{sorted(_WORKLOADS)}, got {parts[0]!r}"
        )
    scale = args.scale
    recd = False
    weight = 1.0
    dedup = None
    kw = {}
    for token in parts[1:]:
        if token == "recd":
            recd = True
        elif token == "baseline":
            recd = False
        elif token == "dedup":
            dedup = True
        elif "=" in token:
            key, value = token.split("=", 1)
            if key == "scale":
                scale = float(value)
            elif key == "weight":
                weight = float(value)
            elif key in _JOB_SPEC_KEYS:
                field, cast = _JOB_SPEC_KEYS[key]
                kw[field] = cast(value)
            else:
                raise SystemExit(
                    f"--job {spec!r}: unknown key {key!r}; known: "
                    f"scale, weight, {', '.join(sorted(_JOB_SPEC_KEYS))}"
                )
        else:
            raise SystemExit(
                f"--job {spec!r}: unknown token {token!r} (expected "
                "'recd', 'baseline', 'dedup', or key=value)"
            )
    return _spec_from_args(
        args,
        shared=True,
        rm=rm,
        recd=recd,
        scale=scale,
        name=name,
        weight=weight,
        dedup=dedup,
        **kw,
    )


def _cmd_multijob(args) -> int:
    if args.job:
        specs = [
            _parse_job_spec(spec, args, f"job{i}")
            for i, spec in enumerate(args.job)
        ]
        labels = [spec.split(":")[0].upper() for spec in args.job]
    elif args.jobs <= 0:
        raise SystemExit(f"--jobs must be positive, got {args.jobs}")
    else:
        specs = [
            _spec_from_args(
                args, shared=True, seed=args.seed + i, name=f"job{i}"
            )
            for i in range(args.jobs)
        ]
        labels = [args.rm] * args.jobs

    res = Session(
        specs,
        width=args.num_readers,
        policy=args.policy,
        scaling=(
            ScalingSpec(
                target_stall=args.target_stall,
                max_readers=args.max_readers,
            )
            if args.autoscale
            else None
        ),
    ).run()
    tier = res.tier
    print(
        f"shared reader tier: {len(res.jobs)} jobs, width "
        f"{args.num_readers}, policy {tier.policy}"
    )
    for rnd in tier.rounds:
        alloc = " ".join(
            f"{name}={w}" for name, w in sorted(rnd.allocation.items())
        )
        print(
            f"  round {rnd.index}: width {rnd.width:3d}  {alloc}  "
            f"wall {rnd.modeled_wall_seconds * 1e3:.2f} ms"
        )
    agg = tier.aggregate
    print(
        f"  modeled wall {tier.modeled_wall_seconds * 1e3:.2f} ms, "
        f"aggregate reader-stall {100 * agg.reader_stall_fraction:.1f}% / "
        f"trainer {100 * agg.trainer_stall_fraction:.1f}%"
    )
    trace = tier.scaling
    if trace is not None:
        converged = (
            f"converged at round {trace.converged_epoch}"
            if trace.converged_epoch is not None
            else "did not converge"
        )
        print(
            f"  autoscale: target aggregate stall <= "
            f"{trace.target_stall:.2f}, {converged}, final width "
            f"{trace.final_width}"
        )
    for label, job in zip(labels, res.jobs):
        mode = "RecD" if job.config.toggles.o3_ikjt else "baseline"
        ov = job.overlap
        print(
            f"{job.name} ({label}, {mode}): "
            f"{len(job.training.iterations)} steps over "
            f"{len(job.epoch_partitions)} epoch(s), "
            f"reader-stall {100 * ov.reader_stall_fraction:.1f}% / "
            f"trainer {100 * ov.trainer_stall_fraction:.1f}%, "
            f"{job.fleet.merged.samples} samples read"
        )
    return 0


def _cmd_stream(args) -> int:
    """Run N streamed job clones through the live loop and report
    landing progress plus freshness percentiles; with ``--verify``,
    assert the losses are bit-identical to a land-everything-first
    baseline (exit 1 on divergence)."""
    if args.jobs <= 0:
        raise SystemExit(f"--jobs must be positive, got {args.jobs}")
    stream = StreamSpec(
        interval_seconds=args.stream_interval,
        land_latency_seconds=args.land_latency,
        rows_per_file=args.stream_rows_per_file,
    )

    def build_session() -> Session:
        specs = [
            _spec_from_args(
                args, shared=True, seed=args.seed + i, name=f"job{i}"
            ).with_(stream=stream)
            for i in range(args.jobs)
        ]
        return Session(
            specs,
            width=args.num_readers,
            policy=args.policy,
            scaling=(
                ScalingSpec(
                    target_stall=args.target_stall,
                    max_readers=args.max_readers,
                )
                if args.autoscale
                else None
            ),
            freshness_slo=args.freshness_slo,
        )

    session = build_session()
    res = session.run()
    tier = res.tier
    mode = "RecD" if args.recd else "baseline"
    print(
        f"live loop: {len(res.jobs)} x {args.rm} ({mode}), width "
        f"{args.num_readers}, policy {tier.policy}, interval "
        f"{args.stream_interval:g} s + latency {args.land_latency:g} s"
    )
    for job in res.jobs:
        lander = session.runtime(job.name).lander
        fresh = tier.job_freshness(job.name)
        window = (
            f", window {args.retain_partitions}"
            f" (dropped {len(job.dropped_partitions)})"
            if args.retain_partitions is not None
            else ""
        )
        print(
            f"  {job.name}: landed {lander.landed_count}/"
            f"{lander.num_partitions} micro-partitions{window}, "
            f"{len(job.epoch_partitions)} epoch(s), "
            f"{len(job.training.iterations)} steps, freshness "
            f"p50 {fresh.p50_lag_seconds:.2f} s / "
            f"p99 {fresh.p99_lag_seconds:.2f} s"
        )
    fresh = tier.freshness
    slo_note = (
        f" (SLO target {args.freshness_slo:g} s)"
        if args.freshness_slo is not None
        else ""
    )
    print(
        f"  clock {session.tier.clock:.2f} modeled s over "
        f"{len(tier.rounds)} rounds; tier freshness "
        f"p50 {fresh.p50_lag_seconds:.2f} s / "
        f"p99 {fresh.p99_lag_seconds:.2f} s / "
        f"max {fresh.max_lag_seconds:.2f} s across "
        f"{fresh.batches} batches{slo_note}"
    )
    if args.verify:
        clean = build_session()
        clean.prepare()
        clean.land_all_streams()
        clean.tier.run()
        base = clean.collect()
        diverged = sorted(
            job.name
            for job in res.jobs
            if list(job.training.losses)
            != list(base.job(job.name).training.losses)
        )
        if diverged:
            print(
                "VERIFY FAILED: live-loop losses diverged from the "
                f"land-everything-first baseline for {diverged}"
            )
            return 1
        print(
            f"verify: {len(res.jobs)} job loss trajectories "
            "bit-identical to the land-everything-first baseline"
        )
    return 0


def _cmd_simulate(args) -> int:
    scenario = build_scenario(
        args.scenario, seed=args.seed, scale=args.scale
    )
    runner = scenario.runner()
    res = runner.run()
    print(f"scenario {scenario.name}: {scenario.description}")
    print(
        f"  jobs {len(res.slo.jobs)}, width {scenario.width}, "
        f"seed {args.seed}"
    )
    print("fault trace:")
    if not res.trace:
        print("  (clean run — no events fired)")
    for ev in res.trace:
        detail = ", ".join(
            f"{k}={v}"
            for k, v in ev.items()
            if k not in ("round", "job", "event")
        )
        print(
            f"  round {ev['round']}: {ev['event']:12s} {ev['job']}"
            + (f"  ({detail})" if detail else "")
        )
    slo = res.slo
    print("SLO report:")
    print(
        f"  wall p50 {slo.p50_wall_seconds * 1e3:8.2f} ms  "
        f"p99 {slo.p99_wall_seconds * 1e3:8.2f} ms  "
        f"total {slo.total_wall_seconds * 1e3:8.2f} ms"
    )
    print(
        f"  goodput {slo.goodput_batches_per_second:,.0f} batches/s  "
        f"useful-cpu {100 * slo.useful_cpu_fraction:.1f}%  "
        f"max starved rounds {slo.max_starved_rounds}"
    )
    print(
        f"  churn: {slo.crashes} crash(es), "
        f"{slo.straggler_shards} straggler shard(s), "
        f"{slo.preemptions} preemption(s)"
    )
    if slo.freshness.batches:
        print(
            f"  freshness p50 {slo.freshness_p50_seconds:8.2f} s  "
            f"p99 {slo.freshness_p99_seconds:8.2f} s  "
            f"max {slo.freshness.max_lag_seconds:8.2f} s  "
            f"({slo.freshness.batches} streamed batches)"
        )
    for j in slo.jobs:
        print(
            f"  {j.job:8s} rounds {j.admitted_round}-{j.finished_round}  "
            f"wall {j.wall_seconds * 1e3:8.2f} ms  "
            f"queue {100 * j.queue_fraction:5.1f}%  "
            f"epochs {j.epochs}  batches {j.batches}"
        )
    if args.verify:
        base = runner.baseline()
        diverged = sorted(
            name for name in base if res.losses.get(name) != base[name]
        )
        if diverged:
            print(f"VERIFY FAILED: losses diverged for {diverged}")
            return 1
        replay = scenario.runner().run()
        if replay.fingerprint() != res.fingerprint():
            print("VERIFY FAILED: replaying the seed changed the result")
            return 1
        print(
            f"verify: {len(base)} job loss trajectories bit-identical "
            "to the clean baseline; replay fingerprint identical"
        )
    return 0


def _cmd_experiments(args) -> int:
    """Dispatch ``repro experiments {run,list,query,report}``."""
    if args.exp_command == "list":
        for name in sorted(PROFILES):
            profile = PROFILES[name]
            print(f"{name}: {profile.description} "
                  f"({profile.num_runs} runs)")
            for grid in profile.grids:
                points = expand_grid(grid)
                print(f"  {grid.name} ({len(points)} points): "
                      f"{grid.description}")
                if args.verbose:
                    for p in points:
                        print(f"    {p.run_id}  {p.label}")
        return 0

    store = RunStore(args.store)
    if args.exp_command == "run":
        profile = get_profile(args.profile)
        if args.experiment is not None:
            outcome = run_grid(
                profile.grid(args.experiment),
                store,
                profile=profile.name,
                resume=args.resume,
                progress=print,
            )
        else:
            outcome = run_profile(
                profile, store, resume=args.resume, progress=print
            )
        print(
            f"profile {profile.name}: executed {len(outcome.executed)}, "
            f"skipped {len(outcome.skipped)} (store: {store.path})"
        )
        return 0
    if args.exp_command == "query":
        records = store.query(
            experiment=args.experiment,
            label=args.label,
            profile=args.profile,
        )
        if not records:
            print("no matching runs", file=sys.stderr)
            return 1
        for r in records:
            print(f"{r.run_id}  {r.experiment}/{r.label}  "
                  f"[{r.kind}{'/' + r.profile if r.profile else ''}]  "
                  f"{r.created_at}")
            if args.metric is not None:
                value = r.metrics.get(args.metric)
                print(f"  {args.metric} = "
                      f"{value if value is not None else '(not recorded)'}")
            elif args.verbose:
                for name in sorted(r.metrics):
                    print(f"  {name} = {r.metrics[name]:.6g}")
        return 0
    if args.exp_command == "report":
        print(render_report(store, args.profile), end="")
        return 0
    raise SystemExit(f"unknown experiments command {args.exp_command!r}")


_COMMANDS = {
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "ablation": _cmd_fig9,
    "fig10": _cmd_fig10,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "scribe": _cmd_scribe,
    "single-node": _cmd_single_node,
    "dedupe-model": _cmd_dedupe_model,
    "partial": _cmd_partial,
    "pipeline": _cmd_pipeline,
    "multijob": _cmd_multijob,
    "stream": _cmd_stream,
    "simulate": _cmd_simulate,
    "experiments": _cmd_experiments,
}


def _add_data_args(p, *, shared: bool) -> None:
    """The ``DataSpec`` argument group (what lands)."""
    g = p.add_argument_group(
        "data (DataSpec)", "workload, toggles, and landing shape"
    )
    suffix = " for --jobs clones" if shared else ""
    g.add_argument("--rm", choices=sorted(_WORKLOADS), default="RM1",
                   help=f"workload{suffix}")
    g.add_argument("--recd", action="store_true",
                   help=f"enable all RecD optimizations (O1-O7){suffix}")
    g.add_argument("--num-partitions", type=int, default=1,
                   help="time partitions the table lands as")


def _add_reader_args(p, *, shared: bool) -> None:
    """The ``ReaderSpec`` argument group (how the fleet scans)."""
    g = p.add_argument_group(
        "reader fleet (ReaderSpec)", "width, prefetch, executor, hand-off"
    )
    g.add_argument("--num-readers", type=int, default=8 if shared else 1,
                   help="shared pool width (workers serving every "
                        "registered job)" if shared else
                        "reader-fleet width (sharded workers)")
    g.add_argument("--prefetch-depth", type=int, default=2,
                   help="bounded prefetch per reader worker")
    g.add_argument("--reader-executor",
                   choices=("auto", "process", "inprocess", "async"),
                   default="auto",
                   help="fleet executor (batch stream is bit-identical "
                        "for all of them; async interleaves every shard "
                        "worker deterministically, so wide fleets run "
                        "fast)")
    g.add_argument("--transport", choices=("copy", "shm"), default="copy",
                   help="batch transport across the worker->trainer "
                        "boundary: copy charges a modeled per-batch "
                        "serialize cost, shm models the zero-copy "
                        "handoff (stream stays bit-identical)")
    g.add_argument("--streaming",
                   action=argparse.BooleanOptionalAction,
                   default=True,
                   help="stream reader batches into the trainers "
                        "(--no-streaming materializes first)")
    g.add_argument("--dedup", action="store_true",
                   help="ship session-deduplicated IKJT batches over "
                        "the prefetch queues; the trainer expands after "
                        "the pooled lookup (losses stay bit-identical, "
                        "bytes-decoded shrink)")


def _add_train_args(p, *, shared: bool) -> None:
    """The ``TrainSpec`` argument group (what the trainers run)."""
    g = p.add_argument_group(
        "training (TrainSpec)", "epochs and per-epoch batch caps"
    )
    per_job = " per job" if shared else ""
    g.add_argument("--train-epochs", type=int, default=2 if shared else 1,
                   help=f"epochs over the landed partitions{per_job}")
    g.add_argument("--train-batches", type=int, default=2,
                   help=f"per-epoch batch cap{per_job}")


def _add_scaling_args(p, *, shared: bool) -> None:
    """The ``ScalingSpec`` argument group (adaptive width)."""
    g = p.add_argument_group(
        "autoscaling (ScalingSpec)", "adaptive fleet/pool width"
    )
    what = "shared pool between rounds from the aggregate stall" if shared \
        else "reader fleet between epochs from the modeled overlap"
    g.add_argument("--autoscale", action="store_true",
                   help=f"resize the {what} "
                        "(--num-readers sets the initial width)")
    g.add_argument("--target-stall", type=float, default=0.10,
                   help="autoscaler target band: grow while the "
                        "reader-stall fraction exceeds this")
    g.add_argument("--max-readers", type=int, default=32,
                   help="autoscaler upper bound on the width")


def _add_retention_args(p) -> None:
    """The ``RetentionSpec`` argument group (rolling window)."""
    g = p.add_argument_group(
        "retention (RetentionSpec)", "rolling-window partition lifecycle"
    )
    g.add_argument("--retain-partitions", type=int, default=None,
                   help="rolling-window retention: keep at most this "
                        "many partitions live; between epochs the next "
                        "partition lands and the oldest is dropped")


def _add_stream_args(p) -> None:
    """The ``StreamSpec`` argument group plus live-loop knobs."""
    g = p.add_argument_group(
        "streaming (StreamSpec)",
        "continuous ingestion: micro-partitions land on the modeled "
        "clock while the jobs train (--num-partitions sets how many "
        "ticks the trace is cut into)",
    )
    g.add_argument("--stream-interval", type=float, default=60.0,
                   help="modeled seconds between micro-partition "
                        "sealing ticks")
    g.add_argument("--land-latency", type=float, default=5.0,
                   help="modeled scribe->ETL->Hive landing latency "
                        "after each tick seals")
    g.add_argument("--stream-rows-per-file", type=int, default=256,
                   help="DWRF rows-per-file for freshly streamed "
                        "micro-partitions (the between-tick compactor "
                        "rewrites them at the table's full size)")
    g.add_argument("--freshness-slo", type=float, default=None,
                   help="target p99 event-time -> trained-on lag in "
                        "modeled seconds; the tier boosts allocation "
                        "weight for jobs lagging past it")
    g.add_argument("--jobs", type=int, default=2,
                   help="streamed clones of the base job sharing the "
                        "pool (seeds seed..seed+N-1)")
    g.add_argument("--policy", choices=("stall_weighted", "round_robin"),
                   default="stall_weighted",
                   help="worker-allocation policy")
    g.add_argument("--verify", action="store_true",
                   help="also land the whole stream up front and rerun, "
                        "asserting the live loop's losses are "
                        "bit-identical (exit 1 on divergence)")


def _add_experiments_parser(sub) -> None:
    """The ``experiments`` subcommand tree (matrix harness + store).

    Unlike the figure subcommands, these take no ``--scale/--sessions``
    knobs: run shapes come from the declared profiles, which is what
    makes run IDs content-addressed and results comparable.
    """
    p = sub.add_parser(
        "experiments",
        help="experiment-matrix harness: run profiles, query the store",
    )
    esub = p.add_subparsers(dest="exp_command", required=True)

    run = esub.add_parser(
        "run", help="execute a profile's grids (resume-on-rerun)"
    )
    run.add_argument("--profile", choices=sorted(PROFILES),
                     default="smoke",
                     help="which run profile to execute")
    run.add_argument("--experiment", default=None, metavar="NAME",
                     help="run only this experiment of the profile")
    run.add_argument("--store", default=str(DEFAULT_STORE_PATH),
                     help="results store (SQLite) path")
    run.add_argument("--resume", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="skip runs already in the store "
                          "(--no-resume forces re-execution)")

    lst = esub.add_parser(
        "list", help="list profiles, their grids, and run points"
    )
    lst.add_argument("--verbose", "-v", action="store_true",
                     help="also print every point's run ID and label")

    query = esub.add_parser("query", help="inspect stored runs")
    query.add_argument("--store", default=str(DEFAULT_STORE_PATH),
                       help="results store (SQLite) path")
    query.add_argument("--experiment", default=None,
                       help="filter: experiment name")
    query.add_argument("--label", default=None,
                       help="filter: run label within the experiment")
    query.add_argument("--profile", default=None,
                       help="filter: recording profile")
    query.add_argument("--metric", default=None,
                       help="print this metric's value per run")
    query.add_argument("--verbose", "-v", action="store_true",
                       help="print every metric per run")

    report = esub.add_parser(
        "report", help="render paper figures from the store"
    )
    report.add_argument("--store", default=str(DEFAULT_STORE_PATH),
                        help="results store (SQLite) path")
    report.add_argument("--profile", default=None,
                        help="restrict to one profile's runs")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser.

    The ``pipeline`` and ``multijob`` subcommands share spec-derived
    argument groups — one group per spec dataclass in
    :mod:`repro.pipeline.spec` — so the CLI surface mirrors the
    :class:`~repro.pipeline.spec.JobSpec` composition 1:1.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate RecD (MLSys 2023) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    for name in _COMMANDS:
        if name == "experiments":
            _add_experiments_parser(sub)
            continue
        p = sub.add_parser(name, help=f"run the {name} experiment")
        p.add_argument("--scale", type=float, default=0.5,
                       help="workload scale factor (default 0.5)")
        p.add_argument("--sessions", type=int, default=200,
                       help="sessions in the generated partition")
        p.add_argument("--sessions-large", type=int, default=50_000,
                       help="sessions for statistics-only experiments")
        p.add_argument("--seed", type=int, default=0)
        if name in ("pipeline", "multijob", "stream"):
            shared = name in ("multijob", "stream")
            _add_data_args(p, shared=shared)
            _add_reader_args(p, shared=shared)
            _add_train_args(p, shared=shared)
            _add_scaling_args(p, shared=shared)
            _add_retention_args(p)
        if name == "stream":
            _add_stream_args(p)
        if name == "simulate":
            g = p.add_argument_group(
                "scenario (repro.sim)", "which chaos experiment to run"
            )
            g.add_argument("--scenario", choices=scenario_names(),
                           default="crash-resume",
                           help="named scenario from the catalog")
            g.add_argument("--verify", action="store_true",
                           help="also run the clean baseline and a "
                                "seed replay, asserting bit-identical "
                                "losses and fingerprint (exit 1 on "
                                "divergence)")
        if name == "multijob":
            g = p.add_argument_group(
                "job set (JobSpec)", "which jobs share the pool"
            )
            g.add_argument("--jobs", type=int, default=2,
                           help="run this many clones of the base job "
                                "(seeds seed..seed+N-1) when no --job "
                                "specs are given")
            g.add_argument("--job", action="append", default=[],
                           metavar="SPEC",
                           help="one job spec: RM[:recd|baseline][:dedup]"
                                "[:key=value ...] with keys scale, seed, "
                                "sessions, epochs, batches, partitions, "
                                "batch_size, retain, weight; repeatable")
            g.add_argument("--policy", choices=("stall_weighted",
                                                "round_robin"),
                           default="stall_weighted",
                           help="worker-allocation policy")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(_COMMANDS):
            print(name)
        return 0
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
