"""Environment fingerprinting for stored runs.

Every metric in this repo is *modeled* (cost-model seconds), so results
are bit-reproducible across machines — but only for a given code
version and toolchain.  The fingerprint recorded next to each run is
what lets a store query answer "were these two runs produced by the
same code on comparable stacks?" without re-running anything.
"""

from __future__ import annotations

import platform
import subprocess
import sys

__all__ = ["environment_fingerprint"]


def _git_commit() -> str:
    """The working tree's HEAD commit, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_fingerprint() -> dict:
    """The toolchain/code identity to record next to a run.

    Returns:
        A JSON-ready dict: python version, platform triple, numpy
        version, and the git commit (``"unknown"`` when not in a
        checkout).
    """
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "numpy": numpy.__version__,
        "git_commit": _git_commit(),
    }
