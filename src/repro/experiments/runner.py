"""The experiment driver: grids → :class:`~repro.pipeline.session.Session`
runs → the :class:`~repro.experiments.store.RunStore`.

:func:`run_point` executes one resolved :class:`~repro.experiments.grid.RunPoint`
end to end and records everything the run produced — the resolved spec
values (the provenance), the environment fingerprint, the loss
trajectory, the scalar headline metrics, and every report object in
serialized form.  :func:`run_grid` drives a whole matrix with
**resume-on-rerun**: a point whose content-addressed run ID is already
in the store is skipped, so re-invoking an interrupted or unchanged
sweep only executes what is missing.  :func:`run_profile` runs a named
profile's grids in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone

from ..metrics.slo import SLOReport
from ..pipeline.session import PipelineResult, Session
from .env import environment_fingerprint
from .grid import GridSpec, RunPoint, expand_grid
from .profiles import Profile, get_profile
from .store import RunRecord, RunStore

__all__ = [
    "RunOutcome",
    "run_point",
    "run_grid",
    "run_profile",
    "extract_metrics",
    "extract_reports",
]


def extract_metrics(result: PipelineResult, slo: SLOReport) -> dict:
    """The scalar headline metrics one run contributes to the store.

    These are the individually queryable numbers the regression gate
    compares against baselines; everything richer lives in the
    serialized reports (:func:`extract_reports`).

    Args:
        result: the session's single-job result.
        slo: the run's tier-level SLO scoreboard.

    Returns:
        Metric name → float.
    """
    losses = result.training.losses
    metrics = {
        "trainer_qps": result.trainer_qps,
        "reader_qps": result.reader_qps,
        "storage_compression": result.storage_compression,
        "scribe_compression": result.scribe_compression,
        "samples_landed": float(result.samples_landed),
        "loss_mean": sum(losses) / len(losses) if losses else 0.0,
        "loss_final": losses[-1] if losses else 0.0,
        "goodput_batches_per_second": slo.goodput_batches_per_second,
    }
    if slo.freshness.batches:
        # streamed live-loop runs only: the event-time → trained-on lag
        # percentiles the freshness SLO defends
        metrics["freshness_p50_seconds"] = slo.freshness_p50_seconds
        metrics["freshness_p99_seconds"] = slo.freshness_p99_seconds
    if result.fleet is not None:
        metrics["fleet_modeled_samples_per_second"] = (
            result.fleet.modeled_samples_per_second
        )
        metrics["fleet_modeled_wall_seconds"] = (
            result.fleet.modeled_wall_seconds
        )
        # the transport-floored delivery view: where wide-fleet scaling
        # bends under the copy transport (equals the modeled wall under
        # shm, whose transport charge is zero)
        metrics["fleet_delivered_samples_per_second"] = (
            result.fleet.modeled_delivered_samples_per_second
        )
        metrics["fleet_transport_wait_seconds"] = (
            result.fleet.queue.transport
        )
    if result.overlap is not None:
        metrics["reader_stall_fraction"] = (
            result.overlap.reader_stall_fraction
        )
        metrics["trainer_stall_fraction"] = (
            result.overlap.trainer_stall_fraction
        )
        # bytes-read vs bytes-decoded vs bytes-expanded: the dedup
        # transport savings the regression gate tracks
        metrics["reader_bytes_read"] = float(result.overlap.read_bytes)
        metrics["reader_bytes_decoded"] = float(
            result.overlap.decoded_bytes
        )
        metrics["reader_bytes_expanded"] = float(
            result.overlap.expanded_bytes
        )
        metrics["bytes_saved"] = float(result.overlap.bytes_saved)
        metrics["dedupe_byte_factor"] = result.overlap.dedupe_byte_factor
        # copy-vs-shm transport accounting (exactly one is non-zero)
        metrics["reader_bytes_copied"] = float(
            result.overlap.bytes_copied
        )
        metrics["reader_copies_avoided"] = float(
            result.overlap.copies_avoided
        )
    return metrics


def extract_reports(result: PipelineResult, session: Session) -> dict:
    """Every report object the run produced, serialized for the store.

    Args:
        result: the session's single-job result.
        session: the finished session (its tier holds the
            :class:`~repro.metrics.tier.TierReport` and per-job fleet
            reports).

    Returns:
        Report name → JSON-ready dict (``fleet``/``overlap``/``tier``/
        ``slo``/``training``, plus ``scaling`` for autoscaled runs).
    """
    tier_report = session.tier.report
    slo = SLOReport.from_run(tier_report, session.tier.job_fleets)
    reports = {
        "tier": tier_report.as_dict(),
        "slo": slo.as_dict(),
        "training": result.training.as_dict(),
    }
    if result.fleet is not None:
        reports["fleet"] = result.fleet.as_dict()
    if result.overlap is not None:
        reports["overlap"] = result.overlap.as_dict()
    if result.scaling is not None:
        reports["scaling"] = result.scaling.as_dict()
    return reports


def run_point(
    point: RunPoint,
    store: RunStore,
    *,
    profile: str = "",
    env: dict | None = None,
) -> RunRecord:
    """Execute one resolved point and record it (unconditionally).

    Args:
        point: the resolved run point.
        store: the store to record into.
        profile: profile name stamped onto the record.
        env: environment fingerprint to stamp (computed when ``None``).

    Returns:
        The recorded :class:`~repro.experiments.store.RunRecord`.
    """
    session = Session(point.job_spec())
    result = session.run()
    tier_report = session.tier.report
    slo = SLOReport.from_run(tier_report, session.tier.job_fleets)
    record = RunRecord(
        run_id=point.run_id,
        experiment=point.experiment,
        label=point.label,
        profile=profile,
        kind="grid",
        created_at=datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        spec=dict(point.values),
        env=env if env is not None else environment_fingerprint(),
        losses=tuple(result.training.losses),
        metrics=extract_metrics(result, slo),
        reports=extract_reports(result, session),
    )
    store.record(record)
    return record


@dataclass
class RunOutcome:
    """What one grid/profile invocation did.

    Attributes:
        executed: run IDs executed this invocation, in order.
        skipped: run IDs skipped because the store already had them
            (the resume-on-rerun path).
        records: every point's record — freshly executed or loaded from
            the store — in expansion order.
    """

    executed: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    records: list = field(default_factory=list)

    def merge(self, other: "RunOutcome") -> None:
        """Fold another grid's outcome in (profile aggregation)."""
        self.executed.extend(other.executed)
        self.skipped.extend(other.skipped)
        self.records.extend(other.records)


def run_grid(
    grid: GridSpec,
    store: RunStore,
    *,
    profile: str = "",
    resume: bool = True,
    env: dict | None = None,
    progress=None,
) -> RunOutcome:
    """Drive one experiment matrix through the store.

    Args:
        grid: the matrix to expand and execute.
        store: the results store (also the resume ledger).
        profile: profile name stamped onto fresh records.
        resume: skip points whose run ID the store already has (pass
            ``False`` to force re-execution of everything).
        env: environment fingerprint shared across the grid's runs
            (computed once when ``None``).
        progress: optional ``callable(str)`` for per-point status lines.

    Returns:
        The grid's :class:`RunOutcome`.
    """
    if env is None:
        env = environment_fingerprint()
    say = progress if progress is not None else (lambda msg: None)
    outcome = RunOutcome()
    for point in expand_grid(grid):
        if resume and store.has(point.run_id):
            say(
                f"skip {grid.name}/{point.label} "
                f"({point.run_id}: already in store)"
            )
            outcome.skipped.append(point.run_id)
            outcome.records.append(store.get(point.run_id))
            continue
        say(f"run  {grid.name}/{point.label} ({point.run_id})")
        record = run_point(point, store, profile=profile, env=env)
        outcome.executed.append(point.run_id)
        outcome.records.append(record)
    return outcome


def run_profile(
    name_or_profile: str | Profile,
    store: RunStore,
    *,
    resume: bool = True,
    progress=None,
) -> RunOutcome:
    """Run every grid of a profile, in declaration order.

    Args:
        name_or_profile: a profile name (``"smoke"``/``"paper"``) or a
            :class:`~repro.experiments.profiles.Profile`.
        store: the results store.
        resume: skip points already in the store.
        progress: optional ``callable(str)`` for status lines.

    Returns:
        The merged :class:`RunOutcome` across the profile's grids.
    """
    profile = (
        get_profile(name_or_profile)
        if isinstance(name_or_profile, str)
        else name_or_profile
    )
    env = environment_fingerprint()
    outcome = RunOutcome()
    for grid in profile.grids:
        outcome.merge(
            run_grid(
                grid,
                store,
                profile=profile.name,
                resume=resume,
                env=env,
                progress=progress,
            )
        )
    return outcome
