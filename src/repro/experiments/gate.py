"""The store-backed regression gate: stored metrics vs committed baselines.

Because every gated metric is *modeled* (cost-model seconds), values
are bit-reproducible across machines, so baselines can live in the
repo (``benchmarks/baselines/{smoke,paper}.json``) and be compared on
any runner.  The tolerance absorbs intentional cost-model retuning,
not machine noise.

A baselines file is JSON:

.. code-block:: json

    {
      "defaults": {"tolerance": 0.2, "direction": "higher"},
      "metrics": {
        "fig7_throughput/rm=RM1,toggles=recd:trainer_qps": {
          "value": 123456.0
        }
      }
    }

A metric key is ``{experiment}/{label}:{metric}`` — the same
(experiment, label) identity the store indexes on.  Each entry may
override ``tolerance`` (fractional) and ``direction`` (``"higher"``
means bigger is better: regression when the stored value falls more
than ``tolerance`` below baseline; ``"lower"`` inverts).  ``--update``
(:func:`update_baselines`) rewrites values from the store while
preserving any per-metric overrides.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .store import RunStore

__all__ = [
    "GateResult",
    "load_baselines",
    "check_store",
    "update_baselines",
    "markdown_summary",
]

#: the headline metrics ``--update`` snapshots per (experiment, label)
GATED_METRICS = (
    "trainer_qps",
    "reader_qps",
    "storage_compression",
    "scribe_compression",
    "goodput_batches_per_second",
    "fleet_modeled_samples_per_second",
    # the transport-floored delivery throughput: where the copy
    # transport's serial per-batch handoff bends wide-fleet scaling
    "fleet_delivered_samples_per_second",
    # bytes-savings: expanded/decoded — 1.0 without dedup, > 1 with the
    # dedup hot path on; a drop means the transport savings regressed
    "dedupe_byte_factor",
    # tail event-time → trained-on lag for streamed live-loop runs:
    # the freshness SLO the tier's lag-boosted weights defend
    "freshness_p99_seconds",
)

_DIRECTIONS = ("higher", "lower")

#: metrics where smaller is better; ``update_baselines`` stamps these
#: as ``direction: lower`` unless the entry already overrides it
_LOWER_IS_BETTER = ("freshness_p99_seconds",)


def load_baselines(path: str | Path) -> dict:
    """Load and validate a baselines file.

    Raises:
        ValueError: on a malformed file, naming what is wrong.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(
            f"{path}: baselines must be an object with a 'metrics' key"
        )
    defaults = data.setdefault("defaults", {})
    direction = defaults.get("direction", "higher")
    if direction not in _DIRECTIONS:
        raise ValueError(
            f"{path}: defaults.direction must be one of {_DIRECTIONS}, "
            f"got {direction!r}"
        )
    for key, entry in data["metrics"].items():
        if ":" not in key or "/" not in key.split(":", 1)[0]:
            raise ValueError(
                f"{path}: metric key {key!r} is not "
                "'experiment/label:metric'"
            )
        if "value" not in entry:
            raise ValueError(f"{path}: metric {key!r} has no 'value'")
        if entry.get("direction", direction) not in _DIRECTIONS:
            raise ValueError(
                f"{path}: metric {key!r} direction must be one of "
                f"{_DIRECTIONS}"
            )
    return data


@dataclass
class GateRow:
    """One gated metric's comparison outcome.

    Attributes:
        key: the baseline key (``experiment/label:metric``).
        baseline: the committed value.
        value: the stored value (``None`` when the run or metric is
            missing from the store).
        tolerance: the fractional tolerance applied.
        direction: ``"higher"`` or ``"lower"`` (which way is better).
        status: ``"ok"``, ``"regression"``, or ``"missing"``.
    """

    key: str
    baseline: float
    value: float | None
    tolerance: float
    direction: str
    status: str

    @property
    def delta_fraction(self) -> float | None:
        """Fractional change vs baseline (positive = value above it)."""
        if self.value is None or self.baseline == 0:
            return None
        return (self.value - self.baseline) / abs(self.baseline)


@dataclass
class GateResult:
    """Every gated metric's row, plus the overall verdict.

    Attributes:
        rows: one :class:`GateRow` per baseline entry, in file order.
    """

    rows: list = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether any metric regressed or went missing."""
        return any(r.status != "ok" for r in self.rows)

    @property
    def regressions(self) -> list:
        """The rows that failed the gate."""
        return [r for r in self.rows if r.status != "ok"]


def _resolve(entry: dict, defaults: dict) -> tuple[float, str]:
    """One baseline entry's effective (tolerance, direction)."""
    return (
        float(entry.get("tolerance", defaults.get("tolerance", 0.2))),
        entry.get("direction", defaults.get("direction", "higher")),
    )


def check_store(
    store: RunStore, baselines: dict, *, profile: str | None = None
) -> GateResult:
    """Compare the store's latest runs against committed baselines.

    For each baseline key the *most recently recorded* run for its
    (experiment, label) — optionally restricted to one profile — is
    consulted.  A missing run or metric fails the gate: a sweep that
    silently stopped producing a number must not pass.

    Args:
        store: the results store to read.
        baselines: a loaded baselines dict (:func:`load_baselines`).
        profile: restrict lookups to runs recorded under this profile.

    Returns:
        The :class:`GateResult` (check :attr:`GateResult.failed`).
    """
    defaults = baselines.get("defaults", {})
    result = GateResult()
    for key, entry in baselines["metrics"].items():
        exp_label, metric = key.rsplit(":", 1)
        experiment, label = exp_label.split("/", 1)
        tolerance, direction = _resolve(entry, defaults)
        baseline = float(entry["value"])
        matches = store.query(
            experiment=experiment, label=label, profile=profile
        )
        value = None
        if matches:
            value = matches[-1].metrics.get(metric)
        if value is None:
            status = "missing"
        elif direction == "higher":
            status = (
                "regression"
                if value < baseline - tolerance * abs(baseline)
                else "ok"
            )
        else:
            status = (
                "regression"
                if value > baseline + tolerance * abs(baseline)
                else "ok"
            )
        result.rows.append(
            GateRow(
                key=key,
                baseline=baseline,
                value=value,
                tolerance=tolerance,
                direction=direction,
                status=status,
            )
        )
    return result


def update_baselines(
    store: RunStore,
    path: str | Path,
    *,
    profile: str | None = None,
    metrics: tuple = GATED_METRICS,
) -> dict:
    """Regenerate a baselines file's values from the store.

    Every (experiment, label) with runs in the store contributes its
    latest value for each of ``metrics`` it actually recorded.  An
    existing file's defaults and per-metric ``tolerance``/``direction``
    overrides are preserved; entries whose runs vanished from the store
    are dropped.

    Args:
        store: the results store to snapshot.
        path: the baselines file to write (created if absent).
        profile: restrict to runs recorded under this profile.
        metrics: the metric names to snapshot.

    Returns:
        The written baselines dict.
    """
    path = Path(path)
    old: dict = {"defaults": {"tolerance": 0.2, "direction": "higher"}}
    if path.exists():
        old = load_baselines(path)
    old_metrics = old.get("metrics", {})
    fresh: dict = {}
    for record in store.query(profile=profile, kind="grid"):
        for name in metrics:
            if name not in record.metrics:
                continue
            key = f"{record.experiment}/{record.label}:{name}"
            entry = {
                k: v
                for k, v in old_metrics.get(key, {}).items()
                if k in ("tolerance", "direction")
            }
            if name in _LOWER_IS_BETTER and "direction" not in entry:
                entry["direction"] = "lower"
            # query() orders by created_at, so later records win
            entry["value"] = record.metrics[name]
            fresh[key] = entry
    data = {
        "defaults": old.get("defaults", {}),
        "metrics": {k: fresh[k] for k in sorted(fresh)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def markdown_summary(result: GateResult, title: str = "Regression gate") -> str:
    """A metric-by-metric markdown table (for ``$GITHUB_STEP_SUMMARY``).

    Args:
        result: a :func:`check_store` result.
        title: the heading above the table.
    """
    lines = [
        f"## {title}",
        "",
        "| metric | baseline | value | Δ | tolerance | status |",
        "| --- | ---: | ---: | ---: | ---: | --- |",
    ]
    for row in result.rows:
        value = "missing" if row.value is None else f"{row.value:.6g}"
        delta = (
            "—"
            if row.delta_fraction is None
            else f"{row.delta_fraction:+.1%}"
        )
        mark = "✅" if row.status == "ok" else "❌"
        lines.append(
            f"| `{row.key}` | {row.baseline:.6g} | {value} | {delta} "
            f"| ±{row.tolerance:.0%} ({row.direction}) "
            f"| {mark} {row.status} |"
        )
    verdict = (
        f"**{len(result.regressions)} metric(s) failed.**"
        if result.failed
        else "**All metrics within tolerance.**"
    )
    lines += ["", verdict, ""]
    return "\n".join(lines)
