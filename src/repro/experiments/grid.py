"""Declarative config matrices over the :class:`~repro.pipeline.spec.JobSpec` surface.

A :class:`GridSpec` names an experiment and describes a matrix of runs
in *point space*: flat dicts mapping dotted spec paths
(``"data.num_sessions"``, ``"reader.num_readers"``,
``"faults.lost_fraction"``, …) to JSON-native values.  ``base`` holds
the values every run shares, each entry in ``axes`` sweeps one path
over a list of values (the matrix is their cartesian product),
``exclude`` filters drop matching combinations, and ``include`` adds
explicit extra points (GitHub-matrix semantics).  :func:`expand_grid`
resolves the matrix into deterministic :class:`RunPoint`\\ s.

Determinism is the load-bearing property: a point's :attr:`RunPoint.run_id`
is the SHA-256 of the canonical JSON of its fully resolved values (plus
the experiment name), so the same declared matrix always expands to the
same IDs — in the same order — on every machine.  That is what lets the
driver (:mod:`repro.experiments.runner`) skip runs already present in
the :class:`~repro.experiments.store.RunStore` and what makes a stored
run's provenance content-addressed.

Point space exists (instead of hashing ``JobSpec`` objects directly)
because workloads are constructed, not enumerated: a point names its
workload as ``{"workload.rm": "RM2", "workload.scale": 0.5}`` and its
toggles as ``"baseline"``/``"recd"`` (or a dict of O-flags), and
:func:`build_job_spec` rebuilds the exact :class:`JobSpec` from those
constructor inputs.  Everything else maps 1:1 onto spec fields.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields

from ..datagen.workloads import rm1, rm2, rm3
from ..pipeline.config import RecDToggles
from ..pipeline.spec import (
    CheckpointSpec,
    DataSpec,
    FaultSpec,
    JobSpec,
    ReaderSpec,
    RetentionSpec,
    ScalingSpec,
    StreamSpec,
    TrainSpec,
)

__all__ = ["GridSpec", "RunPoint", "expand_grid", "build_job_spec"]

#: workload constructors a point may name via ``"workload.rm"``
WORKLOADS = {"RM1": rm1, "RM2": rm2, "RM3": rm3}

#: spec sections reachable by dotted paths, mapped to their dataclasses
_SECTIONS = {
    "data": DataSpec,
    "reader": ReaderSpec,
    "train": TrainSpec,
    "scaling": ScalingSpec,
    "retention": RetentionSpec,
    "stream": StreamSpec,
    "checkpoint": CheckpointSpec,
    "faults": FaultSpec,
}

#: point keys that do not map onto a spec section field
_SYNTHETIC_KEYS = ("workload.rm", "workload.scale", "toggles", "weight", "label")


def _known_paths() -> list[str]:
    """Every dotted path a point may set, for validation messages."""
    paths = list(_SYNTHETIC_KEYS)
    for section, cls in _SECTIONS.items():
        for f in fields(cls):
            if section == "data" and f.name in ("workload", "toggles"):
                continue
            paths.append(f"{section}.{f.name}")
    return sorted(paths)


def _validate_path(path: str, where: str) -> None:
    """Reject a dotted path no spec field answers to, naming the grid."""
    if path in _SYNTHETIC_KEYS:
        return
    section, _, leaf = path.partition(".")
    cls = _SECTIONS.get(section)
    if cls is not None and leaf in {f.name for f in fields(cls)}:
        if section == "data" and leaf in ("workload", "toggles"):
            raise ValueError(
                f"{where}: set {path!r} via the synthetic keys "
                "'workload.rm'/'workload.scale'/'toggles', not directly"
            )
        return
    raise ValueError(
        f"{where}: unknown spec path {path!r}; known paths: "
        f"{', '.join(_known_paths())}"
    )


def _validate_value(path: str, value, where: str) -> None:
    """Reject values that would not survive the canonical-JSON hash."""
    try:
        encoded = json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"{where}: value for {path!r} is not JSON-native "
            f"({value!r}): {exc}"
        ) from None
    if json.loads(encoded) != value:
        raise ValueError(
            f"{where}: value for {path!r} does not round-trip through "
            f"JSON ({value!r}); use lists/dicts/str/int/float/bool"
        )


def canonical_json(values: Mapping) -> str:
    """The canonical (sorted-key, compact) JSON text of a point's values.

    This exact text is what :func:`run_id_for` hashes, so it defines
    run identity: two points are the same run iff their canonical JSON
    is byte-identical.
    """
    return json.dumps(values, sort_keys=True, separators=(",", ":"))


def run_id_for(experiment: str, values: Mapping) -> str:
    """The content-addressed run ID for one resolved point.

    Args:
        experiment: the grid's experiment name (part of the identity —
            the same values under two experiments are two runs).
        values: the point's fully resolved dotted-path values.

    Returns:
        16 hex chars of SHA-256 over ``experiment`` + canonical JSON.
    """
    digest = hashlib.sha256(
        f"{experiment}\n{canonical_json(values)}".encode()
    )
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class RunPoint:
    """One fully resolved run of an experiment matrix.

    Attributes:
        experiment: the owning grid's name.
        values: the resolved dotted-path values (base + assignment).
        run_id: content-addressed identity (:func:`run_id_for`).
        label: short human-readable identity within the experiment —
            derived from the axis assignment (``"readers=4,rm=RM2"``),
            or the point's explicit ``"label"`` value.
    """

    experiment: str
    values: Mapping
    run_id: str
    label: str

    def job_spec(self) -> JobSpec:
        """The executable :class:`JobSpec` this point describes."""
        return build_job_spec(self.values)


@dataclass(frozen=True)
class GridSpec:
    """A declarative experiment matrix (GitHub-matrix semantics).

    Attributes:
        name: the experiment name runs are stored under.
        base: dotted-path values every run shares.
        axes: dotted path → swept values; the matrix is the cartesian
            product over every axis (in sorted path order).
        exclude: filters removing matrix combinations — a combination
            is dropped when *every* (path, value) pair of some filter
            matches its resolved values.
        include: explicit extra points, each merged over ``base`` and
            appended after the (filtered) product.
        description: one line for ``repro experiments list``.
    """

    name: str
    base: Mapping = field(default_factory=dict)
    axes: Mapping = field(default_factory=dict)
    exclude: tuple = ()
    include: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("GridSpec.name must be non-empty")
        for path, value in self.base.items():
            _validate_path(path, f"GridSpec({self.name!r}).base")
            _validate_value(path, value, f"GridSpec({self.name!r}).base")
        for path, values in self.axes.items():
            where = f"GridSpec({self.name!r}).axes[{path!r}]"
            _validate_path(path, where)
            if not isinstance(values, Sequence) or isinstance(values, str):
                raise ValueError(f"{where}: axis values must be a sequence")
            if not values:
                raise ValueError(f"{where}: axis must sweep >= 1 value")
            for value in values:
                _validate_value(path, value, where)
        for i, point in enumerate(tuple(self.exclude) + tuple(self.include)):
            kind = "exclude" if i < len(self.exclude) else "include"
            for path, value in point.items():
                where = f"GridSpec({self.name!r}).{kind}"
                _validate_path(path, where)
                _validate_value(path, value, where)


def _short(path: str) -> str:
    """The label-friendly last segment of a dotted path."""
    return path.rsplit(".", 1)[-1]


def _label_for(values: Mapping, keys: Sequence[str]) -> str:
    """A point's label from its distinguishing keys (sorted by path)."""
    explicit = values.get("label")
    if explicit is not None:
        return str(explicit)
    if not keys:
        return "base"
    return ",".join(f"{_short(k)}={values[k]}" for k in sorted(keys))


def expand_grid(grid: GridSpec) -> list[RunPoint]:
    """Resolve a grid into its deterministic list of run points.

    The axis product is walked in sorted-axis-path order with each
    axis's values in declaration order, excludes filter the product,
    and includes append — so the returned list (points *and* their
    order) is a pure function of the grid declaration.

    Args:
        grid: the declared matrix.

    Returns:
        The resolved :class:`RunPoint`\\ s, deduplicated by ``run_id``
        (first occurrence wins).
    """
    axis_paths = sorted(grid.axes)
    points: list[RunPoint] = []
    seen: set[str] = set()

    def _emit(values: dict, label_keys: Sequence[str]) -> None:
        """Append one resolved point unless its run_id already exists."""
        run_id = run_id_for(grid.name, values)
        if run_id in seen:
            return
        seen.add(run_id)
        points.append(
            RunPoint(
                experiment=grid.name,
                values=values,
                run_id=run_id,
                label=_label_for(values, label_keys),
            )
        )

    if axis_paths:  # include-only grids have no product to walk
        for combo in itertools.product(
            *(grid.axes[path] for path in axis_paths)
        ):
            values = dict(grid.base)
            values.update(zip(axis_paths, combo))
            if any(
                all(
                    values.get(path) == want
                    for path, want in filt.items()
                )
                for filt in grid.exclude
            ):
                continue
            _emit(values, axis_paths)
    for extra in grid.include:
        values = dict(grid.base)
        values.update(extra)
        _emit(values, list(extra))
    return points


def _build_toggles(value) -> RecDToggles:
    """A point's ``"toggles"`` value → :class:`RecDToggles`."""
    if value == "baseline":
        return RecDToggles.baseline()
    if value == "recd":
        return RecDToggles.full()
    if isinstance(value, Mapping):
        return RecDToggles(**value)
    raise ValueError(
        f"toggles must be 'baseline', 'recd', or a dict of O-flags, "
        f"got {value!r}"
    )


def _build_faults(kwargs: dict) -> FaultSpec:
    """Fault kwargs with JSON-string epoch keys → :class:`FaultSpec`."""
    if "crashes" in kwargs:
        kwargs["crashes"] = {
            int(epoch): tuple(shards)
            for epoch, shards in kwargs["crashes"].items()
        }
    if "stragglers" in kwargs:
        kwargs["stragglers"] = {
            int(epoch): {int(pos): f for pos, f in factors.items()}
            for epoch, factors in kwargs["stragglers"].items()
        }
    return FaultSpec(**kwargs)


def build_job_spec(values: Mapping) -> JobSpec:
    """Build the :class:`JobSpec` a resolved point describes.

    Args:
        values: dotted-path values (a :attr:`RunPoint.values` mapping).
            Unset paths take the spec dataclasses' own defaults; the
            optional sections (``scaling``/``retention``/``checkpoint``/
            ``faults``) stay ``None`` unless some path touches them.

    Returns:
        The executable spec — rebuilt purely from constructor inputs,
        so the same values always yield an equal spec.

    Raises:
        ValueError: on an unknown path, unknown workload, or any spec
            ``__post_init__`` validation failure.
    """
    sections: dict[str, dict] = {name: {} for name in _SECTIONS}
    rm, scale, toggles, weight = "RM1", 0.5, "baseline", 1.0
    for path in sorted(values):
        _validate_path(path, "build_job_spec")
        value = values[path]
        if path == "workload.rm":
            rm = value
        elif path == "workload.scale":
            scale = value
        elif path == "toggles":
            toggles = value
        elif path == "weight":
            weight = value
        elif path == "label":
            pass  # display-only; never a spec field
        else:
            section, _, leaf = path.partition(".")
            if isinstance(value, list):
                value = tuple(value)
            sections[section][leaf] = value
    if rm not in WORKLOADS:
        raise ValueError(
            f"workload.rm must be one of {sorted(WORKLOADS)}, got {rm!r}"
        )
    data = sections["data"]
    if "transforms" in data:
        data["transforms"] = tuple(data["transforms"])
    return JobSpec(
        data=DataSpec(
            workload=WORKLOADS[rm](scale),
            toggles=_build_toggles(toggles),
            **data,
        ),
        reader=ReaderSpec(**sections["reader"]),
        train=TrainSpec(**sections["train"]),
        scaling=(
            ScalingSpec(**sections["scaling"])
            if sections["scaling"]
            else None
        ),
        retention=(
            RetentionSpec(**sections["retention"])
            if sections["retention"]
            else None
        ),
        stream=(
            StreamSpec(**sections["stream"])
            if sections["stream"]
            else None
        ),
        checkpoint=(
            CheckpointSpec(**sections["checkpoint"])
            if sections["checkpoint"]
            else None
        ),
        faults=(
            _build_faults(sections["faults"]) if sections["faults"] else None
        ),
        weight=weight,
    )
