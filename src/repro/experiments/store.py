"""The results store: every run's provenance and reports, queryable.

A :class:`RunStore` is a single SQLite file (default
``benchmarks/results/store/runs.sqlite``) holding one row per run plus
a flat ``metrics`` table for the scalar headline numbers.  The store is
the system of record the figure/table drivers and the regression gate
read from; the free-form ``.txt`` files under ``benchmarks/results/``
are rendered *views* of what lives here.

Two properties carry the harness:

* **Provenance is the key.**  A grid run's primary key is its
  content-addressed :attr:`RunRecord.run_id`
  (:func:`~repro.experiments.grid.run_id_for` over the resolved point
  values), and the row stores those exact values — so
  :meth:`RunStore.has` is what gives the driver resume-on-rerun, and
  :func:`~repro.experiments.grid.build_job_spec` over a stored row's
  ``spec`` rebuilds the precise :class:`~repro.pipeline.spec.JobSpec`
  that produced it.
* **Writes are idempotent.**  ``INSERT OR REPLACE`` on the run ID:
  re-recording a run overwrites its row instead of duplicating it.

Every method opens its own connection, so a store handle is cheap and
safe to share across pytest workers and CLI invocations.
"""

from __future__ import annotations

import json
import sqlite3
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["RunRecord", "RunStore", "DEFAULT_STORE_PATH"]

#: where the CLI and CI put the store unless told otherwise
DEFAULT_STORE_PATH = Path("benchmarks/results/store/runs.sqlite")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id     TEXT PRIMARY KEY,
    experiment TEXT NOT NULL,
    label      TEXT NOT NULL,
    profile    TEXT NOT NULL DEFAULT '',
    kind       TEXT NOT NULL DEFAULT 'grid',
    created_at TEXT NOT NULL DEFAULT '',
    spec       TEXT NOT NULL DEFAULT '{}',
    env        TEXT NOT NULL DEFAULT '{}',
    losses     TEXT NOT NULL DEFAULT '[]',
    reports    TEXT NOT NULL DEFAULT '{}',
    artifact   TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS runs_experiment ON runs (experiment, label);
CREATE TABLE IF NOT EXISTS metrics (
    run_id TEXT NOT NULL,
    name   TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
"""


@dataclass(frozen=True)
class RunRecord:
    """One stored run: identity, provenance, and everything measured.

    Attributes:
        run_id: content-addressed identity (grid runs) or a stable name
            (``bench`` runs, keyed by benchmark node ID).
        experiment: owning experiment (grid name or benchmark module).
        label: short human-readable identity within the experiment.
        profile: the profile the run executed under (``"smoke"``,
            ``"paper"``, or ``""`` for ad-hoc runs).
        kind: ``"grid"`` for matrix runs, ``"bench"`` for benchmark
            scripts routing results through the store.
        created_at: ISO-8601 UTC timestamp of the recording.
        spec: the resolved dotted-path point values (grid runs) or the
            benchmark's parameters — the full provenance.
        env: the environment fingerprint
            (:func:`~repro.experiments.env.environment_fingerprint`).
        losses: the run's per-step loss trajectory (the bit-identity
            fingerprint; empty for runs without one).
        metrics: scalar headline numbers, individually queryable.
        reports: every report object the run produced, serialized
            (``fleet``/``overlap``/``tier``/``slo``/…, per producer).
        artifact: rendered text view of the run, when one exists.
    """

    run_id: str
    experiment: str
    label: str
    profile: str = ""
    kind: str = "grid"
    created_at: str = ""
    spec: Mapping = field(default_factory=dict)
    env: Mapping = field(default_factory=dict)
    losses: tuple = ()
    metrics: Mapping = field(default_factory=dict)
    reports: Mapping = field(default_factory=dict)
    artifact: str = ""

    def __post_init__(self) -> None:
        if not self.run_id:
            raise ValueError("RunRecord.run_id must be non-empty")
        if not self.experiment:
            raise ValueError("RunRecord.experiment must be non-empty")
        if self.kind not in ("grid", "bench"):
            raise ValueError(
                f"RunRecord.kind must be 'grid' or 'bench', got "
                f"{self.kind!r}"
            )
        for name, value in self.metrics.items():
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                raise ValueError(
                    f"RunRecord.metrics[{name!r}] must be a number, "
                    f"got {value!r}"
                )


class RunStore:
    """The SQLite-backed results store (see module docstring)."""

    def __init__(self, path: str | Path = DEFAULT_STORE_PATH):
        """Open (creating if needed) the store at ``path``.

        Args:
            path: the SQLite file; parent directories are created.
        """
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    def _connect(self) -> sqlite3.Connection:
        """A fresh connection (one per method call; see module doc)."""
        return sqlite3.connect(self.path)

    # -- writes --------------------------------------------------------------

    def record(self, record: RunRecord) -> None:
        """Persist one run, replacing any prior row with its ID."""
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO runs VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_id,
                    record.experiment,
                    record.label,
                    record.profile,
                    record.kind,
                    record.created_at,
                    json.dumps(dict(record.spec), sort_keys=True),
                    json.dumps(dict(record.env), sort_keys=True),
                    json.dumps(list(record.losses)),
                    json.dumps(dict(record.reports), sort_keys=True),
                    record.artifact,
                ),
            )
            conn.execute(
                "DELETE FROM metrics WHERE run_id = ?", (record.run_id,)
            )
            conn.executemany(
                "INSERT INTO metrics VALUES (?, ?, ?)",
                [
                    (record.run_id, name, float(value))
                    for name, value in record.metrics.items()
                ],
            )

    def delete(self, run_id: str) -> None:
        """Drop one run (and its metrics) if present."""
        with self._connect() as conn:
            conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))
            conn.execute(
                "DELETE FROM metrics WHERE run_id = ?", (run_id,)
            )

    # -- reads ---------------------------------------------------------------

    def has(self, run_id: str) -> bool:
        """Whether a run with this ID is already recorded (the driver's
        resume-on-rerun check)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        return row is not None

    def get(self, run_id: str) -> RunRecord:
        """Load one run by ID.

        Raises:
            KeyError: if no run with this ID is recorded.
        """
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if row is None:
                raise KeyError(f"no run {run_id!r} in {self.path}")
            metrics = dict(
                conn.execute(
                    "SELECT name, value FROM metrics WHERE run_id = ?",
                    (run_id,),
                ).fetchall()
            )
        return self._to_record(row, metrics)

    def query(
        self,
        experiment: str | None = None,
        label: str | None = None,
        profile: str | None = None,
        kind: str | None = None,
    ) -> list[RunRecord]:
        """Every recorded run matching the given filters.

        Args:
            experiment: keep runs of this experiment only.
            label: keep runs with this label only.
            profile: keep runs recorded under this profile only.
            kind: keep ``"grid"`` or ``"bench"`` runs only.

        Returns:
            Matching records ordered by (experiment, label, created_at)
            — so the *last* record per (experiment, label) is the most
            recently recorded one.
        """
        clauses, params = [], []
        for column, value in (
            ("experiment", experiment),
            ("label", label),
            ("profile", profile),
            ("kind", kind),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM runs" + where
                + " ORDER BY experiment, label, created_at, run_id",
                params,
            ).fetchall()
            out = []
            for row in rows:
                metrics = dict(
                    conn.execute(
                        "SELECT name, value FROM metrics "
                        "WHERE run_id = ?",
                        (row[0],),
                    ).fetchall()
                )
                out.append(self._to_record(row, metrics))
        return out

    def latest(self, experiment: str, label: str) -> RunRecord:
        """The most recently recorded run for (experiment, label).

        Raises:
            KeyError: if nothing matches.
        """
        matches = self.query(experiment=experiment, label=label)
        if not matches:
            raise KeyError(
                f"no runs for experiment={experiment!r} "
                f"label={label!r} in {self.path}"
            )
        return matches[-1]

    def experiments(self) -> list[str]:
        """Every distinct experiment name recorded, sorted."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT DISTINCT experiment FROM runs ORDER BY experiment"
            ).fetchall()
        return [r[0] for r in rows]

    def metric(
        self, name: str, experiment: str | None = None
    ) -> dict[str, float]:
        """One metric's value across runs, keyed by run ID.

        Args:
            name: the metric name.
            experiment: restrict to one experiment's runs when given.
        """
        sql = (
            "SELECT m.run_id, m.value FROM metrics m "
            "JOIN runs r ON r.run_id = m.run_id WHERE m.name = ?"
        )
        params: list = [name]
        if experiment is not None:
            sql += " AND r.experiment = ?"
            params.append(experiment)
        with self._connect() as conn:
            rows = conn.execute(sql, params).fetchall()
        return dict(rows)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _to_record(row: Iterable, metrics: Mapping) -> RunRecord:
        """One ``runs`` row + its metrics → a :class:`RunRecord`."""
        (
            run_id,
            experiment,
            label,
            profile,
            kind,
            created_at,
            spec,
            env,
            losses,
            reports,
            artifact,
        ) = row
        return RunRecord(
            run_id=run_id,
            experiment=experiment,
            label=label,
            profile=profile,
            kind=kind,
            created_at=created_at,
            spec=json.loads(spec),
            env=json.loads(env),
            losses=tuple(json.loads(losses)),
            metrics=dict(metrics),
            reports=json.loads(reports),
            artifact=artifact,
        )
