"""Store-backed figure/table drivers.

The classic drivers in :mod:`repro.pipeline.experiments` execute their
configurations inline every time they are called.  These ports read the
same figures out of the :class:`~repro.experiments.store.RunStore`
instead: run a profile once (``repro experiments run --profile smoke``),
then render any figure from the persisted records — no re-execution,
and the rendering is reproducible because the store rows carry full
provenance.

Each driver raises :class:`LookupError` with the exact command to run
when the store lacks its experiment, so a bare store fails with
instructions instead of an empty table.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profiles import _ABLATION_STAGES
from .store import RunRecord, RunStore

__all__ = [
    "fig7_from_store",
    "ablation_from_store",
    "fleet_scaling_from_store",
    "single_node_from_store",
    "render_report",
]


def _latest_by_label(
    store: RunStore, experiment: str, profile: str | None
) -> dict[str, RunRecord]:
    """Latest record per label for one experiment, or a LookupError
    telling the user how to populate the store."""
    out: dict[str, RunRecord] = {}
    for record in store.query(experiment=experiment, profile=profile):
        out[record.label] = record  # query orders oldest -> newest
    if not out:
        raise LookupError(
            f"store {store.path} has no {experiment!r} runs"
            + (f" for profile {profile!r}" if profile else "")
            + "; populate it with "
            "'repro experiments run --profile smoke' first"
        )
    return out


@dataclass(frozen=True)
class SpeedupRow:
    """One workload's RecD-vs-baseline speedups (the Fig 7 shape)."""

    rm: str
    trainer_x: float
    reader_x: float
    storage_x: float
    scribe_x: float


def fig7_from_store(
    store: RunStore, profile: str | None = None
) -> list[SpeedupRow]:
    """Fig 7 from stored runs: per-RM speedup ratios.

    Args:
        store: a store populated with the ``fig7_throughput`` grid.
        profile: restrict to one profile's runs.

    Raises:
        LookupError: when the store lacks the grid, or a workload is
            missing either its baseline or RecD endpoint.
    """
    records = _latest_by_label(store, "fig7_throughput", profile)
    by_rm: dict[str, dict[str, RunRecord]] = {}
    for record in records.values():
        rm = record.spec.get("workload.rm", "?")
        by_rm.setdefault(rm, {})[record.spec.get("toggles")] = record
    rows = []
    for rm in sorted(by_rm):
        pair = by_rm[rm]
        if "baseline" not in pair or "recd" not in pair:
            raise LookupError(
                f"fig7_throughput has no complete baseline/recd pair "
                f"for {rm}: labels {sorted(records)}"
            )
        base, recd = pair["baseline"].metrics, pair["recd"].metrics
        rows.append(
            SpeedupRow(
                rm=rm,
                trainer_x=recd["trainer_qps"] / base["trainer_qps"],
                reader_x=recd["reader_qps"] / base["reader_qps"],
                storage_x=(
                    recd["storage_compression"]
                    / base["storage_compression"]
                ),
                scribe_x=(
                    recd["scribe_compression"]
                    / base["scribe_compression"]
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class AblationStage:
    """One ablation stage's throughput (the Fig 9 shape)."""

    label: str
    qps: float
    normalized: float


def ablation_from_store(
    store: RunStore, profile: str | None = None
) -> list[AblationStage]:
    """Fig 9's cumulative staircase from stored runs, in stage order.

    Raises:
        LookupError: when the store lacks the grid or any stage.
    """
    records = _latest_by_label(store, "fig9_ablation", profile)
    stages = []
    base_qps: float | None = None
    for label, _ in _ABLATION_STAGES:
        if label not in records:
            raise LookupError(
                f"fig9_ablation is missing stage {label!r}; "
                f"stored labels: {sorted(records)}"
            )
        qps = records[label].metrics["trainer_qps"]
        if base_qps is None:
            base_qps = qps
        stages.append(
            AblationStage(
                label=label, qps=qps, normalized=qps / base_qps
            )
        )
    return stages


@dataclass(frozen=True)
class FleetScalingRow:
    """One fleet width's modeled scan throughput."""

    width: int
    modeled_samples_per_second: float
    speedup_vs_serial: float


def fleet_scaling_from_store(
    store: RunStore, profile: str | None = None
) -> list[FleetScalingRow]:
    """The fleet-width scaling curve from stored runs, narrowest first.

    Raises:
        LookupError: when the store lacks the grid.
    """
    records = _latest_by_label(store, "fleet_scaling", profile)
    by_width = {
        int(r.spec["reader.num_readers"]): r for r in records.values()
    }
    serial = by_width[min(by_width)].metrics[
        "fleet_modeled_samples_per_second"
    ]
    return [
        FleetScalingRow(
            width=width,
            modeled_samples_per_second=(
                by_width[width].metrics[
                    "fleet_modeled_samples_per_second"
                ]
            ),
            speedup_vs_serial=(
                by_width[width].metrics[
                    "fleet_modeled_samples_per_second"
                ]
                / serial
            ),
        )
        for width in sorted(by_width)
    ]


def single_node_from_store(
    store: RunStore, profile: str | None = None
) -> dict[str, dict[str, float]]:
    """Streaming-vs-materialized overlap attribution from stored runs.

    Returns:
        ``{"streaming": {...fractions...}, "materialized": {...}}``
        with each mode's wall-clock attribution (Fig 8's semantics:
        the time streaming overlaps away shows up as the materialized
        mode's ``other`` fraction).

    Raises:
        LookupError: when the store lacks the grid.
    """
    records = _latest_by_label(store, "single_node", profile)
    out: dict[str, dict[str, float]] = {}
    for record in records.values():
        mode = (
            "streaming"
            if record.spec.get("reader.streaming", True)
            else "materialized"
        )
        overlap = record.reports.get("overlap", {})
        out[mode] = dict(overlap.get("fractions", {}))
    return out


def render_report(
    store: RunStore, profile: str | None = None
) -> str:
    """Render every experiment present in the store as one text report.

    Experiments missing from the store are noted, not fatal — so a
    partially populated store still renders what it has.
    """
    sections: list[str] = []

    def _section(title: str, build) -> None:
        """Render one experiment, degrading to a note when absent."""
        lines = [title, "-" * len(title)]
        try:
            lines.extend(build())
        except LookupError as exc:
            lines.append(f"(not in store: {exc})")
        sections.append("\n".join(lines))

    _section(
        "Fig 7: end-to-end speedups (RecD / baseline)",
        lambda: [
            f"{r.rm}: trainer {r.trainer_x:.2f}x  reader "
            f"{r.reader_x:.2f}x  storage {r.storage_x:.2f}x  "
            f"scribe {r.scribe_x:.2f}x"
            for r in fig7_from_store(store, profile)
        ],
    )
    _section(
        "Fig 9: RM1 optimization staircase",
        lambda: [
            f"{s.label:<10} qps {s.qps:12.1f}  ({s.normalized:.2f}x)"
            for s in ablation_from_store(store, profile)
        ],
    )
    _section(
        "Fleet scaling: modeled scan throughput vs width",
        lambda: [
            f"width {r.width:>2}: "
            f"{r.modeled_samples_per_second:12.1f} samples/s  "
            f"({r.speedup_vs_serial:.2f}x vs serial)"
            for r in fleet_scaling_from_store(store, profile)
        ],
    )
    _section(
        "Single node: ingestion overlap attribution",
        lambda: [
            f"{mode:<12} "
            + "  ".join(
                f"{k}={v:.1%}" for k, v in sorted(fractions.items())
            )
            for mode, fractions in sorted(
                single_node_from_store(store, profile).items()
            )
        ],
    )
    return "\n\n".join(sections) + "\n"
