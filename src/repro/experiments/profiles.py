"""Run profiles: the named experiment suites the harness executes.

A :class:`Profile` bundles the grids behind the paper's figures at one
of two sizes:

* ``smoke`` — CI-sized: every experiment present, every axis swept,
  but at quarter workload scale and a small session count, so the full
  suite lands in a couple of minutes on a shared runner.  This is what
  the ``experiments-smoke`` CI job runs on every PR.
* ``paper`` — the full sweep the nightly benchmark workflow runs:
  half workload scale (the repo's standard figure-generation size),
  the full session count, and wider fleet sweeps.

Both profiles declare the *same experiments* — only ``base`` values and
axis extents differ — so a metric regression caught by the smoke gate
points at the same (experiment, label) the paper profile tracks.

The ablation grid is the showcase for ``include`` points: Fig 9's
stages pair a toggle set with a label (a cumulative O1→O7 staircase),
which is a list of explicit points, not an axis product.
"""

from __future__ import annotations

from dataclasses import dataclass

from .grid import GridSpec

__all__ = ["Profile", "PROFILES", "get_profile"]

#: Fig 9's cumulative optimization staircase: each stage adds the next
#: toggle group on top of the previous ones (O4 rides with O3, O6 with
#: O5 — the paper's pairings).
_ABLATION_STAGES = (
    ("baseline", "baseline"),
    ("o1-o2", {"o1_shard_by_session": True, "o2_cluster_table": True}),
    (
        "o1-o4",
        {
            "o1_shard_by_session": True,
            "o2_cluster_table": True,
            "o3_ikjt": True,
        },
    ),
    (
        "o1-o6",
        {
            "o1_shard_by_session": True,
            "o2_cluster_table": True,
            "o3_ikjt": True,
            "o5_dedup_emb": True,
            "o6_jagged_index_select": True,
        },
    ),
    ("recd", "recd"),
)


@dataclass(frozen=True)
class Profile:
    """One named suite of experiment grids.

    Attributes:
        name: the profile name (``repro experiments run --profile``).
        description: one line for ``repro experiments list``.
        grids: the experiment matrices, in run order.
    """

    name: str
    description: str
    grids: tuple

    @property
    def num_runs(self) -> int:
        """Total run points across every grid (before resume skips)."""
        from .grid import expand_grid

        return sum(len(expand_grid(g)) for g in self.grids)

    def grid(self, name: str) -> GridSpec:
        """Look one grid up by experiment name.

        Raises:
            KeyError: if the profile has no such experiment.
        """
        for g in self.grids:
            if g.name == name:
                return g
        raise KeyError(
            f"profile {self.name!r} has no experiment {name!r}; "
            f"experiments: {[g.name for g in self.grids]}"
        )


def _wide_points(
    wide_widths: tuple, wide_batch_size: int
) -> tuple[dict, ...]:
    """The fleet_scaling grid's wide-width include points.

    Wide fleets need many batches (an epoch never plans more shards
    than batches), so these points shrink the batch size and lift the
    per-epoch batch cap; the async executor runs them in tier-1 time.
    The widest width also carries a dedup pair — shm+dedup is the
    compounding configuration the tentpole benchmark headlines.
    """
    points = [
        {
            "label": f"wide-{w}-{transport}",
            "reader.num_readers": w,
            "reader.transport": transport,
            "train.batch_size": wide_batch_size,
            "train.train_batches": None,
        }
        for w in wide_widths
        for transport in ("copy", "shm")
    ]
    points += [
        {
            "label": f"wide-{max(wide_widths)}-{transport}-dedup",
            "reader.num_readers": max(wide_widths),
            "reader.dedup": True,
            "reader.transport": transport,
            "train.batch_size": wide_batch_size,
            "train.train_batches": None,
        }
        for transport in ("copy", "shm")
    ]
    return tuple(points)


def _stream_points() -> tuple[dict, ...]:
    """The fleet_scaling grid's streaming include points.

    Micro-partitions land on the live clock while the job trains (the
    continuous-training subsystem), so these points record the
    ``freshness_p50/p99_seconds`` lag percentiles the regression gate
    tracks — with and without a rolling retention window.  Everything
    is modeled time, so the lags are bit-reproducible.
    """
    base = {
        "reader.num_readers": 4,
        "data.num_partitions": 3,
        "train.train_epochs": 3,
        "stream.interval_seconds": 60.0,
        "stream.land_latency_seconds": 5.0,
    }
    return (
        {"label": "stream-live", **base},
        {"label": "stream-retained", **base, "retention.window": 2},
    )


def _build_profile(
    name: str,
    description: str,
    *,
    scale: float,
    sessions: int,
    widths: tuple,
    wide_widths: tuple,
    wide_batch_size: int,
) -> Profile:
    """The shared experiment set at one size (see module docstring)."""
    base = {
        "workload.scale": scale,
        "data.num_sessions": sessions,
        "reader.executor": "inprocess",
    }
    return Profile(
        name=name,
        description=description,
        grids=(
            GridSpec(
                name="fig7_throughput",
                description=(
                    "Trainer/reader throughput, baseline vs RecD, "
                    "across RM workloads (Fig 7)"
                ),
                base=base,
                axes={
                    "workload.rm": ["RM1", "RM2", "RM3"],
                    "toggles": ["baseline", "recd"],
                },
            ),
            GridSpec(
                name="fig9_ablation",
                description=(
                    "Cumulative O1-O7 optimization staircase on RM1 "
                    "(Fig 9)"
                ),
                base={**base, "workload.rm": "RM1"},
                include=tuple(
                    {"label": label, "toggles": toggles}
                    for label, toggles in _ABLATION_STAGES
                ),
            ),
            GridSpec(
                name="fleet_scaling",
                description=(
                    "Reader-fleet scan throughput vs fleet width x "
                    "session-dedup x batch transport (the shared-tier "
                    "sizing curve, the dedup compounding wall, and the "
                    "copy-vs-shm handoff bend at wide widths)"
                ),
                # O1+O2 layout only: duplicates are batch-local but the
                # transport stays KJT, so the reader.dedup axis is a
                # pure bit-identity A/B (same losses, fewer decoded
                # bytes, smaller modeled wall at every width).  The
                # async executor keeps the whole grid — wide include
                # points most of all — deterministic and CI-fast; its
                # batch stream is bit-identical to the other executors.
                base={
                    **base,
                    "workload.rm": "RM1",
                    "reader.executor": "async",
                    "toggles": {
                        "o1_shard_by_session": True,
                        "o2_cluster_table": True,
                    },
                },
                axes={
                    "reader.num_readers": list(widths),
                    "reader.dedup": [False, True],
                    "reader.transport": ["copy", "shm"],
                },
                include=_wide_points(wide_widths, wide_batch_size)
                + _stream_points(),
            ),
            GridSpec(
                name="single_node",
                description=(
                    "Streaming vs materialized ingestion overlap on "
                    "one RecD job (Fig 8's attribution)"
                ),
                base={
                    **base,
                    "workload.rm": "RM1",
                    "toggles": "recd",
                    "reader.num_readers": 2,
                },
                axes={"reader.streaming": [True, False]},
            ),
        ),
    )


#: every profile the CLI and CI can name
PROFILES = {
    "smoke": _build_profile(
        "smoke",
        "CI-sized sweep: every experiment at quarter scale",
        scale=0.25,
        sessions=120,
        widths=(1, 2, 4),
        wide_widths=(16, 64),
        wide_batch_size=24,
    ),
    "paper": _build_profile(
        "paper",
        "Full nightly sweep at figure-generation size",
        scale=0.5,
        sessions=250,
        widths=(1, 2, 4, 8),
        wide_widths=(16, 32, 64),
        wide_batch_size=48,
    ),
}


def get_profile(name: str) -> Profile:
    """Look a profile up by name.

    Raises:
        KeyError: naming the known profiles when ``name`` is unknown.
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; profiles: {sorted(PROFILES)}"
        ) from None
