"""The experiment-matrix harness: grids, run store, profiles, gate.

The paper's figures are points in a configuration space; this package
makes that space declarative and its results durable.  A
:class:`~repro.experiments.grid.GridSpec` expands into deterministic,
content-addressed :class:`~repro.experiments.grid.RunPoint`\\ s; the
driver (:func:`~repro.experiments.runner.run_profile`) executes them
through :class:`~repro.pipeline.session.Session` with resume-on-rerun;
every run's provenance, fingerprint, losses, metrics, and reports land
in the :class:`~repro.experiments.store.RunStore`; the figure drivers
(:mod:`repro.experiments.report`) and the CI regression gate
(:mod:`repro.experiments.gate`) read from the store.

CLI surface: ``repro experiments {run,list,query,report}``; the gate is
``benchmarks/check_regression.py``.  See ``docs/experiments.md``.
"""

from .env import environment_fingerprint
from .gate import (
    GateResult,
    check_store,
    load_baselines,
    markdown_summary,
    update_baselines,
)
from .grid import GridSpec, RunPoint, build_job_spec, expand_grid
from .profiles import PROFILES, Profile, get_profile
from .report import (
    ablation_from_store,
    fig7_from_store,
    fleet_scaling_from_store,
    render_report,
    single_node_from_store,
)
from .runner import (
    RunOutcome,
    extract_metrics,
    extract_reports,
    run_grid,
    run_point,
    run_profile,
)
from .store import DEFAULT_STORE_PATH, RunRecord, RunStore

__all__ = [
    "GridSpec",
    "RunPoint",
    "expand_grid",
    "build_job_spec",
    "RunRecord",
    "RunStore",
    "DEFAULT_STORE_PATH",
    "Profile",
    "PROFILES",
    "get_profile",
    "RunOutcome",
    "run_point",
    "run_grid",
    "run_profile",
    "extract_metrics",
    "extract_reports",
    "environment_fingerprint",
    "GateResult",
    "load_baselines",
    "check_store",
    "update_baselines",
    "markdown_summary",
    "fig7_from_store",
    "ablation_from_store",
    "fleet_scaling_from_store",
    "single_node_from_store",
    "render_report",
]
