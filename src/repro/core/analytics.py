"""Analytical deduplication model and feature-selection heuristics (§4.2, §7).

The paper models the value of deduplicating a feature ``f`` with::

    DedupeLen(f)    = l(f) * B * (1 - (S - 1) / S * d(f))
    DedupeFactor(f) = l(f) * B / DedupeLen(f)

where ``S`` is the average samples per session, ``B`` the batch size,
``d(f)`` the probability that ``f``'s value stays the same across adjacent
rows, and ``l(f)`` the average list length.  ML engineers "typically start
by deduplicating features with DedupeFactor(f) > 1.5" (§7).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "dedupe_len",
    "dedupe_factor",
    "FeatureDedupStats",
    "select_features_to_dedup",
    "DEFAULT_DEDUPE_THRESHOLD",
]

#: The paper's rule-of-thumb threshold for "worth deduplicating" (§7).
DEFAULT_DEDUPE_THRESHOLD = 1.5


def dedupe_len(
    avg_length: float, batch_size: int, samples_per_session: float, d: float
) -> float:
    """Expected deduplicated ``values`` length for one batch (§4.2).

    Parameters mirror the paper: ``avg_length`` = l(f), ``batch_size`` = B,
    ``samples_per_session`` = S, ``d`` = d(f).
    """
    if not 0.0 <= d <= 1.0:
        raise ValueError(f"d must be a probability, got {d}")
    if samples_per_session < 1:
        raise ValueError("samples_per_session must be >= 1")
    if batch_size < 0 or avg_length < 0:
        raise ValueError("batch_size and avg_length must be non-negative")
    s = samples_per_session
    return avg_length * batch_size * (1.0 - (s - 1.0) / s * d)


def dedupe_factor(
    avg_length: float, batch_size: int, samples_per_session: float, d: float
) -> float:
    """Expected dedupe factor = original length / deduplicated length.

    Note the factor is independent of ``l(f)`` and ``B`` (they cancel);
    they are accepted to keep the signature parallel with the paper's
    presentation and :func:`dedupe_len`.
    """
    dl = dedupe_len(avg_length, batch_size, samples_per_session, d)
    total = avg_length * batch_size
    if dl == 0:
        return float("inf") if total else 1.0
    if total == 0:
        return 1.0
    return total / dl


@dataclass(frozen=True)
class FeatureDedupStats:
    """Per-feature statistics a characterization pass feeds the heuristic."""

    name: str
    avg_length: float
    #: probability the value is unchanged across adjacent same-session rows
    d: float

    def factor(self, batch_size: int, samples_per_session: float) -> float:
        return dedupe_factor(
            self.avg_length, batch_size, samples_per_session, self.d
        )


def select_features_to_dedup(
    stats: list[FeatureDedupStats],
    batch_size: int,
    samples_per_session: float,
    threshold: float = DEFAULT_DEDUPE_THRESHOLD,
) -> list[str]:
    """The §7 heuristic: dedup features whose modeled factor > threshold.

    Returns feature names in descending modeled-factor order, which is
    also the order an engineer would trial them in.
    """
    chosen = [
        (s.factor(batch_size, samples_per_session), s.name)
        for s in stats
        if s.factor(batch_size, samples_per_session) > threshold
    ]
    chosen.sort(key=lambda t: (-t[0], t[1]))
    return [name for _, name in chosen]
