"""Vectorized kernels over jagged tensors.

These are the NumPy analogues of the CUDA/C++ kernels RecD adds to
PyTorch/TorchRec:

* :func:`jagged_index_select` — O6 of the paper. Gathers rows of a jagged
  tensor by index *without* first padding to a dense tensor, eliminating the
  "convert jagged to dense" memory blow-up the paper calls out in §5.
* :func:`dense_index_select` — the pre-RecD baseline path (pad -> gather ->
  re-jag), kept for equivalence tests and the O6 ablation bench.
* segment reductions (:func:`segment_sum` and friends) — pooling over
  embedding activations laid out jagged-wise.
* :func:`expand_pooled` — the "use the shared inverse_lookup to expand the
  output" step of deduplicated compute (O7, §5 Deduplicated Pooling).

All kernels avoid Python-level loops over rows, per the vectorization
idioms this project follows.
"""

from __future__ import annotations

import numpy as np

from .jagged import JaggedTensor, offsets_from_lengths

__all__ = [
    "jagged_index_select",
    "dense_index_select",
    "gather_ranges",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "expand_pooled",
    "jagged_elementwise_sum",
]


def gather_ranges(
    values: np.ndarray, offsets: np.ndarray, indices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather variable-length ranges ``indices`` out of (values, offsets).

    Returns the new ``(values, offsets)`` pair.  This is the flat-array core
    of :func:`jagged_index_select`, reused by the IKJT -> KJT conversion.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1:
        raise ValueError("indices must be 1-D")
    num_rows = offsets.size - 1
    if indices.size and (indices.min() < 0 or indices.max() >= num_rows):
        raise IndexError(
            f"indices out of range [0, {num_rows}): "
            f"[{indices.min()}, {indices.max()}]"
        )
    lengths = np.diff(offsets)
    sel_lengths = lengths[indices]
    out_offsets = offsets_from_lengths(sel_lengths)
    total = int(out_offsets[-1])
    if total == 0:
        return values[:0].copy(), out_offsets
    # For each output element, its source position is the selected row's
    # start offset plus the element's rank within the row.
    row_starts = offsets[:-1][indices]
    within = np.arange(total, dtype=np.int64) - np.repeat(
        out_offsets[:-1], sel_lengths
    )
    src = np.repeat(row_starts, sel_lengths) + within
    return values[src], out_offsets


def jagged_index_select(jt: JaggedTensor, indices: np.ndarray) -> JaggedTensor:
    """Row-gather on a jagged tensor with no dense intermediate (O6)."""
    values, offsets = gather_ranges(jt.values, jt.offsets, indices)
    return JaggedTensor(values, offsets)


def dense_index_select(jt: JaggedTensor, indices: np.ndarray) -> JaggedTensor:
    """Baseline: pad to dense, gather rows, strip padding back to jagged.

    Allocates ``num_rows * max_len`` elements — the memory overhead O6
    removes.  Functionally identical to :func:`jagged_index_select`.
    """
    indices = np.asarray(indices, dtype=np.int64)
    dense = jt.to_dense()
    lengths = jt.lengths[indices]
    picked = dense[indices]
    max_len = dense.shape[1]
    if max_len == 0:
        return JaggedTensor.empty(indices.size, dtype=jt.values.dtype)
    mask = np.arange(max_len)[None, :] < lengths[:, None]
    return JaggedTensor(picked[mask], offsets_from_lengths(lengths))


def _check_segments(activations: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.int64)
    if activations.shape[0] != offsets[-1]:
        raise ValueError(
            f"activations rows ({activations.shape[0]}) must equal "
            f"offsets[-1] ({offsets[-1]})"
        )
    return offsets


def segment_sum(activations: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum-pool activation rows per jagged segment.

    ``activations`` is ``(total_values, D)`` (or 1-D); the result is
    ``(num_segments, D)``.  Empty segments pool to zeros.
    """
    offsets = _check_segments(activations, offsets)
    num_seg = offsets.size - 1
    out_shape = (num_seg,) + activations.shape[1:]
    out = np.zeros(out_shape, dtype=np.result_type(activations.dtype, np.float64))
    if activations.shape[0]:
        seg_ids = np.repeat(np.arange(num_seg), np.diff(offsets))
        np.add.at(out, seg_ids, activations)
    return out


def segment_mean(activations: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Mean-pool per segment; empty segments yield zeros (TorchRec semantics)."""
    offsets = _check_segments(activations, offsets)
    sums = segment_sum(activations, offsets)
    counts = np.diff(offsets).astype(np.float64)
    safe = np.maximum(counts, 1.0)
    return sums / safe.reshape((-1,) + (1,) * (sums.ndim - 1))

def segment_max(activations: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Max-pool per segment; empty segments yield zeros."""
    offsets = _check_segments(activations, offsets)
    num_seg = offsets.size - 1
    out_shape = (num_seg,) + activations.shape[1:]
    out = np.zeros(out_shape, dtype=activations.dtype)
    if activations.shape[0] == 0:
        return out
    lengths = np.diff(offsets)
    nonempty = lengths > 0
    if not nonempty.any():
        return out
    # reduceat needs strictly valid starts; restrict to non-empty segments.
    starts = offsets[:-1][nonempty]
    reduced = np.maximum.reduceat(activations, starts, axis=0)
    # reduceat merges a segment with the next when starts repeat — they can't
    # here because every selected segment is non-empty.
    out[nonempty] = reduced
    return out


def expand_pooled(pooled: np.ndarray, inverse_lookup: np.ndarray) -> np.ndarray:
    """Expand per-unique-row pooled outputs back to the full batch (O7).

    ``pooled`` has one row per *deduplicated* row; ``inverse_lookup[i]``
    names the unique row backing batch row ``i``.  A plain fancy-index —
    the whole point is that the expensive compute already happened on the
    smaller ``pooled``.
    """
    inverse_lookup = np.asarray(inverse_lookup, dtype=np.int64)
    if inverse_lookup.size and (
        inverse_lookup.min() < 0 or inverse_lookup.max() >= pooled.shape[0]
    ):
        raise IndexError("inverse_lookup out of range of pooled rows")
    return pooled[inverse_lookup]


def jagged_elementwise_sum(tensors: list[JaggedTensor]) -> JaggedTensor:
    """Element-wise sum of jagged tensors sharing identical offsets.

    Models the grouped-feature compute in §5's worked example (features c
    and d element-wise summed).  Raises if the jagged structures differ.
    """
    if not tensors:
        raise ValueError("need at least one tensor")
    first = tensors[0]
    for t in tensors[1:]:
        if not np.array_equal(t.offsets, first.offsets):
            raise ValueError("jagged structures differ; cannot sum element-wise")
    total = first.values.astype(np.result_type(*[t.values.dtype for t in tensors]))
    for t in tensors[1:]:
        total = total + t.values
    return JaggedTensor(total, first.offsets.copy())
