"""InverseKeyedJaggedTensor (IKJT) — RecD's deduplicated batch format.

An IKJT (§4.2, Figure 5) stores, for each feature key in a *group*:

* ``values`` / ``offsets`` — the jagged slices of only the **unique** rows;

plus one ``inverse_lookup`` slice shared by the whole group, where
``inverse_lookup[i]`` points at the deduplicated row backing batch row
``i``.  A single-feature IKJT is simply a group of size one.

Grouped IKJTs cover features that are updated synchronously across
samples (the paper's cart item-ID / seller-ID example): they share one
``inverse_lookup``, which is what lets deduplicated *compute* (O7) run a
pooling module once per unique row and fan the result out.  Rows whose
group members were not synchronously updated are left un-deduplicated by
construction (the group dedup hashes all features jointly), maintaining
the invariant.

The format is lossless: :meth:`InverseKeyedJaggedTensor.to_kjt` expands
back to the exact original :class:`~repro.core.kjt.KeyedJaggedTensor`
using :func:`~repro.core.jagged_ops.jagged_index_select` (O6).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .dedup import dedup_grouped_rows
from .jagged import JaggedTensor
from .jagged_ops import gather_ranges
from .kjt import KeyedJaggedTensor

__all__ = ["InverseKeyedJaggedTensor"]


class InverseKeyedJaggedTensor:
    """Deduplicated sparse features for one feature group in one batch."""

    __slots__ = ("_tensors", "_inverse_lookup", "_batch_size")

    def __init__(
        self,
        tensors: Mapping[str, JaggedTensor],
        inverse_lookup: np.ndarray,
    ) -> None:
        if not tensors:
            raise ValueError("IKJT requires at least one key")
        inverse_lookup = np.asarray(inverse_lookup, dtype=np.int64)
        if inverse_lookup.ndim != 1:
            raise ValueError("inverse_lookup must be 1-D")
        uniq_sizes = {jt.num_rows for jt in tensors.values()}
        if len(uniq_sizes) != 1:
            raise ValueError(
                "all group members must have the same deduplicated row count, "
                f"got {sorted(uniq_sizes)}"
            )
        num_unique = uniq_sizes.pop()
        if inverse_lookup.size and (
            inverse_lookup.min() < 0 or inverse_lookup.max() >= num_unique
        ):
            raise ValueError(
                f"inverse_lookup must index [0, {num_unique}); got range "
                f"[{inverse_lookup.min()}, {inverse_lookup.max()}]"
            )
        self._tensors: dict[str, JaggedTensor] = dict(tensors)
        self._inverse_lookup = inverse_lookup
        self._batch_size = int(inverse_lookup.size)

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_kjt(
        cls, kjt: KeyedJaggedTensor, keys: Sequence[str] | None = None
    ) -> "InverseKeyedJaggedTensor":
        """Deduplicate ``keys`` of ``kjt`` into one (grouped) IKJT.

        This is the feature-conversion step of O3: duplicate rows are
        detected by hashing and only the first occurrence's values are
        kept.
        """
        keys = list(keys) if keys is not None else kjt.keys
        if not keys:
            raise ValueError("need at least one key to deduplicate")
        group = [kjt[k] for k in keys]
        unique_indices, inverse = dedup_grouped_rows(group)
        tensors = {}
        for k, jt in zip(keys, group):
            values, offsets = gather_ranges(jt.values, jt.offsets, unique_indices)
            tensors[k] = JaggedTensor(values, offsets)
        return cls(tensors, inverse)

    # -- accessors --------------------------------------------------------

    @property
    def keys(self) -> list[str]:
        return list(self._tensors)

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def num_unique(self) -> int:
        return next(iter(self._tensors.values())).num_rows

    @property
    def inverse_lookup(self) -> np.ndarray:
        return self._inverse_lookup

    def __getitem__(self, key: str) -> JaggedTensor:
        """The deduplicated jagged tensor for one feature key."""
        return self._tensors[key]

    def __contains__(self, key: str) -> bool:
        return key in self._tensors

    def items(self):
        return self._tensors.items()

    @property
    def total_values(self) -> int:
        """Total deduplicated value count across the group."""
        return sum(jt.total_values for jt in self._tensors.values())

    @property
    def nbytes(self) -> int:
        """Bytes of all slices including ``inverse_lookup``."""
        return (
            sum(jt.nbytes for jt in self._tensors.values())
            + self._inverse_lookup.nbytes
        )

    @property
    def wire_nbytes(self) -> int:
        """Bytes sent over the network during SDD (§5).

        Only ``values`` and ``offsets`` travel; ``inverse_lookup`` stays
        local to each GPU — which is why IKJTs *strictly* shrink
        over-the-network tensor sizes (§4.2).
        """
        return sum(jt.nbytes for jt in self._tensors.values())

    @property
    def expanded_nbytes(self) -> int:
        """Bytes the fully-materialized (non-dedup) KJT would carry.

        Computed analytically from lengths — no expansion happens —
        so bytes-decoded vs bytes-expanded savings are reportable
        without paying for the expansion.
        """
        total = 0
        offsets_nbytes = (self._batch_size + 1) * np.dtype(np.int64).itemsize
        for jt in self._tensors.values():
            expanded_values = int(jt.lengths[self._inverse_lookup].sum())
            total += expanded_values * jt.values.itemsize + offsets_nbytes
        return total

    def dedupe_factor(self, key: str | None = None) -> float:
        """Realized dedupe factor: original values length / dedup length.

        With ``key=None``, aggregated over the whole group.
        """
        if key is not None:
            items = [(key, self._tensors[key])]
        else:
            items = list(self._tensors.items())
        orig = 0
        dedup = 0
        for _, jt in items:
            dedup += jt.total_values
            orig += int(jt.lengths[self._inverse_lookup].sum())
        if dedup == 0:
            return 1.0
        return orig / dedup

    # -- conversion ---------------------------------------------------------

    def to_kjt(self) -> KeyedJaggedTensor:
        """Expand back to the duplicate-bearing KJT via jagged index select."""
        tensors = {}
        for k, jt in self._tensors.items():
            values, offsets = gather_ranges(
                jt.values, jt.offsets, self._inverse_lookup
            )
            tensors[k] = JaggedTensor(values, offsets)
        return KeyedJaggedTensor(tensors)

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InverseKeyedJaggedTensor):
            return NotImplemented
        return (
            self.keys == other.keys
            and np.array_equal(self._inverse_lookup, other._inverse_lookup)
            and all(self._tensors[k] == other._tensors[k] for k in self._tensors)
        )

    def __hash__(self):
        raise TypeError("InverseKeyedJaggedTensor is unhashable")

    def __repr__(self) -> str:
        return (
            f"InverseKeyedJaggedTensor(keys={self.keys}, "
            f"batch_size={self._batch_size}, num_unique={self.num_unique}, "
            f"dedupe_factor={self.dedupe_factor():.2f})"
        )
