"""KeyedJaggedTensor — the baseline sparse-feature batch format.

A :class:`KeyedJaggedTensor` (KJT) maps feature keys to
:class:`~repro.core.jagged.JaggedTensor` slices, exactly as in TorchRec
(``torchrec.sparse.KeyedJaggedTensor``) and Figure 5 of the RecD paper.
Every per-key jagged tensor covers the same batch: ``num_rows`` is shared.

The KJT is the format that *retains* duplicate feature values; RecD's
:class:`~repro.core.ikjt.InverseKeyedJaggedTensor` is the deduplicated
counterpart, and both must round-trip losslessly
(``IKJT.to_kjt() == original``), which the test suite asserts.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from .jagged import JaggedTensor

__all__ = ["KeyedJaggedTensor"]


class KeyedJaggedTensor:
    """An ordered mapping ``feature key -> JaggedTensor`` over one batch."""

    __slots__ = ("_tensors", "_batch_size")

    def __init__(self, tensors: Mapping[str, JaggedTensor]) -> None:
        if not tensors:
            raise ValueError("KeyedJaggedTensor requires at least one key")
        sizes = {jt.num_rows for jt in tensors.values()}
        if len(sizes) != 1:
            raise ValueError(
                f"all keys must share a batch size, got sizes {sorted(sizes)}"
            )
        self._tensors: dict[str, JaggedTensor] = dict(tensors)
        self._batch_size = sizes.pop()

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Mapping[str, Sequence[int]]],
        keys: Iterable[str] | None = None,
    ) -> "KeyedJaggedTensor":
        """Build from row dicts (how readers see a freshly-filled batch).

        Missing keys in a row become empty lists, matching how a production
        feature-conversion step treats absent features.
        """
        if keys is None:
            seen: dict[str, None] = {}
            for r in rows:
                for k in r:
                    seen.setdefault(k)
            keys = list(seen)
        tensors = {
            k: JaggedTensor.from_lists([r.get(k, ()) for r in rows]) for k in keys
        }
        if not tensors:
            raise ValueError("no feature keys found in rows")
        return cls(tensors)

    # -- accessors --------------------------------------------------------

    @property
    def keys(self) -> list[str]:
        return list(self._tensors)

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def total_values(self) -> int:
        return sum(jt.total_values for jt in self._tensors.values())

    @property
    def nbytes(self) -> int:
        return sum(jt.nbytes for jt in self._tensors.values())

    def __getitem__(self, key: str) -> JaggedTensor:
        return self._tensors[key]

    def __contains__(self, key: str) -> bool:
        return key in self._tensors

    def __iter__(self):
        return iter(self._tensors)

    def items(self):
        return self._tensors.items()

    def select(self, keys: Iterable[str]) -> "KeyedJaggedTensor":
        """A new KJT restricted to ``keys`` (used by SDD to route per-GPU)."""
        keys = list(keys)
        missing = [k for k in keys if k not in self._tensors]
        if missing:
            raise KeyError(f"keys not present: {missing}")
        return KeyedJaggedTensor({k: self._tensors[k] for k in keys})

    def to_row_dicts(self) -> list[dict[str, list]]:
        """Materialize back to per-row dicts (round-trip testing)."""
        return [
            {k: jt.row(i).tolist() for k, jt in self._tensors.items()}
            for i in range(self._batch_size)
        ]

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyedJaggedTensor):
            return NotImplemented
        return self.keys == other.keys and all(
            self._tensors[k] == other._tensors[k] for k in self._tensors
        )

    def __hash__(self):
        raise TypeError("KeyedJaggedTensor is unhashable")

    def __repr__(self) -> str:
        return (
            f"KeyedJaggedTensor(keys={len(self._tensors)}, "
            f"batch_size={self._batch_size}, total_values={self.total_values})"
        )
