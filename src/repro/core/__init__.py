"""RecD core: jagged tensor formats, deduplication, and kernels.

Public surface of the paper's primary contribution (§4.2, §5):

* :class:`~repro.core.jagged.JaggedTensor` — variable-length row batches.
* :class:`~repro.core.kjt.KeyedJaggedTensor` — baseline keyed format (KJT).
* :class:`~repro.core.ikjt.InverseKeyedJaggedTensor` — deduplicated IKJT,
  including grouped IKJTs with a shared ``inverse_lookup``.
* :class:`~repro.core.partial.PartialKeyedJaggedTensor` — §7's shift-aware
  partial dedup extension.
* :func:`~repro.core.jagged_ops.jagged_index_select` — O6 kernel.
* :mod:`~repro.core.analytics` — the DedupeFactor analytical model.
"""

from .analytics import (
    DEFAULT_DEDUPE_THRESHOLD,
    FeatureDedupStats,
    dedupe_factor,
    dedupe_len,
    select_features_to_dedup,
)
from .characterize import measure_feature_stats, measure_samples_per_session
from .dedup import (
    dedup_grouped_rows,
    dedup_rows,
    exact_duplicate_fraction,
    measured_dedupe_factor,
    partial_duplicate_fraction,
)
from .ikjt import InverseKeyedJaggedTensor
from .jagged import JaggedTensor, lengths_from_offsets, offsets_from_lengths
from .jagged_ops import (
    dense_index_select,
    expand_pooled,
    gather_ranges,
    jagged_elementwise_sum,
    jagged_index_select,
    segment_max,
    segment_mean,
    segment_sum,
)
from .kjt import KeyedJaggedTensor
from .partial import PartialJaggedTensor, PartialKeyedJaggedTensor

__all__ = [
    "JaggedTensor",
    "KeyedJaggedTensor",
    "InverseKeyedJaggedTensor",
    "PartialJaggedTensor",
    "PartialKeyedJaggedTensor",
    "offsets_from_lengths",
    "lengths_from_offsets",
    "jagged_index_select",
    "dense_index_select",
    "gather_ranges",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "expand_pooled",
    "jagged_elementwise_sum",
    "dedup_rows",
    "dedup_grouped_rows",
    "exact_duplicate_fraction",
    "partial_duplicate_fraction",
    "measured_dedupe_factor",
    "dedupe_len",
    "dedupe_factor",
    "FeatureDedupStats",
    "select_features_to_dedup",
    "DEFAULT_DEDUPE_THRESHOLD",
    "measure_feature_stats",
    "measure_samples_per_session",
]
