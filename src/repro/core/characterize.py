"""Online feature characterization: estimate d(f) and l(f) from data.

The §7 workflow starts from per-feature statistics.  The schema "truth"
is unavailable in production — engineers estimate d(f) (probability a
value repeats across a session's adjacent samples) and l(f) (mean list
length) from logged samples.  This module does that estimation, feeding
:func:`~repro.core.analytics.select_features_to_dedup`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from .analytics import FeatureDedupStats

__all__ = ["measure_feature_stats", "measure_samples_per_session"]


def measure_feature_stats(
    samples: Sequence,
    feature_names: Iterable[str],
) -> list[FeatureDedupStats]:
    """Estimate per-feature dedup statistics from logged samples.

    ``samples`` are objects with ``session_id``, ``timestamp`` and a
    ``sparse`` mapping (e.g. :class:`~repro.datagen.session.Sample`).
    d(f) is the fraction of *adjacent same-session* sample pairs whose
    value for ``f`` is identical; l(f) is the mean list length.
    Features with no adjacent pairs get d = 0 (no dedup evidence).
    """
    feature_names = list(feature_names)
    if not feature_names:
        raise ValueError("need at least one feature name")
    by_session: dict[int, list] = {}
    for s in samples:
        by_session.setdefault(s.session_id, []).append(s)
    for sess in by_session.values():
        sess.sort(key=lambda s: s.timestamp)

    stats: list[FeatureDedupStats] = []
    for name in feature_names:
        same = pairs = 0
        total_len = count = 0
        for sess in by_session.values():
            for s in sess:
                values = s.sparse.get(name)
                if values is not None:
                    total_len += len(values)
                    count += 1
            for a, b in zip(sess, sess[1:]):
                va = a.sparse.get(name)
                vb = b.sparse.get(name)
                if va is None or vb is None:
                    continue
                pairs += 1
                same += np.array_equal(va, vb)
        d = same / pairs if pairs else 0.0
        avg_len = total_len / count if count else 0.0
        stats.append(FeatureDedupStats(name, avg_len, d))
    return stats


def measure_samples_per_session(samples: Sequence) -> float:
    """Measured S over a sample set (0.0 when empty)."""
    sessions: set[int] = set()
    n = 0
    for s in samples:
        sessions.add(s.session_id)
        n += 1
    if not sessions:
        return 0.0
    return n / len(sessions)
