"""Partial IKJTs — shift-aware deduplication (§7, Supporting Partial IKJTs).

Exact-match IKJTs capture ~81.6% of duplicated bytes; partial matches —
lists that shifted by appending new IDs — cover most of the remainder
(to ~89.4%).  The paper sketches the encoding: drop the ``offsets`` slice
and store per-row ``[offset, length]`` pairs in ``inverse_lookup``, so
several batch rows can reference *overlapping windows* of one shared
``values`` buffer.

Figure 5's worked example: feature ``b`` with rows
``[3,4,5] / [4,5,6] / [3,4,5]`` encodes as ``values = [3,4,5,6]`` and
``inverse_lookup = [[0,3],[1,3],[0,3]]``.

The detector here recognizes a row as a *window* of a previously stored
row (suffix/prefix overlap from list shifting); when a row extends a
stored row by appending on the right while dropping a prefix, we extend
the stored buffer in place when it is the buffer's tail.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .jagged import JaggedTensor
from .kjt import KeyedJaggedTensor

__all__ = ["PartialJaggedTensor", "PartialKeyedJaggedTensor"]


def _find_window(buffer: np.ndarray, row: np.ndarray) -> int | None:
    """Return a start index such that buffer[start:start+len(row)] == row."""
    n, m = buffer.size, row.size
    if m == 0 or m > n:
        return None
    # Candidate starts where the first element matches, then verify — fast
    # in practice because sparse IDs are high-cardinality.
    starts = np.flatnonzero(buffer[: n - m + 1] == row[0])
    for s in starts:
        if np.array_equal(buffer[s : s + m], row):
            return int(s)
    return None


class PartialJaggedTensor:
    """One feature's partially-deduplicated batch.

    Attributes
    ----------
    values:
        Shared flat buffer; rows are (possibly overlapping) windows of it.
    inverse_lookup:
        ``(batch_size, 2)`` int64 of per-row ``[offset, length]``.
    """

    __slots__ = ("_values", "_inverse_lookup")

    def __init__(self, values: np.ndarray, inverse_lookup: np.ndarray) -> None:
        values = np.asarray(values)
        inverse_lookup = np.asarray(inverse_lookup, dtype=np.int64)
        if inverse_lookup.ndim != 2 or inverse_lookup.shape[1] != 2:
            raise ValueError("inverse_lookup must have shape (batch, 2)")
        ends = inverse_lookup[:, 0] + inverse_lookup[:, 1]
        if inverse_lookup.size and (
            inverse_lookup.min() < 0 or (ends > values.size).any()
        ):
            raise ValueError("inverse_lookup windows out of buffer bounds")
        self._values = values
        self._inverse_lookup = inverse_lookup

    @classmethod
    def from_jagged(cls, jt: JaggedTensor) -> "PartialJaggedTensor":
        """Build by detecting shift-style partial duplicates across rows."""
        chunks: list[np.ndarray] = []  # append-only buffer segments
        total = 0
        lookup = np.empty((jt.num_rows, 2), dtype=np.int64)
        # Keep a dense copy of the buffer for window search; rebuilt lazily.
        buffer = np.empty(0, dtype=jt.values.dtype)
        dirty = False
        for i in range(jt.num_rows):
            row = jt.row(i)
            if dirty:
                buffer = np.concatenate(chunks) if chunks else buffer[:0]
                dirty = False
            start = _find_window(buffer, row) if row.size else None
            if row.size == 0:
                lookup[i] = (0, 0)
                continue
            if start is not None:
                lookup[i] = (start, row.size)
                continue
            # A shifted list appends new IDs on the right: if the row's
            # prefix is the buffer's suffix, only append the new tail.
            appended = False
            if buffer.size:
                max_ov = min(row.size - 1, buffer.size)
                for ov in range(max_ov, 0, -1):
                    if np.array_equal(buffer[buffer.size - ov :], row[:ov]):
                        chunks.append(row[ov:].copy())
                        lookup[i] = (buffer.size - ov, row.size)
                        total = buffer.size + row.size - ov
                        dirty = True
                        appended = True
                        break
            if not appended:
                lookup[i] = (buffer.size, row.size)
                chunks.append(row.copy())
                total = buffer.size + row.size
                dirty = True
        values = np.concatenate(chunks) if chunks else jt.values[:0].copy()
        return cls(values, lookup)

    # -- accessors --------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def inverse_lookup(self) -> np.ndarray:
        return self._inverse_lookup

    @property
    def batch_size(self) -> int:
        return self._inverse_lookup.shape[0]

    @property
    def total_values(self) -> int:
        return int(self._values.size)

    @property
    def nbytes(self) -> int:
        return int(self._values.nbytes + self._inverse_lookup.nbytes)

    def dedupe_factor(self) -> float:
        orig = int(self._inverse_lookup[:, 1].sum())
        if self._values.size == 0:
            return 1.0
        return orig / self._values.size

    def row(self, i: int) -> np.ndarray:
        off, length = self._inverse_lookup[i]
        return self._values[off : off + length]

    def to_jagged(self) -> JaggedTensor:
        """Expand back to the original jagged tensor (lossless)."""
        return JaggedTensor.from_lists(
            [self.row(i) for i in range(self.batch_size)],
            dtype=self._values.dtype,
        )


class PartialKeyedJaggedTensor:
    """Keyed collection of :class:`PartialJaggedTensor` over one batch."""

    __slots__ = ("_tensors", "_batch_size")

    def __init__(self, tensors: Mapping[str, PartialJaggedTensor]) -> None:
        if not tensors:
            raise ValueError("requires at least one key")
        sizes = {t.batch_size for t in tensors.values()}
        if len(sizes) != 1:
            raise ValueError("all keys must share a batch size")
        self._tensors = dict(tensors)
        self._batch_size = sizes.pop()

    @classmethod
    def from_kjt(
        cls, kjt: KeyedJaggedTensor, keys: Sequence[str] | None = None
    ) -> "PartialKeyedJaggedTensor":
        keys = list(keys) if keys is not None else kjt.keys
        return cls({k: PartialJaggedTensor.from_jagged(kjt[k]) for k in keys})

    @property
    def keys(self) -> list[str]:
        return list(self._tensors)

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def __getitem__(self, key: str) -> PartialJaggedTensor:
        return self._tensors[key]

    @property
    def total_values(self) -> int:
        return sum(t.total_values for t in self._tensors.values())

    def dedupe_factor(self) -> float:
        orig = sum(
            int(t.inverse_lookup[:, 1].sum()) for t in self._tensors.values()
        )
        dedup = self.total_values
        return orig / dedup if dedup else 1.0

    def to_kjt(self) -> KeyedJaggedTensor:
        return KeyedJaggedTensor(
            {k: t.to_jagged() for k, t in self._tensors.items()}
        )
