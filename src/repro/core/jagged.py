"""Jagged (ragged) tensors backed by NumPy.

A :class:`JaggedTensor` stores a batch of variable-length lists as two flat
arrays — ``values`` and ``offsets`` — mirroring TorchRec's
``torchrec.sparse.jagged_tensor.JaggedTensor`` (the format RecD builds on,
§4.2 of the paper).

We use the *N+1 offsets* convention: for a batch of ``n`` rows, ``offsets``
has ``n + 1`` entries with ``offsets[0] == 0`` and
``offsets[-1] == len(values)``; row ``i`` occupies
``values[offsets[i]:offsets[i+1]]``.  The paper's Figure 5 draws the
equivalent N-entry form (last length inferred from ``len(values)``); the two
are interconvertible and we standardize on N+1 because every vectorized
kernel in :mod:`repro.core.jagged_ops` consumes it directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["JaggedTensor", "offsets_from_lengths", "lengths_from_offsets"]


def offsets_from_lengths(lengths: np.ndarray | Sequence[int]) -> np.ndarray:
    """Build an N+1 offsets array from per-row lengths.

    >>> offsets_from_lengths([2, 0, 3])
    array([0, 2, 2, 5])
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.ndim != 1:
        raise ValueError(f"lengths must be 1-D, got shape {lengths.shape}")
    if lengths.size and lengths.min() < 0:
        raise ValueError("lengths must be non-negative")
    out = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=out[1:])
    return out


def lengths_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Inverse of :func:`offsets_from_lengths`."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a non-empty 1-D array")
    return np.diff(offsets)


class JaggedTensor:
    """A batch of variable-length value lists.

    Parameters
    ----------
    values:
        Flat 1-D array holding every row's elements back to back.  For
        sparse-ID features this is ``int64``; preprocessed features may be
        ``float32``/``float64``.
    offsets:
        N+1 monotonically non-decreasing ``int64`` array delimiting rows.

    The constructor validates the invariants so that downstream kernels can
    skip bounds checks.
    """

    __slots__ = ("_values", "_offsets")

    def __init__(self, values: np.ndarray, offsets: np.ndarray) -> None:
        values = np.asarray(values)
        offsets = np.asarray(offsets, dtype=np.int64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got shape {values.shape}")
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0:
            raise ValueError(f"offsets[0] must be 0, got {offsets[0]}")
        if offsets[-1] != values.size:
            raise ValueError(
                f"offsets[-1] ({offsets[-1]}) must equal len(values) ({values.size})"
            )
        if offsets.size > 1 and np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self._values = values
        self._offsets = offsets

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_lists(
        cls, rows: Iterable[Sequence[int]], dtype: np.dtype | type = np.int64
    ) -> "JaggedTensor":
        """Build from a Python list of lists (convenience for tests/examples)."""
        rows = [np.asarray(r, dtype=dtype) for r in rows]
        lengths = np.array([r.size for r in rows], dtype=np.int64)
        values = (
            np.concatenate(rows) if rows else np.empty(0, dtype=dtype)
        )
        if values.size == 0:
            values = values.astype(dtype)
        return cls(values, offsets_from_lengths(lengths))

    @classmethod
    def empty(cls, num_rows: int = 0, dtype: np.dtype | type = np.int64) -> "JaggedTensor":
        """A jagged tensor with ``num_rows`` empty rows."""
        return cls(
            np.empty(0, dtype=dtype), np.zeros(num_rows + 1, dtype=np.int64)
        )

    # -- accessors --------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def offsets(self) -> np.ndarray:
        return self._offsets

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self._offsets)

    @property
    def num_rows(self) -> int:
        return self._offsets.size - 1

    @property
    def total_values(self) -> int:
        return int(self._values.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by both slices (what travels over the wire)."""
        return int(self._values.nbytes + self._offsets.nbytes)

    def row(self, i: int) -> np.ndarray:
        """The ``i``-th row as a view into ``values``."""
        if not 0 <= i < self.num_rows:
            raise IndexError(f"row {i} out of range [0, {self.num_rows})")
        return self._values[self._offsets[i] : self._offsets[i + 1]]

    def to_lists(self) -> list[list]:
        """Materialize as a Python list of lists (tests/debugging)."""
        return [self.row(i).tolist() for i in range(self.num_rows)]

    def to_dense(self, pad_value=0) -> np.ndarray:
        """Pad rows to the max length -> ``(num_rows, max_len)`` dense array.

        This is the memory-expensive conversion that RecD's
        ``jagged_index_select`` (O6) exists to avoid; it is provided both as
        the baseline path and for interop.
        """
        lengths = self.lengths
        max_len = int(lengths.max()) if lengths.size else 0
        out = np.full((self.num_rows, max_len), pad_value, dtype=self._values.dtype)
        if max_len:
            mask = np.arange(max_len)[None, :] < lengths[:, None]
            out[mask] = self._values
        return out

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JaggedTensor):
            return NotImplemented
        return (
            np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self):  # mutable ndarray payload -> unhashable, like ndarray
        raise TypeError("JaggedTensor is unhashable")

    def __repr__(self) -> str:
        return (
            f"JaggedTensor(num_rows={self.num_rows}, "
            f"total_values={self.total_values}, dtype={self._values.dtype})"
        )
