"""Duplicate detection for sparse feature batches.

Readers detect duplicate feature values "via hashing" during feature
conversion (§6.3).  This module implements that detection for a single
feature and for *grouped* features (which must match on every feature in
the group simultaneously — the shared ``inverse_lookup`` invariant of §4.2).

The canonical output is a pair ``(unique_indices, inverse_lookup)``:

* ``unique_indices`` — batch-row indices of the first occurrence of each
  distinct value (in first-appearance order);
* ``inverse_lookup`` — for every batch row, the position *within
  unique_indices* of its canonical copy.

so ``rows[unique_indices][inverse_lookup] == rows`` element-wise.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .jagged import JaggedTensor

__all__ = [
    "dedup_rows",
    "dedup_grouped_rows",
    "exact_duplicate_fraction",
    "partial_duplicate_fraction",
    "measured_dedupe_factor",
]


def _row_key(jt: JaggedTensor, i: int) -> bytes:
    return jt.row(i).tobytes()


def dedup_rows(jt: JaggedTensor) -> tuple[np.ndarray, np.ndarray]:
    """Find duplicate rows of one jagged tensor via content hashing."""
    seen: dict[bytes, int] = {}
    unique: list[int] = []
    inverse = np.empty(jt.num_rows, dtype=np.int64)
    for i in range(jt.num_rows):
        key = _row_key(jt, i)
        pos = seen.get(key)
        if pos is None:
            pos = len(unique)
            seen[key] = pos
            unique.append(i)
        inverse[i] = pos
    return np.asarray(unique, dtype=np.int64), inverse


def dedup_grouped_rows(
    tensors: Sequence[JaggedTensor],
) -> tuple[np.ndarray, np.ndarray]:
    """Dedup rows across a *group* of features updated synchronously.

    Two batch rows collapse only when **every** feature in the group has
    identical values for both rows.  Rows whose group members were not
    synchronously updated therefore stay un-deduplicated, preserving the
    shared-``inverse_lookup`` invariant (§4.2, Grouped IKJTs).
    """
    if not tensors:
        raise ValueError("need at least one tensor in the group")
    n = tensors[0].num_rows
    for t in tensors[1:]:
        if t.num_rows != n:
            raise ValueError("group members must share a batch size")
    seen: dict[tuple[bytes, ...], int] = {}
    unique: list[int] = []
    inverse = np.empty(n, dtype=np.int64)
    for i in range(n):
        key = tuple(_row_key(t, i) for t in tensors)
        pos = seen.get(key)
        if pos is None:
            pos = len(unique)
            seen[key] = pos
            unique.append(i)
        inverse[i] = pos
    return np.asarray(unique, dtype=np.int64), inverse


# ---------------------------------------------------------------------------
# Characterization helpers (Section 3 of the paper)
# ---------------------------------------------------------------------------


def exact_duplicate_fraction(
    rows: Sequence[Sequence[int]], session_ids: Sequence[int]
) -> float:
    """Fraction of samples whose feature value exactly matches another
    sample *of the same session* (Fig 4, left).

    A sample counts as a duplicate if at least one other sample in its
    session carries the identical list; with ``k`` identical copies in a
    session, ``k - 1`` of them are duplicates (the paper's 15.5/16.5
    worked example).
    """
    if len(rows) != len(session_ids):
        raise ValueError("rows and session_ids must align")
    # len(), not truthiness: ``rows`` may be a numpy array, whose bool()
    # is ambiguous for more than one row.
    if len(rows) == 0:
        return 0.0
    counts: dict[tuple[int, bytes], int] = {}
    for sid, row in zip(session_ids, rows):
        key = (sid, np.asarray(row, dtype=np.int64).tobytes())
        counts[key] = counts.get(key, 0) + 1
    dup = sum(c - 1 for c in counts.values())
    return dup / len(rows)


def partial_duplicate_fraction(
    rows: Sequence[Sequence[int]], session_ids: Sequence[int]
) -> float:
    """Fraction of individual list IDs duplicated within a session (Fig 4,
    right).

    Counted per ID value: within one session, each extra occurrence of an
    ID beyond its first is a duplicate (the paper's 99/200 = 49.5% worked
    example for an appended-and-shifted list).
    """
    if len(rows) != len(session_ids):
        raise ValueError("rows and session_ids must align")
    per_session: dict[int, dict[int, int]] = {}
    total = 0
    for sid, row in zip(session_ids, rows):
        bucket = per_session.setdefault(sid, {})
        for v in np.asarray(row, dtype=np.int64):
            bucket[int(v)] = bucket.get(int(v), 0) + 1
            total += 1
    if total == 0:
        return 0.0
    dup = sum(
        c - 1 for bucket in per_session.values() for c in bucket.values()
    )
    return dup / total


def measured_dedupe_factor(jt: JaggedTensor) -> float:
    """Observed ratio of original to deduplicated ``values`` length.

    The empirical counterpart of the analytical ``DedupeFactor(f)`` model
    in :mod:`repro.core.analytics`; returns 1.0 for an all-unique batch.
    """
    if jt.total_values == 0:
        return 1.0
    unique_indices, _ = dedup_rows(jt)
    dedup_len = int(jt.lengths[unique_indices].sum())
    if dedup_len == 0:
        return 1.0
    return jt.total_values / dedup_len
