"""Hybrid-parallel distributed training simulation (§2.2, Fig 2, Fig 6).

MLPs are data-parallel (gradients all-reduced); EMBs are model-parallel
(features sharded across GPUs; inputs and pooled outputs all-to-all'd).
The functional math runs once on the NumPy DLRM — every GPU would compute
identical results — while per-phase latencies are modeled from measured
resource counters (bytes, lookups, FLOPs) against the cluster envelope.

Per-iteration phases (Fig 6):

1. SDD all-to-all of sparse inputs (RecD: dedup values/offsets only).
2. EMB lookups (HBM bandwidth; RecD: unique rows only).
3. Pooling + interaction + MLP compute (GEMM; RecD: dedup compute).
4. All-to-all of pooled embeddings back to data-parallel ranks.
5. Backward: mirrored all-to-alls, EMB gradient scatter, MLP all-reduce.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..metrics.breakdown import IterationBreakdown
from ..reader.batch import Batch
from ..trainer.model import DLRM
from .comm import all_reduce_seconds, all_to_all_seconds
from .costmodel import TrainerCostConstants
from .device import ClusterSpec
from .sdd import sdd_volume

__all__ = ["IterationResult", "TrainingReport", "DistributedTrainer"]


@dataclass
class IterationResult:
    """One synchronous iteration's modeled outcome."""

    loss: float
    breakdown: IterationBreakdown
    iteration_seconds: float
    samples_per_second: float
    max_mem_bytes: float
    static_mem_bytes: float
    dynamic_mem_bytes: float
    max_mem_util: float
    avg_mem_util: float
    flops_per_gpu_second: float


@dataclass
class TrainingReport:
    """Aggregates over a training run.

    Besides the modeled per-iteration results, the report keeps three
    *measured* wall-clock tallies from :meth:`DistributedTrainer.run`'s
    ingestion loop — the raw material for the pipeline's
    :class:`~repro.metrics.OverlapReport`:

    * ``ingest_wait_seconds`` — time blocked pulling the next batch from
      the input iterator.  Streaming from a reader fleet, this is the
      trainer starving on the readers (reader-stall).
    * ``step_wall_seconds`` — time inside ``run_iteration`` calls; while
      the trainer computes, upstream readers can only run ahead as far
      as their bounded prefetch queues allow (trainer-stall upstream).
    * ``run_wall_seconds`` — the whole ingestion loop, accumulating
      across epochs when ``run`` is called once per epoch.
    """

    iterations: list[IterationResult] = field(default_factory=list)
    ingest_wait_seconds: float = 0.0
    step_wall_seconds: float = 0.0
    run_wall_seconds: float = 0.0

    @property
    def losses(self) -> list[float]:
        """Per-iteration losses (the bit-identity fingerprint)."""
        return [r.loss for r in self.iterations]

    @property
    def mean_samples_per_second(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(r.samples_per_second for r in self.iterations) / len(
            self.iterations
        )

    @property
    def mean_breakdown(self) -> IterationBreakdown:
        out = IterationBreakdown()
        for r in self.iterations:
            out.merge(r.breakdown)
        n = max(len(self.iterations), 1)
        out.emb_lookup /= n
        out.gemm /= n
        out.a2a /= n
        out.other /= n
        return out

    @property
    def max_mem_util(self) -> float:
        return max((r.max_mem_util for r in self.iterations), default=0.0)

    @property
    def mean_avg_mem_util(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(r.avg_mem_util for r in self.iterations) / len(
            self.iterations
        )

    @property
    def mean_flops_per_gpu_second(self) -> float:
        if not self.iterations:
            return 0.0
        return sum(r.flops_per_gpu_second for r in self.iterations) / len(
            self.iterations
        )

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form):
        the loss trajectory (the bit-identity fingerprint), the modeled
        throughput summary, the mean phase breakdown, and the measured
        ingestion-loop wall tallies."""
        return {
            "steps": len(self.iterations),
            "losses": self.losses,
            "mean_samples_per_second": self.mean_samples_per_second,
            "mean_breakdown": self.mean_breakdown.as_dict(),
            "max_mem_util": self.max_mem_util,
            "mean_flops_per_gpu_second": self.mean_flops_per_gpu_second,
            "ingest_wait_seconds": self.ingest_wait_seconds,
            "step_wall_seconds": self.step_wall_seconds,
            "run_wall_seconds": self.run_wall_seconds,
        }


class DistributedTrainer:
    """Runs a DLRM under the hybrid-parallel latency model."""

    def __init__(
        self,
        model: DLRM,
        cluster: ClusterSpec,
        constants: TrainerCostConstants | None = None,
    ):
        self.model = model
        self.cluster = cluster
        self.constants = constants or TrainerCostConstants()
        self.report = TrainingReport()

    # -- memory accounting --------------------------------------------------

    def _static_bytes_per_gpu(self) -> float:
        """EMB shard + replicated dense params (fp32 production dtype)."""
        cc = self.constants
        emb = self.model.embedding_nbytes() / 2  # fp64 sim -> fp32 prod
        dense = (
            cc.param_mem_scale
            * sum(p.nbytes for p in self.model.dense_params())
            / 2
        )
        return emb / self.cluster.num_gpus + dense

    def _dynamic_bytes_per_gpu(self, delta: dict[str, float], batch: Batch) -> float:
        """Activations (stash + grads + workspace) + input buffers +
        densify overhead, per GPU."""
        cc = self.constants
        act = (
            cc.activation_mem_factor
            * delta.get("activation_bytes", 0.0)
            / 2  # fp64 sim -> fp32
        )
        densify = delta.get("densify_bytes", 0.0) / 2
        inputs = batch.wire_nbytes
        return (act + densify + inputs) / self.cluster.num_gpus

    def _logical_fwd_flops(self, delta: dict[str, float], batch: Batch) -> float:
        """FLOPs the *baseline* (KJT) path would execute for this batch.

        The paper's Table 2 "compute efficiency" is realized useful work
        per GPU-second: deduplicated compute finishes the same logical
        work in less time, so efficiency must be measured in logical (not
        executed) FLOPs.  MLP/interaction FLOPs are path-independent;
        pooling FLOPs are re-counted over the *expanded* value counts.
        """
        model = self.model
        dim = model.config.embedding_dim
        flops = delta.get("mlp_flops", 0.0)
        if batch.kjt is not None:
            for key in batch.kjt.keys:
                jt = batch.kjt[key]
                flops += model.sparse_arch.features[key].pooling.flops(
                    jt.total_values, dim, jt.num_rows
                )
        for ikjt in batch.ikjts:
            for key in ikjt.keys:
                jt = ikjt[key]
                expanded = int(jt.lengths[ikjt.inverse_lookup].sum())
                flops += model.sparse_arch.features[key].pooling.flops(
                    expanded, dim, ikjt.batch_size
                )
        return flops

    # -- iteration ------------------------------------------------------------

    def run_iteration(self, batch: Batch, track_updates: bool = False) -> IterationResult:
        model, cluster, cc = self.model, self.cluster, self.constants
        before = dict(model.counters.as_dict())
        loss = model.train_step(batch, track_updates=track_updates)
        after = model.counters.as_dict()
        delta = {k: after.get(k, 0.0) - before.get(k, 0.0) for k in after}

        n = cluster.num_gpus
        dim = model.config.embedding_dim
        vol = sdd_volume(batch, dedup_output=model.flags.dedup_compute)

        # -- all-to-all phases (forward input, forward output, both mirrored
        # in the backward pass for gradients)
        t_sdd = all_to_all_seconds(vol.input_bytes / n, cluster)
        out_bytes = vol.output_bytes(dim, cc.emb_dtype_bytes)
        t_emb_out = all_to_all_seconds(out_bytes / n, cluster)
        t_a2a_raw = 2.0 * (t_sdd + t_emb_out)

        # -- EMB lookups: gather forward + scatter-update backward
        lookup_bytes = delta.get("emb_lookups", 0.0) * dim * cc.emb_dtype_bytes
        t_emb = 2.0 * lookup_bytes / n / cluster.gpu.hbm_bw

        # -- GEMM compute: pooling + MLPs, forward + backward
        fwd_flops = delta.get("pooling_flops", 0.0) + delta.get("mlp_flops", 0.0)
        total_flops = fwd_flops * (1.0 + cc.backward_flops_factor)
        t_gemm = total_flops / n / cluster.gpu.flops

        # overlap: a slice of A2A hides under compute; only the exposed
        # remainder contributes to iteration latency (Fig 8 semantics)
        t_a2a = max(0.0, t_a2a_raw - cc.comm_overlap_fraction * t_gemm)

        # -- other: exposed slice of the dense-gradient all-reduce + fixed
        # overhead (the all-reduce itself overlaps with backward compute)
        param_bytes = sum(p.nbytes for p in model.dense_params()) / 2
        t_other = (
            cc.allreduce_exposure * all_reduce_seconds(param_bytes, cluster)
            + cc.fixed_overhead
        )

        breakdown = IterationBreakdown(
            emb_lookup=t_emb, gemm=t_gemm, a2a=t_a2a, other=t_other
        )
        iteration_seconds = breakdown.total

        static = self._static_bytes_per_gpu()
        dynamic = self._dynamic_bytes_per_gpu(delta, batch)
        capacity = cluster.gpu.memory_bytes
        max_mem = static + dynamic
        logical_flops = self._logical_fwd_flops(delta, batch) * (
            1.0 + cc.backward_flops_factor
        )
        result = IterationResult(
            loss=loss,
            breakdown=breakdown,
            iteration_seconds=iteration_seconds,
            samples_per_second=batch.batch_size / iteration_seconds,
            max_mem_bytes=max_mem,
            static_mem_bytes=static,
            dynamic_mem_bytes=dynamic,
            max_mem_util=max_mem / capacity,
            avg_mem_util=(static + cc.avg_dynamic_fraction * dynamic) / capacity,
            flops_per_gpu_second=logical_flops / n / iteration_seconds,
        )
        self.report.iterations.append(result)
        return result

    def run(
        self, batches: Iterable[Batch], track_updates: bool = False
    ) -> TrainingReport:
        """Train over any batch source — a list or a live iterator.

        Fed a reader fleet's lazy batch stream, the trainer ingests while
        the readers decode ahead (the paper's reader→trainer overlap);
        the time blocked in ``next()`` vs inside steps is measured into
        the report so the pipeline can attribute wall-clock to
        reader-stall vs trainer-stall.  The functional results are
        bit-identical for any batch source with the same contents.
        """
        rep = self.report
        run_started = time.perf_counter()
        it = iter(batches)
        while True:
            t0 = time.perf_counter()
            try:
                batch = next(it)
            except StopIteration:
                rep.ingest_wait_seconds += time.perf_counter() - t0
                break
            rep.ingest_wait_seconds += time.perf_counter() - t0
            t1 = time.perf_counter()
            self.run_iteration(batch, track_updates=track_updates)
            rep.step_wall_seconds += time.perf_counter() - t1
        rep.run_wall_seconds += time.perf_counter() - run_started
        return rep
