"""Distributed-training simulation: devices, collectives, SDD, latency."""

from .comm import all_reduce_seconds, all_to_all_seconds
from .costmodel import TrainerCostConstants, sim_cluster, sim_gpu
from .device import ClusterSpec, GPUDevice, GPUSpec
from .sdd import (
    SDDVolume,
    ShardingPlan,
    plan_sharding,
    plan_sharding_balanced,
    sdd_volume,
)
from .trainer import DistributedTrainer, IterationResult, TrainingReport

__all__ = [
    "GPUSpec",
    "ClusterSpec",
    "GPUDevice",
    "all_to_all_seconds",
    "all_reduce_seconds",
    "TrainerCostConstants",
    "sim_gpu",
    "sim_cluster",
    "ShardingPlan",
    "SDDVolume",
    "plan_sharding",
    "plan_sharding_balanced",
    "sdd_volume",
    "DistributedTrainer",
    "IterationResult",
    "TrainingReport",
]
