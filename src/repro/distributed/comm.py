"""Collective-communication latency models (§2.2's all-to-all/all-reduce).

Standard alpha-beta cost models: ``latency + bytes / bandwidth`` with the
usual ring/all-to-all volume factors.  These produce the A2A component of
Fig 8, which RecD halves by shipping deduplicated slices.
"""

from __future__ import annotations

from .device import ClusterSpec

__all__ = ["all_to_all_seconds", "all_reduce_seconds"]


def all_to_all_seconds(
    per_gpu_bytes: float, cluster: ClusterSpec
) -> float:
    """Time for each GPU to exchange ``per_gpu_bytes`` with all peers.

    A fraction (n-1)/n of each GPU's payload leaves the GPU; transfer
    time is that volume over the collective bandwidth.
    """
    if per_gpu_bytes < 0:
        raise ValueError("bytes must be non-negative")
    n = cluster.num_gpus
    if n == 1:
        return 0.0
    wire = per_gpu_bytes * (n - 1) / n
    return cluster.collective_latency + wire / cluster.collective_bw


def all_reduce_seconds(payload_bytes: float, cluster: ClusterSpec) -> float:
    """Ring all-reduce: 2*(n-1)/n of the payload crosses each link."""
    if payload_bytes < 0:
        raise ValueError("bytes must be non-negative")
    n = cluster.num_gpus
    if n == 1:
        return 0.0
    wire = 2.0 * payload_bytes * (n - 1) / n
    return cluster.collective_latency + wire / cluster.collective_bw
