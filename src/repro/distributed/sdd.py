"""Sparse Data Distribution (SDD): routing features to their EMB shards.

Before lookups, an all-to-all coalesces each feature's values (across
every GPU's local batch) onto the GPU holding that feature's
model-parallel embedding shard (§2.2).  RecD's O5 sends only the IKJT's
``values``/``offsets`` slices — ``inverse_lookup`` stays local (§5) — so
SDD bytes shrink by DedupeFactor(f) per deduplicated feature.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reader.batch import Batch

__all__ = [
    "ShardingPlan",
    "SDDVolume",
    "plan_sharding",
    "plan_sharding_balanced",
    "sdd_volume",
]

_ID_BYTES = 8  # int64 sparse IDs on the wire
_OFFSET_BYTES = 8


@dataclass(frozen=True)
class ShardingPlan:
    """feature key -> owning GPU (round-robin model parallelism)."""

    owner: dict[str, int]
    num_gpus: int


def plan_sharding(feature_names: list[str], num_gpus: int) -> ShardingPlan:
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if not feature_names:
        raise ValueError("need at least one feature")
    return ShardingPlan(
        owner={name: i % num_gpus for i, name in enumerate(feature_names)},
        num_gpus=num_gpus,
    )


def plan_sharding_balanced(
    table_bytes: dict[str, int], num_gpus: int
) -> ShardingPlan:
    """Greedy size-balanced model parallelism (RecShard-lite, §8).

    Assigns the largest table to the least-loaded GPU first, so per-GPU
    EMB memory stays balanced when table sizes are skewed.
    """
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if not table_bytes:
        raise ValueError("need at least one feature")
    if any(v < 0 for v in table_bytes.values()):
        raise ValueError("table sizes must be non-negative")
    loads = [0] * num_gpus
    owner: dict[str, int] = {}
    for name, size in sorted(
        table_bytes.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        gpu = min(range(num_gpus), key=lambda g: loads[g])
        owner[name] = gpu
        loads[gpu] += size
    return ShardingPlan(owner=owner, num_gpus=num_gpus)


@dataclass
class SDDVolume:
    """Bytes involved in one iteration's sparse distribution."""

    #: total feature bytes entering the forward all-to-all
    input_bytes: int = 0
    #: pooled-embedding bytes returned by the second all-to-all
    output_rows: int = 0

    def output_bytes(self, dim: int, dtype_bytes: int = 4) -> int:
        return self.output_rows * dim * dtype_bytes


def sdd_volume(batch: Batch, dedup_output: bool = True) -> SDDVolume:
    """Measure one batch's SDD traffic.

    Plain KJT features ship every (duplicate) value; IKJT features ship
    deduplicated values+offsets only.  The return all-to-all carries one
    pooled embedding per *pooled row*: B rows for KJT features, and — when
    deduplicated compute (O7) keeps outputs in IKJT form
    (``dedup_output``) — unique rows for IKJT features.
    """
    vol = SDDVolume()
    if batch.kjt is not None:
        for key in batch.kjt.keys:
            jt = batch.kjt[key]
            vol.input_bytes += (
                jt.total_values * _ID_BYTES + jt.offsets.size * _OFFSET_BYTES
            )
            vol.output_rows += jt.num_rows
    for ikjt in batch.ikjts:
        for key in ikjt.keys:
            jt = ikjt[key]
            vol.input_bytes += (
                jt.total_values * _ID_BYTES + jt.offsets.size * _OFFSET_BYTES
            )
            vol.output_rows += (
                jt.num_rows if dedup_output else ikjt.batch_size
            )
    if batch.partial is not None:
        for key in batch.partial.keys:
            pt = batch.partial[key]
            # §7 partial encoding on the wire: shared buffer + per-row
            # [offset, length] windows (which replace the offsets slice)
            vol.input_bytes += pt.values.size * _ID_BYTES
            vol.input_bytes += pt.inverse_lookup.size * _OFFSET_BYTES
            vol.output_rows += pt.batch_size
    return vol
