"""Simulated GPU devices and cluster topology (§6.1's ZionEX testbed).

Each ZionEX node has 8 A100s (NVLink intra-node) with a 200 Gbps RoCE NIC
per GPU for inter-node collectives.  We keep the *ratios* of those
constants and scale the magnitudes to the reproduction's workload sizes —
only relative phase times matter for Fig 8/9 and Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.counters import MemoryTracker

__all__ = ["GPUSpec", "ClusterSpec", "GPUDevice"]


@dataclass(frozen=True)
class GPUSpec:
    """Per-GPU performance envelope (simulation units)."""

    name: str = "a100-like"
    memory_bytes: int = 40 * 2**30
    #: HBM bandwidth, bytes/s (A100: ~1.55 TB/s)
    hbm_bw: float = 1.55e12
    #: achievable dense-compute rate, flop/s (A100 fp16 w/ realistic eff.)
    flops: float = 120e12
    #: inter-node NIC bandwidth, bytes/s (200 Gbps RoCE)
    nic_bw: float = 25e9
    #: intra-node NVLink bandwidth, bytes/s (~600 GB/s aggregate)
    nvlink_bw: float = 300e9


@dataclass(frozen=True)
class ClusterSpec:
    """A training cluster: N GPUs across one or more nodes."""

    num_gpus: int = 8
    gpus_per_node: int = 8
    gpu: GPUSpec = GPUSpec()
    #: base per-collective latency, seconds
    collective_latency: float = 30e-6

    def __post_init__(self) -> None:
        if self.num_gpus <= 0 or self.gpus_per_node <= 0:
            raise ValueError("GPU counts must be positive")
        if self.num_gpus % self.gpus_per_node and self.num_gpus > self.gpus_per_node:
            raise ValueError("num_gpus must be a multiple of gpus_per_node")

    @property
    def num_nodes(self) -> int:
        return max(1, self.num_gpus // self.gpus_per_node)

    @property
    def single_node(self) -> bool:
        return self.num_gpus <= self.gpus_per_node

    @property
    def collective_bw(self) -> float:
        """Effective per-GPU bandwidth for collectives.

        Single-node jobs ride NVLink; multi-node collectives bottleneck on
        the RoCE NICs (§6.2, Single-node Training).
        """
        return self.gpu.nvlink_bw if self.single_node else self.gpu.nic_bw


class GPUDevice:
    """One simulated GPU: a memory tracker against the spec's capacity."""

    def __init__(self, spec: GPUSpec, device_id: int = 0):
        self.spec = spec
        self.device_id = device_id
        self.memory = MemoryTracker(spec.memory_bytes)

    def __repr__(self) -> str:
        return f"GPUDevice(id={self.device_id}, spec={self.spec.name})"
