"""Trainer-side latency constants (simulation-scale).

The functional model runs at laptop scale (batches of a few hundred,
embedding dims of tens), roughly three orders of magnitude below the
paper's testbed; the device envelope is scaled down by the same factor so
the *phase mix* of a baseline iteration matches Fig 8's baseline (A2A a
large exposed component, GEMM comparable, EMB lookups a few percent).
Only ratios across configurations are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import ClusterSpec, GPUSpec

__all__ = ["sim_gpu", "sim_cluster", "TrainerCostConstants"]


@dataclass(frozen=True)
class TrainerCostConstants:
    """Non-bandwidth cost knobs of the iteration model."""

    #: bytes per embedding activation element on the wire / in HBM (fp32)
    emb_dtype_bytes: int = 4
    #: backward GEMM cost relative to forward (standard ~2x)
    backward_flops_factor: float = 2.0
    #: fixed per-iteration overhead (optimizer, host sync), seconds
    fixed_overhead: float = 1.5e-4
    #: fraction of the dense-gradient all-reduce left *exposed*.  DDP
    #: buckets and overlaps the all-reduce with backward compute, and —
    #: unlike batches and embedding dims — parameter counts are not scaled
    #: down in this simulation, so exposing the full transfer would let a
    #: constant swamp the iteration.  2% exposure lands "Other" in Fig 8's
    #: baseline band.
    allreduce_exposure: float = 0.02
    #: fraction of GEMM time under which A2A can hide.  The deployed
    #: system overlaps sparse all-to-alls with dense compute; Fig 8 plots
    #: only the *exposed* remainder.  0.0 (default) models everything as
    #: exposed — simple and calibrated — and is why this reproduction's
    #: throughput multipliers overshoot the paper's; raising it toward
    #: ~0.5 pulls RM1's end-to-end gain into the paper's band (see the
    #: overlap ablation bench).
    comm_overlap_fraction: float = 0.0
    #: fraction of dynamic memory counted toward *average* utilization
    avg_dynamic_fraction: float = 0.4
    #: replicated dense parameters don't shrink with the simulation scale
    #: the way batches/dims do; weight their memory contribution down so
    #: the static/dynamic mix matches the paper's setting (Table 2 implies
    #: dynamic activations were ~80% of baseline GPU memory)
    param_mem_scale: float = 0.1
    #: activation memory multiplier: forward stash + gradients + workspace
    activation_mem_factor: float = 3.0


def sim_gpu(memory_bytes: int = 48 * 2**20) -> GPUSpec:
    """An A100 scaled ~1000x down to match simulation workload sizes."""
    return GPUSpec(
        name="sim-a100/1000",
        memory_bytes=memory_bytes,
        hbm_bw=1.55e9,
        flops=120e9,
        nic_bw=25e6,
        nvlink_bw=300e6,
    )


def sim_cluster(
    num_gpus: int = 48,
    gpus_per_node: int = 8,
    memory_bytes: int = 48 * 2**20,
) -> ClusterSpec:
    return ClusterSpec(
        num_gpus=num_gpus,
        gpus_per_node=gpus_per_node,
        gpu=sim_gpu(memory_bytes),
        collective_latency=10e-6,
    )
