"""Trainable parameter container for the NumPy DLRM."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A dense trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad")

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def nbytes(self) -> int:
        return int(self.value.nbytes)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.value.shape})"
