"""Trainer: the NumPy DLRM with KJT and IKJT (O5–O7) sparse paths."""

from .attention import AttentionPooling, TransformerPooling
from .embedding import EmbeddingActivations, EmbeddingTable
from .evaluation import evaluate, log_loss, normalized_entropy, roc_auc
from .interaction import DotInteraction
from .loss import bce_with_logits, sigmoid
from .mlp import MLP, Linear
from .model import DLRM, DLRMConfig, make_pooling
from .optimizer import SGD, RowWiseAdagrad, sparse_row_update
from .params import Parameter
from .pooling import MaxPooling, MeanPooling, PoolingModule, SumPooling
from .sparse_arch import SparseArch, SparseFeature, TrainerOptFlags

__all__ = [
    "Parameter",
    "Linear",
    "MLP",
    "SGD",
    "RowWiseAdagrad",
    "sparse_row_update",
    "EmbeddingTable",
    "EmbeddingActivations",
    "PoolingModule",
    "SumPooling",
    "MeanPooling",
    "MaxPooling",
    "AttentionPooling",
    "TransformerPooling",
    "DotInteraction",
    "bce_with_logits",
    "sigmoid",
    "SparseArch",
    "SparseFeature",
    "TrainerOptFlags",
    "DLRM",
    "DLRMConfig",
    "make_pooling",
    "evaluate",
    "log_loss",
    "roc_auc",
    "normalized_entropy",
]
