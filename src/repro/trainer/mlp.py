"""Multilayer perceptrons with explicit forward/backward (NumPy).

DLRMs are MLPs + embedding tables (§2.2); the bottom MLP transforms dense
features, the top MLP produces the prediction.  Both are replicated
data-parallel across GPUs, so their gradients go through all-reduce.
"""

from __future__ import annotations

import numpy as np

from .params import Parameter

__all__ = ["Linear", "MLP"]


class Linear:
    """y = x W + b with cached input for backward."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_dim)
        self.W = Parameter(rng.normal(0.0, scale, size=(in_dim, out_dim)))
        self.b = Parameter(np.zeros(out_dim))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.W.grad += self._x.T @ dy
        self.b.grad += dy.sum(axis=0)
        return dy @ self.W.value.T

    def params(self) -> list[Parameter]:
        return [self.W, self.b]

    def flops(self, batch_size: int) -> float:
        """2*B*in*out multiply-adds for forward (backward is ~2x that)."""
        in_dim, out_dim = self.W.shape
        return 2.0 * batch_size * in_dim * out_dim


class MLP:
    """A ReLU MLP; the final layer is linear (no activation)."""

    def __init__(
        self,
        in_dim: int,
        layer_dims: tuple[int, ...],
        rng: np.random.Generator,
    ):
        if not layer_dims:
            raise ValueError("need at least one layer")
        self.layers: list[Linear] = []
        prev = in_dim
        for dim in layer_dims:
            self.layers.append(Linear(prev, dim, rng))
            prev = dim
        self.out_dim = prev
        self._relu_masks: list[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._relu_masks = []
        for i, layer in enumerate(self.layers):
            x = layer.forward(x)
            if i < len(self.layers) - 1:
                mask = x > 0
                self._relu_masks.append(mask)
                x = x * mask
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for i in range(len(self.layers) - 1, -1, -1):
            if i < len(self.layers) - 1:
                dy = dy * self._relu_masks[i]
            dy = self.layers[i].backward(dy)
        return dy

    def params(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.params()]

    def flops(self, batch_size: int) -> float:
        return sum(layer.flops(batch_size) for layer in self.layers)
