"""Pairwise dot-product feature interaction (§2.2, Naumov et al. 2019).

The interaction layer stacks the bottom-MLP output and every pooled
sparse feature into (B, M+1, D) and computes all pairwise dot products
(lower triangle, excluding self), concatenating them with the dense
representation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DotInteraction"]


class DotInteraction:
    """Explicit second-order interactions across feature vectors."""

    def __init__(self) -> None:
        self._cache: dict | None = None

    def output_dim(self, num_features: int, dim: int) -> int:
        """num_features counts the dense representation too."""
        return dim + num_features * (num_features - 1) // 2

    def forward(self, vectors: list[np.ndarray]) -> np.ndarray:
        """``vectors[0]`` is the bottom-MLP output; the rest are pooled
        embeddings, all (B, D)."""
        if not vectors:
            raise ValueError("need at least one feature vector")
        T = np.stack(vectors, axis=1)  # (B, M, D)
        B, M, D = T.shape
        G = T @ T.transpose(0, 2, 1)  # (B, M, M) gram
        iu, ju = np.tril_indices(M, k=-1)
        pairs = G[:, iu, ju]  # (B, M(M-1)/2)
        out = np.concatenate([vectors[0], pairs], axis=1)
        self._cache = {"T": T, "iu": iu, "ju": ju, "M": M, "D": D}
        return out

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        c = self._cache
        T, iu, ju, M, D = c["T"], c["iu"], c["ju"], c["M"], c["D"]
        B = T.shape[0]
        d_dense = dout[:, :D]
        d_pairs = dout[:, D:]
        dG = np.zeros((B, M, M))
        dG[:, iu, ju] = d_pairs
        # G = T T^T -> dT = (dG + dG^T) T
        dT = (dG + dG.transpose(0, 2, 1)) @ T
        grads = [dT[:, m, :].copy() for m in range(M)]
        grads[0] += d_dense
        return grads

    def flops(self, batch_size: int, num_features: int, dim: int) -> float:
        return float(2 * batch_size * num_features * num_features * dim)
