"""Sparse feature architecture: EMB lookup + pooling over KJTs or IKJTs.

This is where RecD's trainer-side optimizations (Table 1, O5–O7) live:

* **O5 Deduplicated EMB** — look up only the IKJT's unique rows, cutting
  EMB lookups (HBM bandwidth) and activation memory by DedupeFactor(f).
* **O6 JaggedIndexSelect** — when an IKJT must be expanded back to
  per-batch-row form, gather jagged rows directly instead of padding to
  dense first (the memory-overhead path it replaces is also implemented,
  for the ablation).
* **O7 Deduplicated Compute** — run the pooling module (attention /
  transformer included) on unique rows only, then expand the *pooled*
  output with the shared ``inverse_lookup``.

Every combination of flags is functionally identical — asserted by the
test suite — because IKJTs encode the same logical data (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ikjt import InverseKeyedJaggedTensor
from ..core.jagged import JaggedTensor
from ..core.jagged_ops import dense_index_select, expand_pooled, jagged_index_select
from ..metrics.counters import Counters
from .embedding import EmbeddingActivations, EmbeddingTable
from .params import Parameter
from .pooling import PoolingModule

__all__ = ["TrainerOptFlags", "SparseFeature", "SparseArch"]


@dataclass(frozen=True)
class TrainerOptFlags:
    """RecD trainer optimization toggles (for the Fig 9 ablation)."""

    dedup_emb: bool = True  # O5
    jagged_index_select: bool = True  # O6
    dedup_compute: bool = True  # O7

    @classmethod
    def baseline(cls) -> "TrainerOptFlags":
        return cls(False, False, False)

    @classmethod
    def full(cls) -> "TrainerOptFlags":
        return cls(True, True, True)


class SparseFeature:
    """One feature's table + pooling pair with KJT and IKJT paths."""

    def __init__(
        self, name: str, table: EmbeddingTable, pooling: PoolingModule
    ):
        self.name = name
        self.table = table
        self.pooling = pooling
        self._acts: EmbeddingActivations | None = None
        self._inverse: np.ndarray | None = None
        self._mode: str = "kjt"

    # -- forward ------------------------------------------------------------

    def forward_kjt(self, jt: JaggedTensor, counters: Counters) -> np.ndarray:
        """Baseline path: lookup + pool every (duplicate) batch row."""
        acts = self.table.lookup(jt)
        self._acts, self._inverse, self._mode = acts, None, "kjt"
        counters.add("emb_lookups", jt.total_values)
        counters.add("activation_bytes", acts.nbytes)
        counters.add(
            "pooling_flops",
            self.pooling.flops(jt.total_values, self.table.dim, acts.num_rows),
        )
        return self.pooling.forward(acts)

    def forward_ikjt(
        self,
        jt: JaggedTensor,
        inverse_lookup: np.ndarray,
        flags: TrainerOptFlags,
        counters: Counters,
    ) -> np.ndarray:
        """IKJT path under the given optimization flags.

        ``jt`` holds the *deduplicated* rows; ``inverse_lookup`` maps the
        batch onto them.
        """
        if not flags.dedup_emb:
            # expand the jagged IDs back to batch rows first (O6 decides how)
            if flags.jagged_index_select:
                expanded = jagged_index_select(jt, inverse_lookup)
            else:
                expanded = dense_index_select(jt, inverse_lookup)
                # the dense detour allocates batch x max_len temporarily
                lengths = jt.lengths
                max_len = int(lengths.max()) if lengths.size else 0
                counters.add(
                    "densify_bytes", inverse_lookup.size * max_len * 8
                )
            return self.forward_kjt(expanded, counters)

        acts = self.table.lookup(jt)  # unique rows only (O5)
        counters.add("emb_lookups", jt.total_values)
        counters.add("activation_bytes", acts.nbytes)
        if flags.dedup_compute:
            # O7: pool unique rows, expand pooled output
            counters.add(
                "pooling_flops",
                self.pooling.flops(
                    jt.total_values, self.table.dim, acts.num_rows
                ),
            )
            pooled_unique = self.pooling.forward(acts)
            self._acts, self._inverse, self._mode = acts, inverse_lookup, "dedup"
            counters.add(
                "index_select_bytes", inverse_lookup.size * self.table.dim * 8
            )
            return expand_pooled(pooled_unique, inverse_lookup)

        # O5 without O7: expand *activations* to batch rows, pool those.
        if flags.jagged_index_select:
            batch_values, batch_offsets = _expand_activations_jagged(
                acts, inverse_lookup
            )
        else:
            batch_values, batch_offsets = _expand_activations_dense(
                acts, inverse_lookup, counters
            )
        batch_acts = EmbeddingActivations(
            batch_values, batch_offsets, acts.ids
        )
        counters.add("activation_bytes", batch_acts.nbytes)
        counters.add(
            "pooling_flops",
            self.pooling.flops(
                batch_values.shape[0], self.table.dim, inverse_lookup.size
            ),
        )
        self._acts, self._inverse, self._mode = acts, inverse_lookup, "expanded"
        return self.pooling.forward(batch_acts)

    # -- backward -----------------------------------------------------------

    def backward(self, dpooled: np.ndarray) -> None:
        """Route pooled gradients back to the embedding table.

        The IKJT modes replay the baseline's *exact* accumulation
        arithmetic: gradients are expanded to per-copy batch rows (a
        pure gather — no float math) and accumulated per copy, exactly
        as ``forward_kjt``'s backward would.  Folding per-copy grads
        onto unique rows first would regroup float additions
        (``w - lr*(g1+g2) != (w - lr*g1) - lr*g2``) and drift the loss
        trajectory by ULPs after a few steps, breaking the repo's
        bit-identity contract.  The *savings* stay modeled: counters
        recorded in forward meter the deduplicated work.
        """
        if self._acts is None:
            raise RuntimeError("backward before forward")
        acts, inverse = self._acts, self._inverse
        if self._mode == "kjt":
            dacts = self.pooling.backward(dpooled)
            self.table.accumulate_grad(acts.ids, dacts)
            return
        src, batch_offsets = _expansion_src(acts.offsets, inverse)
        batch_ids = acts.ids[src]
        if self._mode == "dedup":
            # pooling ran on unique rows; rebuild the batch-shaped cache
            # (also makes pooling-param grads baseline-exact)
            batch_acts = EmbeddingActivations(
                acts.values[src], batch_offsets, batch_ids
            )
            self.pooling.forward(batch_acts)
        # "expanded" mode pooled batch rows already; its cache is live
        d_batch_values = self.pooling.backward(dpooled)
        self.table.accumulate_grad(batch_ids, d_batch_values)

    def params(self) -> list[Parameter]:
        return self.pooling.params()


def _expansion_src(
    offsets: np.ndarray, inverse: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat source indices expanding unique jagged rows to batch order.

    Returns ``(src, batch_offsets)`` such that ``values[src]`` is the
    fully-materialized batch layout and ``batch_offsets`` delimits its
    rows — the exact inverse of dedup, as a gather.
    """
    lengths = np.diff(offsets)
    sel = lengths[inverse]
    batch_offsets = np.zeros(inverse.size + 1, dtype=np.int64)
    np.cumsum(sel, out=batch_offsets[1:])
    total = int(batch_offsets[-1])
    within = np.arange(total, dtype=np.int64) - np.repeat(
        batch_offsets[:-1], sel
    )
    src = np.repeat(offsets[:-1][inverse], sel) + within
    return src, batch_offsets


def _expand_activations_jagged(
    acts: EmbeddingActivations, inverse: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather unique activation rows into batch order (O6 path, 2-D)."""
    src, offsets = _expansion_src(acts.offsets, inverse)
    return acts.values[src], offsets


def _expand_activations_dense(
    acts: EmbeddingActivations, inverse: np.ndarray, counters: Counters
) -> tuple[np.ndarray, np.ndarray]:
    """The pre-O6 path: pad unique activations dense, index_select, re-jag."""
    lengths = np.diff(acts.offsets)
    max_len = int(lengths.max()) if lengths.size else 0
    num_unique = lengths.size
    dim = acts.values.shape[1]
    dense = np.zeros((num_unique, max_len, dim))
    if max_len:
        mask = np.arange(max_len)[None, :] < lengths[:, None]
        dense[mask] = acts.values
    picked = dense[inverse]  # (B, max_len, D) — the memory overhead
    counters.add("densify_bytes", picked.nbytes + dense.nbytes)
    sel = lengths[inverse]
    offsets = np.zeros(inverse.size + 1, dtype=np.int64)
    np.cumsum(sel, out=offsets[1:])
    if max_len:
        mask_b = np.arange(max_len)[None, :] < sel[:, None]
        values = picked[mask_b]
    else:
        values = np.zeros((0, dim))
    return values, offsets


class SparseArch:
    """All sparse features of one model, split into KJT and IKJT groups."""

    def __init__(
        self,
        features: dict[str, SparseFeature],
        flags: TrainerOptFlags | None = None,
    ):
        if not features:
            raise ValueError("need at least one sparse feature")
        self.features = features
        self.flags = flags or TrainerOptFlags.baseline()
        self.counters = Counters()
        self._order: list[str] = []

    def forward(
        self,
        kjt,
        ikjts: list[InverseKeyedJaggedTensor],
        partial=None,
    ) -> list[np.ndarray]:
        """Pooled (B, D) vectors in *model* feature order.

        Ordering by the model's declared feature order (not batch arrival
        order) keeps the interaction layer's input layout identical
        whether a feature arrived as KJT or IKJT — a requirement for the
        bit-equivalence the paper claims in §6.2.

        ``partial`` (a :class:`~repro.core.partial.PartialKeyedJaggedTensor`)
        is expanded to jagged form before lookup: §7 defines the partial
        *encoding*; trainer-side compute over partials is future work in
        the paper too.
        """
        by_key: dict[str, np.ndarray] = {}
        if kjt is not None:
            for key in kjt.keys:
                feature = self._feature(key)
                by_key[key] = feature.forward_kjt(kjt[key], self.counters)
        for ikjt in ikjts:
            for key in ikjt.keys:
                feature = self._feature(key)
                by_key[key] = feature.forward_ikjt(
                    ikjt[key],
                    ikjt.inverse_lookup,
                    self.flags,
                    self.counters,
                )
        if partial is not None:
            for key in partial.keys:
                feature = self._feature(key)
                by_key[key] = feature.forward_kjt(
                    partial[key].to_jagged(), self.counters
                )
        if not by_key:
            raise ValueError("batch carried no sparse features")
        self._order = [k for k in self.features if k in by_key]
        return [by_key[k] for k in self._order]

    def backward(self, dpooled: list[np.ndarray]) -> None:
        if len(dpooled) != len(self._order):
            raise ValueError("gradient count mismatch")
        for key, grad in zip(self._order, dpooled):
            self.features[key].backward(grad)

    def _feature(self, key: str) -> SparseFeature:
        try:
            return self.features[key]
        except KeyError:
            raise KeyError(f"model has no sparse feature {key!r}") from None

    @property
    def order(self) -> list[str]:
        return list(self._order)

    def params(self) -> list[Parameter]:
        return [p for f in self.features.values() for p in f.params()]

    def tables(self) -> list[EmbeddingTable]:
        return [f.table for f in self.features.values()]
