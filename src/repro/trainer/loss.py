"""Binary cross-entropy with logits (click-through-rate loss)."""

from __future__ import annotations

import numpy as np

__all__ = ["bce_with_logits", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def bce_with_logits(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean BCE loss and its gradient w.r.t. logits.

    Uses the log-sum-exp form for stability: loss = max(x,0) - x*y +
    log(1+exp(-|x|)).
    """
    logits = np.asarray(logits, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if logits.shape != labels.shape:
        raise ValueError("logits and labels must align")
    n = logits.size
    if n == 0:
        raise ValueError("empty batch")
    loss = (
        np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
    ).mean()
    grad = (sigmoid(logits) - labels) / n
    return float(loss), grad
