"""The DLRM model: bottom MLP + sparse arch + interaction + top MLP (§2.2).

Assembled from a :class:`~repro.datagen.workloads.RMWorkload` so the three
representative models (RM1–RM3) instantiate directly.  The model runs
real NumPy math end to end — forward, loss, backward, optimizer — while
the :class:`~repro.metrics.counters.Counters` it accumulates feed the
distributed latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datagen.schema import PoolingKind, SparseFeatureSpec
from ..datagen.workloads import RMWorkload
from ..reader.batch import Batch
from .attention import AttentionPooling, TransformerPooling
from .embedding import EmbeddingTable
from .interaction import DotInteraction
from .loss import bce_with_logits, sigmoid
from .mlp import MLP
from .optimizer import SGD, RowWiseAdagrad
from .pooling import MaxPooling, MeanPooling, PoolingModule, SumPooling
from .sparse_arch import SparseArch, SparseFeature, TrainerOptFlags

__all__ = ["DLRMConfig", "DLRM", "make_pooling"]


def make_pooling(
    spec: SparseFeatureSpec, dim: int, rng: np.random.Generator
) -> PoolingModule:
    """Instantiate the pooling module a feature spec asks for."""
    kind = spec.pooling
    if kind is PoolingKind.SUM:
        return SumPooling()
    if kind is PoolingKind.MEAN:
        return MeanPooling()
    if kind is PoolingKind.MAX:
        return MaxPooling()
    if kind is PoolingKind.ATTENTION:
        return AttentionPooling(dim, rng=rng)
    if kind is PoolingKind.TRANSFORMER:
        return TransformerPooling(dim, rng=rng)
    raise ValueError(f"unknown pooling kind {kind}")


@dataclass(frozen=True)
class DLRMConfig:
    """Model hyperparameters independent of the workload schema."""

    embedding_dim: int
    bottom_mlp: tuple[int, ...]
    top_mlp: tuple[int, ...]
    num_dense: int
    #: embedding rows per table (hash-capped; production tables are
    #: sharded across GPUs, §2.2)
    max_table_rows: int = 5000
    lr: float = 0.05
    #: "sgd" or "rowwise_adagrad" (TorchRec's production default)
    sparse_optimizer: str = "sgd"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sparse_optimizer not in ("sgd", "rowwise_adagrad"):
            raise ValueError(
                f"unknown sparse optimizer {self.sparse_optimizer!r}"
            )

    @classmethod
    def from_workload(
        cls, workload: RMWorkload, max_table_rows: int = 5000, seed: int = 0
    ) -> "DLRMConfig":
        dim = workload.embedding_dim
        # bottom MLP must end at the embedding dim for dot interaction
        bottom = tuple(workload.bottom_mlp) + (dim,)
        return cls(
            embedding_dim=dim,
            bottom_mlp=bottom,
            top_mlp=tuple(workload.top_mlp),
            num_dense=len(workload.schema.dense),
            max_table_rows=max_table_rows,
            seed=seed,
        )


class DLRM:
    """A trainable DLRM over Batch inputs (KJT and/or IKJT sparse parts)."""

    def __init__(
        self,
        sparse_specs: list[SparseFeatureSpec],
        config: DLRMConfig,
        flags: TrainerOptFlags | None = None,
    ):
        if not sparse_specs:
            raise ValueError("DLRM needs at least one sparse feature")
        rng = np.random.default_rng(config.seed)
        self.config = config
        dim = config.embedding_dim
        self.specs = {s.name: s for s in sparse_specs}
        features = {}
        for spec in sparse_specs:
            table = EmbeddingTable(
                min(spec.cardinality, config.max_table_rows),
                dim,
                rng,
                name=spec.name,
            )
            features[spec.name] = SparseFeature(
                spec.name, table, make_pooling(spec, dim, rng)
            )
        self.sparse_arch = SparseArch(features, flags or TrainerOptFlags.baseline())
        self.bottom_mlp = MLP(max(config.num_dense, 1), config.bottom_mlp, rng)
        if self.bottom_mlp.out_dim != dim:
            raise ValueError(
                "bottom MLP must end at embedding_dim for dot interaction"
            )
        self.interaction = DotInteraction()
        num_vectors = 1 + len(sparse_specs)
        inter_dim = self.interaction.output_dim(num_vectors, dim)
        self.top_mlp = MLP(inter_dim, config.top_mlp, rng)
        if self.top_mlp.out_dim != 1:
            raise ValueError("top MLP must end with a single logit")
        self.optimizer = SGD(self.dense_params(), lr=config.lr)
        self._sparse_opts = (
            {
                name: RowWiseAdagrad(f.table.num_rows, lr=config.lr)
                for name, f in self.sparse_arch.features.items()
            }
            if config.sparse_optimizer == "rowwise_adagrad"
            else None
        )
        self._cache: dict | None = None

    # -- parameters -----------------------------------------------------------

    def dense_params(self):
        return (
            self.bottom_mlp.params()
            + self.top_mlp.params()
            + self.sparse_arch.params()
        )

    @property
    def counters(self):
        return self.sparse_arch.counters

    @property
    def flags(self) -> TrainerOptFlags:
        return self.sparse_arch.flags

    def embedding_nbytes(self) -> int:
        return sum(t.nbytes for t in self.sparse_arch.tables())

    # -- forward / backward ---------------------------------------------------

    def forward(self, batch: Batch) -> np.ndarray:
        """Logits (B,) for one batch."""
        dense_in = (
            batch.dense.astype(np.float64)
            if batch.dense.size
            else np.zeros((batch.batch_size, 1))
        )
        dense_repr = self.bottom_mlp.forward(dense_in)
        self.counters.add(
            "mlp_flops", self.bottom_mlp.flops(batch.batch_size)
        )
        pooled = self.sparse_arch.forward(
            batch.kjt, batch.ikjts, partial=batch.partial
        )
        vectors = [dense_repr] + pooled
        inter = self.interaction.forward(vectors)
        self.counters.add(
            "mlp_flops",
            self.interaction.flops(
                batch.batch_size, len(vectors), self.config.embedding_dim
            ),
        )
        logits = self.top_mlp.forward(inter).ravel()
        self.counters.add("mlp_flops", self.top_mlp.flops(batch.batch_size))
        self._cache = {"num_vectors": len(vectors)}
        return logits

    def backward(self, dlogits: np.ndarray) -> None:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        d_inter = self.top_mlp.backward(dlogits[:, None])
        d_vectors = self.interaction.backward(d_inter)
        self.bottom_mlp.backward(d_vectors[0])
        self.sparse_arch.backward(d_vectors[1:])

    def train_step(self, batch: Batch, track_updates: bool = False) -> float:
        """One synchronous iteration: forward, BCE, backward, update."""
        self.optimizer.zero_grad()
        logits = self.forward(batch)
        loss, dlogits = bce_with_logits(logits, batch.labels)
        self.backward(dlogits)
        self.optimizer.step()
        for name, feature in self.sparse_arch.features.items():
            if self._sparse_opts is not None:
                feature.table.apply_optimizer(
                    self._sparse_opts[name], track_updates=track_updates
                )
            else:
                feature.table.apply_sgd(
                    self.config.lr, track_updates=track_updates
                )
        return loss

    def predict(self, batch: Batch) -> np.ndarray:
        """Click probabilities for one batch (inference)."""
        return sigmoid(self.forward(batch))
