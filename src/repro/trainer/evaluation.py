"""Offline evaluation metrics for click-through-rate models.

The standard DLRM quality metrics: log loss, ROC AUC, and normalized
entropy (log loss relative to the base-rate predictor — the metric
Meta's DLRM papers report).  RecD itself does not change accuracy
(§6.2), which the test suite verifies by computing identical metrics on
the KJT and IKJT paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["log_loss", "roc_auc", "normalized_entropy", "evaluate"]

_EPS = 1e-12


def _validate(predictions: np.ndarray, labels: np.ndarray):
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    labels = np.asarray(labels, dtype=np.float64).ravel()
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if predictions.size == 0:
        raise ValueError("empty evaluation set")
    if predictions.min() < 0 or predictions.max() > 1:
        raise ValueError("predictions must be probabilities in [0, 1]")
    if not np.isin(labels, (0.0, 1.0)).all():
        raise ValueError("labels must be binary")
    return predictions, labels


def log_loss(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy of probability predictions."""
    p, y = _validate(predictions, labels)
    p = np.clip(p, _EPS, 1.0 - _EPS)
    return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())


def roc_auc(predictions: np.ndarray, labels: np.ndarray) -> float:
    """ROC AUC via the rank statistic (ties share average rank).

    Returns 0.5 when only one class is present (no ranking signal).
    """
    p, y = _validate(predictions, labels)
    n_pos = int(y.sum())
    n_neg = y.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(p, kind="stable")
    ranks = np.empty(p.size, dtype=np.float64)
    sorted_p = p[order]
    # average ranks across tied prediction groups
    i = 0
    while i < p.size:
        j = i
        while j + 1 < p.size and sorted_p[j + 1] == sorted_p[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = ranks[y == 1].sum()
    return float(
        (pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    )


def normalized_entropy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Log loss normalized by the base-rate predictor's log loss.

    < 1.0 means the model beats always-predicting the CTR; the lower the
    better.  Undefined (returns inf) when labels are single-class.
    """
    p, y = _validate(predictions, labels)
    rate = float(y.mean())
    if rate in (0.0, 1.0):
        return float("inf")
    base = -(rate * np.log(rate) + (1 - rate) * np.log(1 - rate))
    return log_loss(p, y) / base


def evaluate(predictions: np.ndarray, labels: np.ndarray) -> dict[str, float]:
    """All metrics at once."""
    return {
        "log_loss": log_loss(predictions, labels),
        "roc_auc": roc_auc(predictions, labels),
        "normalized_entropy": normalized_entropy(predictions, labels),
    }
