"""Sequence pooling: attention and transformer modules (§2.2, §5).

Recent DLRMs pool long user-history sequence features with attention
mechanisms; these dominate GPU compute, which is why deduplicating their
*inputs* (O7) yields RM1's extra 12%-of-iteration GEMM savings.  Both
modules implement exact backward passes (verified against finite
differences in the test suite) and FLOP counting.

``AttentionPooling`` — additive attention with a learned query:
``score_i = tanh(x_i W) . q``, softmax within each jagged segment,
output the alpha-weighted sum of the segment's activations.

``TransformerPooling`` — one pre-norm-free transformer block
(single-head self-attention + residual + ReLU FFN + residual) over each
row's sequence, followed by masked mean pooling.  Sequences are padded
dense with masking; padded positions carry zero activations so no
gradient leaks through them.
"""

from __future__ import annotations

import numpy as np

from ..core.jagged_ops import segment_sum
from .embedding import EmbeddingActivations
from .params import Parameter
from .pooling import PoolingModule

__all__ = ["AttentionPooling", "TransformerPooling"]

_NEG = -1e9  # finite mask value: -inf breeds NaNs in empty rows


def _segment_max_scalar(s: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Max of a scalar score per segment; empty segments get 0."""
    lengths = np.diff(offsets)
    out = np.zeros(lengths.size)
    nonempty = lengths > 0
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(s, offsets[:-1][nonempty])
    return out


class AttentionPooling(PoolingModule):
    """Learned-query additive attention over each jagged segment."""

    def __init__(self, dim: int, hidden: int | None = None,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        hidden = hidden or dim
        self.dim = dim
        self.hidden = hidden
        self.W = Parameter(rng.normal(0, np.sqrt(1.0 / dim), (dim, hidden)))
        self.q = Parameter(rng.normal(0, np.sqrt(1.0 / hidden), hidden))
        self._cache: dict | None = None

    def forward(self, acts: EmbeddingActivations) -> np.ndarray:
        X, offsets = acts.values, acts.offsets
        lengths = np.diff(offsets)
        H = np.tanh(X @ self.W.value)  # (N, hidden)
        s = H @ self.q.value  # (N,)
        smax = _segment_max_scalar(s, offsets)
        e = np.exp(s - np.repeat(smax, lengths))
        z = segment_sum(e, offsets)
        alpha = e / np.repeat(np.maximum(z, 1e-30), lengths)
        out = segment_sum(alpha[:, None] * X, offsets)
        self._cache = {
            "X": X, "H": H, "alpha": alpha, "offsets": offsets,
            "lengths": lengths,
        }
        return out

    def backward(self, dpooled: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        c = self._cache
        X, H, alpha = c["X"], c["H"], c["alpha"]
        offsets, lengths = c["offsets"], c["lengths"]
        g = np.repeat(dpooled, lengths, axis=0)  # (N, D)
        dalpha = (g * X).sum(axis=1)  # (N,)
        dX = alpha[:, None] * g
        inner = segment_sum(alpha * dalpha, offsets)
        ds = alpha * (dalpha - np.repeat(inner, lengths))
        self.q.grad += H.T @ ds
        dH = np.outer(ds, self.q.value)
        dU = (1.0 - H * H) * dH
        self.W.grad += X.T @ dU
        dX += dU @ self.W.value.T
        return dX

    def params(self) -> list[Parameter]:
        return [self.W, self.q]

    def flops(self, total_values: int, dim: int, batch_size: int) -> float:
        # tanh(XW)q dominates: N*D*H + N*H, plus weighted sum N*D
        return float(
            2 * total_values * dim * self.hidden
            + 2 * total_values * self.hidden
            + 2 * total_values * dim
        )


class TransformerPooling(PoolingModule):
    """One self-attention block + FFN over each sequence, mean-pooled."""

    def __init__(self, dim: int, ffn_hidden: int | None = None,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        ffn_hidden = ffn_hidden or 2 * dim
        self.dim = dim
        self.ffn_hidden = ffn_hidden
        scale = np.sqrt(1.0 / dim)
        self.Wq = Parameter(rng.normal(0, scale, (dim, dim)))
        self.Wk = Parameter(rng.normal(0, scale, (dim, dim)))
        self.Wv = Parameter(rng.normal(0, scale, (dim, dim)))
        self.Wo = Parameter(rng.normal(0, scale, (dim, dim)))
        self.W1 = Parameter(rng.normal(0, scale, (dim, ffn_hidden)))
        self.b1 = Parameter(np.zeros(ffn_hidden))
        self.W2 = Parameter(
            rng.normal(0, np.sqrt(1.0 / ffn_hidden), (ffn_hidden, dim))
        )
        self.b2 = Parameter(np.zeros(dim))
        self._cache: dict | None = None

    # -- dense packing ------------------------------------------------------

    @staticmethod
    def _to_dense(acts: EmbeddingActivations) -> tuple[np.ndarray, np.ndarray]:
        lengths = np.diff(acts.offsets)
        B = lengths.size
        L = int(lengths.max()) if B else 0
        D = acts.values.shape[1]
        X = np.zeros((B, max(L, 1), D))
        mask = np.zeros((B, max(L, 1)), dtype=bool)
        if acts.values.shape[0]:
            m = np.arange(L)[None, :] < lengths[:, None]
            X[:, :L][m] = acts.values
            mask[:, :L] = m
        return X, mask

    def forward(self, acts: EmbeddingActivations) -> np.ndarray:
        X, mask = self._to_dense(acts)
        B, L, D = X.shape
        scale = 1.0 / np.sqrt(D)
        Q = X @ self.Wq.value
        K = X @ self.Wk.value
        V = X @ self.Wv.value
        S = (Q @ K.transpose(0, 2, 1)) * scale
        S = np.where(mask[:, None, :], S, _NEG)  # mask key positions
        S = S - S.max(axis=-1, keepdims=True)
        E = np.exp(S)
        A = E / np.maximum(E.sum(axis=-1, keepdims=True), 1e-30)
        Z = A @ V
        proj = Z @ self.Wo.value
        Y = X + proj
        U = Y @ self.W1.value + self.b1.value
        F1 = np.maximum(U, 0.0)
        F = F1 @ self.W2.value + self.b2.value
        Y2 = Y + F
        lengths = mask.sum(axis=1)
        denom = np.maximum(lengths, 1)[:, None]
        out = (Y2 * mask[:, :, None]).sum(axis=1) / denom
        self._cache = {
            "X": X, "mask": mask, "Q": Q, "K": K, "V": V, "A": A, "Z": Z,
            "Y": Y, "F1": F1, "denom": denom, "offsets": acts.offsets,
        }
        return out

    def backward(self, dpooled: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        c = self._cache
        X, mask = c["X"], c["mask"]
        Q, K, V, A, Z, Y, F1 = c["Q"], c["K"], c["V"], c["A"], c["Z"], c["Y"], c["F1"]
        B, L, D = X.shape
        scale = 1.0 / np.sqrt(D)

        dY2 = (dpooled[:, None, :] / c["denom"][:, None]) * mask[:, :, None]
        # FFN backward
        dF = dY2
        flatF = dF.reshape(-1, D)
        self.W2.grad += F1.reshape(-1, self.ffn_hidden).T @ flatF
        self.b2.grad += flatF.sum(axis=0)
        dF1 = (dF @ self.W2.value.T) * (F1 > 0)
        flat1 = dF1.reshape(-1, self.ffn_hidden)
        self.W1.grad += Y.reshape(-1, D).T @ flat1
        self.b1.grad += flat1.sum(axis=0)
        dY = dY2 + dF1 @ self.W1.value.T
        # attention output projection
        dO = dY
        self.Wo.grad += Z.reshape(-1, D).T @ dO.reshape(-1, D)
        dZ = dO @ self.Wo.value.T
        dA = dZ @ V.transpose(0, 2, 1)
        dV = A.transpose(0, 2, 1) @ dZ
        dS = A * (dA - (A * dA).sum(axis=-1, keepdims=True))
        dQ = (dS @ K) * scale
        dK = (dS.transpose(0, 2, 1) @ Q) * scale
        flatX = X.reshape(-1, D)
        self.Wq.grad += flatX.T @ dQ.reshape(-1, D)
        self.Wk.grad += flatX.T @ dK.reshape(-1, D)
        self.Wv.grad += flatX.T @ dV.reshape(-1, D)
        dX = (
            dY  # residual
            + dQ @ self.Wq.value.T
            + dK @ self.Wk.value.T
            + dV @ self.Wv.value.T
        )
        # strip the padding back to jagged layout
        return dX[mask]

    def params(self) -> list[Parameter]:
        return [
            self.Wq, self.Wk, self.Wv, self.Wo,
            self.W1, self.b1, self.W2, self.b2,
        ]

    def flops(self, total_values: int, dim: int, batch_size: int) -> float:
        """Approximate forward FLOPs for jagged input of N total values.

        Projections and FFN scale with N*D^2/N*D*H; attention scores scale
        with sum(len^2)*D, approximated via the mean length.
        """
        n = max(total_values, 0)
        avg_len = n / max(batch_size, 1)
        proj = 2 * 4 * n * dim * dim  # Q,K,V,O
        attn = 2 * 2 * n * avg_len * dim  # S and A@V
        ffn = 2 * 2 * n * dim * self.ffn_hidden
        return float(proj + attn + ffn)
