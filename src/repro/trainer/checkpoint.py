"""Model checkpointing and the Model Store (Figure 1).

The training pipeline's output is a trained model landed in a model
store.  This module serializes a :class:`~repro.trainer.model.DLRM` —
embedding tables, dense parameters, and sparse-optimizer state — to a
self-describing byte blob (``np.savez``) and provides a
Tectonic-backed :class:`ModelStore` with named, versioned snapshots.

Checkpoint/restore is exact: a restored model continues training on the
precise trajectory it left (asserted by the test suite), which also
gives RecD's equivalence guarantees a persistence story.
"""

from __future__ import annotations

import io

import numpy as np

from ..storage.tectonic import TectonicFS
from .model import DLRM

__all__ = ["model_state", "save_model", "load_model", "ModelStore"]

_FORMAT_KEY = "__format__"
_FORMAT_VERSION = 1


def model_state(model: DLRM) -> dict[str, np.ndarray]:
    """Flatten every trainable/stateful array under stable names."""
    state: dict[str, np.ndarray] = {
        _FORMAT_KEY: np.array([_FORMAT_VERSION], dtype=np.int64)
    }
    for name, feature in model.sparse_arch.features.items():
        state[f"emb/{name}/weight"] = feature.table.weight
    for i, p in enumerate(model.dense_params()):
        state[f"dense/{i}"] = p.value
    if model._sparse_opts is not None:
        for name, opt in model._sparse_opts.items():
            state[f"adagrad/{name}/accumulator"] = opt.accumulator
    return state


def save_model(model: DLRM) -> bytes:
    """Serialize the model's state to a compressed npz blob."""
    buf = io.BytesIO()
    np.savez_compressed(buf, **model_state(model))
    return buf.getvalue()


def load_model(model: DLRM, blob: bytes) -> None:
    """Restore state in place.

    The model must have the same architecture: every problem —
    missing keys, extra keys, and shape mismatches — is collected
    before raising, and each category is listed in sorted key order,
    so the error message for a given (checkpoint, model) pair is
    deterministic and tests can assert it exactly.

    Raises:
        ValueError: if the blob is not a checkpoint, carries an
            unsupported format version, or does not match the model's
            architecture key-for-key and shape-for-shape.
    """
    try:
        data = np.load(io.BytesIO(blob))
    except Exception as exc:
        raise ValueError(
            f"not a model checkpoint: unreadable blob ({exc})"
        ) from exc
    with data:
        if _FORMAT_KEY not in data.files:
            raise ValueError(
                "not a model checkpoint: no format marker "
                f"({_FORMAT_KEY!r})"
            )
        version = int(data[_FORMAT_KEY][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        expected = model_state(model)
        missing = sorted(set(expected) - set(data.files))
        extra = sorted(set(data.files) - set(expected))
        mismatched = [
            (key, data[key].shape, expected[key].shape)
            for key in sorted(set(expected) & set(data.files))
            if key != _FORMAT_KEY and data[key].shape != expected[key].shape
        ]
        if missing or extra or mismatched:
            parts = []
            if missing:
                parts.append("missing=" + ", ".join(missing))
            if extra:
                parts.append("extra=" + ", ".join(extra))
            if mismatched:
                parts.append(
                    "shape="
                    + ", ".join(
                        f"{key} (checkpoint {ckpt} vs model {want})"
                        for key, ckpt, want in mismatched
                    )
                )
            raise ValueError(
                "checkpoint/model mismatch: " + "; ".join(parts)
            )
        for key, target in expected.items():
            if key == _FORMAT_KEY:
                continue
            target[...] = data[key]


class ModelStore:
    """Versioned model snapshots on the (simulated) Tectonic filesystem."""

    def __init__(self, fs: TectonicFS, prefix: str = "model_store"):
        self.fs = fs
        self.prefix = prefix

    def _path(self, name: str, version: int) -> str:
        return f"{self.prefix}/{name}/v{version:06d}.npz"

    def versions(self, name: str) -> list[int]:
        paths = self.fs.listdir(f"{self.prefix}/{name}/")
        return sorted(
            int(p.rsplit("/v", 1)[1].removesuffix(".npz")) for p in paths
        )

    def save(self, name: str, model: DLRM) -> int:
        """Snapshot under the next version number; returns the version."""
        existing = self.versions(name)
        version = (existing[-1] + 1) if existing else 1
        self.fs.write(self._path(name, version), save_model(model))
        return version

    def load(self, name: str, model: DLRM, version: int | None = None) -> int:
        """Restore the given (default: latest) version into ``model``."""
        existing = self.versions(name)
        if not existing:
            raise FileNotFoundError(f"no snapshots for {name!r}")
        version = existing[-1] if version is None else version
        if version not in existing:
            raise FileNotFoundError(f"{name!r} has no version {version}")
        load_model(model, self.fs.read(self._path(name, version)))
        return version

    def prune(self, name: str, keep_last: int = 3) -> list[int]:
        """Retention for old snapshots; returns deleted versions."""
        if keep_last < 0:
            raise ValueError("keep_last must be non-negative")
        existing = self.versions(name)
        doomed = existing[: max(0, len(existing) - keep_last)]
        for version in doomed:
            self.fs.delete(self._path(name, version))
        return doomed
