"""Optimizers: dense SGD for MLPs, row-wise sparse SGD for embeddings.

Embedding tables receive *sparse* updates — only looked-up rows change
each iteration — which is both how production trains them and why the
paper's clustering accuracy argument works (§6.2: without clustering the
same sparse values get updated across many consecutive iterations).
"""

from __future__ import annotations

import numpy as np

from .params import Parameter

__all__ = ["SGD", "RowWiseAdagrad", "sparse_row_update"]


class SGD:
    """Plain SGD over dense parameters."""

    def __init__(self, params: list[Parameter], lr: float = 0.01):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        for p in self.params:
            p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class RowWiseAdagrad:
    """Row-wise Adagrad for embedding tables (TorchRec's default).

    Keeps one accumulator *per embedding row* (the mean of squared
    gradients across the row's dimensions), which is what production
    DLRM training uses to keep optimizer state at 1/dim the table size.
    """

    def __init__(self, num_rows: int, lr: float = 0.05, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.lr = lr
        self.eps = eps
        self.accumulator = np.zeros(num_rows)

    def update(
        self, weight: np.ndarray, ids: np.ndarray, grads: np.ndarray
    ) -> None:
        """Apply one sparse step for the given (possibly repeated) rows."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != grads.shape[0]:
            raise ValueError("ids and grads must align")
        if ids.size == 0:
            return
        # coalesce duplicate ids first: Adagrad state must see the summed
        # gradient once, not one partial update per duplicate
        uniq, inverse = np.unique(ids, return_inverse=True)
        summed = np.zeros((uniq.size, grads.shape[1]))
        np.add.at(summed, inverse, grads)
        self.accumulator[uniq] += (summed * summed).mean(axis=1)
        scale = self.lr / (np.sqrt(self.accumulator[uniq]) + self.eps)
        weight[uniq] -= scale[:, None] * summed


def sparse_row_update(
    weight: np.ndarray, ids: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    """Apply -lr * grad to the given rows, accumulating duplicates.

    ``ids`` may repeat (the same embedding row looked up by several batch
    elements); ``np.subtract.at`` accumulates all of them, matching a
    gradient-accurate sparse SGD.
    """
    if ids.shape[0] != grads.shape[0]:
        raise ValueError("ids and grads must align")
    np.subtract.at(weight, ids, lr * grads)
