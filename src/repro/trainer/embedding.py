"""Embedding tables and jagged lookups (§2.2).

EMBs translate every sparse ID into a dense vector.  The lookup count is
the HBM-bandwidth cost RecD's O5 reduces: an IKJT batch looks up only the
unique rows' IDs.
"""

from __future__ import annotations

import numpy as np

from ..core.jagged import JaggedTensor

__all__ = ["EmbeddingTable", "EmbeddingActivations"]


class EmbeddingActivations:
    """Jagged activations: one embedding row per sparse ID.

    ``values`` is (total_ids, dim); ``offsets`` delimits batch rows —
    the direct input of every pooling module.
    """

    __slots__ = ("values", "offsets", "ids")

    def __init__(self, values: np.ndarray, offsets: np.ndarray, ids: np.ndarray):
        self.values = values
        self.offsets = offsets
        self.ids = ids

    @property
    def num_rows(self) -> int:
        return self.offsets.size - 1

    @property
    def nbytes(self) -> int:
        """Dynamic GPU memory held by these activations (§5 EMB Inputs
        and Activations)."""
        return int(self.values.nbytes)


class EmbeddingTable:
    """One feature's embedding table with sparse-gradient accumulation."""

    def __init__(
        self,
        num_rows: int,
        dim: int,
        rng: np.random.Generator,
        name: str = "",
    ):
        if num_rows <= 0 or dim <= 0:
            raise ValueError("num_rows and dim must be positive")
        self.name = name
        self.weight = rng.normal(0.0, 0.01, size=(num_rows, dim))
        self.num_rows = num_rows
        self.dim = dim
        # sparse grad buffers accumulated across backward calls
        self._grad_ids: list[np.ndarray] = []
        self._grad_values: list[np.ndarray] = []
        #: total lookups performed (the O5 HBM-bandwidth metric)
        self.lookup_count = 0
        #: count of rows updated (repeat-update tracking for §6.2 accuracy)
        self.update_events: dict[int, int] = {}

    @property
    def nbytes(self) -> int:
        return int(self.weight.nbytes)

    def lookup(self, jt: JaggedTensor) -> EmbeddingActivations:
        """Gather one embedding row per jagged value."""
        ids = np.mod(jt.values, self.num_rows)  # defensive range mapping
        self.lookup_count += int(ids.size)
        return EmbeddingActivations(
            self.weight[ids], jt.offsets.copy(), ids
        )

    def accumulate_grad(self, ids: np.ndarray, grads: np.ndarray) -> None:
        if ids.shape[0] != grads.shape[0]:
            raise ValueError("ids and grads must align")
        self._grad_ids.append(np.asarray(ids, dtype=np.int64))
        self._grad_values.append(grads)

    def apply_sgd(self, lr: float, track_updates: bool = False) -> None:
        """Apply accumulated sparse gradients with SGD and clear buffers."""
        for ids, grads in zip(self._grad_ids, self._grad_values):
            np.subtract.at(self.weight, ids, lr * grads)
            if track_updates:
                self._track(ids)
        self._grad_ids.clear()
        self._grad_values.clear()

    def apply_optimizer(self, optimizer, track_updates: bool = False) -> None:
        """Apply buffered gradients through a sparse optimizer object
        (e.g. :class:`~repro.trainer.optimizer.RowWiseAdagrad`)."""
        for ids, grads in zip(self._grad_ids, self._grad_values):
            optimizer.update(self.weight, ids, grads)
            if track_updates:
                self._track(ids)
        self._grad_ids.clear()
        self._grad_values.clear()

    def _track(self, ids: np.ndarray) -> None:
        for rid in np.unique(ids):
            key = int(rid)
            self.update_events[key] = self.update_events.get(key, 0) + 1

    def zero_grad(self) -> None:
        self._grad_ids.clear()
        self._grad_values.clear()
