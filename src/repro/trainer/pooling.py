"""Element-wise pooling modules over jagged embedding activations (§2.2).

Sum / mean / max pooling aggregate each row's activations into one
embedding-dim vector.  All implement explicit backward passes and FLOP
counting; the FLOP count is what RecD's deduplicated compute (O7)
divides by the dedupe factor.
"""

from __future__ import annotations

import numpy as np

from ..core.jagged_ops import segment_mean, segment_sum
from .embedding import EmbeddingActivations
from .params import Parameter

__all__ = ["PoolingModule", "SumPooling", "MeanPooling", "MaxPooling"]


class PoolingModule:
    """Base pooling interface: (N, D) jagged -> (B, D) pooled."""

    def forward(self, acts: EmbeddingActivations) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dpooled: np.ndarray) -> np.ndarray:
        """Return d(activations.values) of shape (N, D)."""
        raise NotImplementedError

    def params(self) -> list[Parameter]:
        return []

    def flops(self, total_values: int, dim: int, batch_size: int) -> float:
        """FLOPs of one forward given ``total_values`` activation rows."""
        raise NotImplementedError


class SumPooling(PoolingModule):
    def __init__(self) -> None:
        self._offsets: np.ndarray | None = None

    def forward(self, acts: EmbeddingActivations) -> np.ndarray:
        self._offsets = acts.offsets
        return segment_sum(acts.values, acts.offsets)

    def backward(self, dpooled: np.ndarray) -> np.ndarray:
        if self._offsets is None:
            raise RuntimeError("backward before forward")
        lengths = np.diff(self._offsets)
        return np.repeat(dpooled, lengths, axis=0)

    def flops(self, total_values: int, dim: int, batch_size: int) -> float:
        return float(total_values * dim)


class MeanPooling(PoolingModule):
    def __init__(self) -> None:
        self._offsets: np.ndarray | None = None

    def forward(self, acts: EmbeddingActivations) -> np.ndarray:
        self._offsets = acts.offsets
        return segment_mean(acts.values, acts.offsets)

    def backward(self, dpooled: np.ndarray) -> np.ndarray:
        if self._offsets is None:
            raise RuntimeError("backward before forward")
        lengths = np.diff(self._offsets)
        scale = 1.0 / np.maximum(lengths, 1)
        return np.repeat(dpooled * scale[:, None], lengths, axis=0)

    def flops(self, total_values: int, dim: int, batch_size: int) -> float:
        return float(total_values * dim + batch_size * dim)


class MaxPooling(PoolingModule):
    """Per-dimension max; backward routes gradient to the argmax entry."""

    def __init__(self) -> None:
        self._argmax: np.ndarray | None = None  # (B, D) indices into values
        self._lengths: np.ndarray | None = None
        self._n_values = 0

    def forward(self, acts: EmbeddingActivations) -> np.ndarray:
        offsets = acts.offsets
        lengths = np.diff(offsets)
        num_seg = lengths.size
        dim = acts.values.shape[1] if acts.values.ndim > 1 else 1
        out = np.zeros((num_seg, dim))
        argmax = np.full((num_seg, dim), -1, dtype=np.int64)
        if acts.values.shape[0]:
            max_len = int(lengths.max())
            # pad to dense with -inf, argmax per dim, map back to flat idx
            dense = np.full((num_seg, max_len, dim), -np.inf)
            mask = np.arange(max_len)[None, :] < lengths[:, None]
            dense[mask] = acts.values
            nonempty = lengths > 0
            arg = dense.argmax(axis=1)  # (B, D)
            picked = np.take_along_axis(dense, arg[:, None, :], axis=1)[:, 0, :]
            out[nonempty] = picked[nonempty]
            flat = offsets[:-1][:, None] + arg
            argmax[nonempty] = flat[nonempty]
        self._argmax = argmax
        self._lengths = lengths
        self._n_values = int(acts.values.shape[0])
        return out

    def backward(self, dpooled: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise RuntimeError("backward before forward")
        dvalues = np.zeros((self._n_values, dpooled.shape[1]))
        valid = self._argmax >= 0
        rows, dims = np.nonzero(valid)
        np.add.at(dvalues, (self._argmax[rows, dims], dims), dpooled[rows, dims])
        return dvalues

    def flops(self, total_values: int, dim: int, batch_size: int) -> float:
        return float(total_values * dim)
