"""repro — a full-pipeline reproduction of RecD (MLSys 2023).

RecD (Recommendation Deduplication) is a suite of end-to-end
infrastructure optimizations for DLRM training pipelines that exploit
session-centric feature duplication.  This package reproduces the
paper's primary contribution — the InverseKeyedJaggedTensor (IKJT)
format and its reader/trainer integrations — together with every
substrate the evaluation depends on: a synthetic session-overlap trace
generator, a Scribe-like message bus, ETL jobs, a DWRF-like columnar
store on an instrumented filesystem, a reader tier, a NumPy DLRM, and a
hybrid-parallel distributed-training simulator.

Quickstart::

    from repro.pipeline import DataSpec, JobSpec, RecDToggles, Session
    from repro.datagen import rm1

    result = Session(
        JobSpec(data=DataSpec(workload=rm1(scale=0.5),
                              toggles=RecDToggles.full()))
    ).run()
    print(result.trainer_qps, result.storage_compression)

The flat legacy surface (``PipelineConfig`` + ``run_pipeline`` /
``run_multi_job``) adapts onto the same ``Session`` engine,
bit-identical — ``docs/api.md`` has the migration table.
"""

from . import (
    core,
    datagen,
    distributed,
    etl,
    experiments,
    metrics,
    pipeline,
    reader,
    scribe,
    storage,
    trainer,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "datagen",
    "scribe",
    "etl",
    "storage",
    "reader",
    "trainer",
    "distributed",
    "metrics",
    "pipeline",
    "experiments",
    "__version__",
]
