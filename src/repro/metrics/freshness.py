"""Data-freshness accounting: event-time → trained-on lag.

Continuous training is only worth its complexity if the model actually
sees recent events, so the streaming subsystem measures, per delivered
batch, how stale its newest row was at the moment the trainer consumed
it: ``lag = trained_at - event_time`` on the modeled clock.  A
:class:`FreshnessReport` is just the multiset of those lags with
nearest-rank percentiles over it — the same :func:`~repro.metrics.slo.
percentile` every other SLO headline uses — and it merges by
concatenation, so per-round reports fold into per-job and tier-wide
views in any grouping (merge is associative and commutative).

Because both sides of the subtraction are modeled seconds, every lag —
and therefore every percentile — is bit-reproducible across machines,
which is what lets ``freshness_p99_seconds`` be regression-gated in CI
against committed baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stats import percentile

__all__ = ["FreshnessReport"]


@dataclass
class FreshnessReport:
    """Per-batch event-time → trained-on lags, with percentile views.

    Attributes:
        lags: one modeled-seconds lag per delivered batch, in delivery
            order.  Always non-negative: a batch cannot train before
            its rows' events happened, and :meth:`from_batches` clamps
            defensively so a cost-model retune can never push a lag
            below zero.
    """

    lags: list = field(default_factory=list)

    @classmethod
    def from_batches(
        cls, event_times: list, trained_at: float
    ) -> "FreshnessReport":
        """Lags for one consumed round of batches.

        Args:
            event_times: per-batch newest-row event times (the
                :attr:`~repro.reader.node.ReaderReport.
                batch_event_times` a fleet collected this round).
            trained_at: the modeled clock when the trainer finished
                consuming the round.
        """
        return cls(
            lags=[max(0.0, trained_at - t) for t in event_times]
        )

    @property
    def batches(self) -> int:
        """How many delivered batches the report covers."""
        return len(self.lags)

    @property
    def p50_lag_seconds(self) -> float:
        """Median event-time → trained-on lag (modeled seconds)."""
        return percentile(self.lags, 50.0)

    @property
    def p99_lag_seconds(self) -> float:
        """Tail event-time → trained-on lag (modeled seconds)."""
        return percentile(self.lags, 99.0)

    @property
    def max_lag_seconds(self) -> float:
        """The single stalest delivered batch (0.0 when empty)."""
        return max(self.lags, default=0.0)

    def merge(self, other: "FreshnessReport") -> None:
        """Fold another report's lags in (round → job → tier rollup)."""
        self.lags.extend(other.lags)

    def merged(self, other: "FreshnessReport") -> "FreshnessReport":
        """A new report holding both inputs' lags (inputs untouched)."""
        return FreshnessReport(lags=[*self.lags, *other.lags])

    def as_dict(self) -> dict:
        """Serialize the percentile view (the run-store form)."""
        return {
            "batches": self.batches,
            "p50_lag_seconds": self.p50_lag_seconds,
            "p99_lag_seconds": self.p99_lag_seconds,
            "max_lag_seconds": self.max_lag_seconds,
        }
