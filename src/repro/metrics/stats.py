"""Shared statistical primitives for report objects.

Lives below every report module so any of them (``slo``,
``freshness``, …) can use the same deterministic percentile without
import cycles; :mod:`repro.metrics.slo` re-exports :func:`percentile`
as its historical home.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile — deterministic, no interpolation.

    Args:
        values: the sample (need not be sorted).
        q: the percentile in ``[0, 100]``.

    Returns:
        The smallest sample value such that at least ``q`` percent of
        the sample is <= it (``0.0`` for an empty sample).

    Raises:
        ValueError: if ``q`` is outside ``[0, 100]``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]
