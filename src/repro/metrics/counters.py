"""Resource counters shared across the pipeline simulation.

Every RecD result is a resource story — bytes over a network, embedding
lookups against HBM, FLOPs in a pooling module, GPU memory held by
activations.  These counters are the single currency the reader and
trainer cost models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counters", "MemoryTracker"]


@dataclass
class Counters:
    """A named bag of additive counters."""

    values: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, amount: float) -> None:
        """Accumulate ``amount`` into the named counter."""
        self.values[name] = self.values.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """The counter's value (0.0 if never touched)."""
        return self.values.get(name, 0.0)

    def merge(self, other: "Counters") -> None:
        """Fold another bag's counters in, name by name."""
        for name, amount in other.values.items():
            self.add(name, amount)

    def reset(self) -> None:
        """Zero every counter."""
        self.values.clear()

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def as_dict(self) -> dict[str, float]:
        """A snapshot copy of every counter."""
        return dict(self.values)


class MemoryTracker:
    """Tracks current and peak allocation of a simulated device memory."""

    def __init__(self, capacity_bytes: int | None = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.current_bytes = 0
        self.peak_bytes = 0

    def alloc(self, nbytes: int) -> None:
        """Claim bytes; raises ``MemoryError`` past a bounded capacity."""
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        new = self.current_bytes + nbytes
        if self.capacity_bytes is not None and new > self.capacity_bytes:
            raise MemoryError(
                f"allocation of {nbytes} exceeds capacity "
                f"({new} > {self.capacity_bytes})"
            )
        self.current_bytes = new
        self.peak_bytes = max(self.peak_bytes, new)

    def free(self, nbytes: int) -> None:
        """Release previously claimed bytes (peak is unaffected)."""
        if nbytes < 0:
            raise ValueError("cannot free negative bytes")
        if nbytes > self.current_bytes:
            raise ValueError(
                f"freeing {nbytes} but only {self.current_bytes} allocated"
            )
        self.current_bytes -= nbytes

    def reset_peak(self) -> None:
        """Restart peak tracking from the current allocation."""
        self.peak_bytes = self.current_bytes

    @property
    def utilization(self) -> float:
        """Current utilization in [0, 1]; 0 when capacity is unbounded."""
        if not self.capacity_bytes:
            return 0.0
        return self.current_bytes / self.capacity_bytes

    @property
    def peak_utilization(self) -> float:
        """Peak utilization in [0, 1]; 0 when capacity is unbounded."""
        if not self.capacity_bytes:
            return 0.0
        return self.peak_bytes / self.capacity_bytes
