"""Phase-level time breakdowns for readers and trainers.

These mirror the two breakdown figures of the paper: Fig 10 (reader CPU
time split across Fill / Convert / Process) and Fig 8 (trainer iteration
latency split across EMB / GEMM / A2A / Other).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReaderCpuBreakdown", "IterationBreakdown", "QueueWaitBreakdown"]


@dataclass
class ReaderCpuBreakdown:
    """Modeled reader CPU seconds per pipeline phase (Fig 10)."""

    fill: float = 0.0
    convert: float = 0.0
    process: float = 0.0

    @property
    def total(self) -> float:
        """Summed reader CPU seconds across the three phases."""
        return self.fill + self.convert + self.process

    def merge(self, other: "ReaderCpuBreakdown") -> None:
        """Fold another reader's phase times in (fleet aggregation)."""
        self.fill += other.fill
        self.convert += other.convert
        self.process += other.process

    def normalized_to(self, baseline: "ReaderCpuBreakdown") -> dict[str, float]:
        """Each phase as a fraction of the *baseline total* — the exact
        normalization Fig 10 plots."""
        denom = baseline.total or 1.0
        return {
            "fill": self.fill / denom,
            "convert": self.convert / denom,
            "process": self.process / denom,
            "total": self.total / denom,
        }

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form)."""
        return {
            "fill": self.fill,
            "convert": self.convert,
            "process": self.process,
            "total": self.total,
        }


@dataclass
class QueueWaitBreakdown:
    """Wall-clock seconds spent blocked on a fleet's prefetch queues.

    ``put_wait`` is producer-side blocking: a reader finished a batch but
    its bounded queue was full, i.e. that reader ran *ahead* of the
    in-order drain.  Because the merge loop empties shards in order, a
    later shard's put_wait mixes genuine consumer slowness with simply
    waiting for its merge turn — so large put_wait means "readers are
    over-provisioned relative to downstream consumption", not
    specifically "the consumer is slow".  ``get_wait`` is unambiguous
    consumer-side starvation: the merge loop waited for the next batch,
    so the readers are the bottleneck — the §2.1 under-provisioning
    signal the reader tier is sized to eliminate.  ``transport`` is the
    modeled per-batch handoff cost at the worker→trainer boundary:
    serialize/copy seconds charged by the ``copy`` transport (zero under
    ``shm``) — the serial consumer-side term that bends wide-fleet
    scaling once decode is sharded far enough.
    """

    put_wait: float = 0.0
    get_wait: float = 0.0
    transport: float = 0.0

    @property
    def total(self) -> float:
        """Summed queue-blocked wall-clock: both sides plus transport."""
        return self.put_wait + self.get_wait + self.transport

    def merge(self, other: "QueueWaitBreakdown") -> None:
        """Fold another run's queue waits in (epoch aggregation)."""
        self.put_wait += other.put_wait
        self.get_wait += other.get_wait
        self.transport += other.transport

    def fractions(self) -> dict[str, float]:
        """Each component as a fraction of :attr:`total`.

        Fractions are in [0, 1] and sum to 1 whenever any wait was
        recorded; an all-zero breakdown returns all-zero fractions.
        """
        denom = self.total
        if denom <= 0.0:
            return {"put_wait": 0.0, "get_wait": 0.0, "transport": 0.0}
        return {
            "put_wait": self.put_wait / denom,
            "get_wait": self.get_wait / denom,
            "transport": self.transport / denom,
        }

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form)."""
        return {
            "put_wait": self.put_wait,
            "get_wait": self.get_wait,
            "transport": self.transport,
            "total": self.total,
        }


@dataclass
class IterationBreakdown:
    """Modeled exposed (non-overlapped) trainer latency per phase (Fig 8)."""

    emb_lookup: float = 0.0
    gemm: float = 0.0
    a2a: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        """Summed exposed iteration latency across the four phases."""
        return self.emb_lookup + self.gemm + self.a2a + self.other

    def merge(self, other: "IterationBreakdown") -> None:
        """Fold another iteration's phase times in (run averaging)."""
        self.emb_lookup += other.emb_lookup
        self.gemm += other.gemm
        self.a2a += other.a2a
        self.other += other.other

    def normalized_to(self, baseline: "IterationBreakdown") -> dict[str, float]:
        """Each phase as a fraction of the *baseline total* — the exact
        normalization Fig 8 plots."""
        denom = baseline.total or 1.0
        return {
            "emb_lookup": self.emb_lookup / denom,
            "gemm": self.gemm / denom,
            "a2a": self.a2a / denom,
            "other": self.other / denom,
            "total": self.total / denom,
        }

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form)."""
        return {
            "emb_lookup": self.emb_lookup,
            "gemm": self.gemm,
            "a2a": self.a2a,
            "other": self.other,
            "total": self.total,
        }
