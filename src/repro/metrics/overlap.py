"""Reader→trainer overlap accounting for the streaming pipeline.

When ``run_pipeline`` streams a reader fleet's batches straight into the
trainers (instead of materializing them first), the end-to-end loop's
wall-clock belongs to whichever tier was the bottleneck at each moment.
:class:`OverlapReport` attributes it from two measured signals:

* the trainer's ingestion-loop timing (``ingest_wait_seconds`` — blocked
  pulling the next batch — vs ``step_wall_seconds`` — computing), and
* the fleet's :class:`~repro.metrics.breakdown.QueueWaitBreakdown`
  (``get_wait`` corroborates reader-side starvation; ``put_wait`` shows
  readers running ahead of downstream consumption).

This is the §2.1 provisioning signal at pipeline granularity: a large
``reader_stall_fraction`` means the reader tier is under-provisioned for
these trainers (add readers / enable O3–O4); a large
``trainer_stall_fraction`` with non-trivial ``queue.put_wait`` means the
readers outrun the trainers (shrink the fleet or grow the trainer job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .breakdown import QueueWaitBreakdown

__all__ = ["OverlapReport"]


@dataclass
class OverlapReport:
    """Wall-clock attribution for one streamed (or materialized) run.

    ``reader_stall_seconds + trainer_busy_seconds + other_seconds``
    equals ``wall_seconds`` by construction, so the three fractions sum
    to 1 whenever any wall-clock elapsed.
    """

    #: end-to-end ingestion-loop wall time (across every epoch)
    wall_seconds: float = 0.0
    #: trainer blocked waiting on the next batch — the readers are the
    #: bottleneck during this slice (reader-stall)
    reader_stall_seconds: float = 0.0
    #: trainer busy inside steps — upstream readers can only prefetch
    #: into bounded queues during this slice (trainer-stall upstream)
    trainer_busy_seconds: float = 0.0
    #: the fleet's prefetch-queue waits, merged across epochs
    queue: QueueWaitBreakdown = field(default_factory=QueueWaitBreakdown)
    batches: int = 0
    #: whether batches streamed straight from the readers (True) or were
    #: materialized to a list first (the A/B baseline)
    streaming: bool = True
    #: compressed bytes the readers pulled off storage
    read_bytes: int = 0
    #: preprocessed tensor bytes the readers decoded and shipped
    #: (deduped batches ship IKJT slices, so this shrinks under dedup)
    decoded_bytes: int = 0
    #: what fully-materialized (non-dedup) batches would have carried;
    #: equals ``decoded_bytes`` when no dedup groups are configured
    expanded_bytes: int = 0
    #: wire bytes the ``copy`` transport serialized through the
    #: worker→trainer queues (zero under ``shm``)
    bytes_copied: int = 0
    #: wire bytes the ``shm`` transport handed over without a copy
    #: (zero under ``copy``)
    copies_avoided: int = 0

    @property
    def other_seconds(self) -> float:
        """Wall-clock outside the trainer's ingestion loop: loop
        overhead, and — in the materialized A/B mode — the serialized
        reader scan that streaming would have overlapped away."""
        return max(
            0.0,
            self.wall_seconds
            - self.reader_stall_seconds
            - self.trainer_busy_seconds,
        )

    @property
    def reader_stall_fraction(self) -> float:
        """Fraction of wall-clock spent starved on the reader tier."""
        if self.wall_seconds == 0:
            return 0.0
        return self.reader_stall_seconds / self.wall_seconds

    @property
    def trainer_stall_fraction(self) -> float:
        """Fraction of wall-clock the trainer held the pipeline."""
        if self.wall_seconds == 0:
            return 0.0
        return self.trainer_busy_seconds / self.wall_seconds

    @property
    def other_fraction(self) -> float:
        """Fraction of wall-clock outside the ingestion loop."""
        if self.wall_seconds == 0:
            return 0.0
        return self.other_seconds / self.wall_seconds

    @property
    def bytes_saved(self) -> int:
        """Transport bytes dedup removed (expanded minus decoded)."""
        return self.expanded_bytes - self.decoded_bytes

    @property
    def dedupe_byte_factor(self) -> float:
        """Expanded / decoded byte ratio (1.0 with no dedup savings)."""
        if self.decoded_bytes == 0:
            return 1.0
        return self.expanded_bytes / self.decoded_bytes

    def merge(self, other: "OverlapReport") -> None:
        """Fold another report's attribution in (round/epoch totals).

        Summands add, so the merged report's fractions remain a valid
        attribution of the merged wall-clock; ``streaming`` stays True
        only if every merged report streamed.
        """
        self.wall_seconds += other.wall_seconds
        self.reader_stall_seconds += other.reader_stall_seconds
        self.trainer_busy_seconds += other.trainer_busy_seconds
        self.queue.merge(other.queue)
        self.batches += other.batches
        self.streaming = self.streaming and other.streaming
        self.read_bytes += other.read_bytes
        self.decoded_bytes += other.decoded_bytes
        self.expanded_bytes += other.expanded_bytes
        self.bytes_copied += other.bytes_copied
        self.copies_avoided += other.copies_avoided

    @property
    def fractions(self) -> dict[str, float]:
        """The attribution summands (sum to 1 when wall-clock elapsed)."""
        return {
            "reader_stall": self.reader_stall_fraction,
            "trainer_stall": self.trainer_stall_fraction,
            "other": self.other_fraction,
        }

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form)."""
        return {
            "wall_seconds": self.wall_seconds,
            "reader_stall_seconds": self.reader_stall_seconds,
            "trainer_busy_seconds": self.trainer_busy_seconds,
            "other_seconds": self.other_seconds,
            "fractions": self.fractions,
            "queue": self.queue.as_dict(),
            "batches": self.batches,
            "streaming": self.streaming,
            "read_bytes": self.read_bytes,
            "decoded_bytes": self.decoded_bytes,
            "expanded_bytes": self.expanded_bytes,
            "bytes_copied": self.bytes_copied,
            "copies_avoided": self.copies_avoided,
            "bytes_saved": self.bytes_saved,
            "dedupe_byte_factor": self.dedupe_byte_factor,
        }

    @classmethod
    def modeled(
        cls,
        reader_wall_seconds: float,
        trainer_busy_seconds: float,
        batches: int = 0,
        streaming: bool = True,
        read_bytes: int = 0,
        decoded_bytes: int = 0,
        expanded_bytes: int = 0,
        bytes_copied: int = 0,
        copies_avoided: int = 0,
    ) -> "OverlapReport":
        """Build a *deterministic* report from modeled tier times.

        In a perfectly pipelined epoch the wall-clock is the slower
        tier's time: ``max(reader_wall_seconds, trainer_busy_seconds)``.
        The excess of the reader tier over the trainer is reader-stall
        (the trainer starved); the excess of the trainer over the
        readers shows up as producer-side queue wait (readers finished
        early and blocked on full prefetch queues), mirroring what the
        measured :class:`~repro.metrics.breakdown.QueueWaitBreakdown`
        reports.  Because both inputs come from the cost models — not
        ``time.perf_counter`` — the result is bit-reproducible across
        runs, which is what lets the fleet autoscaler make reproducible
        decisions under the deterministic executor.

        Args:
            reader_wall_seconds: modeled wall-clock of the reader tier
                for the epoch (e.g. aggregate reader CPU spread across
                the fleet width).
            trainer_busy_seconds: modeled time the trainer spent inside
                steps (summed ``iteration_seconds``).
            batches: batches the epoch trained (bookkeeping only).
            streaming: whether the run streamed (bookkeeping only).
            read_bytes: compressed bytes read off storage.
            decoded_bytes: decoded tensor bytes shipped to trainers.
            expanded_bytes: what non-dedup batches would have carried.
            bytes_copied: wire bytes the copy transport serialized.
            copies_avoided: wire bytes the shm transport skipped.

        Returns:
            An :class:`OverlapReport` whose fractions sum to 1.
        """
        if reader_wall_seconds < 0 or trainer_busy_seconds < 0:
            raise ValueError("modeled tier times must be non-negative")
        wall = max(reader_wall_seconds, trainer_busy_seconds)
        queue = QueueWaitBreakdown(
            put_wait=max(0.0, trainer_busy_seconds - reader_wall_seconds)
        )
        return cls(
            wall_seconds=wall,
            reader_stall_seconds=max(
                0.0, reader_wall_seconds - trainer_busy_seconds
            ),
            trainer_busy_seconds=trainer_busy_seconds,
            queue=queue,
            batches=batches,
            streaming=streaming,
            read_bytes=read_bytes,
            decoded_bytes=decoded_bytes,
            expanded_bytes=expanded_bytes,
            bytes_copied=bytes_copied,
            copies_avoided=copies_avoided,
        )

    @classmethod
    def from_run(
        cls,
        training,
        queue: QueueWaitBreakdown | None = None,
        wall_seconds: float | None = None,
        streaming: bool = True,
        reader=None,
    ) -> "OverlapReport":
        """Build from a ``TrainingReport``'s measured ingestion-loop
        timing plus the fleet's queue waits.

        Args:
            training: the trainer's ``TrainingReport``.
            queue: the fleet's queue-wait breakdown.
            wall_seconds: override the loop wall-clock.
            reader: a merged :class:`~repro.reader.node.ReaderReport`;
                when given, its read/decoded/expanded bytes carry into
                the attribution.
        """
        merged_queue = QueueWaitBreakdown()
        if queue is not None:
            merged_queue.merge(queue)
        return cls(
            wall_seconds=(
                training.run_wall_seconds
                if wall_seconds is None
                else wall_seconds
            ),
            reader_stall_seconds=training.ingest_wait_seconds,
            trainer_busy_seconds=training.step_wall_seconds,
            queue=merged_queue,
            batches=len(training.iterations),
            streaming=streaming,
            read_bytes=reader.read_bytes if reader is not None else 0,
            decoded_bytes=reader.send_bytes if reader is not None else 0,
            expanded_bytes=(
                reader.expanded_bytes if reader is not None else 0
            ),
            bytes_copied=reader.bytes_copied if reader is not None else 0,
            copies_avoided=(
                reader.copies_avoided if reader is not None else 0
            ),
        )
