"""Scaling-decision records for the adaptive reader-fleet controller.

The autoscaler (:class:`~repro.reader.autoscale.ReaderAutoscaler`)
resizes the fleet between epochs from observed
:class:`~repro.metrics.OverlapReport` stall fractions.  Every decision —
what was observed, what action was taken, what width resulted — is
recorded in a :class:`ScalingTrace` so a run's convergence behaviour can
be replayed, asserted in tests, and plotted figure-style
(``examples/autoscale_convergence.py``).

All fields are plain numbers; :meth:`ScalingTrace.as_rows` serializes
the trace into the same row-dict shape the benchmark harness writes to
``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScalingDecision", "ScalingTrace"]

#: the three actions a controller step can take
ACTIONS = ("grow", "shrink", "hold")


@dataclass(frozen=True)
class ScalingDecision:
    """One controller step: observed stall fractions -> action -> width.

    Attributes:
        epoch: 0-based epoch index the observation came from.
        reader_stall_fraction: observed fraction of epoch wall-clock the
            trainer spent starved on the reader tier (dimensionless,
            0..1).
        trainer_stall_fraction: observed fraction of epoch wall-clock
            the trainer held the pipeline (dimensionless, 0..1).
        width_before: fleet width (``num_readers``) the epoch ran with.
        action: ``"grow"``, ``"shrink"`` or ``"hold"``.
        width_after: fleet width the *next* epoch will run with.
        reason: one-line human-readable explanation of the action.
    """

    epoch: int
    reader_stall_fraction: float
    trainer_stall_fraction: float
    width_before: int
    action: str
    width_after: int
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"action must be one of {ACTIONS}, got {self.action!r}"
            )
        if self.width_before <= 0 or self.width_after <= 0:
            raise ValueError("fleet widths must be positive")


@dataclass
class ScalingTrace:
    """Every decision an autoscaler made over one run, in epoch order.

    Attributes:
        target_stall: upper edge of the acceptable
            ``reader_stall_fraction`` band the controller steered for.
        decisions: the recorded :class:`ScalingDecision` steps.
    """

    target_stall: float = 0.0
    decisions: list[ScalingDecision] = field(default_factory=list)

    def record(self, decision: ScalingDecision) -> None:
        """Append one controller step to the trace."""
        self.decisions.append(decision)

    @property
    def widths(self) -> list[int]:
        """Fleet width each recorded epoch ran with."""
        return [d.width_before for d in self.decisions]

    @property
    def actions(self) -> list[str]:
        """The action taken after each recorded epoch."""
        return [d.action for d in self.decisions]

    @property
    def final_width(self) -> int | None:
        """Width the controller left the fleet at (None if no decisions)."""
        if not self.decisions:
            return None
        return self.decisions[-1].width_after

    def in_band(self, reader_stall_fraction: float) -> bool:
        """Whether an observed reader-stall fraction meets the target."""
        return reader_stall_fraction <= self.target_stall

    @property
    def converged_epoch(self) -> int | None:
        """First epoch from which every observation stayed in band.

        Returns the epoch index of the first decision whose observed
        ``reader_stall_fraction`` is within the target band *and* whose
        successors all stayed in band, or ``None`` if the run never
        settled.
        """
        settled: int | None = None
        for d in self.decisions:
            if self.in_band(d.reader_stall_fraction):
                if settled is None:
                    settled = d.epoch
            else:
                settled = None
        return settled

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form)."""
        return {
            "target_stall": self.target_stall,
            "final_width": self.final_width,
            "converged_epoch": self.converged_epoch,
            "decisions": self.as_rows(),
        }

    def as_rows(self) -> list[dict]:
        """Serialize the trace into figure-style row dicts."""
        return [
            {
                "epoch": d.epoch,
                "reader_stall_fraction": d.reader_stall_fraction,
                "trainer_stall_fraction": d.trainer_stall_fraction,
                "width_before": d.width_before,
                "action": d.action,
                "width_after": d.width_after,
                "reason": d.reason,
            }
            for d in self.decisions
        ]
