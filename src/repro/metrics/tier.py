"""Tier-level accounting for a shared multi-job reader tier (§2.1).

The paper's disaggregated data-preprocessing tier exists to serve *many*
concurrent training jobs from one pool of reader workers.  When
:class:`~repro.reader.tier_scheduler.SharedReaderTier` multiplexes its
fleet across registered jobs, every scheduling round pays its
measurements in here:

* :class:`JobRoundStat` — one job's share of one round: workers leased,
  modeled reader CPU consumed, modeled trainer busy time, batches;
* :class:`TierRound` — one scheduling round: the width scheduled, the
  per-job allocation (including jobs skipped that round), and the
  round's modeled wall-clock (jobs run concurrently, so a round
  finishes with its slowest job);
* :class:`TierReport` — the whole run: rounds in order, per-job
  :class:`~repro.metrics.overlap.OverlapReport`\\ s merged across
  rounds, the aggregate overlap the tier autoscaler steered on, and the
  fairness accounting (``max_consecutive_skips``) behind the
  scheduler's no-starvation guarantee.

All times are modeled (cost-model seconds), so every number here is
bit-reproducible across runs — same property the fleet autoscaler's
:class:`~repro.metrics.scaling.ScalingTrace` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .freshness import FreshnessReport
from .overlap import OverlapReport
from .scaling import ScalingTrace

__all__ = ["JobRoundStat", "TierRound", "TierReport"]


@dataclass(frozen=True)
class JobRoundStat:
    """One job's share of one scheduling round.

    Attributes:
        job: the registered job's name.
        workers: readers leased to the job this round (>= 1; skipped
            jobs appear in :attr:`TierRound.skipped`, not here).
        reader_cpu_seconds: aggregate modeled reader CPU the job's
            shards consumed this round.
        trainer_busy_seconds: modeled time the job's trainer spent
            inside steps this round.
        batches: batches the job trained this round.
        streaming: whether the job streamed batches into its consumer
            (False for materialize-first jobs; bookkeeping only).
        read_bytes: compressed bytes the job's shards read off storage
            this round.
        decoded_bytes: decoded tensor bytes shipped to the job's
            trainer this round (shrinks under ``ReaderSpec.dedup``).
        expanded_bytes: what fully-materialized batches would have
            carried (equals ``decoded_bytes`` without dedup).
        bytes_copied: wire bytes the job's ``copy`` transport
            serialized through the worker→trainer queues this round.
        copies_avoided: wire bytes the job's ``shm`` transport handed
            over without a copy this round.
        freshness: per-batch event-time → trained-on lags for this
            round (streaming live-loop jobs only; ``None`` for jobs
            training over static, pre-landed partitions).
    """

    job: str
    workers: int
    reader_cpu_seconds: float
    trainer_busy_seconds: float
    batches: int = 0
    streaming: bool = True
    read_bytes: int = 0
    decoded_bytes: int = 0
    expanded_bytes: int = 0
    bytes_copied: int = 0
    copies_avoided: int = 0
    freshness: FreshnessReport | None = None

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError(
                f"workers must be positive, got {self.workers} for "
                f"job {self.job!r} (zero-worker rounds are recorded in "
                "TierRound.skipped)"
            )
        if self.reader_cpu_seconds < 0 or self.trainer_busy_seconds < 0:
            raise ValueError("modeled times must be non-negative")

    @property
    def reader_wall_seconds(self) -> float:
        """Modeled reader wall for the job: its CPU spread over its
        leased workers (the capacity view, as in
        :meth:`~repro.reader.fleet.FleetReport.balanced_wall_seconds`)."""
        return self.reader_cpu_seconds / self.workers

    @property
    def wall_seconds(self) -> float:
        """The job's modeled wall this round: the slower of its reader
        share and its trainer (perfect pipelining within the job)."""
        return max(self.reader_wall_seconds, self.trainer_busy_seconds)

    @property
    def overlap(self) -> OverlapReport:
        """The job's modeled overlap attribution for this round."""
        return OverlapReport.modeled(
            reader_wall_seconds=self.reader_wall_seconds,
            trainer_busy_seconds=self.trainer_busy_seconds,
            batches=self.batches,
            streaming=self.streaming,
            read_bytes=self.read_bytes,
            decoded_bytes=self.decoded_bytes,
            expanded_bytes=self.expanded_bytes,
            bytes_copied=self.bytes_copied,
            copies_avoided=self.copies_avoided,
        )


@dataclass
class TierRound:
    """One scheduling round of a shared reader tier.

    Attributes:
        index: 0-based round number.
        width: fleet width the round was scheduled at.
        stats: one :class:`JobRoundStat` per job that received workers.
        skipped: jobs that were active but received zero workers this
            round (they have strict priority next round).
    """

    index: int
    width: int
    stats: list[JobRoundStat] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def allocation(self) -> dict[str, int]:
        """Workers per active job this round (0 for skipped jobs)."""
        out = {s.job: s.workers for s in self.stats}
        out.update({name: 0 for name in self.skipped})
        return out

    @property
    def freshness(self) -> FreshnessReport:
        """Every freshness-tracking job's lags this round, merged."""
        total = FreshnessReport()
        for s in self.stats:
            if s.freshness is not None:
                total.merge(s.freshness)
        return total

    @property
    def modeled_wall_seconds(self) -> float:
        """The round's modeled wall-clock: allocated jobs run
        concurrently on disjoint worker subsets, so the round finishes
        with its slowest job."""
        return max((s.wall_seconds for s in self.stats), default=0.0)

    @property
    def aggregate(self) -> OverlapReport:
        """The round folded into one tier-level overlap report.

        Reader side: every job's reader CPU pooled over the full width
        (the work-conserving capacity view).  Trainer side: the slowest
        job's trainer (trainers run concurrently).  This is the signal
        the tier autoscaler consumes — aggregate stall, not any single
        job's.
        """
        return OverlapReport.modeled(
            reader_wall_seconds=(
                sum(s.reader_cpu_seconds for s in self.stats) / self.width
            ),
            trainer_busy_seconds=max(
                (s.trainer_busy_seconds for s in self.stats), default=0.0
            ),
            batches=sum(s.batches for s in self.stats),
            streaming=all(s.streaming for s in self.stats),
            read_bytes=sum(s.read_bytes for s in self.stats),
            decoded_bytes=sum(s.decoded_bytes for s in self.stats),
            expanded_bytes=sum(s.expanded_bytes for s in self.stats),
            bytes_copied=sum(s.bytes_copied for s in self.stats),
            copies_avoided=sum(s.copies_avoided for s in self.stats),
        )


@dataclass
class TierReport:
    """Everything a shared reader tier measured over one run.

    Attributes:
        policy: the worker-allocation policy the scheduler used
            (``"round_robin"`` or ``"stall_weighted"``).
        rounds: the scheduling rounds, in order.
        scaling: the tier autoscaler's decision trace (autoscaled tiers
            only).
    """

    policy: str = "round_robin"
    rounds: list[TierRound] = field(default_factory=list)
    scaling: ScalingTrace | None = None

    @property
    def jobs(self) -> list[str]:
        """Every job name seen, in first-scheduled order."""
        seen: dict[str, None] = {}
        for rnd in self.rounds:
            for s in rnd.stats:
                seen.setdefault(s.job, None)
            for name in rnd.skipped:
                seen.setdefault(name, None)
        return list(seen)

    @property
    def widths(self) -> list[int]:
        """Fleet width each round was scheduled at."""
        return [r.width for r in self.rounds]

    @property
    def modeled_wall_seconds(self) -> float:
        """The run's modeled wall-clock: rounds run back to back, each
        finishing with its slowest job."""
        return sum(r.modeled_wall_seconds for r in self.rounds)

    def job_rounds(self, job: str) -> list[JobRoundStat]:
        """The given job's per-round stats, in round order."""
        return [s for r in self.rounds for s in r.stats if s.job == job]

    def job_overlap(self, job: str) -> OverlapReport:
        """The job's modeled overlap merged across every round it ran."""
        total = OverlapReport()
        for stat in self.job_rounds(job):
            total.merge(stat.overlap)
        return total

    def job_freshness(self, job: str) -> FreshnessReport:
        """The job's freshness lags merged across every round it ran."""
        total = FreshnessReport()
        for stat in self.job_rounds(job):
            if stat.freshness is not None:
                total.merge(stat.freshness)
        return total

    @property
    def freshness(self) -> FreshnessReport:
        """Every round's freshness lags merged (the tier-wide view)."""
        total = FreshnessReport()
        for rnd in self.rounds:
            total.merge(rnd.freshness)
        return total

    @property
    def per_job(self) -> dict[str, OverlapReport]:
        """Per-job merged overlap reports, keyed by job name."""
        return {name: self.job_overlap(name) for name in self.jobs}

    @property
    def aggregate(self) -> OverlapReport:
        """Every round's tier-level overlap merged (what the autoscaler
        steered on, summed over the run)."""
        total = OverlapReport()
        for rnd in self.rounds:
            total.merge(rnd.aggregate)
        return total

    def max_consecutive_skips(self, job: str) -> int:
        """Longest run of consecutive rounds the job was active but got
        zero workers — the scheduler's fairness guarantee bounds this
        at 1 for any admitted job set."""
        worst = streak = 0
        for rnd in self.rounds:
            if job in rnd.skipped:
                streak += 1
                worst = max(worst, streak)
            elif any(s.job == job for s in rnd.stats):
                streak = 0
        return worst

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form):
        the policy, every (round, job) row, the per-job and aggregate
        overlap attributions, and the scaling trace when present."""
        return {
            "policy": self.policy,
            "widths": self.widths,
            "modeled_wall_seconds": self.modeled_wall_seconds,
            "rows": self.as_rows(),
            "per_job": {
                name: report.as_dict()
                for name, report in self.per_job.items()
            },
            "aggregate": self.aggregate.as_dict(),
            "freshness": self.freshness.as_dict(),
            "scaling": (
                self.scaling.as_dict() if self.scaling is not None else None
            ),
        }

    def as_rows(self) -> list[dict]:
        """Serialize to figure-style row dicts: one row per (round,
        job) pair, zero-worker rounds included."""
        rows = []
        for rnd in self.rounds:
            for s in rnd.stats:
                rows.append(
                    {
                        "round": rnd.index,
                        "width": rnd.width,
                        "job": s.job,
                        "workers": s.workers,
                        "reader_cpu_seconds": s.reader_cpu_seconds,
                        "trainer_busy_seconds": s.trainer_busy_seconds,
                        "batches": s.batches,
                        "read_bytes": s.read_bytes,
                        "decoded_bytes": s.decoded_bytes,
                        "expanded_bytes": s.expanded_bytes,
                        "bytes_copied": s.bytes_copied,
                        "copies_avoided": s.copies_avoided,
                    }
                )
            for name in rnd.skipped:
                rows.append(
                    {
                        "round": rnd.index,
                        "width": rnd.width,
                        "job": name,
                        "workers": 0,
                        "reader_cpu_seconds": 0.0,
                        "trainer_busy_seconds": 0.0,
                        "batches": 0,
                        "read_bytes": 0,
                        "decoded_bytes": 0,
                        "expanded_bytes": 0,
                        "bytes_copied": 0,
                        "copies_avoided": 0,
                    }
                )
        return rows
