"""Tier SLOs under churn: job wall-clock percentiles, starvation, goodput.

A production reader tier is judged by service-level objectives, not by
any single job's throughput: what wall-clock did the p50/p99 job pay
end to end, how long was any job starved of workers, and how much of
the pool's CPU turned into *useful* training batches once crashes and
stragglers took their cut.  This module rolls a
:class:`~repro.metrics.tier.TierReport` (plus the per-job
:class:`~repro.reader.fleet.FleetReport` fault counters) into one
:class:`SLOReport` — the scoreboard the fault-injection scenario
simulator (``repro.sim``) emits for every run.

All inputs are modeled (cost-model seconds), so an ``SLOReport`` is
bit-reproducible: replaying a seeded scenario reproduces the identical
report, which the chaos test tier asserts.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..reader.fleet import FleetReport
from .freshness import FreshnessReport
from .stats import percentile
from .tier import TierReport

__all__ = ["JobSLO", "SLOReport", "percentile"]


@dataclass(frozen=True)
class JobSLO:
    """One job's service-level accounting over a tier run.

    Attributes:
        job: the job's report name.
        admitted_round: first round the job was scheduled or skipped.
        finished_round: last round the job was scheduled or skipped.
        wall_seconds: modeled wall-clock the job was in the system —
            the sum of round walls from admission through finish,
            *including* rounds it spent starved or descheduled
            (that queueing time is exactly what an SLO charges for).
        busy_seconds: modeled wall of only the rounds the job actually
            held workers.
        starved_rounds: rounds the job was active but got zero workers.
        epochs: epochs the job trained (rounds it held workers).
        batches: batches the job trained.
    """

    job: str
    admitted_round: int
    finished_round: int
    wall_seconds: float
    busy_seconds: float
    starved_rounds: int
    epochs: int
    batches: int

    @property
    def queue_fraction(self) -> float:
        """Share of the job's in-system wall spent not holding workers."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return 1.0 - self.busy_seconds / self.wall_seconds


@dataclass
class SLOReport:
    """The tier run rolled up into its service-level scoreboard.

    Attributes:
        jobs: per-job accounting, in first-scheduled order.
        total_wall_seconds: the run's modeled end-to-end wall-clock.
        reader_cpu_seconds: total modeled reader CPU consumed,
            including redone work after crashes.
        wasted_cpu_seconds: modeled reader CPU lost to crashed workers
            (work redone by the respawn).
        crashes: reader worker crashes injected over the run.
        straggler_shards: shard scans slowed by injected stragglers.
        preemptions: jobs preempted (and later resumed) by the driver.
        freshness: per-batch event-time → trained-on lags merged over
            every freshness-tracking (live-loop streaming) job; empty
            for runs over static, pre-landed tables.
    """

    jobs: list[JobSLO] = field(default_factory=list)
    total_wall_seconds: float = 0.0
    reader_cpu_seconds: float = 0.0
    wasted_cpu_seconds: float = 0.0
    crashes: int = 0
    straggler_shards: int = 0
    preemptions: int = 0
    freshness: FreshnessReport = field(default_factory=FreshnessReport)

    @classmethod
    def from_run(
        cls,
        report: TierReport,
        fleets: Mapping[str, FleetReport] | None = None,
        preemptions: int = 0,
    ) -> "SLOReport":
        """Roll a finished tier run into its SLO scoreboard.

        Args:
            report: the tier's round-by-round report.
            fleets: per-job merged fleet reports (the tier's
                ``job_fleets``) carrying the crash/straggler/waste
                counters; ``None`` reads as a fault-free run.
            preemptions: driver-side preemption count to record.

        Returns:
            The run's :class:`SLOReport`.
        """
        walls = [r.modeled_wall_seconds for r in report.rounds]
        jobs: list[JobSLO] = []
        for name in report.jobs:
            present = [
                r.index
                for r in report.rounds
                if name in r.skipped or any(s.job == name for s in r.stats)
            ]
            admitted, finished = present[0], present[-1]
            stats = report.job_rounds(name)
            jobs.append(
                JobSLO(
                    job=name,
                    admitted_round=admitted,
                    finished_round=finished,
                    wall_seconds=sum(walls[admitted : finished + 1]),
                    busy_seconds=sum(
                        walls[r.index]
                        for r in report.rounds
                        if any(s.job == name for s in r.stats)
                    ),
                    starved_rounds=sum(
                        1 for r in report.rounds if name in r.skipped
                    ),
                    epochs=len(stats),
                    batches=sum(s.batches for s in stats),
                )
            )
        fleets = fleets or {}
        return cls(
            jobs=jobs,
            total_wall_seconds=report.modeled_wall_seconds,
            reader_cpu_seconds=sum(
                s.reader_cpu_seconds
                for r in report.rounds
                for s in r.stats
            ),
            wasted_cpu_seconds=sum(
                f.wasted_cpu_seconds for f in fleets.values()
            ),
            crashes=sum(f.crashes for f in fleets.values()),
            straggler_shards=sum(
                f.straggler_shards for f in fleets.values()
            ),
            preemptions=preemptions,
            freshness=report.freshness,
        )

    # -- the headline SLOs ---------------------------------------------------

    @property
    def p50_wall_seconds(self) -> float:
        """Median job wall-clock (nearest-rank)."""
        return percentile([j.wall_seconds for j in self.jobs], 50.0)

    @property
    def p99_wall_seconds(self) -> float:
        """p99 job wall-clock (nearest-rank; the tail the SLO guards)."""
        return percentile([j.wall_seconds for j in self.jobs], 99.0)

    @property
    def max_starved_rounds(self) -> int:
        """Worst per-job starved-round count — the fairness bound keeps
        any *consecutive* streak at <= 1 even under churn."""
        return max((j.starved_rounds for j in self.jobs), default=0)

    @property
    def total_batches(self) -> int:
        """Batches trained across every job."""
        return sum(j.batches for j in self.jobs)

    @property
    def goodput_batches_per_second(self) -> float:
        """Useful training batches per modeled wall second — the
        goodput-under-churn headline."""
        if self.total_wall_seconds <= 0.0:
            return 0.0
        return self.total_batches / self.total_wall_seconds

    @property
    def useful_cpu_fraction(self) -> float:
        """Share of reader CPU that was not crash-redone work."""
        if self.reader_cpu_seconds <= 0.0:
            return 1.0
        return 1.0 - self.wasted_cpu_seconds / self.reader_cpu_seconds

    @property
    def freshness_p50_seconds(self) -> float:
        """Median event-time → trained-on lag across streamed batches
        (0.0 when no job tracked freshness)."""
        return self.freshness.p50_lag_seconds

    @property
    def freshness_p99_seconds(self) -> float:
        """Tail event-time → trained-on lag — the freshness SLO the
        tier scheduler's lag-boosted weights defend."""
        return self.freshness.p99_lag_seconds

    def as_dict(self) -> dict:
        """Serialize to plain dicts — stable across replays of the same
        seed, so two reports can be compared with ``==``."""
        return {
            "jobs": [
                {
                    "job": j.job,
                    "admitted_round": j.admitted_round,
                    "finished_round": j.finished_round,
                    "wall_seconds": j.wall_seconds,
                    "busy_seconds": j.busy_seconds,
                    "starved_rounds": j.starved_rounds,
                    "epochs": j.epochs,
                    "batches": j.batches,
                }
                for j in self.jobs
            ],
            "total_wall_seconds": self.total_wall_seconds,
            "reader_cpu_seconds": self.reader_cpu_seconds,
            "wasted_cpu_seconds": self.wasted_cpu_seconds,
            "crashes": self.crashes,
            "straggler_shards": self.straggler_shards,
            "preemptions": self.preemptions,
            "p50_wall_seconds": self.p50_wall_seconds,
            "p99_wall_seconds": self.p99_wall_seconds,
            "goodput_batches_per_second": self.goodput_batches_per_second,
            "freshness": self.freshness.as_dict(),
        }
