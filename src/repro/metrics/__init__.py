"""Resource counters and phase breakdowns (the currency of all results)."""

from .breakdown import (
    IterationBreakdown,
    QueueWaitBreakdown,
    ReaderCpuBreakdown,
)
from .counters import Counters, MemoryTracker
from .overlap import OverlapReport
from .scaling import ScalingDecision, ScalingTrace
from .tier import JobRoundStat, TierReport, TierRound

__all__ = [
    "Counters",
    "MemoryTracker",
    "IterationBreakdown",
    "JobRoundStat",
    "OverlapReport",
    "QueueWaitBreakdown",
    "ReaderCpuBreakdown",
    "ScalingDecision",
    "ScalingTrace",
    "TierReport",
    "TierRound",
]
