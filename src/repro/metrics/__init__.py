"""Resource counters and phase breakdowns (the currency of all results)."""

from .breakdown import (
    IterationBreakdown,
    QueueWaitBreakdown,
    ReaderCpuBreakdown,
)
from .counters import Counters, MemoryTracker

__all__ = [
    "Counters",
    "MemoryTracker",
    "IterationBreakdown",
    "QueueWaitBreakdown",
    "ReaderCpuBreakdown",
]
