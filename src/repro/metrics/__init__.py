"""Resource counters and phase breakdowns (the currency of all results)."""

from .breakdown import (
    IterationBreakdown,
    QueueWaitBreakdown,
    ReaderCpuBreakdown,
)
from .counters import Counters, MemoryTracker
from .overlap import OverlapReport
from .scaling import ScalingDecision, ScalingTrace

__all__ = [
    "Counters",
    "MemoryTracker",
    "IterationBreakdown",
    "OverlapReport",
    "QueueWaitBreakdown",
    "ReaderCpuBreakdown",
    "ScalingDecision",
    "ScalingTrace",
]
