"""Resource counters and phase breakdowns (the currency of all results)."""

from .breakdown import (
    IterationBreakdown,
    QueueWaitBreakdown,
    ReaderCpuBreakdown,
)
from .counters import Counters, MemoryTracker
from .overlap import OverlapReport

__all__ = [
    "Counters",
    "MemoryTracker",
    "IterationBreakdown",
    "OverlapReport",
    "QueueWaitBreakdown",
    "ReaderCpuBreakdown",
]
