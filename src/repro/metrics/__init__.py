"""Resource counters and phase breakdowns (the currency of all results)."""

from .breakdown import (
    IterationBreakdown,
    QueueWaitBreakdown,
    ReaderCpuBreakdown,
)
from .counters import Counters, MemoryTracker
from .freshness import FreshnessReport
from .overlap import OverlapReport
from .scaling import ScalingDecision, ScalingTrace
from .slo import JobSLO, SLOReport, percentile
from .tier import JobRoundStat, TierReport, TierRound

__all__ = [
    "Counters",
    "MemoryTracker",
    "FreshnessReport",
    "IterationBreakdown",
    "JobRoundStat",
    "JobSLO",
    "OverlapReport",
    "percentile",
    "QueueWaitBreakdown",
    "ReaderCpuBreakdown",
    "ScalingDecision",
    "ScalingTrace",
    "SLOReport",
    "TierReport",
    "TierRound",
]
