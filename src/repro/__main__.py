"""``python -m repro`` — run paper experiments from the shell."""

import sys

from .cli import main

sys.exit(main())
