"""The data-generation ETL job: Scribe -> join -> (cluster) -> partition.

Mirrors §2.1/§4.1: a batch engine ingests the feature and event log
categories from Scribe, joins them into labeled samples, optionally
applies RecD's CLUSTER BY session (O2) and a downsampling policy (§7),
and hands the ordered row set to storage for landing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datagen.session import Sample
from ..scribe.bus import ScribeCluster
from ..scribe.message import EventLogRecord, FeatureLogRecord
from .cluster import cluster_by_session
from .downsample import downsample_per_sample, downsample_per_session
from .join import join_logs

__all__ = ["ETLConfig", "ETLJob", "ETLResult"]


@dataclass(frozen=True)
class ETLConfig:
    """Behaviour toggles of the landing job."""

    #: O2: rewrite the partition clustered by session, sorted by timestamp
    cluster: bool = False
    #: fraction of data to keep; 1.0 disables downsampling
    keep_rate: float = 1.0
    #: "session" (RecD, §7) or "sample" (baseline) downsampling granularity
    downsample_by: str = "sample"
    seed: int = 0


@dataclass
class ETLResult:
    """The landed row set plus ingest accounting."""

    samples: list[Sample]
    ingest_bytes: int
    joined_rows: int
    dropped_rows: int


class ETLJob:
    """One landing job for one (hourly) partition."""

    def __init__(self, config: ETLConfig | None = None):
        self.config = config or ETLConfig()

    def run_from_records(
        self,
        features: list[FeatureLogRecord],
        events: list[EventLogRecord],
        ingest_bytes: int = 0,
    ) -> ETLResult:
        samples = join_logs(features, events)
        joined = len(samples)
        cfg = self.config
        if cfg.keep_rate < 1.0:
            if cfg.downsample_by == "session":
                samples = downsample_per_session(samples, cfg.keep_rate, cfg.seed)
            elif cfg.downsample_by == "sample":
                samples = downsample_per_sample(samples, cfg.keep_rate, cfg.seed)
            else:
                raise ValueError(
                    f"unknown downsample_by: {cfg.downsample_by!r}"
                )
        if cfg.cluster:
            samples = cluster_by_session(samples)
        return ETLResult(
            samples=samples,
            ingest_bytes=ingest_bytes,
            joined_rows=joined,
            dropped_rows=joined - len(samples),
        )

    def run_from_scribe(self, cluster: ScribeCluster) -> ETLResult:
        """Ingest both log categories off a Scribe cluster and land them.

        Messages are length-discriminated: event records have a fixed
        32-byte frame; anything longer is a feature record.
        """
        ingest_bytes = cluster.etl_ingest_bytes
        features: list[FeatureLogRecord] = []
        events: list[EventLogRecord] = []
        event_size = EventLogRecord._FMT.size
        for payload in cluster.read_all():
            if len(payload) == event_size:
                events.append(EventLogRecord.deserialize(payload))
            else:
                features.append(FeatureLogRecord.deserialize(payload))
        # Restore inference-time order: Scribe shard order is arbitrary.
        features.sort(key=lambda r: (r.timestamp, r.request_id))
        return self.run_from_records(features, events, ingest_bytes)
