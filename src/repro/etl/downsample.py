"""Downsampling policies (§7, Boosting Dedupe Factors).

Data generation keeps datasets manageable by discarding samples.  The
baseline drops *per sample*, which leaves S (samples/session) unchanged.
RecD proposes dropping *per session* instead: the same retained volume
concentrates into fewer, complete sessions, raising S and with it every
DedupeFactor — without affecting model accuracy.
"""

from __future__ import annotations

import numpy as np

from ..datagen.session import Sample

__all__ = ["downsample_per_sample", "downsample_per_session", "samples_per_session"]


def downsample_per_sample(
    samples: list[Sample], keep_rate: float, seed: int = 0
) -> list[Sample]:
    """Baseline: keep each sample independently with ``keep_rate``."""
    if not 0.0 <= keep_rate <= 1.0:
        raise ValueError("keep_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(samples)) < keep_rate
    return [s for s, k in zip(samples, keep) if k]


def downsample_per_session(
    samples: list[Sample], keep_rate: float, seed: int = 0
) -> list[Sample]:
    """RecD: keep or drop whole sessions with ``keep_rate``.

    Retains roughly the same expected sample volume as the per-sample
    policy but preserves S within kept sessions.
    """
    if not 0.0 <= keep_rate <= 1.0:
        raise ValueError("keep_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    session_ids = sorted({s.session_id for s in samples})
    keep_mask = rng.random(len(session_ids)) < keep_rate
    kept = {sid for sid, k in zip(session_ids, keep_mask) if k}
    return [s for s in samples if s.session_id in kept]


def samples_per_session(samples: list[Sample]) -> float:
    """Mean S over a partition (the §7 metric the policies differ on)."""
    if not samples:
        return 0.0
    counts: dict[int, int] = {}
    for s in samples:
        counts[s.session_id] = counts.get(s.session_id, 0) + 1
    return len(samples) / len(counts)
