"""ETL substrate: join, clustering (O2), downsampling (§7)."""

from .cluster import cluster_by_session, is_clustered
from .downsample import (
    downsample_per_sample,
    downsample_per_session,
    samples_per_session,
)
from .join import join_logs
from .pipeline import ETLConfig, ETLJob, ETLResult

__all__ = [
    "join_logs",
    "cluster_by_session",
    "is_clustered",
    "downsample_per_sample",
    "downsample_per_session",
    "samples_per_session",
    "ETLConfig",
    "ETLJob",
    "ETLResult",
]
