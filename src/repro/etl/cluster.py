"""O2: CLUSTER BY session ID, SORT BY timestamp (§4.1).

The RecD data-generation ETL job rewrites each landed partition so that
every session's samples sit adjacently (enabling in-batch dedup) and in
log-timestamp order within the session (preserving temporal structure).
This is the ``CLUSTER BY`` clause of engines like Spark applied at
partition granularity.
"""

from __future__ import annotations

from ..datagen.session import Sample

__all__ = ["cluster_by_session", "is_clustered"]


def cluster_by_session(samples: list[Sample]) -> list[Sample]:
    """Stable re-order: group rows by session, sort each by timestamp.

    Sessions appear in order of their earliest timestamp so the clustered
    partition still reads roughly chronologically (fresh partitions land
    hourly; intra-hour session order is irrelevant to training).
    """
    first_ts: dict[int, float] = {}
    for s in samples:
        cur = first_ts.get(s.session_id)
        if cur is None or s.timestamp < cur:
            first_ts[s.session_id] = s.timestamp
    return sorted(
        samples, key=lambda s: (first_ts[s.session_id], s.session_id, s.timestamp)
    )


def is_clustered(samples: list[Sample]) -> bool:
    """True when every session's samples form one contiguous run."""
    seen: set[int] = set()
    prev: int | None = None
    for s in samples:
        if s.session_id != prev:
            if s.session_id in seen:
                return False
            seen.add(s.session_id)
            prev = s.session_id
    return True
