"""ETL join: raw feature logs x event logs -> labeled training samples.

Streaming/batch engines (Spark in the paper, §2.1) ingest the two Scribe
categories and join them on request ID to produce labeled samples.  A
feature record without an event (the impression never resolved) or an
event without features is dropped, as a production join would.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..datagen.session import Sample
from ..scribe.message import EventLogRecord, FeatureLogRecord

__all__ = ["join_logs"]


def join_logs(
    features: Iterable[FeatureLogRecord],
    events: Iterable[EventLogRecord],
) -> list[Sample]:
    """Hash-join the two log streams into training samples.

    Output order follows the *feature* stream (inference-time order),
    matching the baseline pipeline's "samples ordered by inference time"
    behaviour that O2 exists to change.
    """
    label_by_request: dict[int, int] = {}
    for ev in events:
        label_by_request[ev.request_id] = ev.label
    samples: list[Sample] = []
    for rec in features:
        label = label_by_request.get(rec.request_id)
        if label is None:
            continue  # unresolved impression
        samples.append(
            Sample(
                sample_id=rec.request_id,
                session_id=rec.session_id,
                timestamp=rec.timestamp,
                label=label,
                sparse=rec.sparse,
                dense=rec.dense,
            )
        )
    return samples
