"""DataLoader configuration — how a training job describes its input.

§4.2: ML engineers add a ``dedup_sparse_features`` field, a
``List[List[featureKey]]`` of feature groups to deduplicate, next to the
usual ``sparse_features`` list.  Features named in neither list are not
materialized (the job does not use them).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DataLoaderConfig"]


@dataclass(frozen=True)
class DataLoaderConfig:
    """One training job's reading/preprocessing specification."""

    batch_size: int
    #: feature keys converted to plain KJTs
    sparse_features: tuple[str, ...] = ()
    #: feature groups converted to (grouped) IKJTs — O3
    dedup_sparse_features: tuple[tuple[str, ...], ...] = ()
    #: features converted to *partial* IKJTs (§7): shift-aware dedup that
    #: also captures lists that changed by appending/dropping IDs
    partial_dedup_sparse_features: tuple[str, ...] = ()
    dense_features: tuple[str, ...] = ()
    #: names of preprocessing transforms to apply, in order (O4)
    transforms: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        flat = [k for group in self.dedup_sparse_features for k in group]
        if len(flat) != len(set(flat)):
            raise ValueError("a feature may appear in only one dedup group")
        claimed = [
            *self.sparse_features,
            *flat,
            *self.partial_dedup_sparse_features,
        ]
        if len(claimed) != len(set(claimed)):
            raise ValueError(
                "a feature may be plain, exact-dedup, or partial-dedup — "
                "not several at once"
            )
        for group in self.dedup_sparse_features:
            if not group:
                raise ValueError("empty dedup group")

    @property
    def dedup_feature_names(self) -> list[str]:
        """Flat list of the features in every exact-dedup group."""
        return [k for group in self.dedup_sparse_features for k in group]

    @property
    def all_sparse_names(self) -> list[str]:
        """Every sparse feature the loader emits, dedup'd or not."""
        return (
            list(self.sparse_features)
            + self.dedup_feature_names
            + list(self.partial_dedup_sparse_features)
        )

    def without_dedup(self) -> "DataLoaderConfig":
        """The baseline config: same features, all as plain KJTs."""
        return DataLoaderConfig(
            batch_size=self.batch_size,
            sparse_features=tuple(self.all_sparse_names),
            dedup_sparse_features=(),
            partial_dedup_sparse_features=(),
            dense_features=self.dense_features,
            transforms=self.transforms,
        )
