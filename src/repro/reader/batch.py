"""The preprocessed batch readers ship to trainers.

Holds dense features, labels, plain KJTs, and per-group IKJTs.  The
``wire_nbytes`` property is what the reader->trainer network link carries
(Table 3's "Send Bytes"): IKJT groups ship deduplicated values/offsets
plus one inverse_lookup per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ikjt import InverseKeyedJaggedTensor
from ..core.kjt import KeyedJaggedTensor
from ..core.partial import PartialKeyedJaggedTensor

__all__ = ["Batch"]


@dataclass
class Batch:
    """One training mini-batch in tensor form."""

    dense: np.ndarray  # (B, num_dense) float32
    labels: np.ndarray  # (B,) float32
    kjt: KeyedJaggedTensor | None = None
    ikjts: list[InverseKeyedJaggedTensor] = field(default_factory=list)
    #: §7 partial IKJTs (shift-aware dedup)
    partial: PartialKeyedJaggedTensor | None = None

    def __post_init__(self) -> None:
        sizes = {self.dense.shape[0], self.labels.shape[0]}
        if self.kjt is not None:
            sizes.add(self.kjt.batch_size)
        for ik in self.ikjts:
            sizes.add(ik.batch_size)
        if self.partial is not None:
            sizes.add(self.partial.batch_size)
        if len(sizes) != 1:
            raise ValueError(f"inconsistent batch sizes: {sorted(sizes)}")

    @property
    def batch_size(self) -> int:
        """Rows in this batch (B of the job's batch size)."""
        return int(self.labels.shape[0])

    @property
    def sparse_keys(self) -> list[str]:
        """Every sparse feature name, across KJT/IKJT/partial inputs."""
        keys = list(self.kjt.keys) if self.kjt is not None else []
        for ik in self.ikjts:
            keys.extend(ik.keys)
        if self.partial is not None:
            keys.extend(self.partial.keys)
        return keys

    @property
    def wire_nbytes(self) -> int:
        """Bytes shipped reader -> trainer.

        IKJT inverse_lookups *do* travel on this hop (each trainer needs
        them to expand its local batch); the SDD hop later keeps them
        local (§5).  This is also the byte count the transport model
        charges: under the ``copy`` transport every wire byte pays the
        modeled serialize/copy cost
        (:meth:`~repro.reader.costmodel.ReaderCostModel.transport_seconds`)
        and lands in ``bytes_copied``; under ``shm`` the same count is
        recorded as ``copies_avoided``.
        """
        total = int(self.dense.nbytes + self.labels.nbytes)
        if self.kjt is not None:
            total += self.kjt.nbytes
        for ik in self.ikjts:
            total += ik.nbytes
        if self.partial is not None:
            total += sum(
                self.partial[k].nbytes for k in self.partial.keys
            )
        return total

    @property
    def expanded_nbytes(self) -> int:
        """Bytes the fully-materialized (non-dedup) batch would carry.

        Equals :attr:`wire_nbytes` for a batch with no IKJT groups; for
        deduped batches the gap is the dedup transport saving
        (``bytes-expanded - bytes-decoded`` in the fleet/tier reports).
        Computed analytically — nothing is expanded.
        """
        total = int(self.dense.nbytes + self.labels.nbytes)
        if self.kjt is not None:
            total += self.kjt.nbytes
        for ik in self.ikjts:
            total += ik.expanded_nbytes
        if self.partial is not None:
            total += sum(
                self.partial[k].nbytes for k in self.partial.keys
            )
        return total

    def to_kjt_only(self) -> "Batch":
        """Expand every (partial) IKJT back to a KJT
        (functional-equivalence tests)."""
        tensors = dict(self.kjt.items()) if self.kjt is not None else {}
        for ik in self.ikjts:
            tensors.update(ik.to_kjt().items())
        if self.partial is not None:
            tensors.update(self.partial.to_kjt().items())
        return Batch(
            dense=self.dense,
            labels=self.labels,
            kjt=KeyedJaggedTensor(tensors) if tensors else None,
            ikjts=[],
        )
