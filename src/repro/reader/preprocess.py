"""Preprocessing transforms over KJTs and IKJTs (O4, §4.3).

Users provide (TorchScript, in production) modules that transform sparse
values — hashing, clamping, normalization.  RecD wraps each module so it
*transparently* runs over an IKJT: the wrapper hands the module the
deduplicated ``values``/``offsets`` slices, so the module body is
unchanged while processing ``DedupeFactor(f)`` fewer values.  Outputs
stay IKJTs, so the savings also reach the reader->trainer network hop and
the trainer itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ikjt import InverseKeyedJaggedTensor
from ..core.jagged import JaggedTensor
from ..core.kjt import KeyedJaggedTensor
from .batch import Batch

__all__ = [
    "SparseTransform",
    "HashModulo",
    "ClampValues",
    "TruncateLength",
    "DedupPreprocWrapper",
    "ProcessStats",
    "TRANSFORM_REGISTRY",
    "apply_transforms",
]


class SparseTransform:
    """Base: a user module mapping JaggedTensor -> JaggedTensor.

    ``elementwise`` transforms map each value independently and are
    therefore valid over a *partial* IKJT's shared value buffer (§7);
    structure-changing transforms (truncation) are not.
    """

    name = "identity"
    elementwise = True

    def apply(self, jt: JaggedTensor) -> JaggedTensor:
        """Transform one feature's jagged values; returns a new tensor."""
        raise NotImplementedError


class HashModulo(SparseTransform):
    """Map raw IDs into a bounded embedding-index space (§2.1 'hashing')."""

    name = "hash_modulo"

    def __init__(self, modulus: int = 1_000_003):
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        self.modulus = modulus

    def apply(self, jt: JaggedTensor) -> JaggedTensor:
        """Hash every ID into ``[0, modulus)``."""
        # blake-free multiplicative mix keeps this vectorized & stable
        mixed = (jt.values * np.int64(2654435761)) % np.int64(self.modulus)
        return JaggedTensor(np.abs(mixed), jt.offsets.copy())


class ClampValues(SparseTransform):
    """Clamp IDs into [0, max_id] (defensive range normalization)."""

    name = "clamp_values"

    def __init__(self, max_id: int = 2**31 - 1):
        self.max_id = max_id

    def apply(self, jt: JaggedTensor) -> JaggedTensor:
        """Clamp every ID into ``[0, max_id]``."""
        return JaggedTensor(
            np.clip(jt.values, 0, self.max_id), jt.offsets.copy()
        )


class TruncateLength(SparseTransform):
    """Keep only the most recent ``max_len`` IDs of each row."""

    name = "truncate_length"
    elementwise = False

    def __init__(self, max_len: int = 256):
        if max_len < 0:
            raise ValueError("max_len must be non-negative")
        self.max_len = max_len

    def apply(self, jt: JaggedTensor) -> JaggedTensor:
        """Keep each row's most recent ``max_len`` IDs."""
        lengths = jt.lengths
        keep = np.minimum(lengths, self.max_len)
        # keep the *suffix* (most recent IDs) of each row
        starts = jt.offsets[1:] - keep
        total = int(keep.sum())
        if total == 0:
            return JaggedTensor.empty(jt.num_rows, dtype=jt.values.dtype)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(keep)[:-1]]), keep
        )
        src = np.repeat(starts, keep) + within
        offsets = np.zeros(jt.num_rows + 1, dtype=np.int64)
        np.cumsum(keep, out=offsets[1:])
        return JaggedTensor(jt.values[src], offsets)


@dataclass
class ProcessStats:
    """Work units for the process-phase cost model."""

    values_processed: int = 0
    rows_processed: int = 0

    def merge(self, other: "ProcessStats") -> None:
        """Fold another batch's process work units into this one."""
        self.values_processed += other.values_processed
        self.rows_processed += other.rows_processed


class DedupPreprocWrapper:
    """O4: run an unchanged transform over an IKJT's dedup slices."""

    def __init__(self, transform: SparseTransform):
        self.transform = transform

    def apply(
        self, ikjt: InverseKeyedJaggedTensor, stats: ProcessStats
    ) -> InverseKeyedJaggedTensor:
        """Apply the wrapped transform to each dedup'd slice, metering
        work against the *deduplicated* value counts (O4's saving)."""
        out = {}
        for key, jt in ikjt.items():
            out[key] = self.transform.apply(jt)
            stats.values_processed += jt.total_values
            stats.rows_processed += jt.num_rows
        return InverseKeyedJaggedTensor(out, ikjt.inverse_lookup.copy())


TRANSFORM_REGISTRY: dict[str, type[SparseTransform]] = {
    HashModulo.name: HashModulo,
    ClampValues.name: ClampValues,
    TruncateLength.name: TruncateLength,
}


def apply_transforms(
    batch: Batch, transform_names: tuple[str, ...]
) -> tuple[Batch, ProcessStats]:
    """Apply the configured transforms to every sparse tensor of a batch.

    Plain KJT features process every (duplicate-bearing) value; IKJT
    groups process only unique values via the wrapper.
    """
    stats = ProcessStats()
    transforms = []
    for name in transform_names:
        cls = TRANSFORM_REGISTRY.get(name)
        if cls is None:
            raise KeyError(f"unknown transform {name!r}")
        transforms.append(cls())

    kjt = batch.kjt
    for t in transforms:
        if kjt is not None:
            new = {}
            for key, jt in kjt.items():
                new[key] = t.apply(jt)
                stats.values_processed += jt.total_values
                stats.rows_processed += jt.num_rows
            kjt = KeyedJaggedTensor(new)
    ikjts = batch.ikjts
    for t in transforms:
        wrapper = DedupPreprocWrapper(t)
        ikjts = [wrapper.apply(ik, stats) for ik in ikjts]
    partial = batch.partial
    if partial is not None and transforms:
        from ..core.partial import PartialJaggedTensor, PartialKeyedJaggedTensor

        for t in transforms:
            if not t.elementwise:
                raise ValueError(
                    f"transform {t.name!r} changes row structure and cannot "
                    "run over a partial IKJT's shared value buffer"
                )
        out = {}
        for key in partial.keys:
            pt = partial[key]
            values = pt.values
            for t in transforms:
                # element-wise: reuse the JaggedTensor body over the flat
                # buffer (one trivial segment)
                shim = JaggedTensor(
                    values,
                    np.array([0, values.size], dtype=np.int64),
                )
                values = t.apply(shim).values
                stats.values_processed += values.size
            stats.rows_processed += pt.batch_size
            out[key] = PartialJaggedTensor(values, pt.inverse_lookup.copy())
        partial = PartialKeyedJaggedTensor(out)
    return (
        Batch(
            dense=batch.dense,
            labels=batch.labels,
            kjt=kjt,
            ikjts=ikjts,
            partial=partial,
        ),
        stats,
    )
