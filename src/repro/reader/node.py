"""ReaderNode: the Fill -> Convert -> Process pipeline (Fig 5).

One stateless reader processes a slice of the dataset into preprocessed
batches for trainers, accounting modeled CPU time per phase (Fig 10) and
egress bytes to trainers (Table 3's Send Bytes).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from ..metrics.breakdown import ReaderCpuBreakdown
from ..storage.dwrf import DwrfReader
from .batch import Batch
from .config import DataLoaderConfig
from .convert import convert_rows
from .costmodel import ReaderCostModel
from .fill import fill_batches
from .preprocess import apply_transforms

__all__ = ["ReaderNode", "ReaderReport"]


@dataclass
class ReaderReport:
    """Everything a reader run measured."""

    cpu: ReaderCpuBreakdown = field(default_factory=ReaderCpuBreakdown)
    samples: int = 0
    batches: int = 0
    read_bytes: int = 0  # compressed, off Tectonic (Table 3 ingest)
    send_bytes: int = 0  # preprocessed tensors to trainers (Table 3 egress)
    #: what fully-materialized (non-dedup) batches would have carried;
    #: equals send_bytes when no dedup groups are configured
    expanded_bytes: int = 0
    #: wire bytes serialized through the worker->trainer queue (the
    #: ``copy`` transport charged for them; zero under ``shm``)
    bytes_copied: int = 0
    #: wire bytes the ``shm`` transport handed over without a copy
    #: (zero under ``copy``)
    copies_avoided: int = 0
    #: per-batch event time: the newest row timestamp each delivered
    #: batch carried (the freshness metric's "event" side; order is the
    #: shard/serial batch order, which percentiles don't care about)
    batch_event_times: list = field(default_factory=list)

    @property
    def samples_per_cpu_second(self) -> float:
        """Reader throughput (Fig 7's reader metric)."""
        if self.cpu.total == 0:
            return 0.0
        return self.samples / self.cpu.total

    @property
    def bytes_saved(self) -> int:
        """Transport bytes dedup removed (expanded minus decoded)."""
        return self.expanded_bytes - self.send_bytes

    @property
    def dedupe_byte_factor(self) -> float:
        """Expanded / decoded byte ratio (1.0 with no dedup savings)."""
        if self.send_bytes == 0:
            return 1.0
        return self.expanded_bytes / self.send_bytes

    def merge(self, other: "ReaderReport") -> None:
        """Fold another reader's measurements into this one (fleet/tier
        aggregation)."""
        self.cpu.merge(other.cpu)
        self.samples += other.samples
        self.batches += other.batches
        self.read_bytes += other.read_bytes
        self.send_bytes += other.send_bytes
        self.expanded_bytes += other.expanded_bytes
        self.bytes_copied += other.bytes_copied
        self.copies_avoided += other.copies_avoided
        self.batch_event_times.extend(other.batch_event_times)

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form)."""
        return {
            "cpu": self.cpu.as_dict(),
            "samples": self.samples,
            "batches": self.batches,
            "read_bytes": self.read_bytes,
            "send_bytes": self.send_bytes,
            "expanded_bytes": self.expanded_bytes,
            "bytes_copied": self.bytes_copied,
            "copies_avoided": self.copies_avoided,
            "bytes_saved": self.bytes_saved,
            "dedupe_byte_factor": self.dedupe_byte_factor,
            "samples_per_cpu_second": self.samples_per_cpu_second,
        }


class ReaderNode:
    """One reader node bound to a job config and a cost model."""

    def __init__(
        self,
        config: DataLoaderConfig,
        cost_model: ReaderCostModel | None = None,
    ):
        self.config = config
        self.cost_model = cost_model or ReaderCostModel()
        self.report = ReaderReport()

    def run(
        self,
        file_readers: list[DwrfReader],
        max_batches: int | None = None,
        row_start: int = 0,
        row_stop: int | None = None,
    ) -> Iterator[Batch]:
        """Stream preprocessed batches off the given file splits.

        ``row_start``/``row_stop`` scope the node to one row-range shard
        of the splits' global row order (the fleet path); the defaults
        scan everything (the serial path).
        """
        if max_batches is not None and max_batches <= 0:
            return
        cm = self.cost_model
        rep = self.report
        for rows, fill_stats in fill_batches(
            file_readers,
            self.config.batch_size,
            row_start=row_start,
            row_stop=row_stop,
        ):
            batch, conv_stats = convert_rows(rows, self.config)
            batch, proc_stats = apply_transforms(batch, self.config.transforms)

            rep.cpu.fill += cm.fill_seconds(
                fill_stats.compressed_bytes, fill_stats.values_decoded
            )
            rep.cpu.convert += cm.convert_seconds(
                conv_stats.values_copied, conv_stats.values_hashed
            )
            rep.cpu.process += cm.process_seconds(
                proc_stats.values_processed, proc_stats.rows_processed
            )
            rep.read_bytes += fill_stats.compressed_bytes
            rep.send_bytes += batch.wire_nbytes
            rep.expanded_bytes += batch.expanded_nbytes
            rep.samples += batch.batch_size
            rep.batches += 1
            rep.batch_event_times.append(
                max(row.timestamp for row in rows)
            )
            yield batch
            if max_batches is not None and rep.batches >= max_batches:
                return

    def run_all(
        self,
        file_readers: list[DwrfReader],
        max_batches: int | None = None,
        row_start: int = 0,
        row_stop: int | None = None,
    ) -> list[Batch]:
        """Materialized :meth:`run` (tests and small experiments)."""
        return list(self.run(file_readers, max_batches, row_start, row_stop))
