"""Feature Conversion: raw rows -> KJT / IKJT tensors (O3, §4.2).

The convert step copies feature data from filled rows into structured
tensors.  Features listed in ``dedup_sparse_features`` are deduplicated
into (grouped) IKJTs by hashing row values during conversion; everything
else becomes plain KJTs.  Work accounting:

* every value of a dedup-group feature is *hashed* (the O3 overhead
  measured at +21/37/11% convert time in Fig 10);
* only unique values are *copied* for dedup groups; all values are
  copied for plain features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ikjt import InverseKeyedJaggedTensor
from ..core.kjt import KeyedJaggedTensor
from ..core.partial import PartialKeyedJaggedTensor
from ..datagen.session import Sample
from .batch import Batch
from .config import DataLoaderConfig

__all__ = ["ConvertStats", "convert_rows"]


@dataclass
class ConvertStats:
    """Work units the cost model turns into convert-CPU seconds."""

    values_copied: int = 0
    values_hashed: int = 0

    def merge(self, other: "ConvertStats") -> None:
        """Fold another batch's convert work units into this one."""
        self.values_copied += other.values_copied
        self.values_hashed += other.values_hashed


def convert_rows(
    rows: list[Sample], config: DataLoaderConfig
) -> tuple[Batch, ConvertStats]:
    """Convert one filled batch of rows into tensors per the job config."""
    if not rows:
        raise ValueError("cannot convert an empty batch")
    stats = ConvertStats()

    dense = np.array(
        [[r.dense.get(name, 0.0) for name in config.dense_features] for r in rows],
        dtype=np.float32,
    ).reshape(len(rows), len(config.dense_features))
    labels = np.array([r.label for r in rows], dtype=np.float32)

    kjt = None
    if config.sparse_features:
        kjt = KeyedJaggedTensor.from_rows(
            [r.sparse for r in rows], keys=config.sparse_features
        )
        stats.values_copied += kjt.total_values

    ikjts: list[InverseKeyedJaggedTensor] = []
    for group in config.dedup_sparse_features:
        # Build the full KJT view of the group, then dedup via hashing.
        group_kjt = KeyedJaggedTensor.from_rows(
            [r.sparse for r in rows], keys=group
        )
        ikjt = InverseKeyedJaggedTensor.from_kjt(group_kjt, list(group))
        ikjts.append(ikjt)
        stats.values_hashed += group_kjt.total_values
        stats.values_copied += ikjt.total_values

    partial = None
    if config.partial_dedup_sparse_features:
        keys = list(config.partial_dedup_sparse_features)
        partial_kjt = KeyedJaggedTensor.from_rows(
            [r.sparse for r in rows], keys=keys
        )
        partial = PartialKeyedJaggedTensor.from_kjt(partial_kjt, keys)
        # partial matching scans windows: charge hashing for every value
        stats.values_hashed += partial_kjt.total_values
        stats.values_copied += partial.total_values

    return (
        Batch(dense=dense, labels=labels, kjt=kjt, ikjts=ikjts, partial=partial),
        stats,
    )
