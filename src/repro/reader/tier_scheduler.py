"""A shared reader tier multiplexing one worker pool across many jobs.

The paper's disaggregated data-preprocessing tier (§2.1) is *shared*
infrastructure: one pool of stateless reader workers serves many
concurrent training jobs, so preprocessing capacity amortizes across the
platform instead of being provisioned per job.  Everything before this
module serves exactly one job — :class:`~repro.reader.fleet.ReaderFleet`
scans one job's epoch, ``run_pipeline`` trains one job.
:class:`SharedReaderTier` closes that gap:

* **Registration / admission** — jobs register a :class:`TierJob` (their
  table, epoch plan, DataLoader config, and batch consumer); admission
  refuses a job set the scheduler cannot serve fairly (more than
  ``2 * num_readers`` jobs) and epoch plans that reference dead
  partitions or cannot fill a single batch.
* **Scheduling rounds** — the tier runs in rounds: each round, every
  registered job with epochs remaining is a candidate, and
  :func:`allocate_workers` splits the pool's width across candidates —
  allocations always sum to the fleet width, and a job skipped one
  round has strict priority the next (no admitted job is ever starved
  for more than one consecutive round).
* **Isolation** — a job's leased workers run that job's own
  :class:`~repro.reader.fleet.ReaderFleet` over that job's table, so
  batch *content* is completely unaffected by sharing: every job's
  batch stream — and therefore its training losses — is bit-identical
  to running alone on a private fleet of any width.  Sharing only moves
  modeled wall-clock.
* **Aggregate autoscaling** — with ``autoscale=True`` a
  :class:`~repro.reader.autoscale.ReaderAutoscaler` resizes the *pool*
  between rounds from the tier-level overlap (every job's reader CPU
  pooled over the width vs the slowest trainer), not any single job's
  stall.

Two allocation policies, both deterministic:

* ``"round_robin"`` — even split; the remainder rotates across jobs by
  a round cursor.
* ``"stall_weighted"`` (default) — each candidate is guaranteed one
  worker, and the rest of the pool follows observed reader demand:
  workers proportional to each job's last-observed reader CPU seconds
  scaled by its scheduling ``weight`` (largest-remainder rounding), so
  jobs whose trainers starve — or that the platform prioritizes — pull
  workers away from jobs whose readers idle.  Until every candidate has
  been observed once, the round falls back to the even split.

Jobs whose tables land lazily (rolling-window retention) register a
``prepare`` lifecycle hook — called immediately before each of their
scheduled epochs — plus a declared ``partition_rows`` stream that
admission validates their epoch plans against.

Production tiers also *churn*: jobs are preempted and re-admitted
mid-run, new jobs arrive while others train, and leased workers crash
or straggle.  The tier therefore exposes its scheduling loop in two
shapes — :meth:`SharedReaderTier.run` (rounds to completion, the
classic closed loop) is just :meth:`~SharedReaderTier.start` /
:meth:`~SharedReaderTier.step` / :meth:`~SharedReaderTier.finish`, and
a driver holding the open loop (the scenario simulator in
``repro.sim``) may, between steps, :meth:`~SharedReaderTier.preempt` a
job (its name frees up for re-registration with its remaining epochs)
or :meth:`~SharedReaderTier.register` a new one.  A job admitted
mid-run — including a re-admitted preempted job — enters with strict
next-round priority (it is treated as starved), so the one-round
starvation bound survives churn.  A ``fault_injector`` hook supplies
per-(round, job) :class:`~repro.reader.fleet.FleetFaults` so worker
crashes and stragglers hit the leased fleets deterministically.

Every round's allocation, per-job modeled overlap, and the tier-level
aggregate land in a :class:`~repro.metrics.tier.TierReport`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Collection, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from ..metrics.freshness import FreshnessReport
from ..metrics.tier import JobRoundStat, TierReport, TierRound
from ..storage.hive import HiveTable
from .autoscale import ReaderAutoscaler
from .batch import Batch
from .config import DataLoaderConfig
from .costmodel import TransportSpec
from .fleet import FleetFaults, FleetReport, ReaderFleet

__all__ = ["allocate_workers", "TierJob", "SharedReaderTier"]

#: the deterministic worker-allocation policies
POLICIES = ("round_robin", "stall_weighted")


def allocate_workers(
    width: int,
    jobs: Sequence[str],
    *,
    starved: Collection[str] = (),
    demand: Mapping[str, float] | None = None,
    weights: Mapping[str, float] | None = None,
    policy: str = "stall_weighted",
    cursor: int = 0,
) -> dict[str, int]:
    """Split ``width`` workers across ``jobs`` for one scheduling round.

    The allocation always sums to ``width`` (the pool is never left
    idle while a job has work).  Jobs in ``starved`` — skipped last
    round — have strict priority for whatever cannot be split evenly,
    which is what bounds starvation at one consecutive round whenever
    ``len(jobs) <= 2 * width``.

    Args:
        width: pool width (total workers to hand out; must be > 0).
        jobs: candidate job names, in registration order.
        starved: jobs that received zero workers last round.
        demand: last-observed reader CPU seconds per job (the
            ``stall_weighted`` signal); jobs missing from it force the
            even-split fallback for the round.
        weights: per-job scheduling weights scaling the demand signal
            (default 1.0 each): under ``stall_weighted`` the surplus is
            apportioned by ``weight * demand``, so a weight-2 job pulls
            roughly twice the workers of an equal-demand weight-1 job.
            The fairness floor is untouched — every candidate still
            gets one worker before any surplus is weighted.
        policy: ``"round_robin"`` or ``"stall_weighted"``.
        cursor: round counter; rotates who the remainder favours.

    Returns:
        ``{job: workers}`` over exactly the given jobs, summing to
        ``width`` (empty when ``jobs`` is empty).

    Raises:
        ValueError: on a non-positive width, an unknown policy,
            duplicate job names, or a non-positive job weight.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
    names = list(jobs)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate job names in {names}")
    if not names:
        return {}

    m = len(names)
    rot = cursor % m
    rotated = names[rot:] + names[:rot]
    position = {name: i for i, name in enumerate(rotated)}
    starved_set = set(starved)
    observed = demand or {}
    job_weight = weights or {}
    bad = {n: w for n, w in job_weight.items() if not w > 0.0}
    if bad:
        raise ValueError(f"job weights must be positive, got {bad}")
    scaled = {
        name: job_weight.get(name, 1.0) * observed[name]
        for name in observed
    }

    def priority(name: str) -> tuple:
        """Sort key: starved first, hungrier (weight-scaled demand)
        first under stall_weighted, then rotation order — a
        deterministic total order."""
        return (
            0 if name in starved_set else 1,
            -scaled.get(name, 0.0) if policy == "stall_weighted" else 0.0,
            position[name],
        )

    ranked = sorted(names, key=priority)

    if m > width:
        # More jobs than workers: one worker each to the first `width`
        # jobs in priority order; the rest wait (and lead next round).
        winners = set(ranked[:width])
        return {name: (1 if name in winners else 0) for name in names}

    # Every candidate gets one worker; the surplus follows the policy.
    out = {name: 1 for name in names}
    rest = width - m
    if rest == 0:
        return out
    total = sum(scaled.get(name, 0.0) for name in names)
    if (
        policy == "round_robin"
        or total <= 0.0
        or any(name not in scaled for name in names)
    ):
        # Even split (the stall_weighted cold start: some candidate has
        # never been observed, so there is no demand signal to follow).
        base, extra = divmod(rest, m)
        for name in names:
            out[name] += base
        for name in ranked[:extra]:
            out[name] += 1
        return out

    # Largest-remainder apportionment of the surplus by weight-scaled
    # observed demand.
    shares = {name: rest * scaled[name] / total for name in names}
    floors = {name: int(shares[name]) for name in names}
    for name in names:
        out[name] += floors[name]
    leftover = rest - sum(floors.values())
    by_remainder = sorted(
        names, key=lambda n: (-(shares[n] - floors[n]), priority(n))
    )
    for name in by_remainder[:leftover]:
        out[name] += 1
    return out


@dataclass
class TierJob:
    """One training job's registration with a shared reader tier.

    Attributes:
        name: unique job name (the key in every tier report).
        table: the job's landed :class:`~repro.storage.hive.HiveTable`.
        config: the job's DataLoader spec (batch size, features,
            transforms).
        epochs: the job's epoch plan — one list of partition names per
            epoch, scanned in order.
        max_batches: per-epoch batch cap (``None`` = the whole window).
        consume: the job's batch queue consumer: called once per
            scheduled epoch as ``consume(epoch_index, batch_iterator)``
            and expected to drain the iterator (e.g. by streaming it
            into a trainer) and return the epoch's modeled
            trainer-busy seconds.  ``None`` drains batches unconsumed
            (reader-only jobs).
        prefetch_depth: bounded prefetch per leased worker.
        executor: fleet executor for the job's scans (``"auto"``,
            ``"process"``, ``"inprocess"``, or ``"async"``).
        transport: batch-transport model for the job's scans (``copy``
            charges modeled serialize cost and counts ``bytes_copied``;
            ``shm`` is the zero-copy A/B).
        streaming: whether the job's consumer streams batches (False
            when it materializes first; carried into the job's overlap
            reports as bookkeeping).
        weight: scheduling weight — the stall-weighted allocator scales
            this job's observed reader demand by it, so heavier jobs
            pull more of the surplus pool (content is unaffected).
        prepare: optional lifecycle hook called as ``prepare(epoch)``
            immediately before the tier scans that epoch — this is
            where rolling-window retention lands the epoch's new
            partitions and ages out old ones.
        partition_rows: expected rows per partition for jobs whose
            epoch plans reference partitions not yet landed (retention
            jobs land lazily via ``prepare``); admission validates the
            plan against this declared stream instead of the live
            table.
        ready: optional data gate called as ``ready(next_epoch)`` at
            the top of every round — ``False`` means the epoch's
            partitions have not landed yet, so the job sits the round
            out as *waiting* (not starved: it holds no next-round
            priority and draws no workers).  Live-loop streaming jobs
            gate on their lander's landing progress here.
        track_freshness: record a per-round
            :class:`~repro.metrics.freshness.FreshnessReport` from the
            job's delivered batch event times against the tier's
            modeled clock (live-loop streaming jobs).
    """

    name: str
    table: HiveTable
    config: DataLoaderConfig
    epochs: Sequence[Sequence[str]]
    max_batches: int | None = None
    consume: Callable[[int, Iterator[Batch]], float] | None = None
    prefetch_depth: int = 2
    executor: str = "auto"
    transport: TransportSpec = field(default_factory=TransportSpec)
    streaming: bool = True
    weight: float = 1.0
    prepare: Callable[[int], None] | None = None
    partition_rows: Mapping[str, int] | None = None
    ready: Callable[[int], bool] | None = None
    track_freshness: bool = False


class SharedReaderTier:
    """One pool of reader workers multiplexed across registered jobs.

    Register jobs with :meth:`register`, then :meth:`run` the tier to
    completion: scheduling rounds repeat until every job's epoch plan is
    exhausted, and the resulting :class:`~repro.metrics.tier.TierReport`
    carries every round's allocation and modeled accounting.  Merged
    per-job fleet measurements accumulate in :attr:`job_fleets`.
    """

    def __init__(
        self,
        num_readers: int,
        policy: str = "stall_weighted",
        autoscale: bool = False,
        target_stall: float = 0.10,
        max_readers: int = 32,
        fault_injector: (
            Callable[[int, str, int], FleetFaults | None] | None
        ) = None,
        freshness_slo: float | None = None,
        ewma_alpha: float | None = None,
    ):
        """Configure the shared pool.

        Args:
            num_readers: pool width (workers shared by all jobs).
            policy: worker-allocation policy (``"round_robin"`` or
                ``"stall_weighted"``).
            autoscale: resize the pool between rounds from the
                aggregate tier overlap.
            target_stall: the tier autoscaler's target band for the
                *aggregate* reader-stall fraction.
            max_readers: the tier autoscaler's upper width bound.
            fault_injector: optional hook called as
                ``fault_injector(round_index, job_name, epoch)``
                (``epoch`` being the job's position in its registered
                plan) before each leased scan; a returned
                :class:`~repro.reader.fleet.FleetFaults` crashes or
                slows that job's workers for the round (``None`` = no
                faults).
            freshness_slo: target p99 event-time → trained-on lag in
                modeled seconds.  When set, a freshness-tracking job
                whose last observed p99 lag exceeds the target has its
                scheduling weight boosted by ``lag / freshness_slo``
                under ``stall_weighted``, pulling surplus workers
                toward the jobs falling behind their data.  Purely a
                wall-clock lever: batch content — and therefore every
                loss — is unaffected.
            ewma_alpha: smoothing factor for the tier autoscaler's
                observed signals (see
                :class:`~repro.reader.autoscale.ReaderAutoscaler`);
                ``None`` steers on raw per-round observations.

        Raises:
            ValueError: on a non-positive width, unknown policy, a
                non-positive ``freshness_slo``, or — with
                ``autoscale`` — ``max_readers < num_readers``.
        """
        if num_readers <= 0:
            raise ValueError(
                f"num_readers must be positive, got {num_readers}"
            )
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        if autoscale and max_readers < num_readers:
            raise ValueError(
                f"max_readers ({max_readers}) must be >= num_readers "
                f"({num_readers}) when autoscale is on"
            )
        if freshness_slo is not None and not freshness_slo > 0.0:
            raise ValueError(
                f"freshness_slo must be positive, got {freshness_slo}"
            )
        self.num_readers = num_readers
        self.policy = policy
        self.autoscale = autoscale
        self.target_stall = target_stall
        self.max_readers = max_readers
        self.fault_injector = fault_injector
        self.freshness_slo = freshness_slo
        self.ewma_alpha = ewma_alpha
        #: the tier's modeled clock: advances by each round's wall and
        #: by :meth:`advance_clock` while the pool waits on data
        self.clock = 0.0
        #: merged per-job FleetReports, populated by :meth:`run`
        self.job_fleets: dict[str, FleetReport] = {}
        self.report: TierReport | None = None
        self._jobs: dict[str, TierJob] = {}
        self._started = False
        self._finished = False
        self._autoscaler: ReaderAutoscaler | None = None
        self._width = num_readers
        self._progress: dict[str, int] = {}
        self._demand: dict[str, float] = {}
        self._starved: set[str] = set()
        self._rounds: list[TierRound] = []
        self._cursor = 0
        self._lag: dict[str, float] = {}
        #: epochs each preempted job had completed when it was removed,
        #: keyed by job name (re-registration does not clear the entry)
        self.preempted: dict[str, int] = {}

    # -- registration / admission ------------------------------------------

    def register(self, job: TierJob) -> None:
        """Admit one job to the tier — before the run or mid-run.

        Admission is checked up front so a bad job fails at
        registration, not mid-run:

        * the name must be unique among *currently registered* jobs and
          non-empty (a preempted job's name is free again, which is how
          a resumed job re-registers with its remaining epochs);
        * the scheduling weight must be positive;
        * the job set must stay schedulable without starving anyone for
          more than one round (at most ``2 * num_readers`` jobs);
        * every partition in the epoch plan must be live in the job's
          table — or, for jobs landing lazily via ``prepare``, present
          in the declared ``partition_rows`` stream;
        * every epoch must fill at least one training batch.

        A job admitted while the tier is mid-run (after
        :meth:`start`) enters with strict next-round priority — it is
        treated as starved, so the allocator serves it before any
        non-starved job and the one-round starvation bound holds from
        its admission round.

        Raises:
            ValueError: if any admission check fails.
            RuntimeError: if the tier already finished.
        """
        if self._finished:
            raise RuntimeError(
                "tier already ran; build a new SharedReaderTier to "
                "schedule more jobs"
            )
        if not job.name:
            raise ValueError("job name must be non-empty")
        if job.name in self._jobs:
            raise ValueError(f"job {job.name!r} already registered")
        if len(self._jobs) + 1 > 2 * self.num_readers:
            raise ValueError(
                f"admission refused for job {job.name!r}: "
                f"{len(self._jobs) + 1} jobs on a {self.num_readers}-wide "
                f"pool cannot be scheduled without starving some job for "
                f"more than one round (limit: 2 * width = "
                f"{2 * self.num_readers}); widen the tier or run fewer "
                "jobs"
            )
        if not job.weight > 0.0:
            raise ValueError(
                f"job {job.name!r} has a non-positive scheduling weight "
                f"({job.weight}); weights must be positive"
            )
        if not job.epochs or any(not epoch for epoch in job.epochs):
            raise ValueError(
                f"job {job.name!r} has an empty epoch plan: every epoch "
                "must name at least one partition"
            )
        if job.partition_rows is not None:
            known = job.partition_rows
            source = "the job's declared partition stream"
        else:
            known = {
                name: info.num_rows
                for name, info in job.table.partitions.items()
            }
            source = f"table {job.table.name!r}"
        for epoch_idx, epoch in enumerate(job.epochs):
            dead = [p for p in epoch if p not in known]
            if dead:
                raise ValueError(
                    f"job {job.name!r} epoch {epoch_idx} references "
                    f"partition(s) {dead} not live in {source}; live: "
                    f"{sorted(known)}"
                )
            # Batches are partition-aligned (plan_epoch drops each
            # partition's sub-batch remainder), so the check must sum
            # per-partition floors, not floor the summed rows.
            batches = sum(
                known[p] // job.config.batch_size for p in epoch
            )
            if batches == 0:
                rows = [known[p] for p in epoch]
                raise ValueError(
                    f"job {job.name!r} epoch {epoch_idx} cannot fill one "
                    f"batch: {rows} rows across {len(epoch)} partition(s), "
                    f"all below batch {job.config.batch_size}"
                )
        self._jobs[job.name] = job
        if self._started:
            # Mid-run admission: the newcomer gets strict next-round
            # priority so it is never starved past one round even when
            # it arrives into a contended pool.  The boost only applies
            # while the priority set still fits the pool — otherwise a
            # newcomer could crowd a genuinely-skipped job out of the
            # width-bounded starved set and starve it a second round.
            # An unboosted newcomer still meets the one-round bound: if
            # its first round skips it, it joins the starved set and is
            # served the round after.
            self._progress[job.name] = 0
            self.job_fleets.setdefault(job.name, FleetReport())
            self._demand.pop(job.name, None)
            if len(self._starved) < self._width:
                self._starved.add(job.name)
            if self._autoscaler is not None:
                # Keep the autoscaler's fairness floor consistent with
                # the grown job set: the pool must stay wide enough to
                # serve every registered job one worker within two
                # rounds.
                self._autoscaler.min_readers = max(
                    self._autoscaler.min_readers,
                    math.ceil(len(self._jobs) / 2),
                )

    @property
    def jobs(self) -> list[str]:
        """Registered job names, in registration order."""
        return list(self._jobs)

    # -- scheduling ---------------------------------------------------------

    def run(self) -> TierReport:
        """Schedule rounds until every job's epoch plan is exhausted.

        The closed-loop shape: :meth:`start`, :meth:`step` until no job
        has epochs left, :meth:`finish`.  Drivers that need to preempt
        or admit jobs mid-run call those three directly.

        Returns:
            The run's :class:`~repro.metrics.tier.TierReport` (also left
            in :attr:`report`).

        Raises:
            RuntimeError: if the tier already ran.
            ValueError: if no jobs are registered.
        """
        self.start()
        while self.step():
            pass
        return self.finish()

    def start(self) -> None:
        """Open the scheduling loop: validate and initialize run state.

        Raises:
            RuntimeError: if the tier already started or ran.
            ValueError: if no jobs are registered.
        """
        if self._started:
            raise RuntimeError(
                "tier already ran; build a new SharedReaderTier to rerun"
            )
        if not self._jobs:
            raise ValueError("no jobs registered")
        self._started = True
        self._autoscaler = (
            ReaderAutoscaler(
                self.num_readers,
                target_stall=self.target_stall,
                # the fairness floor: never shrink the pool so far that
                # the admitted job set cannot be served one worker each
                # within two rounds
                min_readers=max(1, math.ceil(len(self._jobs) / 2)),
                max_readers=self.max_readers,
                ewma_alpha=self.ewma_alpha,
            )
            if self.autoscale
            else None
        )
        self._width = (
            self._autoscaler.num_readers
            if self._autoscaler
            else self.num_readers
        )
        self.job_fleets = {name: FleetReport() for name in self._jobs}
        self._progress = {name: 0 for name in self._jobs}
        self._demand = {}
        self._starved = set()
        self._rounds = []
        self._cursor = 0
        self._lag = {}
        self.clock = 0.0

    @property
    def epochs_remaining(self) -> bool:
        """Whether any registered job still has epochs to run."""
        return any(
            self._progress.get(name, 0) < len(job.epochs)
            for name, job in self._jobs.items()
        )

    def advance_clock(self, to: float) -> float:
        """Move the modeled clock forward to ``to`` (never backward).

        A live-loop driver calls this when every remaining job is
        gated on data: the pool sits idle until the next landing tick,
        and that idle time is modeled as a pure clock jump (no round
        is recorded, no wall is charged to any job).

        Returns:
            The clock after the jump.
        """
        self.clock = max(self.clock, to)
        return self.clock

    def step(self) -> bool:
        """Run one scheduling round.

        Returns:
            ``True`` if a round ran; ``False`` when no registered job
            is *runnable* — every job either exhausted its epoch plan
            or is gated on data by its ``ready`` hook (nothing is
            recorded in that case, so a driver may still
            :meth:`register` more work, land more data and
            :meth:`advance_clock`, and step again; consult
            :attr:`epochs_remaining` to tell the two apart).

        Raises:
            RuntimeError: if called before :meth:`start` or after
                :meth:`finish`.
        """
        if not self._started or self._finished:
            raise RuntimeError(
                "step() needs an open scheduling loop: call start() "
                "first (and not after finish())"
            )
        active = [
            job
            for name, job in self._jobs.items()
            if self._progress[name] < len(job.epochs)
        ]
        # Jobs whose next epoch's data has not landed yet sit the round
        # out as waiting, not starved: they draw no workers and earn no
        # next-round priority (priority is for jobs the *scheduler*
        # skipped, not jobs the *stream* has not caught up to).
        runnable = [
            job
            for job in active
            if job.ready is None or job.ready(self._progress[job.name])
        ]
        if not runnable:
            return False
        alloc = allocate_workers(
            self._width,
            [job.name for job in runnable],
            starved=self._starved,
            demand=self._demand,
            weights={
                job.name: self._effective_weight(job) for job in runnable
            },
            policy=self.policy,
            cursor=self._cursor,
        )
        self._cursor += 1
        stats = []
        for job in runnable:
            workers = alloc[job.name]
            if workers == 0:
                continue
            stats.append(
                self._run_job_epoch(job, self._progress[job.name], workers)
            )
            self._progress[job.name] += 1
            self._demand[job.name] = stats[-1].reader_cpu_seconds
        self._starved = {name for name, w in alloc.items() if w == 0}
        rnd = TierRound(
            index=len(self._rounds),
            width=self._width,
            stats=stats,
            skipped=sorted(self._starved),
        )
        self._rounds.append(rnd)
        self.clock += rnd.modeled_wall_seconds
        if self._autoscaler is not None:
            self._width = self._autoscaler.observe(
                rnd.aggregate, epoch=rnd.index
            )
        return True

    def finish(self) -> TierReport:
        """Close the loop and build the run's report.

        Raises:
            RuntimeError: if called before :meth:`start` or twice.
        """
        if not self._started or self._finished:
            raise RuntimeError(
                "finish() needs an open scheduling loop: call start() "
                "first (and finish() only once)"
            )
        self._finished = True
        self.report = TierReport(
            policy=self.policy,
            rounds=self._rounds,
            scaling=(
                self._autoscaler.trace
                if self._autoscaler is not None
                else None
            ),
        )
        return self.report

    @property
    def round_index(self) -> int:
        """Rounds completed so far — the index the next round will get."""
        return len(self._rounds)

    def epochs_completed(self, name: str) -> int:
        """Epochs the named registered job has finished so far.

        Raises:
            KeyError: if the job is not currently registered.
        """
        if name not in self._jobs:
            raise KeyError(
                f"no registered job named {name!r}; registered: "
                f"{list(self._jobs)}"
            )
        return self._progress.get(name, 0)

    def preempt(self, name: str) -> int:
        """Remove a registered job mid-run; its name frees up again.

        The job simply stops being scheduled — its merged fleet
        measurements stay in :attr:`job_fleets` (a later
        re-registration under the same name keeps merging into them)
        and its completed rounds stay in the report.  The number of
        epochs it completed is recorded in :attr:`preempted` and
        returned, which is what a checkpoint/resume driver needs to
        rebuild the job's remaining epoch plan.

        Args:
            name: the registered job to remove.

        Returns:
            Epochs the job completed before preemption.

        Raises:
            KeyError: if no such job is registered.
            RuntimeError: if the tier already finished.
        """
        if self._finished:
            raise RuntimeError(
                "tier already ran; nothing left to preempt"
            )
        if name not in self._jobs:
            raise KeyError(
                f"cannot preempt unknown job {name!r}; registered: "
                f"{list(self._jobs)}"
            )
        del self._jobs[name]
        done = self._progress.pop(name, 0)
        self._demand.pop(name, None)
        self._starved.discard(name)
        self._lag.pop(name, None)
        self.preempted[name] = done
        return done

    def _effective_weight(self, job: TierJob) -> float:
        """The job's scheduling weight, lag-boosted under a freshness
        SLO: a tracking job whose last observed p99 lag overran the
        target pulls proportionally more of the surplus pool."""
        if self.freshness_slo is None:
            return job.weight
        lag = self._lag.get(job.name)
        if lag is None:
            return job.weight
        return job.weight * max(1.0, lag / self.freshness_slo)

    def _run_job_epoch(
        self, job: TierJob, epoch: int, workers: int
    ) -> JobRoundStat:
        """Lease ``workers`` readers to one job for one epoch."""
        if job.prepare is not None:
            # The job's lifecycle hook: rolling-window retention lands
            # this epoch's partitions and ages out the expired ones.
            job.prepare(epoch)
        faults = (
            self.fault_injector(len(self._rounds), job.name, epoch)
            if self.fault_injector is not None
            else None
        )
        fleet = ReaderFleet(
            workers,
            job.config,
            prefetch_depth=job.prefetch_depth,
            executor=job.executor,
            faults=faults,
            transport=job.transport,
        )
        source = fleet.iter_epoch(
            job.table, list(job.epochs[epoch]), max_batches=job.max_batches
        )
        if job.consume is None:
            for _ in source:
                pass
            busy = 0.0
        else:
            busy = float(job.consume(epoch, source))
            if busy < 0.0:
                raise ValueError(
                    f"job {job.name!r} consume() returned negative "
                    f"trainer-busy seconds ({busy})"
                )
        merged = fleet.report.merged
        self.job_fleets[job.name].merge(fleet.report)
        freshness = None
        if job.track_freshness:
            # The job's share of the round ends when the slower of its
            # leased readers and its trainer does; every batch the
            # round delivered counts as trained at that moment on the
            # tier's modeled clock.
            trained_at = self.clock + max(
                merged.cpu.total / workers, busy
            )
            freshness = FreshnessReport.from_batches(
                merged.batch_event_times, trained_at
            )
            self._lag[job.name] = freshness.p99_lag_seconds
        return JobRoundStat(
            job=job.name,
            workers=workers,
            reader_cpu_seconds=merged.cpu.total,
            trainer_busy_seconds=busy,
            batches=merged.batches,
            streaming=job.streaming,
            read_bytes=merged.read_bytes,
            decoded_bytes=merged.send_bytes,
            expanded_bytes=merged.expanded_bytes,
            bytes_copied=merged.bytes_copied,
            copies_avoided=merged.copies_avoided,
            freshness=freshness,
        )
