"""Row-range sharding of a landed partition across a reader fleet.

A fleet splits one partition's global row order into contiguous
:class:`RowRangeShard` windows, one per worker.  Interior shard
boundaries are aligned to the job's batch size so that concatenating the
workers' batch streams in shard order reproduces the serial reader's
output *bit-identically* — every figure/table reproduction that consumed
serial batches stays valid under any fleet width.  The trailing
``num_rows % batch_size`` rows ride along in the last shard, where the
worker's ``drop_last`` fill drops exactly the rows the serial reader
would have dropped.

:func:`covering_files` then maps a shard window to the subset of a
partition's files it actually touches, so a multiprocessing worker ships
only those files' bytes.

:func:`plan_epoch` extends the plan across *multiple* partitions: one
epoch visits every partition in the order given, sharding each one
batch-aligned exactly as :func:`plan_shards` would, with globally
increasing shard indices and one shared ``max_batches`` budget spent in
partition order.  Batches never span a partition boundary (each
partition's sub-batch tail is dropped where the serial reader would drop
it), so draining an epoch plan in shard order is bit-identical to
scanning the partitions serially one after another.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["RowRangeShard", "plan_shards", "plan_epoch", "covering_files"]


@dataclass(frozen=True)
class RowRangeShard:
    """One worker's contiguous window of a partition's global row order."""

    index: int
    row_start: int  # global row index, inclusive
    row_stop: int  # global row index, exclusive

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("shard index must be non-negative")
        if self.row_start < 0 or self.row_stop < self.row_start:
            raise ValueError(
                f"invalid row range [{self.row_start}, {self.row_stop})"
            )

    @property
    def num_rows(self) -> int:
        """Rows in this shard's window."""
        return self.row_stop - self.row_start


def plan_shards(
    num_rows: int,
    batch_size: int,
    num_shards: int,
    max_batches: int | None = None,
) -> list[RowRangeShard]:
    """Partition ``num_rows`` into at most ``num_shards`` batch-aligned,
    contiguous, disjoint shards covering every row.

    Full batches are spread as evenly as possible (the first
    ``num_batches % num_shards`` shards take one extra).  Shards that
    would receive zero batches are not emitted — with more workers than
    batches the fleet simply runs narrower.  ``max_batches`` caps the
    total batches planned (the pipeline's ``train_batches`` knob), in
    which case rows past the cap are intentionally left uncovered.
    """
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if max_batches is not None and max_batches < 0:
        raise ValueError("max_batches must be non-negative")

    num_batches = num_rows // batch_size
    capped = max_batches is not None and max_batches < num_batches
    if capped:
        num_batches = max_batches
    if num_batches == 0:
        # Not even one full batch: a single shard holds every row and its
        # drop_last fill yields nothing, exactly like the serial reader.
        return [] if capped else [RowRangeShard(0, 0, num_rows)]

    width = min(num_shards, num_batches)
    base, extra = divmod(num_batches, width)
    shards: list[RowRangeShard] = []
    row = 0
    for i in range(width):
        batches_here = base + (1 if i < extra else 0)
        stop = row + batches_here * batch_size
        if i == width - 1 and not capped:
            stop = num_rows  # the tail rides (and is dropped) here
        shards.append(RowRangeShard(i, row, stop))
        row = stop
    return shards


def plan_epoch(
    partition_rows: Sequence[tuple[str, int]],
    batch_size: int,
    num_shards: int,
    max_batches: int | None = None,
) -> list[tuple[str, list[RowRangeShard]]]:
    """Shard one epoch over several partitions, in the order given.

    Returns ``[(partition, shards), ...]`` where each partition's shards
    come from :func:`plan_shards` re-indexed so shard indices increase
    globally across the epoch — the order a fleet's merge loop drains.
    ``max_batches`` is a whole-epoch budget consumed in partition order:
    once it is exhausted, later partitions contribute no shards.

    A partition that cannot fill a single batch contributes no shards
    either: its rows would all be dropped by ``drop_last`` anyway, so
    the batch stream is unchanged and no worker is spawned to scan it.
    """
    remaining = max_batches
    plan: list[tuple[str, list[RowRangeShard]]] = []
    next_index = 0
    for name, num_rows in partition_rows:
        if (remaining is not None and remaining <= 0) or (
            num_rows < batch_size
        ):
            plan.append((name, []))
            continue
        shards = plan_shards(
            num_rows, batch_size, num_shards, max_batches=remaining
        )
        if remaining is not None:
            remaining -= sum(s.num_rows // batch_size for s in shards)
        reindexed = [
            RowRangeShard(next_index + i, s.row_start, s.row_stop)
            for i, s in enumerate(shards)
        ]
        next_index += len(reindexed)
        plan.append((name, reindexed))
    return plan


def covering_files(
    file_row_counts: list[int], row_start: int, row_stop: int
) -> tuple[list[int], int]:
    """Which files a global row window touches.

    Returns ``(file_indices, base_row)`` where ``base_row`` is the global
    row index of the first returned file's first row — the offset that
    converts the shard's global window into the worker's local one.  An
    empty window returns no files.
    """
    if row_start < 0 or row_stop < row_start:
        raise ValueError(f"invalid row range [{row_start}, {row_stop})")
    if row_start == row_stop:
        return [], 0
    indices: list[int] = []
    base_row = 0
    pos = 0
    for idx, rows in enumerate(file_row_counts):
        if rows < 0:
            raise ValueError("file row counts must be non-negative")
        file_start, file_stop = pos, pos + rows
        pos = file_stop
        if file_stop <= row_start or file_start >= row_stop:
            continue
        if not indices:
            base_row = file_start
        indices.append(idx)
    return indices, base_row
