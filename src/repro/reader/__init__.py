"""Reader tier: Fill -> Convert (O3) -> Process (O4) -> trainers."""

from .autoscale import ReaderAutoscaler
from .batch import Batch
from .config import DataLoaderConfig
from .convert import ConvertStats, convert_rows
from .costmodel import ReaderCostModel
from .fill import FillStats, fill_batches
from .fleet import FleetFaults, FleetReport, ReaderFleet
from .node import ReaderNode, ReaderReport
from .preprocess import (
    TRANSFORM_REGISTRY,
    ClampValues,
    DedupPreprocWrapper,
    HashModulo,
    ProcessStats,
    SparseTransform,
    TruncateLength,
    apply_transforms,
)
from .shard import RowRangeShard, covering_files, plan_epoch, plan_shards
from .tier import ReaderTier, TierPlan, readers_required
from .tier_scheduler import SharedReaderTier, TierJob, allocate_workers

__all__ = [
    "Batch",
    "DataLoaderConfig",
    "convert_rows",
    "ConvertStats",
    "ReaderCostModel",
    "fill_batches",
    "FillStats",
    "FleetFaults",
    "FleetReport",
    "ReaderAutoscaler",
    "ReaderFleet",
    "ReaderNode",
    "ReaderReport",
    "RowRangeShard",
    "covering_files",
    "plan_epoch",
    "plan_shards",
    "SparseTransform",
    "HashModulo",
    "ClampValues",
    "TruncateLength",
    "DedupPreprocWrapper",
    "ProcessStats",
    "TRANSFORM_REGISTRY",
    "apply_transforms",
    "readers_required",
    "TierPlan",
    "ReaderTier",
    "SharedReaderTier",
    "TierJob",
    "allocate_workers",
]
