"""Reader-tier provisioning and execution (§2.1, §6.3).

The number of readers per job is scaled to meet the trainers' ingestion
bandwidth; faster readers therefore directly reduce fleet size ("reducing
the number of readers needed for each training job by the same amount",
§6.1).  :class:`ReaderTier` runs a fleet of stateless
:class:`~repro.reader.node.ReaderNode` instances over a partition's file
splits, as the deployed DPP tier does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .batch import Batch
from .config import DataLoaderConfig
from .costmodel import ReaderCostModel
from .node import ReaderNode, ReaderReport

__all__ = ["readers_required", "TierPlan", "ReaderTier"]


@dataclass(frozen=True)
class TierPlan:
    """Provisioning outcome for one training job."""

    trainer_samples_per_s: float
    reader_samples_per_s: float
    num_readers: int


def readers_required(
    trainer_samples_per_s: float,
    reader_samples_per_s: float,
    headroom: float = 1.1,
) -> TierPlan:
    """Readers needed so trainers never data-stall.

    ``headroom`` over-provisions slightly, as the deployed system does to
    "avoid data stalls in all configurations" (§6.1).
    """
    if trainer_samples_per_s < 0 or reader_samples_per_s <= 0:
        raise ValueError("throughputs must be positive")
    if headroom < 1.0:
        raise ValueError("headroom must be >= 1.0")
    n = math.ceil(trainer_samples_per_s * headroom / reader_samples_per_s)
    return TierPlan(
        trainer_samples_per_s=trainer_samples_per_s,
        reader_samples_per_s=reader_samples_per_s,
        num_readers=max(n, 1),
    )


class ReaderTier:
    """A fleet of stateless readers splitting one partition's files.

    File splits are assigned round-robin; each node runs the full Fill ->
    Convert -> Process pipeline over its splits.  The tier-level report
    aggregates per-node CPU time and bytes, and the modeled wall-clock is
    the slowest node (readers run in parallel).
    """

    def __init__(
        self,
        num_readers: int,
        config: DataLoaderConfig,
        cost_model: ReaderCostModel | None = None,
    ):
        if num_readers <= 0:
            raise ValueError("num_readers must be positive")
        self.nodes = [
            ReaderNode(config, cost_model) for _ in range(num_readers)
        ]

    def run(self, file_readers: list) -> list[Batch]:
        """Process every file split; returns all batches (node order)."""
        batches: list[Batch] = []
        for i, node in enumerate(self.nodes):
            splits = file_readers[i :: len(self.nodes)]
            if splits:
                batches.extend(node.run_all(splits))
        return batches

    @property
    def report(self) -> ReaderReport:
        """Every node's measurements merged into one tier report."""
        total = ReaderReport()
        for node in self.nodes:
            total.merge(node.report)
        return total

    @property
    def wall_clock_seconds(self) -> float:
        """Modeled tier latency: the slowest node's CPU time."""
        return max((n.report.cpu.total for n in self.nodes), default=0.0)
