"""Fill: fetch file splits from Tectonic and decode rows (§2.1, Fig 5).

A reader fills batches by reading stripes out of DWRF files, paying for
(1) fetching/decrypting/decompressing compressed bytes and (2) decoding
values into rows.  Both work inputs are measured by the underlying
:class:`~repro.storage.dwrf.DwrfReader` counters.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..datagen.session import Sample
from ..storage.dwrf import DwrfReader

__all__ = ["FillStats", "fill_batches"]


@dataclass
class FillStats:
    """Work units for the fill-phase cost model."""

    compressed_bytes: int = 0
    raw_bytes: int = 0
    values_decoded: int = 0

    def merge(self, other: "FillStats") -> None:
        """Fold another batch's fill work units into this one."""
        self.compressed_bytes += other.compressed_bytes
        self.raw_bytes += other.raw_bytes
        self.values_decoded += other.values_decoded


def fill_batches(
    readers: list[DwrfReader],
    batch_size: int,
    drop_last: bool = True,
    row_start: int = 0,
    row_stop: int | None = None,
) -> Iterator[tuple[list[Sample], FillStats]]:
    """Stream fixed-size batches of rows off a partition's file readers.

    Stripes are read lazily; each yielded batch carries the *incremental*
    fill work (so a node can attribute CPU time per batch).

    ``row_start``/``row_stop`` restrict filling to a window of the global
    row order across ``readers`` — how one fleet shard scans only its
    slice of a partition.  Stripes entirely outside the window are
    skipped without being fetched or decoded (their headers carry the row
    counts), so a shard pays fill cost only for stripes it touches; edge
    stripes are decoded whole and sliced, exactly as a real columnar
    reader would.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if row_start < 0:
        raise ValueError("row_start must be non-negative")
    if row_stop is not None and row_stop < row_start:
        raise ValueError("row_stop must be >= row_start")
    pending: list[Sample] = []
    prev = FillStats()

    def snapshot() -> FillStats:
        """Fill work accumulated since the previous snapshot."""
        cur = FillStats(
            compressed_bytes=sum(r.bytes_read for r in readers),
            raw_bytes=sum(r.raw_bytes for r in readers),
            values_decoded=sum(r.values_decoded for r in readers),
        )
        delta = FillStats(
            compressed_bytes=cur.compressed_bytes - prev.compressed_bytes,
            raw_bytes=cur.raw_bytes - prev.raw_bytes,
            values_decoded=cur.values_decoded - prev.values_decoded,
        )
        prev.compressed_bytes = cur.compressed_bytes
        prev.raw_bytes = cur.raw_bytes
        prev.values_decoded = cur.values_decoded
        return delta

    pos = 0  # global row index of the next unread stripe's first row
    done = False
    for reader in readers:
        if done:
            break
        for stripe_idx in range(reader.num_stripes):
            stripe_rows = reader.stripe_num_rows(stripe_idx)
            lo = max(row_start - pos, 0)
            hi = stripe_rows if row_stop is None else min(
                stripe_rows, row_stop - pos
            )
            pos += stripe_rows
            if hi <= 0:  # stripe is entirely past the window
                done = True
                break
            if lo >= stripe_rows:  # stripe is entirely before the window
                continue
            rows = reader.read_stripe(stripe_idx)
            pending.extend(rows[lo:hi])
            while len(pending) >= batch_size:
                batch, pending = pending[:batch_size], pending[batch_size:]
                yield batch, snapshot()
    if pending and not drop_last:
        yield pending, snapshot()
