"""Fill: fetch file splits from Tectonic and decode rows (§2.1, Fig 5).

A reader fills batches by reading stripes out of DWRF files, paying for
(1) fetching/decrypting/decompressing compressed bytes and (2) decoding
values into rows.  Both work inputs are measured by the underlying
:class:`~repro.storage.dwrf.DwrfReader` counters.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..datagen.session import Sample
from ..storage.dwrf import DwrfReader

__all__ = ["FillStats", "fill_batches"]


@dataclass
class FillStats:
    """Work units for the fill-phase cost model."""

    compressed_bytes: int = 0
    raw_bytes: int = 0
    values_decoded: int = 0

    def merge(self, other: "FillStats") -> None:
        self.compressed_bytes += other.compressed_bytes
        self.raw_bytes += other.raw_bytes
        self.values_decoded += other.values_decoded


def fill_batches(
    readers: list[DwrfReader],
    batch_size: int,
    drop_last: bool = True,
) -> Iterator[tuple[list[Sample], FillStats]]:
    """Stream fixed-size batches of rows off a partition's file readers.

    Stripes are read lazily; each yielded batch carries the *incremental*
    fill work (so a node can attribute CPU time per batch).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    pending: list[Sample] = []
    prev = FillStats()

    def snapshot() -> FillStats:
        cur = FillStats(
            compressed_bytes=sum(r.bytes_read for r in readers),
            raw_bytes=sum(r.raw_bytes for r in readers),
            values_decoded=sum(r.values_decoded for r in readers),
        )
        delta = FillStats(
            compressed_bytes=cur.compressed_bytes - prev.compressed_bytes,
            raw_bytes=cur.raw_bytes - prev.raw_bytes,
            values_decoded=cur.values_decoded - prev.values_decoded,
        )
        prev.compressed_bytes = cur.compressed_bytes
        prev.raw_bytes = cur.raw_bytes
        prev.values_decoded = cur.values_decoded
        return delta

    for reader in readers:
        for stripe_idx in range(reader.num_stripes):
            pending.extend(reader.read_stripe(stripe_idx))
            while len(pending) >= batch_size:
                batch, pending = pending[:batch_size], pending[batch_size:]
                yield batch, snapshot()
    if pending and not drop_last:
        yield pending, snapshot()
