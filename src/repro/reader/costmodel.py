"""Reader CPU cost model (Fig 10's phases).

The reader pipeline's *work inputs* (bytes fetched, bytes decompressed,
values decoded/hashed/copied/processed) are measured from real data; this
model converts them to CPU seconds with per-unit constants.  Constants
are calibrated so the **baseline** phase mix matches Fig 10: fills
dominate (fetch + decrypt + decompress + decode), convert is small,
process is the remainder.  Only ratios matter — absolute seconds are
arbitrary simulation units.

Calibration notes (§6.3):

* Fill work splits into compressed-byte-proportional costs (network
  fetch, decrypt, decompress) and decoded-value costs.  O2's compression
  gains shrink the former, reproducing the paper's 33–50% fill-time cuts.
* Convert adds a hash per value for dedup groups (O3's overhead, +11–37%
  convert time) but copies only unique values.
* Process costs scale with values actually transformed; IKJT inputs
  shrink that by the dedupe factor (O4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReaderCostModel", "TransportSpec", "TRANSPORT_MODES"]

#: the batch-transport modes a fleet can hand batches over with
TRANSPORT_MODES = ("copy", "shm")


@dataclass(frozen=True)
class TransportSpec:
    """How batches cross the worker→trainer boundary.

    ``copy`` (the default, and what the ``process`` executor actually
    does) serializes every batch through the prefetch queue, so the
    consumer pays a modeled per-batch + per-byte handoff cost
    (:meth:`ReaderCostModel.transport_seconds`) and every wire byte
    counts as ``bytes_copied``.  ``shm`` models a shared-memory /
    zero-copy handoff: the same wire bytes count as ``copies_avoided``
    and the transport charge is zero.  The batch *stream* is
    bit-identical either way — only the accounting differs, which is
    what makes shm-vs-copy a pure A/B on the cost model.
    """

    mode: str = "copy"

    def __post_init__(self) -> None:
        if self.mode not in TRANSPORT_MODES:
            raise ValueError(
                f"transport mode must be one of {TRANSPORT_MODES}, "
                f"got {self.mode!r}"
            )

    @property
    def charges(self) -> bool:
        """Whether this transport pays the serialize/copy cost."""
        return self.mode == "copy"

    @classmethod
    def coerce(cls, value: "TransportSpec | str") -> "TransportSpec":
        """Accept a mode string (grid/CLI-friendly) or a spec as-is."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(
            f"transport must be a TransportSpec or mode string, "
            f"got {type(value).__name__}"
        )


@dataclass(frozen=True)
class ReaderCostModel:
    """Per-unit CPU costs, in seconds."""

    # fill: compressed-byte proportional (fetch + decrypt + decompress).
    # Weighted so compressed-byte work is ~2/3 of baseline fill time: then
    # O2's ~3.3x compression gain cuts fill CPU by ~50%, Fig 10's RM1
    # number.
    fill_per_compressed_byte: float = 250e-9
    # fill: per decoded value (byte decoding into rows)
    fill_per_value: float = 120e-9
    # convert: copying one value into a tensor
    convert_copy_per_value: float = 18e-9
    # convert: hashing one value for duplicate detection (O3 overhead)
    convert_hash_per_value: float = 22e-9
    # process: applying user transforms to one value
    process_per_value: float = 150e-9
    # process: per-row fixed overhead (TorchScript dispatch etc.)
    process_per_row: float = 40e-9
    # transport (copy mode only): serializing one wire byte through the
    # worker->trainer prefetch queue.  Deliberately cheap per byte —
    # the copy is memcpy-speed — but it is *serial at the consumer*, so
    # it is the term that floors wide-fleet scaling.
    transport_copy_per_byte: float = 4e-9
    # transport (copy mode only): fixed per-batch handoff overhead
    # (pickling dispatch, queue bookkeeping, tensor reassembly)
    transport_per_batch: float = 150e-6

    def fill_seconds(self, compressed_bytes: int, values_decoded: int) -> float:
        """Fill CPU seconds: fetch/decrypt/decompress + value decode."""
        return (
            compressed_bytes * self.fill_per_compressed_byte
            + values_decoded * self.fill_per_value
        )

    def convert_seconds(self, values_copied: int, values_hashed: int) -> float:
        """Convert CPU seconds: tensor copies + dedup hashing (O3)."""
        return (
            values_copied * self.convert_copy_per_value
            + values_hashed * self.convert_hash_per_value
        )

    def process_seconds(self, values_processed: int, rows_processed: int) -> float:
        """Process CPU seconds: per-value transforms + per-row dispatch."""
        return (
            values_processed * self.process_per_value
            + rows_processed * self.process_per_row
        )

    def transport_seconds(self, wire_bytes: int, batches: int = 1) -> float:
        """Consumer-side handoff seconds for ``batches`` copied batches.

        Charged only by the ``copy`` transport (see
        :class:`TransportSpec`); the shm path's charge is zero.
        """
        return (
            batches * self.transport_per_batch
            + wire_bytes * self.transport_copy_per_byte
        )
