"""Reader CPU cost model (Fig 10's phases).

The reader pipeline's *work inputs* (bytes fetched, bytes decompressed,
values decoded/hashed/copied/processed) are measured from real data; this
model converts them to CPU seconds with per-unit constants.  Constants
are calibrated so the **baseline** phase mix matches Fig 10: fills
dominate (fetch + decrypt + decompress + decode), convert is small,
process is the remainder.  Only ratios matter — absolute seconds are
arbitrary simulation units.

Calibration notes (§6.3):

* Fill work splits into compressed-byte-proportional costs (network
  fetch, decrypt, decompress) and decoded-value costs.  O2's compression
  gains shrink the former, reproducing the paper's 33–50% fill-time cuts.
* Convert adds a hash per value for dedup groups (O3's overhead, +11–37%
  convert time) but copies only unique values.
* Process costs scale with values actually transformed; IKJT inputs
  shrink that by the dedupe factor (O4).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReaderCostModel"]


@dataclass(frozen=True)
class ReaderCostModel:
    """Per-unit CPU costs, in seconds."""

    # fill: compressed-byte proportional (fetch + decrypt + decompress).
    # Weighted so compressed-byte work is ~2/3 of baseline fill time: then
    # O2's ~3.3x compression gain cuts fill CPU by ~50%, Fig 10's RM1
    # number.
    fill_per_compressed_byte: float = 250e-9
    # fill: per decoded value (byte decoding into rows)
    fill_per_value: float = 120e-9
    # convert: copying one value into a tensor
    convert_copy_per_value: float = 18e-9
    # convert: hashing one value for duplicate detection (O3 overhead)
    convert_hash_per_value: float = 22e-9
    # process: applying user transforms to one value
    process_per_value: float = 150e-9
    # process: per-row fixed overhead (TorchScript dispatch etc.)
    process_per_row: float = 40e-9

    def fill_seconds(self, compressed_bytes: int, values_decoded: int) -> float:
        """Fill CPU seconds: fetch/decrypt/decompress + value decode."""
        return (
            compressed_bytes * self.fill_per_compressed_byte
            + values_decoded * self.fill_per_value
        )

    def convert_seconds(self, values_copied: int, values_hashed: int) -> float:
        """Convert CPU seconds: tensor copies + dedup hashing (O3)."""
        return (
            values_copied * self.convert_copy_per_value
            + values_hashed * self.convert_hash_per_value
        )

    def process_seconds(self, values_processed: int, rows_processed: int) -> float:
        """Process CPU seconds: per-value transforms + per-row dispatch."""
        return (
            values_processed * self.process_per_value
            + rows_processed * self.process_per_row
        )
