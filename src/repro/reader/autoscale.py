"""Adaptive reader-fleet sizing from observed overlap reports (§2.1).

The deployed platform sizes its reader tier so trainer steps never stall
on decode: too few readers and the trainers starve (reader-stall), too
many and reader machines idle against the trainers' bounded ingestion
(trainer-stall upstream).  PR 2 gave the pipeline the *measurement* —
per-epoch :class:`~repro.metrics.OverlapReport`\\ s attribute wall-clock
to reader-stall vs trainer-stall — and :class:`ReaderAutoscaler` is the
feedback controller that *acts* on it, resizing the fleet between
epochs:

* **grow** while ``reader_stall_fraction`` exceeds the target band —
  proportionally, sizing the next width so the modeled reader wall
  matches the trainer's step time;
* **shrink** when ``trainer_stall_fraction`` dominates and the readers
  provably idle (producer-side queue wait), but only after
  ``shrink_patience`` consecutive such observations — the hysteresis
  that keeps one noisy epoch from flapping the fleet;
* **hold** inside the band, and at the ``min_readers``/``max_readers``
  bounds.

Every step is recorded in a
:class:`~repro.metrics.scaling.ScalingTrace` (observed fractions ->
action -> new width) for figure-style reproduction.  Fed *modeled*
overlap reports (:meth:`~repro.metrics.OverlapReport.modeled`, built
from the reader cost model and the trainer's modeled step times), the
controller's decisions are bit-reproducible across runs — which is how
``run_pipeline(autoscale=True)`` stays deterministic under the
in-process executor.
"""

from __future__ import annotations

import math

from ..metrics.breakdown import QueueWaitBreakdown
from ..metrics.overlap import OverlapReport
from ..metrics.scaling import ScalingDecision, ScalingTrace

__all__ = ["ReaderAutoscaler"]


class ReaderAutoscaler:
    """Feedback controller that resizes a reader fleet between epochs.

    One instance tracks one training run: call :meth:`observe` with each
    epoch's :class:`~repro.metrics.OverlapReport` and run the next epoch
    at the returned width.  The full decision history is in
    :attr:`trace`.
    """

    def __init__(
        self,
        num_readers: int,
        target_stall: float = 0.10,
        min_readers: int = 1,
        max_readers: int = 32,
        shrink_patience: int = 2,
        shrink_trainer_stall: float = 0.75,
        ewma_alpha: float | None = None,
    ):
        """Configure the controller.

        Args:
            num_readers: initial fleet width (clamped into bounds).
            target_stall: upper edge of the acceptable
                ``reader_stall_fraction`` band; the controller grows the
                fleet while observations exceed it.
            min_readers: smallest width the controller will set.
            max_readers: largest width the controller will set.
            shrink_patience: consecutive shrink-worthy observations
                required before the fleet actually shrinks (hysteresis).
            shrink_trainer_stall: ``trainer_stall_fraction`` above which
                an epoch counts as shrink-worthy (the trainer held the
                pipeline and readers idled).
            ewma_alpha: smoothing factor for the observed signals.
                When set, the control law steers on exponentially
                weighted moving averages of the measured wall,
                reader-stall, trainer-busy, and producer queue-wait
                seconds (``new = alpha * observed + (1 - alpha) *
                old``) instead of each epoch's raw report, damping
                single-epoch noise the same way the shrink hysteresis
                damps flapping.  ``None`` (the default) steers on raw
                observations.  Smoothing is pure arithmetic over
                already-deterministic inputs, so decisions stay
                bit-reproducible.

        Raises:
            ValueError: if any bound or threshold is out of range.
        """
        if min_readers <= 0:
            raise ValueError(
                f"min_readers must be positive, got {min_readers}"
            )
        if max_readers < min_readers:
            raise ValueError(
                f"max_readers ({max_readers}) must be >= "
                f"min_readers ({min_readers})"
            )
        if num_readers <= 0:
            raise ValueError(
                f"num_readers must be positive, got {num_readers}"
            )
        if not 0.0 < target_stall < 1.0:
            raise ValueError(
                f"target_stall must be in (0, 1), got {target_stall}"
            )
        if not 0.0 < shrink_trainer_stall <= 1.0:
            raise ValueError(
                "shrink_trainer_stall must be in (0, 1], "
                f"got {shrink_trainer_stall}"
            )
        if shrink_patience <= 0:
            raise ValueError(
                f"shrink_patience must be positive, got {shrink_patience}"
            )
        if ewma_alpha is not None and not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self.ewma_alpha = ewma_alpha
        self._ewma: dict[str, float] | None = None
        self.target_stall = target_stall
        self.min_readers = min_readers
        self.max_readers = max_readers
        self.shrink_patience = shrink_patience
        self.shrink_trainer_stall = shrink_trainer_stall
        self.num_readers = min(max(num_readers, min_readers), max_readers)
        self.trace = ScalingTrace(target_stall=target_stall)
        self._shrink_streak = 0

    # -- controller ---------------------------------------------------------

    def observe(
        self, overlap: OverlapReport, epoch: int | None = None
    ) -> int:
        """Consume one epoch's overlap report; return the next width.

        Args:
            overlap: the epoch's wall-clock attribution (measured or,
                for reproducible decisions, modeled via
                :meth:`~repro.metrics.OverlapReport.modeled`).
            epoch: 0-based epoch index for the trace; defaults to the
                number of decisions already recorded.

        Returns:
            The fleet width (``num_readers``) the next epoch should run
            with.
        """
        if epoch is None:
            epoch = len(self.trace.decisions)
        width = self.num_readers
        signal = self._smooth(overlap)
        rsf = signal.reader_stall_fraction
        tsf = signal.trainer_stall_fraction

        action, new_width, reason = self._decide(signal, width, rsf, tsf)
        self.num_readers = new_width
        self.trace.record(
            ScalingDecision(
                epoch=epoch,
                reader_stall_fraction=rsf,
                trainer_stall_fraction=tsf,
                width_before=width,
                action=action,
                width_after=new_width,
                reason=reason,
            )
        )
        return new_width

    def _smooth(self, overlap: OverlapReport) -> OverlapReport:
        """The control signal: the raw report, or — with ``ewma_alpha``
        — a synthetic report over the smoothed measurements (the
        fractions then derive from the smoothed seconds, so they stay
        mutually consistent)."""
        if self.ewma_alpha is None:
            return overlap
        raw = {
            "wall": overlap.wall_seconds,
            "stall": overlap.reader_stall_seconds,
            "busy": overlap.trainer_busy_seconds,
            "put_wait": overlap.queue.put_wait,
        }
        if self._ewma is None:
            self._ewma = dict(raw)
        else:
            a = self.ewma_alpha
            self._ewma = {
                k: a * raw[k] + (1.0 - a) * self._ewma[k] for k in raw
            }
        return OverlapReport(
            wall_seconds=self._ewma["wall"],
            reader_stall_seconds=self._ewma["stall"],
            trainer_busy_seconds=self._ewma["busy"],
            queue=QueueWaitBreakdown(put_wait=self._ewma["put_wait"]),
        )

    def _decide(
        self, overlap: OverlapReport, width: int, rsf: float, tsf: float
    ) -> tuple[str, int, str]:
        """The control law: (action, new_width, reason) for one epoch."""
        trainer_busy = overlap.trainer_busy_seconds
        if overlap.wall_seconds <= 0.0 or trainer_busy <= 0.0:
            self._shrink_streak = 0
            return "hold", width, "no trainer signal this epoch"

        # Reconstruct the reader tier's wall time from the attribution:
        # reader-bound epochs expose it as trainer_busy + reader_stall;
        # trainer-bound epochs hide it behind producer-side queue wait.
        reader_wall = max(
            0.0,
            trainer_busy
            + overlap.reader_stall_seconds
            - overlap.queue.put_wait,
        )
        # Proportional set-point: reader work scales ~1/width, so this
        # is the width at which reader wall ~= trainer step time.
        proposed = math.ceil(width * reader_wall / trainer_busy)
        proposed = min(max(proposed, self.min_readers), self.max_readers)

        if rsf > self.target_stall:
            self._shrink_streak = 0
            new_width = min(max(width + 1, proposed), self.max_readers)
            if new_width <= width:
                return (
                    "hold",
                    width,
                    f"reader-stall {rsf:.2f} > target "
                    f"{self.target_stall:.2f} but already at "
                    f"max_readers={self.max_readers}",
                )
            return (
                "grow",
                new_width,
                f"reader-stall {rsf:.2f} > target {self.target_stall:.2f}",
            )

        if tsf >= self.shrink_trainer_stall and proposed < width:
            self._shrink_streak += 1
            if self._shrink_streak >= self.shrink_patience:
                self._shrink_streak = 0
                return (
                    "shrink",
                    max(proposed, self.min_readers),
                    f"trainer-stall {tsf:.2f} dominated for "
                    f"{self.shrink_patience} consecutive epochs",
                )
            return (
                "hold",
                width,
                f"trainer-stall {tsf:.2f} dominates; waiting out "
                f"hysteresis ({self._shrink_streak}/"
                f"{self.shrink_patience})",
            )

        self._shrink_streak = 0
        return (
            "hold",
            width,
            f"reader-stall {rsf:.2f} within target "
            f"{self.target_stall:.2f}",
        )
