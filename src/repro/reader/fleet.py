"""A sharded fleet of reader workers feeding trainers (Fig 5, §2.1).

The deployed reader tier is a *fleet*: N stateless readers each scan a
slice of a landed partition concurrently and stream preprocessed batches
to trainers.  :class:`ReaderFleet` reproduces that shape over one
Hive/DWRF partition:

* the partition's global row order is cut into batch-aligned
  :class:`~repro.reader.shard.RowRangeShard` windows (one per worker);
* each worker runs the full Fill -> Convert -> Process
  :class:`~repro.reader.node.ReaderNode` pipeline over its window;
* finished batches stream back through **bounded prefetch queues**
  (default depth 2 — double buffering: a worker decodes its next batch
  while the previous one is in flight), and the merge loop emits them in
  shard order, so the fleet's batch stream is **bit-identical** to the
  serial reader's regardless of worker count or scheduling;
* per-worker :class:`~repro.reader.node.ReaderReport`\\ s plus queue-wait
  accounting merge into one :class:`FleetReport`.

:meth:`ReaderFleet.iter_epoch` runs the same machinery over a
*multi-partition epoch*: :func:`~repro.reader.shard.plan_epoch` shards
every partition in order, and the fleet drains the global shard sequence
keeping at most ``num_readers`` worker processes in flight (workers for
later shards — including later partitions' — launch as earlier shards
finish, so prefetch overlaps partition boundaries).  Output order stays
bit-identical to scanning the partitions serially.  Both entry points
return lazy iterators: a consumer that trains while iterating overlaps
reader decode with trainer steps, which is what the pipeline's streaming
mode does.

Three executors share this plan.  ``"process"`` runs workers as real
``multiprocessing`` processes — actual CPU parallelism, the production
shape, and the authority on *measured* wall/queue times.  ``"inprocess"``
runs the same shards sequentially in the calling process —
deterministic, dependency-free, what tests and ``num_readers=1`` use.
``"async"`` is a deterministic coroutine scheduler: it interleaves every
shard worker in one process on a virtual clock, replaying the bounded
prefetch queues (producers block on full queues, the consumer drains in
shard order) as a discrete-event simulation — so its
:class:`~repro.metrics.breakdown.QueueWaitBreakdown` is fully *modeled*
(bit-reproducible) and a width-64 fleet runs in tier-1 time.  ``"auto"``
picks between process and in-process, falling back to in-process if the
platform cannot spawn processes.

Batches cross the worker→trainer boundary under a
:class:`~repro.reader.costmodel.TransportSpec`: the default ``copy``
transport charges a modeled per-batch serialize/copy cost
(``queue.transport``, ``bytes_copied``); ``shm`` models a zero-copy
shared-memory handoff (zero charge, ``copies_avoided``).  The stream is
bit-identical either way.

Production reader workers also *fail*: processes crash mid-shard and get
respawned, and overloaded hosts straggle.  :class:`FleetFaults` injects
both deterministically — a crashed shard is re-scanned from the start by
its respawned worker (batch content unchanged; the lost partial scan is
charged as wasted CPU), and a straggler shard's modeled CPU is scaled by
its slowdown factor.  Fault injection runs on a deterministic executor —
in-process, or async when requested (where stragglers additionally slow
the virtual clock) — so every fault's effect on the modeled accounting
is bit-reproducible, which is what lets the scenario simulator
(``repro.sim``) replay chaos runs exactly, now at width 64+.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_lib
import time
from collections import deque
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from ..metrics.breakdown import QueueWaitBreakdown
from ..storage.dwrf import DwrfReader
from ..storage.hive import HiveTable
from .batch import Batch
from .config import DataLoaderConfig
from .costmodel import ReaderCostModel, TransportSpec
from .node import ReaderNode, ReaderReport
from .shard import RowRangeShard, covering_files, plan_epoch

__all__ = ["FleetFaults", "FleetReport", "ReaderFleet"]

_EXECUTORS = ("auto", "process", "inprocess", "async")
_DONE = "__shard_done__"
_ERROR = "__shard_error__"
_WORKER_JOIN_TIMEOUT = 30.0


@dataclass(frozen=True)
class FleetFaults:
    """Deterministic fault injection for one fleet scan.

    Shards are addressed by their *position* in the scan's global shard
    sequence; positions are reduced modulo the scan's shard count, so a
    seeded fault plan stays valid for any epoch geometry (a plan naming
    shard 7 of a 3-shard scan crashes shard 1).

    Attributes:
        crashed_shards: shard positions whose worker crashes mid-scan
            and is respawned.  The respawn re-scans the whole shard, so
            batch content is unchanged; the crashed attempt's partial
            work (``lost_fraction`` of the shard's CPU) is charged as
            wasted CPU on top of the re-scan.
        straggler_factors: ``{shard position: slowdown factor}`` — the
            shard's modeled CPU is multiplied by the factor (> 1.0 is a
            slow worker).  Positions colliding after the modulo keep
            the largest factor.
        lost_fraction: fraction of a crashed shard's CPU spent before
            the crash (wasted, then re-done by the respawn).
    """

    crashed_shards: tuple[int, ...] = ()
    straggler_factors: Mapping[int, float] = field(default_factory=dict)
    lost_fraction: float = 0.5

    def __post_init__(self) -> None:
        if any(pos < 0 for pos in self.crashed_shards):
            raise ValueError(
                f"crashed shard positions must be non-negative, got "
                f"{self.crashed_shards}"
            )
        bad = {
            pos: f
            for pos, f in self.straggler_factors.items()
            if pos < 0 or not f >= 1.0
        }
        if bad:
            raise ValueError(
                "straggler factors need non-negative positions and "
                f"factors >= 1.0, got {bad}"
            )
        if not 0.0 <= self.lost_fraction <= 1.0:
            raise ValueError(
                f"lost_fraction must be in [0, 1], got {self.lost_fraction}"
            )

    def __bool__(self) -> bool:
        """True when any fault is actually scheduled."""
        return bool(self.crashed_shards) or bool(self.straggler_factors)

    def resolved(self, num_shards: int) -> tuple[set[int], dict[int, float]]:
        """Map positions onto a concrete scan's shard count.

        Args:
            num_shards: shards in the scan (must be positive for a
                non-empty fault set).

        Returns:
            ``(crashed positions, {position: factor})`` with every
            position in ``range(num_shards)``.
        """
        if num_shards <= 0:
            return set(), {}
        crashed = {pos % num_shards for pos in self.crashed_shards}
        factors: dict[int, float] = {}
        for pos, factor in sorted(self.straggler_factors.items()):
            key = pos % num_shards
            factors[key] = max(factors.get(key, 1.0), factor)
        return crashed, factors


@dataclass
class FleetReport:
    """Merged measurements for one fleet run."""

    workers: list[ReaderReport] = field(default_factory=list)
    queue: QueueWaitBreakdown = field(default_factory=QueueWaitBreakdown)
    executor_used: str = "inprocess"
    #: why a requested "process" run degraded to "inprocess-fallback"
    #: (the triggering exception's repr); empty when no fallback happened
    fallback_reason: str = ""
    num_shards: int = 0
    wall_seconds: float = 0.0  # measured end-to-end run() time
    #: worker crashes injected (each shard re-scanned by a respawn)
    crashes: int = 0
    #: shards that ran under an injected straggler slowdown
    straggler_shards: int = 0
    #: modeled CPU seconds lost to crashed attempts (re-done by respawns)
    wasted_cpu_seconds: float = 0.0

    @property
    def merged(self) -> ReaderReport:
        """All workers folded into one tier-level ReaderReport."""
        total = ReaderReport()
        for rep in self.workers:
            total.merge(rep)
        return total

    @property
    def modeled_wall_seconds(self) -> float:
        """Modeled fleet latency: the slowest worker's CPU time (workers
        run in parallel, so the fleet finishes with its straggler)."""
        return max((rep.cpu.total for rep in self.workers), default=0.0)

    @property
    def modeled_samples_per_second(self) -> float:
        """Fleet throughput against the modeled parallel wall-clock."""
        wall = self.modeled_wall_seconds
        if wall == 0:
            return 0.0
        return self.merged.samples / wall

    @property
    def modeled_delivered_wall_seconds(self) -> float:
        """Modeled latency to *deliver* every batch to the consumer.

        Decode is parallel (:attr:`modeled_wall_seconds` shrinks with
        width) but the copy transport's per-batch handoff is serial at
        the consumer (``queue.transport`` is width-independent), so
        delivery finishes no earlier than either term.  This is the
        Amdahl floor that bends wide-fleet scaling — and what the shm
        transport removes.
        """
        return max(self.modeled_wall_seconds, self.queue.transport)

    @property
    def modeled_delivered_samples_per_second(self) -> float:
        """Fleet throughput against the delivered (transport-floored)
        wall-clock."""
        wall = self.modeled_delivered_wall_seconds
        if wall == 0:
            return 0.0
        return self.merged.samples / wall

    def balanced_wall_seconds(self, width: int) -> float:
        """Aggregate reader CPU spread evenly across ``width`` workers.

        The capacity view of the fleet's latency: unlike
        :attr:`modeled_wall_seconds` (the straggler shard), this ignores
        shard-granularity imbalance, which makes it the right signal for
        *sizing* the tier — it is what the autoscaler steers on.

        Args:
            width: fleet width to spread the work across.

        Returns:
            Modeled wall seconds for a perfectly balanced fleet.

        Raises:
            ValueError: if ``width`` is not positive.
        """
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        return self.merged.cpu.total / width

    def merge(self, other: "FleetReport") -> None:
        """Fold another run's measurements in (epoch aggregation)."""
        was_empty = not self.workers and self.num_shards == 0
        if was_empty or self.executor_used == other.executor_used:
            self.executor_used = other.executor_used
        else:
            self.executor_used = "mixed"
        if not self.fallback_reason:
            self.fallback_reason = other.fallback_reason
        self.workers.extend(other.workers)
        self.queue.merge(other.queue)
        self.num_shards += other.num_shards
        self.wall_seconds += other.wall_seconds
        self.crashes += other.crashes
        self.straggler_shards += other.straggler_shards
        self.wasted_cpu_seconds += other.wasted_cpu_seconds

    def as_dict(self) -> dict:
        """Serialize to a plain JSON-ready dict (the run-store form).

        Per-worker reports serialize individually so the stored form
        preserves shard-level imbalance, not just the merged rollup.
        """
        return {
            "executor_used": self.executor_used,
            "fallback_reason": self.fallback_reason,
            "num_workers": len(self.workers),
            "num_shards": self.num_shards,
            "workers": [w.as_dict() for w in self.workers],
            "merged": self.merged.as_dict(),
            "queue": self.queue.as_dict(),
            "modeled_wall_seconds": self.modeled_wall_seconds,
            "modeled_samples_per_second": self.modeled_samples_per_second,
            "modeled_delivered_wall_seconds": (
                self.modeled_delivered_wall_seconds
            ),
            "modeled_delivered_samples_per_second": (
                self.modeled_delivered_samples_per_second
            ),
            "crashes": self.crashes,
            "straggler_shards": self.straggler_shards,
            "wasted_cpu_seconds": self.wasted_cpu_seconds,
        }


def _fleet_worker(
    blobs: list[bytes],
    schema,
    config: DataLoaderConfig,
    cost_model: ReaderCostModel,
    local_start: int,
    local_stop: int,
    out: multiprocessing.queues.Queue,
) -> None:
    """One worker process: scan a shard window, stream batches back."""
    try:
        readers = [DwrfReader(blob, schema) for blob in blobs]
        node = ReaderNode(config, cost_model)
        put_wait = 0.0
        for batch in node.run(
            readers, row_start=local_start, row_stop=local_stop
        ):
            t0 = time.perf_counter()
            out.put(batch)
            put_wait += time.perf_counter() - t0
        out.put((_DONE, node.report, put_wait))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        out.put((_ERROR, f"{type(exc).__name__}: {exc}"))


class ReaderFleet:
    """N sharded reader workers over one landed partition.

    The fleet's batch stream is bit-identical to
    ``ReaderNode.run_all(table.open_readers(partition))`` for every
    ``num_readers`` — sharding only changes *who* decodes a row, never
    which rows form which batch.
    """

    def __init__(
        self,
        num_readers: int,
        config: DataLoaderConfig,
        cost_model: ReaderCostModel | None = None,
        prefetch_depth: int = 2,
        executor: str = "auto",
        faults: FleetFaults | None = None,
        transport: TransportSpec | str | None = None,
    ):
        if num_readers <= 0:
            raise ValueError(
                f"num_readers must be positive, got {num_readers}: a "
                "fleet needs at least one reader worker to scan shards"
            )
        if prefetch_depth <= 0:
            raise ValueError(
                f"prefetch_depth must be positive, got {prefetch_depth}"
            )
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if faults and executor == "process":
            raise ValueError(
                "fault injection needs the deterministic in-process "
                "executor (crash/straggler effects must be "
                "bit-reproducible); use executor='inprocess' or 'auto'"
            )
        self.num_readers = num_readers
        self.config = config
        self.cost_model = cost_model or ReaderCostModel()
        self.prefetch_depth = prefetch_depth
        self.executor = executor
        self.faults = faults
        self.transport = TransportSpec.coerce(
            transport if transport is not None else TransportSpec()
        )
        self.report = FleetReport()

    # -- public API --------------------------------------------------------

    def run(
        self,
        table: HiveTable,
        partition: str,
        max_batches: int | None = None,
    ) -> list[Batch]:
        """Scan one partition with the fleet; returns batches in serial
        order and leaves the merged measurements in ``self.report``."""
        return list(self.iter_batches(table, partition, max_batches))

    def run_epoch(
        self,
        table: HiveTable,
        partitions: Sequence[str],
        max_batches: int | None = None,
    ) -> list[Batch]:
        """Materialized :meth:`iter_epoch` (tests and small experiments)."""
        return list(self.iter_epoch(table, partitions, max_batches))

    def iter_batches(
        self,
        table: HiveTable,
        partition: str,
        max_batches: int | None = None,
    ) -> Iterator[Batch]:
        """Stream one partition's batches in deterministic (serial) order."""
        return self.iter_epoch(table, [partition], max_batches=max_batches)

    def iter_epoch(
        self,
        table: HiveTable,
        partitions: Sequence[str],
        max_batches: int | None = None,
    ) -> Iterator[Batch]:
        """Stream one epoch over ``partitions``, in deterministic order.

        The epoch's global batch order is bit-identical to scanning each
        partition serially in the order given; ``max_batches`` caps the
        whole epoch.  At most ``num_readers`` worker processes run at any
        moment — workers for later shards (and partitions) launch as
        earlier shards drain, so decode overlaps partition boundaries and
        whatever the consumer does between ``next()`` calls.
        """
        missing = [p for p in partitions if p not in table.partitions]
        if missing:
            # Name each offending partition with *why* it is not live so
            # a failed epoch is diagnosable from the message alone: a
            # retention-dropped partition means the epoch plan lags the
            # rolling window; a never-landed one means the plan is wrong.
            detail = ", ".join(
                f"{p!r} ("
                + (
                    "dropped by retention"
                    if p in table.dropped
                    else "never landed"
                )
                + ")"
                for p in missing
            )
            raise KeyError(
                f"cannot scan epoch {list(partitions)} of table "
                f"{table.name!r}: {detail}; current live window: "
                f"{table.live_partitions}"
            )
        infos = [table.partitions[p] for p in partitions]
        plan = plan_epoch(
            [(p, info.num_rows) for p, info in zip(partitions, infos)],
            self.config.batch_size,
            self.num_readers,
            max_batches=max_batches,
        )
        planned = [
            (info, shards)
            for (_, shards), info in zip(plan, infos)
            if shards
        ]
        total_shards = sum(len(shards) for _, shards in planned)
        self.report = FleetReport(num_shards=total_shards)
        started = time.perf_counter()

        def sources() -> Iterator[tuple[RowRangeShard, list[bytes], int, int]]:
            """Every planned shard with its covering file blobs."""
            for info, shards in planned:
                yield from self._shard_sources(table, info, shards)

        executor = self.executor
        if executor == "auto":
            executor = "process" if total_shards > 1 else "inprocess"
        if self.faults and executor != "async":
            # Injected faults perturb the modeled accounting and must be
            # bit-reproducible, so a faulted scan runs on a deterministic
            # executor: async when requested, in-process otherwise
            # (__init__ already rejects an explicit "process" request).
            executor = "inprocess"
        try:
            if executor == "process":
                emitted = 0
                try:
                    for batch in self._iter_multiprocess(
                        table.schema, sources()
                    ):
                        emitted += 1
                        yield batch
                except OSError as exc:
                    # Platforms without working process/semaphore support
                    # (locked-down sandboxes) degrade to the serial
                    # executor rather than failing the job — but only if
                    # nothing was emitted yet, to never duplicate batches.
                    # The triggering exception is recorded so a stored
                    # run row can tell a fallback from an intentional
                    # in-process run.
                    if emitted:
                        raise
                    self.report = FleetReport(
                        num_shards=total_shards,
                        executor_used="inprocess-fallback",
                        fallback_reason=repr(exc),
                    )
                    yield from self._iter_inprocess(table.schema, sources())
            elif executor == "async":
                yield from self._iter_async(table.schema, sources())
            else:
                yield from self._iter_inprocess(table.schema, sources())
        finally:
            self.report.wall_seconds = time.perf_counter() - started

    # -- executors ---------------------------------------------------------

    def _account_transport(self, rep: ReaderReport) -> None:
        """Charge the transport model for one worker's wire bytes.

        Runs identically under every executor (the whole point: the
        bytes accounting is part of the bit-identity contract).  The
        copy transport charges modeled serialize seconds into
        ``queue.transport`` and counts the bytes as copied; shm counts
        the same bytes as avoided and charges nothing.
        """
        if self.transport.charges:
            rep.bytes_copied += rep.send_bytes
            self.report.queue.transport += self.cost_model.transport_seconds(
                rep.send_bytes, rep.batches
            )
        else:
            rep.copies_avoided += rep.send_bytes

    def _shard_sources(
        self, table: HiveTable, info, shards: list[RowRangeShard]
    ) -> Iterator[tuple[RowRangeShard, list[bytes], int, int]]:
        """Per shard: the covering files' blobs and the local row window."""
        blobs = [table.fs.read(path) for path in info.files]
        row_counts = [
            DwrfReader(blob, table.schema).num_rows for blob in blobs
        ]
        for shard in shards:
            file_idxs, base = covering_files(
                row_counts, shard.row_start, shard.row_stop
            )
            yield (
                shard,
                [blobs[i] for i in file_idxs],
                shard.row_start - base,
                shard.row_stop - base,
            )

    def _iter_inprocess(
        self,
        schema,
        sources: Iterable[tuple[RowRangeShard, list[bytes], int, int]],
    ) -> Iterator[Batch]:
        if self.report.executor_used != "inprocess-fallback":
            self.report.executor_used = "inprocess"
        if self.faults:
            crashed, factors = self.faults.resolved(self.report.num_shards)
        else:
            crashed, factors = set(), {}
        for position, (_, blobs, local_start, local_stop) in enumerate(
            sources
        ):
            readers = [DwrfReader(blob, schema) for blob in blobs]
            node = ReaderNode(self.config, self.cost_model)
            yield from node.run(
                readers, row_start=local_start, row_stop=local_stop
            )
            cpu = node.report.cpu
            if position in factors:
                # Straggler: the shard's worker ran `factor` times
                # slower — same batches, scaled modeled CPU.
                factor = factors[position]
                cpu.fill *= factor
                cpu.convert *= factor
                cpu.process *= factor
                self.report.straggler_shards += 1
            if position in crashed:
                # Crash/respawn: the first attempt died after
                # `lost_fraction` of the scan; the respawn re-scanned
                # the whole shard (the batches just yielded), so the
                # lost partial work is charged on top.
                wasted = self.faults.lost_fraction * cpu.total
                scale = 1.0 + self.faults.lost_fraction
                cpu.fill *= scale
                cpu.convert *= scale
                cpu.process *= scale
                self.report.crashes += 1
                self.report.wasted_cpu_seconds += wasted
            self._account_transport(node.report)
            self.report.workers.append(node.report)

    def _iter_async(
        self,
        schema,
        sources: Iterable[tuple[RowRangeShard, list[bytes], int, int]],
    ) -> Iterator[Batch]:
        """The deterministic coroutine executor: every shard worker
        interleaved in one process on a virtual clock.

        The discrete-event replay mirrors the process executor's shape
        exactly — ``num_readers`` workers in flight, one bounded
        prefetch queue (depth ``prefetch_depth``) per worker, consumer
        draining workers in shard order, later shards' workers starting
        as slots free — but time is *modeled*: a worker's per-batch cost
        is its cost-model CPU delta (scaled by any injected
        straggler/crash factors), producers block on full virtual
        queues (``put_wait``), the consumer waits on empty ones
        (``get_wait``), and the copy transport advances the consumer
        clock per batch.  Batches, worker reports, and bytes accounting
        are bit-identical to the other executors; the queue waits are
        bit-*reproducible*, which the process executor's measured waits
        can never be.
        """
        self.report.executor_used = "async"
        if self.faults:
            crashed, factors = self.faults.resolved(self.report.num_shards)
        else:
            crashed, factors = set(), {}
        cm = self.cost_model
        charges = self.transport.charges
        depth = self.prefetch_depth
        width = self.num_readers
        consumer_clock = 0.0
        # virtual time each drained worker's slot frees: shard
        # ``position`` (>= width) starts when shard ``position - width``
        # was fully popped, exactly like launch_one() in the process
        # executor
        slot_free: list[float] = []
        for position, (_, blobs, local_start, local_stop) in enumerate(
            sources
        ):
            start = slot_free[position - width] if position >= width else 0.0
            readers = [DwrfReader(blob, schema) for blob in blobs]
            node = ReaderNode(self.config, self.cost_model)
            factor = factors.get(position, 1.0)
            scale = (
                1.0 + self.faults.lost_fraction
                if self.faults and position in crashed
                else 1.0
            )
            cost_scale = factor * scale
            charged = 0.0  # node CPU already converted to virtual time
            enqueued_at = start  # when the previous batch hit the queue
            pops: deque[float] = deque()  # pop times freeing queue slots
            last_pop = start
            for index, batch in enumerate(
                node.run(readers, row_start=local_start, row_stop=local_stop)
            ):
                total = node.report.cpu.total
                finish = enqueued_at + (total - charged) * cost_scale
                charged = total
                if index >= depth:
                    # the bounded queue is full: the producer holds this
                    # batch until the consumer pops batch index - depth
                    ready = max(finish, pops.popleft())
                else:
                    ready = finish
                self.report.queue.put_wait += ready - finish
                self.report.queue.get_wait += max(
                    0.0, ready - consumer_clock
                )
                pop = max(consumer_clock, ready)
                pops.append(pop)
                last_pop = pop
                consumer_clock = pop
                if charges:
                    consumer_clock += cm.transport_seconds(batch.wire_nbytes)
                enqueued_at = ready
                yield batch
            slot_free.append(last_pop)
            # end-of-shard fault mutations: the same arithmetic, in the
            # same order, as _iter_inprocess — worker reports must stay
            # bit-identical across the deterministic executors
            cpu = node.report.cpu
            if position in factors:
                cpu.fill *= factor
                cpu.convert *= factor
                cpu.process *= factor
                self.report.straggler_shards += 1
            if position in crashed:
                wasted = self.faults.lost_fraction * cpu.total
                cpu.fill *= scale
                cpu.convert *= scale
                cpu.process *= scale
                self.report.crashes += 1
                self.report.wasted_cpu_seconds += wasted
            self._account_transport(node.report)
            self.report.workers.append(node.report)

    def _iter_multiprocess(
        self,
        schema,
        sources: Iterable[tuple[RowRangeShard, list[bytes], int, int]],
    ) -> Iterator[Batch]:
        self.report.executor_used = "process"
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        source_iter = iter(sources)
        # (proc, queue) pairs in shard order, launched but not yet
        # drained.  One bounded queue per worker: each worker prefetches
        # at most prefetch_depth batches ahead of the merge loop (double
        # buffering at the default depth of 2), and the merge loop drains
        # workers in shard order so output order is deterministic.  The
        # window holds at most num_readers live workers — the fleet's
        # width — so a long multi-partition epoch launches later shards'
        # workers only as earlier shards finish.
        active: list[tuple] = []

        def launch_one() -> bool:
            """Start the next shard's worker; False when none remain."""
            try:
                shard, blobs, local_start, local_stop = next(source_iter)
            except StopIteration:
                return False
            queue = ctx.Queue(maxsize=self.prefetch_depth)
            proc = ctx.Process(
                target=_fleet_worker,
                args=(
                    blobs,
                    schema,
                    self.config,
                    self.cost_model,
                    local_start,
                    local_stop,
                    queue,
                ),
                daemon=True,
                name=f"reader-shard-{shard.index}",
            )
            proc.start()
            active.append((proc, queue))
            return True

        finished: list = []
        try:
            for _ in range(self.num_readers):
                if not launch_one():
                    break
            while active:
                proc, queue = active[0]
                while True:
                    t0 = time.perf_counter()
                    item = self._get(queue, proc)
                    self.report.queue.get_wait += time.perf_counter() - t0
                    if isinstance(item, tuple) and item and item[0] == _DONE:
                        _, worker_report, put_wait = item
                        self._account_transport(worker_report)
                        self.report.workers.append(worker_report)
                        self.report.queue.put_wait += put_wait
                        break
                    if isinstance(item, tuple) and item and item[0] == _ERROR:
                        raise RuntimeError(f"reader worker failed: {item[1]}")
                    yield item
                # Drained workers are joined only after the last batch is
                # out — a worker that lingers past its _DONE sentinel must
                # never delay the next shard's delivery.
                active.pop(0)
                finished.append(proc)
                launch_one()  # keep the fleet at its full width
            for proc in finished:
                proc.join(timeout=_WORKER_JOIN_TIMEOUT)
        finally:
            for proc in [p for p, _ in active] + finished:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)

    @staticmethod
    def _get(queue, proc):
        """Queue.get that notices a worker dying without a sentinel."""
        while True:
            try:
                return queue.get(timeout=1.0)
            except queue_lib.Empty:
                if not proc.is_alive() and queue.empty():
                    raise RuntimeError(
                        f"reader worker {proc.name} exited "
                        f"(exitcode={proc.exitcode}) without finishing"
                    ) from None
