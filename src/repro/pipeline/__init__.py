"""End-to-end pipeline orchestration and per-figure experiment drivers.

Two run surfaces share one engine:

* the **spec surface** (preferred) — compose a
  :class:`~repro.pipeline.spec.JobSpec` from small spec dataclasses
  (:class:`DataSpec`, :class:`ReaderSpec`, :class:`TrainSpec`,
  :class:`ScalingSpec`, :class:`RetentionSpec`, :class:`StreamSpec`,
  :class:`CheckpointSpec`, :class:`FaultSpec`) and execute one or many
  with :class:`~repro.pipeline.session.Session`;
* the **legacy surface** — the flat :class:`PipelineConfig` through
  :func:`run_pipeline` / :func:`run_multi_job`, thin adapters over the
  same ``Session`` (bit-identical outputs; see ``docs/api.md`` for the
  field-by-field migration table).
"""

from .config import PipelineConfig, RecDToggles
from .experiments import (
    AccuracyResult,
    DedupeModelPoint,
    Fig3Result,
    Fig7Row,
    Fig8Row,
    Fig9Stage,
    Fig10Row,
    PartialResult,
    Table2Row,
    Table3Row,
    accuracy_clustering,
    dedupe_factor_model_sweep,
    fig3_session_histogram,
    fig4_duplication,
    fig7_end_to_end,
    fig8_iteration_breakdown,
    fig9_ablation,
    fig10_reader_cpu,
    partial_vs_exact,
    scribe_sharding_compression,
    single_node_speedup,
    table2_resource_util,
    table3_reader_bytes,
)
from .multi_job import JobResult, MultiJobResult, run_multi_job
from .runner import (
    PipelineResult,
    build_trainer,
    land_table,
    plan_retention_windows,
    run_pipeline,
)
from .session import JobRuntime, Session
from .spec import (
    CheckpointSpec,
    DataSpec,
    FaultSpec,
    JobSpec,
    ReaderSpec,
    RetentionSpec,
    ScalingSpec,
    StreamSpec,
    TrainSpec,
    TransportSpec,
)

__all__ = [
    "RecDToggles",
    "PipelineConfig",
    "DataSpec",
    "ReaderSpec",
    "TrainSpec",
    "ScalingSpec",
    "RetentionSpec",
    "StreamSpec",
    "CheckpointSpec",
    "FaultSpec",
    "TransportSpec",
    "JobSpec",
    "JobRuntime",
    "Session",
    "PipelineResult",
    "run_pipeline",
    "build_trainer",
    "land_table",
    "plan_retention_windows",
    "JobResult",
    "MultiJobResult",
    "run_multi_job",
    "Fig3Result",
    "fig3_session_histogram",
    "fig4_duplication",
    "Fig7Row",
    "fig7_end_to_end",
    "Fig8Row",
    "fig8_iteration_breakdown",
    "Fig9Stage",
    "fig9_ablation",
    "Table2Row",
    "table2_resource_util",
    "Table3Row",
    "table3_reader_bytes",
    "Fig10Row",
    "fig10_reader_cpu",
    "scribe_sharding_compression",
    "single_node_speedup",
    "AccuracyResult",
    "accuracy_clustering",
    "DedupeModelPoint",
    "dedupe_factor_model_sweep",
    "PartialResult",
    "partial_vs_exact",
]
