"""The one execution engine behind every run surface: ``Session``.

Before this module the repo had *two* end-to-end loops — ``run_pipeline``
owned a single job's land→scan→train→age epoch loop, and
``run_multi_job`` owned a diverged copy wired through the shared reader
tier, which is why retention and per-job autoscaling had to be forbidden
under sharing.  :class:`Session` collapses them: one engine prepares
each registered :class:`~repro.pipeline.spec.JobSpec` (generate →
Scribe → ETL → land), hands every job to one
:class:`~repro.reader.tier_scheduler.SharedReaderTier`, and runs
scheduling rounds until every job's epoch plan is exhausted.  A
single-job session is simply a one-job tier — the allocator leases the
whole pool to the sole job every round, so each round *is* one epoch on
a full-width fleet, bit-identical to the old dedicated loop.

Because one loop serves every shape, features compose instead of
forking:

* **Retention for any job count** — a job with a
  :class:`~repro.pipeline.spec.RetentionSpec` lands its next window and
  ages out old partitions immediately before each of its scheduled
  epochs (the tier calls the job's ``prepare`` hook), so the rolling
  land→train→age lifecycle works identically solo or under sharing.
* **Scaling for any job count** — a
  :class:`~repro.pipeline.spec.ScalingSpec` autoscales the pool between
  rounds; with one job that *is* the classic per-fleet autoscaler
  (same modeled signal, same trace, bit-identical decisions).
* **Weights** — :attr:`JobSpec.weight` scales a job's observed reader
  demand in the stall-weighted allocator, so priority jobs pull more of
  the surplus pool without ever changing batch content.

The legacy entry points — :func:`~repro.pipeline.runner.run_pipeline`
and :func:`~repro.pipeline.multi_job.run_multi_job` — are thin adapters
over this engine and stay bit-identical to their historical outputs.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..datagen.generator import TraceConfig, TraceGenerator
from ..datagen.session import Sample
from ..distributed.costmodel import sim_cluster
from ..distributed.trainer import DistributedTrainer, TrainingReport
from ..etl.pipeline import ETLConfig, ETLJob
from ..metrics.overlap import OverlapReport
from ..metrics.scaling import ScalingTrace
from ..metrics.tier import TierReport
from ..reader.fleet import FleetReport
from ..reader.node import ReaderReport
from ..reader.tier_scheduler import SharedReaderTier, TierJob
from ..scribe.bus import ScribeCluster, ScribeStats
from ..scribe.message import split_sample
from ..scribe.sharding import ShardKeyPolicy
from ..storage.hive import HiveTable, PartitionInfo
from ..storage.tectonic import TectonicFS
from ..streaming.lander import StreamLander, plan_stream_windows
from ..streaming.live import LiveLoop
from ..trainer.checkpoint import ModelStore
from ..trainer.model import DLRM, DLRMConfig
from .config import PipelineConfig
from .spec import CheckpointSpec, JobSpec, ScalingSpec

__all__ = [
    "PipelineResult",
    "JobResult",
    "MultiJobResult",
    "JobRuntime",
    "Session",
    "build_trainer",
    "land_table",
    "plan_retention_windows",
]


@dataclass
class PipelineResult:
    """Every stage's measurements for one configuration."""

    config: PipelineConfig
    scribe: ScribeStats
    scribe_ingest_bytes: int
    #: the landed table rolled up across partitions (storage totals)
    partition: PartitionInfo
    reader: ReaderReport
    training: TrainingReport
    samples_landed: int
    #: per-worker + queue-wait detail behind the merged ``reader`` report
    fleet: FleetReport | None = None
    #: per-partition landing detail behind the rolled-up ``partition``
    #: (under retention: every partition that landed, dropped or not)
    partitions: list[PartitionInfo] = field(default_factory=list)
    #: wall-clock attribution of the train loop: reader-stall vs
    #: trainer-stall (populated for streaming and materialized runs)
    overlap: OverlapReport | None = None
    #: which partitions each epoch actually scanned, in epoch order
    epoch_partitions: list[list[str]] = field(default_factory=list)
    #: partitions aged out by rolling-window retention, in drop order
    dropped_partitions: list[str] = field(default_factory=list)
    #: the autoscaler's decision history (scaled runs only)
    scaling: ScalingTrace | None = None
    #: the composed spec the engine executed (``None`` only for results
    #: built by code predating the spec surface)
    spec: JobSpec | None = None

    # -- the Fig 7 headline metrics ------------------------------------------

    @property
    def trainer_qps(self) -> float:
        """Mean trainer throughput in samples/second (Fig 7)."""
        return self.training.mean_samples_per_second

    @property
    def reader_qps(self) -> float:
        """Reader throughput in samples per CPU-second (Fig 7)."""
        return self.reader.samples_per_cpu_second

    @property
    def storage_compression(self) -> float:
        """Landed table compression ratio (raw / compressed bytes)."""
        return self.partition.compression_ratio

    @property
    def scribe_compression(self) -> float:
        """Scribe transport compression ratio."""
        return self.scribe.compression_ratio


@dataclass
class JobResult:
    """One job's measurements from a shared-tier run."""

    name: str
    config: PipelineConfig
    #: the job's trainer report — per-step losses bit-identical to the
    #: same config run alone through ``run_pipeline``
    training: TrainingReport
    #: the job's reader measurements merged across every round it ran
    fleet: FleetReport
    #: the job's modeled overlap attribution, merged across rounds
    overlap: OverlapReport
    #: which partitions each of the job's epochs scanned
    epoch_partitions: list[list[str]]
    samples_landed: int
    #: partitions aged out by the job's rolling window, in drop order
    dropped_partitions: list[str] = field(default_factory=list)
    #: the composed spec the engine executed for this job
    spec: JobSpec | None = None


@dataclass
class MultiJobResult:
    """Every job's measurements plus the tier-level schedule."""

    jobs: list[JobResult]
    tier: TierReport

    def job(self, name: str) -> JobResult:
        """Look one job's result up by name."""
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(
            f"no job named {name!r}; jobs: {[j.name for j in self.jobs]}"
        )

    @property
    def modeled_wall_seconds(self) -> float:
        """The shared tier's modeled end-to-end wall-clock."""
        return self.tier.modeled_wall_seconds


# -- table preparation -------------------------------------------------------


def _rollup_partitions(partitions: list[PartitionInfo]) -> PartitionInfo:
    """One table-level PartitionInfo summing the landed partitions."""
    if len(partitions) == 1:
        return partitions[0]
    total = PartitionInfo(name="+".join(p.name for p in partitions))
    for p in partitions:
        total.files.extend(p.files)
        total.num_rows += p.num_rows
        total.raw_bytes += p.raw_bytes
        total.compressed_bytes += p.compressed_bytes
    return total


def _partition_slices(
    total_rows: int, num_partitions: int
) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` row slices per partition."""
    base, extra = divmod(total_rows, num_partitions)
    slices: list[tuple[int, int]] = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


def plan_retention_windows(
    num_partitions: int, retain_partitions: int, train_epochs: int
) -> list[list[int]]:
    """Which partition indices each epoch scans under retention.

    Epoch 0 opens on the first ``min(retain_partitions,
    num_partitions)`` partitions; between epochs the window slides one
    partition forward — the next partition lands, the oldest ages out —
    until the stream of ``num_partitions`` time partitions is exhausted,
    after which the window stays put.

    Args:
        num_partitions: total time partitions in the stream.
        retain_partitions: maximum live partitions at any moment.
        train_epochs: epochs to plan.

    Returns:
        One list of partition indices per epoch, each of length at most
        ``retain_partitions``.

    Raises:
        ValueError: if any argument is not positive.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if retain_partitions <= 0:
        raise ValueError("retain_partitions must be positive")
    if train_epochs <= 0:
        raise ValueError("train_epochs must be positive")
    window = min(retain_partitions, num_partitions)
    lo, hi = 0, window - 1
    windows: list[list[int]] = []
    for _ in range(train_epochs):
        windows.append(list(range(lo, hi + 1)))
        if hi < num_partitions - 1:
            hi += 1
            if hi - lo + 1 > window:
                lo += 1
    return windows


def _prepare_table(
    job: JobSpec,
) -> tuple[HiveTable, ScribeStats, int, list[Sample]]:
    """Stages 1–3: generate, transport, join — nothing landed yet."""
    d = job.data
    w = d.workload
    samples = TraceGenerator(
        w.schema,
        TraceConfig(
            seed=d.seed,
            mean_samples_per_session=d.mean_samples_per_session,
        ),
    ).generate_partition(d.num_sessions)

    policy = (
        ShardKeyPolicy.SESSION_ID
        if d.toggles.o1_shard_by_session
        else ShardKeyPolicy.RANDOM
    )
    scribe = ScribeCluster(num_shards=d.num_scribe_shards, policy=policy)
    for s in samples:
        feat, ev = split_sample(s)
        scribe.log_features(feat)
        scribe.log_event(ev)
    scribe.flush()

    etl = ETLJob(ETLConfig(cluster=d.toggles.o2_cluster_table))
    etl_result = etl.run_from_scribe(scribe)

    fs = TectonicFS()
    # Stripes are small relative to the partition so that a stripe's time
    # window matches the paper's regime: in the interleaved baseline a
    # stripe holds ~1 sample/session (Fig 3), and only clustering (O2)
    # makes a session's duplicates stripe-local.
    table = HiveTable(
        f"{w.name.lower()}_table",
        w.schema,
        fs,
        rows_per_file=8192,
        stripe_rows=64,
    )
    return table, scribe.stats, scribe.etl_ingest_bytes, etl_result.samples


def land_table(
    job: JobSpec | PipelineConfig,
) -> tuple[HiveTable, ScribeStats, int, list[PartitionInfo], list[Sample]]:
    """Stages 1–4: generate, transport, join, land.

    The joined rows land as ``num_partitions`` time partitions
    ``p0..p{N-1}`` — contiguous row ranges of the ETL output, mirroring
    the paper's day-partitioned tables — so concatenating the partitions
    in order always reproduces the single-partition row order.

    Args:
        job: the run's parameters — a :class:`JobSpec`, or a legacy
            flat :class:`PipelineConfig` (converted via
            :meth:`JobSpec.coerce`).

    Returns:
        ``(table, scribe_stats, etl_ingest_bytes, partitions, samples)``
        — the landed table, transport stats, and the joined row list.
    """
    job = JobSpec.coerce(job)
    table, scribe_stats, ingest_bytes, landed = _prepare_table(job)
    partitions = [
        table.land_partition(f"p{i}", landed[start:stop])
        for i, (start, stop) in enumerate(
            _partition_slices(len(landed), job.data.num_partitions)
        )
    ]
    return table, scribe_stats, ingest_bytes, partitions, landed


def _validate_epoch_batches(job: JobSpec, rows: Sequence[int]) -> None:
    """Fail fast if an epoch window cannot fill a single batch.

    Validates from landed (or planned) row counts *before* any reader
    worker is spawned: an epoch with zero trainable batches must fail,
    not after multiprocessing workers scanned an undersized partition.
    """
    batch_size = job.effective_batch_size
    epoch_batches = sum(r // batch_size for r in rows)
    if job.train.train_batches is not None:
        epoch_batches = min(epoch_batches, job.train.train_batches)
    if epoch_batches == 0:
        raise ValueError(
            "partition too small for even one batch: "
            f"[{', '.join(str(r) for r in rows)}] rows across "
            f"{len(rows)} partition(s) < batch {batch_size} "
            f"(train_batches={job.train.train_batches})"
        )


def build_trainer(job: JobSpec | PipelineConfig) -> DistributedTrainer:
    """The job's trainer: a seeded DLRM under the modeled cluster.

    A standalone builder so every execution shape — solo, shared tier,
    or a custom harness — constructs the trainer identically, which is
    what makes per-job losses under sharing bit-identical to solo runs.

    Args:
        job: a :class:`JobSpec` or legacy flat :class:`PipelineConfig`.

    Returns:
        The job's seeded :class:`~repro.distributed.trainer.DistributedTrainer`.
    """
    job = JobSpec.coerce(job)
    w = job.data.workload
    model = DLRM(
        list(w.schema.sparse),
        DLRMConfig.from_workload(
            w, max_table_rows=job.train.max_table_rows, seed=job.data.seed
        ),
        job.trainer_flags,
    )
    cluster = sim_cluster(
        num_gpus=job.train.num_gpus, gpus_per_node=job.train.gpus_per_node
    )
    return DistributedTrainer(model, cluster)


# -- the engine --------------------------------------------------------------


class JobRuntime:
    """One registered job's live state inside a :class:`Session`.

    Public because open-loop drivers — the scenario simulator in
    ``repro.sim`` — build these directly to preempt, checkpoint, and
    resume jobs between scheduling rounds.  A runtime built from a spec
    carrying a :class:`~repro.pipeline.spec.CheckpointSpec` restores
    the named snapshot into its freshly built trainer and registers
    only the plan's remaining epochs (``start_epoch`` onward), which is
    exactly the shape a preempted job resumes in: because restore is
    exact and batch content never depends on scheduling, the resumed
    losses are bit-identical to the uninterrupted run's tail.
    """

    def __init__(
        self,
        name: str,
        spec: JobSpec,
        *,
        model_store: ModelStore | None = None,
    ):
        """Prepare one job: trainer (restored if resuming), table, plan.

        Args:
            name: the job's report name.
            spec: the job's composed spec.
            model_store: the session's snapshot store; required when
                ``spec.checkpoint.restore_from`` is set.

        Raises:
            ValueError: if the spec restores a snapshot but no model
                store was given, or an epoch window cannot fill one
                batch.
            FileNotFoundError: if the snapshot to restore does not
                exist in the store.
        """
        self.name = name
        self.spec = spec
        ckpt = spec.checkpoint
        self.start_epoch = ckpt.start_epoch if ckpt is not None else 0
        self.trainer = build_trainer(spec)
        if ckpt is not None and ckpt.restore_from is not None:
            if model_store is None:
                raise ValueError(
                    f"job {name!r} restores snapshot "
                    f"{ckpt.restore_from!r} but no model store was "
                    "given (Session(model_store=...))"
                )
            model_store.load(ckpt.restore_from, self.trainer.model)
        start = self.start_epoch
        self.partitions: list[PartitionInfo] = []
        #: the job's live-landing engine (streaming jobs only)
        self.lander: StreamLander | None = None
        ready = None
        if spec.stream is not None:
            lander = StreamLander(spec)
            self.lander = lander
            self.table = lander.table
            self.samples = lander.samples
            self.scribe_stats = lander.scribe.stats
            self.ingest_bytes = lander.ingest_bytes
            self.partitions = lander.partitions
            windows = plan_stream_windows(
                spec.data.num_partitions,
                (
                    spec.retention.window
                    if spec.retention is not None
                    else None
                ),
                spec.train.train_epochs,
            )
            self.epochs = [[f"p{i}" for i in w] for w in windows[start:]]
            partition_rows = lander.partition_rows()
            _validate_epoch_batches(
                spec, [partition_rows[p] for p in self.epochs[0]]
            )
            table = self.table

            def ready(epoch: int) -> bool:
                """Data gate: this epoch's window ends at a
                micro-partition the lander may not have landed yet
                (``epoch`` indexes this registration's plan, so a
                resumed job offsets into the full window schedule)."""
                return lander.landed_count > windows[start + epoch][-1]

            if spec.retention is not None:

                def prepare(epoch: int) -> None:
                    """Age out micro-partitions behind this epoch's
                    window — the lander lands on the clock; retention
                    only ever drops."""
                    lo = windows[start + epoch][0]
                    for name in [
                        p
                        for p in list(table.partitions)
                        if int(p[1:]) < lo
                    ]:
                        table.drop_partition(name)

            else:
                prepare = None
        elif spec.retention is None:
            (
                self.table,
                self.scribe_stats,
                self.ingest_bytes,
                self.partitions,
                self.samples,
            ) = land_table(spec)
            _validate_epoch_batches(
                spec, [p.num_rows for p in self.partitions]
            )
            window = [p.name for p in self.partitions]
            self.epochs = [
                list(window)
                for _ in range(spec.train.train_epochs - start)
            ]
            prepare = None
            partition_rows = None
        else:
            (
                self.table,
                self.scribe_stats,
                self.ingest_bytes,
                self.samples,
            ) = _prepare_table(spec)
            slices = _partition_slices(
                len(self.samples), spec.data.num_partitions
            )
            windows = plan_retention_windows(
                spec.data.num_partitions,
                spec.retention.window,
                spec.train.train_epochs,
            )
            self.epochs = [[f"p{i}" for i in w] for w in windows[start:]]
            partition_rows = {
                f"p{i}": stop - start_
                for i, (start_, stop) in enumerate(slices)
            }
            # Fail fast on the first window, from planned row counts —
            # before the trainer ever sees an empty epoch.
            _validate_epoch_batches(
                spec, [partition_rows[p] for p in self.epochs[0]]
            )
            landed: dict[int, PartitionInfo] = {}

            def prepare(epoch: int) -> None:
                """Land this epoch's window, then age out anything older
                — the between-epoch retention lifecycle.  ``epoch``
                indexes this registration's plan, so a resumed job
                offsets into the full window schedule."""
                window = windows[start + epoch]
                for idx in window:
                    if idx not in landed:
                        lo, hi = slices[idx]
                        landed[idx] = self.table.land_partition(
                            f"p{idx}", self.samples[lo:hi]
                        )
                        self.partitions.append(landed[idx])
                for idx in [i for i in sorted(landed) if i < window[0]]:
                    self.table.drop_partition(f"p{idx}")
                    del landed[idx]

        trainer = self.trainer
        track = spec.train.track_updates
        materialize = not spec.reader.streaming

        def consume(epoch: int, source) -> float:
            """Feed one scheduled epoch into this job's trainer; return
            the epoch's modeled trainer-busy seconds."""
            steps_before = len(trainer.report.iterations)
            if materialize:
                source = list(source)
            trainer.run(source, track_updates=track)
            return sum(
                it.iteration_seconds
                for it in trainer.report.iterations[steps_before:]
            )

        self.tier_job = TierJob(
            name=name,
            table=self.table,
            config=spec.dataloader_config(),
            epochs=self.epochs,
            max_batches=spec.train.train_batches,
            consume=consume,
            prefetch_depth=spec.reader.prefetch_depth,
            executor=spec.reader.executor,
            transport=spec.reader.transport,
            streaming=spec.reader.streaming,
            weight=spec.weight,
            prepare=prepare,
            partition_rows=partition_rows,
            ready=ready,
            track_freshness=self.lander is not None,
        )

    def _sync_stream(self) -> None:
        """Refresh the transport accounting a streaming job accrues
        tick by tick (static jobs snapshot it at build time)."""
        if self.lander is not None:
            self.scribe_stats = self.lander.scribe.stats
            self.ingest_bytes = self.lander.ingest_bytes

    @property
    def snapshot_name(self) -> str:
        """The store name this job's snapshots land under."""
        ckpt = self.spec.checkpoint
        if ckpt is not None and ckpt.save_as is not None:
            return ckpt.save_as
        return self.name

    def checkpoint(self, model_store: ModelStore) -> int:
        """Snapshot the trainer's model state into the store.

        Called by a preempting driver at an epoch boundary (the tier
        only preempts between rounds, so the model is never mid-epoch).

        Args:
            model_store: the store to snapshot into, under
                :attr:`snapshot_name`.

        Returns:
            The snapshot's version number.
        """
        return model_store.save(self.snapshot_name, self.trainer.model)

    def job_result(
        self, fleet: FleetReport, report: TierReport
    ) -> JobResult:
        """This job's share of a multi-job session's result."""
        self._sync_stream()
        return JobResult(
            name=self.name,
            config=self.spec.to_legacy(),
            training=self.trainer.report,
            fleet=fleet,
            overlap=report.job_overlap(self.name),
            epoch_partitions=[list(e) for e in self.epochs],
            samples_landed=len(self.samples),
            dropped_partitions=list(self.table.dropped),
            spec=self.spec,
        )

    def pipeline_result(
        self, fleet: FleetReport, report: TierReport, wall_seconds: float
    ) -> PipelineResult:
        """A single-job session's result, in run_pipeline's shape."""
        self._sync_stream()
        training = self.trainer.report
        # Both streaming modes attribute the same end-to-end loop wall
        # so the A/B is comparable: in the materialized mode the
        # serialized reader scan (the list() before training) shows up
        # as other_fraction — exactly the time streaming overlaps away.
        overlap = OverlapReport.from_run(
            training,
            queue=fleet.queue,
            wall_seconds=wall_seconds,
            streaming=self.spec.reader.streaming,
            reader=fleet.merged,
        )
        return PipelineResult(
            config=self.spec.to_legacy(),
            scribe=self.scribe_stats,
            scribe_ingest_bytes=self.ingest_bytes,
            partition=_rollup_partitions(self.partitions),
            reader=fleet.merged,
            training=training,
            samples_landed=len(self.samples),
            fleet=fleet,
            partitions=self.partitions,
            overlap=overlap,
            epoch_partitions=[list(e) for e in self.epochs],
            dropped_partitions=list(self.table.dropped),
            scaling=report.scaling,
            spec=self.spec,
        )


class Session:
    """The execution engine: one or many :class:`JobSpec`\\ s, one loop.

    Construct with a single spec (the ``run_pipeline`` shape — the
    whole pool serves the one job every round and :meth:`run` returns a
    :class:`PipelineResult`) or a sequence of specs (the
    ``run_multi_job`` shape — the pool is multiplexed across jobs and
    :meth:`run` returns a :class:`MultiJobResult`).  Legacy flat
    :class:`PipelineConfig` objects are accepted anywhere a spec is.

    Pool-level scaling resolves in precedence order: the explicit
    ``scaling`` argument, else the registered jobs' own
    :class:`~repro.pipeline.spec.ScalingSpec`\\ s (tightest
    ``target_stall``, widest ``max_readers``), else fixed width.

    :meth:`run` is the closed loop.  Open-loop drivers — the scenario
    simulator in ``repro.sim`` — instead call :meth:`prepare`, step the
    returned tier themselves, and may :meth:`preempt` a job (it
    checkpoints into the session's ``model_store`` and comes back as a
    resume spec) or :meth:`admit` a new or resumed job between rounds,
    then :meth:`collect` the results.
    """

    def __init__(
        self,
        jobs: JobSpec | PipelineConfig | Sequence[JobSpec | PipelineConfig],
        *,
        width: int | None = None,
        policy: str = "stall_weighted",
        scaling: ScalingSpec | None = None,
        names: Sequence[str] | None = None,
        model_store: ModelStore | None = None,
        freshness_slo: float | None = None,
    ):
        """Configure the session.

        Args:
            jobs: one spec, or a sequence of specs to share the pool.
            width: pool width (total reader workers).  Defaults to the
                sole job's ``ReaderSpec.num_readers``; required when
                sharing.
            policy: worker-allocation policy (``"stall_weighted"`` or
                ``"round_robin"``).
            scaling: pool-level autoscaling override; ``None`` defers
                to the jobs' own specs.
            names: report names overriding each spec's ``name``.
            model_store: snapshot store for checkpoint/resume; required
                by :meth:`preempt` and by any spec whose
                ``CheckpointSpec`` restores a snapshot.
            freshness_slo: target p99 event-time → trained-on lag in
                modeled seconds for streaming jobs; the tier boosts
                the allocation weight of jobs lagging past it (see
                :class:`~repro.reader.tier_scheduler.SharedReaderTier`).

        Raises:
            ValueError: on an empty job list, missing multi-job width,
                or duplicate/mismatched names.
        """
        self._single = isinstance(jobs, (JobSpec, PipelineConfig))
        raw = [jobs] if self._single else list(jobs)
        if not raw:
            raise ValueError("Session needs at least one job spec")
        self.specs = [JobSpec.coerce(j) for j in raw]
        if names is not None:
            names = list(names)
            if len(names) != len(self.specs):
                raise ValueError(
                    f"{len(names)} names for {len(self.specs)} jobs"
                )
            self.names = names
        else:
            self.names = [
                spec.name if spec.name is not None else f"job{i}"
                for i, spec in enumerate(self.specs)
            ]
        if len(set(self.names)) != len(self.names):
            raise ValueError(f"duplicate job names: {self.names}")
        if width is None:
            if not self._single:
                raise ValueError(
                    "Session needs an explicit pool width when sharing "
                    "across multiple jobs (width=...)"
                )
            width = self.specs[0].reader.num_readers
        self.width = width
        self.policy = policy
        if scaling is None:
            per_job = [s.scaling for s in self.specs if s.scaling is not None]
            if per_job:
                # A job's own bound caps its *solo* fleet; promoted to
                # the pool it must never undercut the pool's width, or
                # a wide pool would trip the autoscaler's sanity check
                # on behalf of a job that never mentioned the pool.
                floor = [] if self._single else [self.width]
                alphas = [
                    s.ewma_alpha
                    for s in per_job
                    if s.ewma_alpha is not None
                ]
                scaling = ScalingSpec(
                    target_stall=min(s.target_stall for s in per_job),
                    max_readers=max(
                        [s.max_readers for s in per_job] + floor
                    ),
                    # The most smoothing any job asked for wins: the
                    # pool damps at least as hard as its jumpiest
                    # job's request.
                    ewma_alpha=min(alphas) if alphas else None,
                )
        self.scaling = scaling
        self.model_store = model_store
        self.freshness_slo = freshness_slo
        self.tier: SharedReaderTier | None = None
        self._runtimes: dict[str, JobRuntime] = {}

    def prepare(self) -> SharedReaderTier:
        """Build the tier and every job's runtime; register everything.

        Called implicitly by :meth:`run`; open-loop drivers call it
        directly, then :meth:`~SharedReaderTier.start`/``step`` the
        returned tier themselves.

        Returns:
            The session's :class:`~repro.reader.tier_scheduler.SharedReaderTier`
            (also left in :attr:`tier`).

        Raises:
            RuntimeError: if the session was already prepared.
            ValueError: from spec validation, an epoch window that
                cannot fill one batch, or tier admission.
        """
        if self.tier is not None:
            raise RuntimeError(
                "session already prepared; build a new Session to rerun"
            )
        scaling = self.scaling

        def injector(round_index, name, epoch):
            """Map a job's FaultSpec onto its scheduled epochs (a
            resumed job's plan offsets by its start epoch)."""
            runtime = self._runtimes.get(name)
            if runtime is None or runtime.spec.faults is None:
                return None
            return runtime.spec.faults.for_epoch(
                runtime.start_epoch + epoch
            )

        self.tier = SharedReaderTier(
            self.width,
            policy=self.policy,
            autoscale=scaling is not None,
            target_stall=(
                scaling.target_stall if scaling is not None else 0.10
            ),
            max_readers=(
                scaling.max_readers if scaling is not None else 32
            ),
            fault_injector=injector,
            freshness_slo=self.freshness_slo,
            ewma_alpha=(
                scaling.ewma_alpha if scaling is not None else None
            ),
        )
        for name, spec in zip(self.names, self.specs):
            runtime = JobRuntime(name, spec, model_store=self.model_store)
            self._runtimes[name] = runtime
            self.tier.register(runtime.tier_job)
        return self.tier

    # -- streaming ----------------------------------------------------------

    @property
    def has_streams(self) -> bool:
        """Whether any registered job lands its table live."""
        return any(
            rt.lander is not None for rt in self._runtimes.values()
        )

    def pump_streams(self) -> list[str]:
        """Land every micro-partition due at the tier's current clock.

        Open-loop drivers call this at the top of every scheduling
        iteration (the closed loop's
        :class:`~repro.streaming.live.LiveLoop` does it for them), so
        no round ever trains over a partition that had not landed at
        the modeled moment the round started.

        Returns:
            Landed partition names across all streaming jobs, in land
            order.

        Raises:
            RuntimeError: if the session was never prepared.
        """
        if self.tier is None:
            raise RuntimeError("session not prepared; nothing to pump")
        landed: list[str] = []
        for rt in self._runtimes.values():
            if rt.lander is not None:
                landed.extend(rt.lander.pump(self.tier.clock))
        return landed

    def next_stream_event(self) -> float | None:
        """The earliest pending landing time across every stream
        (``None`` when all streams are drained).

        Raises:
            RuntimeError: if the session was never prepared.
        """
        if self.tier is None:
            raise RuntimeError("session not prepared; no stream events")
        events = [
            rt.lander.next_event(self.tier.clock)
            for rt in self._runtimes.values()
            if rt.lander is not None
        ]
        return min(
            (e for e in events if e is not None), default=None
        )

    def land_all_streams(self) -> None:
        """Land every stream in full, now — the land-everything-first
        baseline.  A live run's per-step losses are bit-identical to
        calling this on a fresh session and running the plain closed
        loop, which is the invariant ``repro stream --verify`` checks.

        Raises:
            RuntimeError: if the session was never prepared.
        """
        if self.tier is None:
            raise RuntimeError("session not prepared; nothing to land")
        for rt in self._runtimes.values():
            if rt.lander is not None:
                rt.lander.land_all()

    def runtime(self, name: str) -> JobRuntime:
        """The named job's live :class:`JobRuntime`.

        Raises:
            KeyError: if no such job exists in this session.
        """
        if name not in self._runtimes:
            raise KeyError(
                f"no job named {name!r}; jobs: {list(self._runtimes)}"
            )
        return self._runtimes[name]

    def preempt(self, name: str) -> JobSpec:
        """Checkpoint and deschedule a job mid-run.

        The job's model state snapshots into the session's
        ``model_store`` and the tier stops scheduling it (its name
        frees up).  The returned spec — the job's own spec with a
        :class:`~repro.pipeline.spec.CheckpointSpec` pointing at the
        snapshot and the first epoch still unrun — is everything
        :meth:`admit` needs to resume the job later, bit-identically.

        Args:
            name: the registered job to preempt.

        Returns:
            The resume spec.

        Raises:
            KeyError: if no such job is registered.
            ValueError: if the session has no ``model_store`` or the
                job already finished its plan.
            RuntimeError: if called before :meth:`prepare`.
        """
        if self.tier is None:
            raise RuntimeError("session not prepared; nothing to preempt")
        if self.model_store is None:
            raise ValueError(
                "preempting checkpoints the job, which needs "
                "Session(model_store=...)"
            )
        runtime = self.runtime(name)
        done_here = self.tier.preempt(name)
        done = runtime.start_epoch + done_here
        if done >= runtime.spec.train.train_epochs:
            raise ValueError(
                f"job {name!r} already finished its "
                f"{runtime.spec.train.train_epochs}-epoch plan; "
                "nothing to resume"
            )
        runtime.checkpoint(self.model_store)
        del self._runtimes[name]
        return runtime.spec.with_(
            checkpoint=CheckpointSpec(
                restore_from=runtime.snapshot_name,
                start_epoch=done,
                save_as=runtime.snapshot_name,
            )
        )

    def admit(self, spec: JobSpec | PipelineConfig, name: str) -> JobRuntime:
        """Register a new or resumed job mid-run.

        The tier grants the newcomer strict next-round priority, so an
        admitted job is never starved more than one round.

        Args:
            spec: the job's spec — typically a :meth:`preempt` return
                value when resuming.
            name: the job's report name (a preempted job resumes under
                its old name).

        Returns:
            The admitted job's :class:`JobRuntime`.

        Raises:
            RuntimeError: if called before :meth:`prepare`.
            ValueError: from spec validation or tier admission (name
                still in use, tier at capacity).
        """
        if self.tier is None:
            raise RuntimeError("session not prepared; nothing to admit to")
        spec = JobSpec.coerce(spec)
        runtime = JobRuntime(name, spec, model_store=self.model_store)
        self.tier.register(runtime.tier_job)
        self._runtimes[name] = runtime
        return runtime

    def collect(
        self, wall_seconds: float = 0.0
    ) -> PipelineResult | MultiJobResult:
        """Assemble results for every job still registered.

        A resumed job's result covers its current registration (the
        epochs since its last resume); drivers stitching full
        trajectories across preemptions track the per-segment losses
        themselves.

        Args:
            wall_seconds: measured loop wall-clock for the single-job
                overlap attribution (:meth:`run` passes it).

        Raises:
            RuntimeError: if the tier has not finished.
        """
        if self.tier is None or self.tier.report is None:
            raise RuntimeError(
                "session has no finished tier run to collect from"
            )
        report = self.tier.report
        runtimes = list(self._runtimes.values())
        if self._single and len(runtimes) == 1:
            runtime = runtimes[0]
            return runtime.pipeline_result(
                self.tier.job_fleets[runtime.name], report, wall_seconds
            )
        return MultiJobResult(
            jobs=[
                rt.job_result(self.tier.job_fleets[rt.name], report)
                for rt in runtimes
            ],
            tier=report,
        )

    def run(self) -> PipelineResult | MultiJobResult:
        """Prepare every job, then run scheduling rounds to completion.

        Returns:
            A :class:`PipelineResult` when the session was built from a
            single spec, else a :class:`MultiJobResult`.

        Raises:
            ValueError: from spec validation, an epoch window that
                cannot fill one batch, or tier admission.
        """
        tier = self.prepare()
        loop_started = time.perf_counter()
        if self.has_streams:
            # Live landing: interleave scribe ticks with scheduling
            # rounds instead of running the closed loop over a
            # pre-landed table.
            LiveLoop(self).drive()
        else:
            tier.run()
        loop_wall = time.perf_counter() - loop_started
        return self.collect(loop_wall)
