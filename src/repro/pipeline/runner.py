"""The end-to-end pipeline runner: Figure 1, in miniature.

Runs one configuration through every stage the paper's Figure 1 shows —
inference logging -> Scribe (O1) -> ETL join/cluster (O2) -> Hive/DWRF on
Tectonic -> reader tier (O3/O4) -> distributed trainers (O5–O7) — and
returns the per-stage measurements every evaluation figure draws from.

The reader→trainer hand-off is **streaming** by default: each epoch the
reader fleet's batch iterator feeds the trainers directly, so reader
decode overlaps trainer steps and the run's wall-clock can be attributed
to reader-stall vs trainer-stall (:class:`~repro.metrics.OverlapReport`).
``streaming=False`` materializes every batch first — bit-identical
training results, no overlap — for A/B comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..datagen.generator import TraceConfig, TraceGenerator
from ..datagen.session import Sample
from ..distributed.costmodel import sim_cluster
from ..distributed.trainer import DistributedTrainer, TrainingReport
from ..etl.pipeline import ETLConfig, ETLJob
from ..metrics.overlap import OverlapReport
from ..reader.fleet import FleetReport, ReaderFleet
from ..reader.node import ReaderReport
from ..scribe.bus import ScribeCluster, ScribeStats
from ..scribe.message import split_sample
from ..scribe.sharding import ShardKeyPolicy
from ..storage.hive import HiveTable, PartitionInfo
from ..storage.tectonic import TectonicFS
from ..trainer.model import DLRM, DLRMConfig
from .config import PipelineConfig

__all__ = ["PipelineResult", "run_pipeline", "land_table"]


@dataclass
class PipelineResult:
    """Every stage's measurements for one configuration."""

    config: PipelineConfig
    scribe: ScribeStats
    scribe_ingest_bytes: int
    #: the landed table rolled up across partitions (storage totals)
    partition: PartitionInfo
    reader: ReaderReport
    training: TrainingReport
    samples_landed: int
    #: per-worker + queue-wait detail behind the merged ``reader`` report
    fleet: FleetReport | None = None
    #: per-partition landing detail behind the rolled-up ``partition``
    partitions: list[PartitionInfo] = field(default_factory=list)
    #: wall-clock attribution of the train loop: reader-stall vs
    #: trainer-stall (populated for streaming and materialized runs)
    overlap: OverlapReport | None = None

    # -- the Fig 7 headline metrics ------------------------------------------

    @property
    def trainer_qps(self) -> float:
        return self.training.mean_samples_per_second

    @property
    def reader_qps(self) -> float:
        return self.reader.samples_per_cpu_second

    @property
    def storage_compression(self) -> float:
        return self.partition.compression_ratio

    @property
    def scribe_compression(self) -> float:
        return self.scribe.compression_ratio


def _rollup_partitions(partitions: list[PartitionInfo]) -> PartitionInfo:
    """One table-level PartitionInfo summing the landed partitions."""
    if len(partitions) == 1:
        return partitions[0]
    total = PartitionInfo(name="+".join(p.name for p in partitions))
    for p in partitions:
        total.files.extend(p.files)
        total.num_rows += p.num_rows
        total.raw_bytes += p.raw_bytes
        total.compressed_bytes += p.compressed_bytes
    return total


def land_table(
    config: PipelineConfig,
) -> tuple[HiveTable, ScribeStats, int, list[PartitionInfo], list[Sample]]:
    """Stages 1–4: generate, transport, join, land.

    The joined rows land as ``config.num_partitions`` time partitions
    ``p0..p{N-1}`` — contiguous row ranges of the ETL output, mirroring
    the paper's day-partitioned tables — so concatenating the partitions
    in order always reproduces the single-partition row order.
    """
    w = config.workload
    samples = TraceGenerator(
        w.schema,
        TraceConfig(
            seed=config.seed,
            mean_samples_per_session=config.mean_samples_per_session,
        ),
    ).generate_partition(config.num_sessions)

    policy = (
        ShardKeyPolicy.SESSION_ID
        if config.toggles.o1_shard_by_session
        else ShardKeyPolicy.RANDOM
    )
    scribe = ScribeCluster(
        num_shards=config.num_scribe_shards, policy=policy
    )
    for s in samples:
        feat, ev = split_sample(s)
        scribe.log_features(feat)
        scribe.log_event(ev)
    scribe.flush()

    etl = ETLJob(ETLConfig(cluster=config.toggles.o2_cluster_table))
    etl_result = etl.run_from_scribe(scribe)

    fs = TectonicFS()
    # Stripes are small relative to the partition so that a stripe's time
    # window matches the paper's regime: in the interleaved baseline a
    # stripe holds ~1 sample/session (Fig 3), and only clustering (O2)
    # makes a session's duplicates stripe-local.
    table = HiveTable(
        f"{w.name.lower()}_table",
        w.schema,
        fs,
        rows_per_file=8192,
        stripe_rows=64,
    )
    landed = etl_result.samples
    base, extra = divmod(len(landed), config.num_partitions)
    partitions: list[PartitionInfo] = []
    start = 0
    for i in range(config.num_partitions):
        size = base + (1 if i < extra else 0)
        partitions.append(
            table.land_partition(f"p{i}", landed[start : start + size])
        )
        start += size
    return table, scribe.stats, scribe.etl_ingest_bytes, partitions, landed


def run_pipeline(
    config: PipelineConfig,
    track_updates: bool = False,
    streaming: bool | None = None,
) -> PipelineResult:
    """Run every stage and collect the measurements.

    ``streaming`` overrides ``config.streaming`` when given (the A/B
    knob); ``config.train_epochs`` epochs run over every landed
    partition, each epoch capped at ``config.train_batches`` batches.
    """
    table, scribe_stats, ingest_bytes, partitions, samples = land_table(
        config
    )
    stream = config.streaming if streaming is None else streaming
    batch_size = config.effective_batch_size

    # Validate from the landed metadata *before* any reader worker is
    # spawned: an epoch with zero trainable batches must fail fast, not
    # after multiprocessing workers scanned an undersized partition.
    epoch_batches = sum(p.num_rows // batch_size for p in partitions)
    if config.train_batches is not None:
        epoch_batches = min(epoch_batches, config.train_batches)
    if epoch_batches == 0:
        rows = ", ".join(str(p.num_rows) for p in partitions)
        raise ValueError(
            "partition too small for even one batch: "
            f"[{rows}] rows across {len(partitions)} partition(s) "
            f"< batch {batch_size} (train_batches={config.train_batches})"
        )

    w = config.workload
    model = DLRM(
        list(w.schema.sparse),
        DLRMConfig.from_workload(
            w, max_table_rows=config.max_table_rows, seed=config.seed
        ),
        config.toggles.trainer_flags,
    )
    cluster = sim_cluster(
        num_gpus=config.num_gpus, gpus_per_node=config.gpus_per_node
    )
    trainer = DistributedTrainer(model, cluster)
    fleet = ReaderFleet(
        config.num_readers,
        config.dataloader_config(),
        prefetch_depth=config.prefetch_depth,
    )

    partition_names = [p.name for p in partitions]
    reader_total: FleetReport | None = None
    loop_started = time.perf_counter()
    for _ in range(config.train_epochs):
        source = fleet.iter_epoch(
            table, partition_names, max_batches=config.train_batches
        )
        if stream:
            # overlap: trainer steps consume while reader workers decode
            trainer.run(source, track_updates=track_updates)
        else:
            batches = list(source)
            trainer.run(batches, track_updates=track_updates)
        if reader_total is None:
            reader_total = fleet.report
        else:
            reader_total.merge(fleet.report)
    loop_wall = time.perf_counter() - loop_started

    training = trainer.report
    # Both modes attribute the same end-to-end loop wall so the A/B is
    # comparable: in the materialized mode the serialized reader scan
    # (the list() before training) shows up as other_fraction — exactly
    # the time streaming overlaps away.
    overlap = OverlapReport.from_run(
        training,
        queue=reader_total.queue,
        wall_seconds=loop_wall,
        streaming=stream,
    )

    return PipelineResult(
        config=config,
        scribe=scribe_stats,
        scribe_ingest_bytes=ingest_bytes,
        partition=_rollup_partitions(partitions),
        reader=reader_total.merged,
        training=training,
        samples_landed=len(samples),
        fleet=reader_total,
        partitions=partitions,
        overlap=overlap,
    )
