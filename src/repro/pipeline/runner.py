"""The single-job entry point: ``run_pipeline``, now a thin adapter.

Runs one flat :class:`~repro.pipeline.config.PipelineConfig` through
every stage the paper's Figure 1 shows — inference logging -> Scribe
(O1) -> ETL join/cluster (O2) -> Hive/DWRF on Tectonic -> reader tier
(O3/O4) -> distributed trainers (O5–O7) — and returns the per-stage
measurements every evaluation figure draws from.

Since the ``JobSpec``/``Session`` redesign the execution loop lives in
:mod:`~repro.pipeline.session`: this module converts the flat config
via :meth:`~repro.pipeline.spec.JobSpec.from_legacy` and runs a
one-job :class:`~repro.pipeline.session.Session`, which is
bit-identical to the historical dedicated loop at every width, policy,
and lifecycle-knob combination.  ``run_pipeline`` keeps working
unchanged for existing callers; new code should construct a
:class:`~repro.pipeline.spec.JobSpec` and run a ``Session`` directly
(see ``docs/api.md``).

The structural helpers (:func:`land_table`, :func:`build_trainer`,
:func:`plan_retention_windows`) and the result type
(:class:`PipelineResult`) are re-exported from the session module so
their historical import path stays valid.
"""

from __future__ import annotations

import warnings

from .config import PipelineConfig
from .session import (
    PipelineResult,
    Session,
    build_trainer,
    land_table,
    plan_retention_windows,
)
from .spec import JobSpec

__all__ = [
    "PipelineResult",
    "run_pipeline",
    "build_trainer",
    "land_table",
    "plan_retention_windows",
]


def run_pipeline(
    config: PipelineConfig,
    track_updates: bool = False,
    streaming: bool | None = None,
) -> PipelineResult:
    """Run every stage for one flat config and collect the measurements.

    ``config.train_epochs`` epochs run over the landed partitions, each
    epoch capped at ``config.train_batches`` batches.  With
    ``config.retain_partitions`` set, partitions land and age between
    epochs and each epoch scans only the live rolling window; with
    ``config.autoscale`` set, the fleet width is re-decided between
    epochs from the epoch's modeled overlap.

    This is the legacy adapter over
    :class:`~repro.pipeline.session.Session` —
    ``Session(JobSpec.from_legacy(config)).run()`` with the original
    config preserved on the result.

    Args:
        config: the run's parameters.
        track_updates: forward per-step update tracking to the trainer
            (needed by the accuracy experiments).
        streaming: **deprecated** — overrides ``config.streaming`` when
            given.  Set ``PipelineConfig.streaming`` (or
            ``ReaderSpec.streaming``) instead; the keyword survives for
            old A/B harnesses but warns.

    Returns:
        A :class:`PipelineResult` with every stage's measurements.

    Raises:
        ValueError: if the first epoch's landed partitions cannot fill
            a single training batch.
    """
    if streaming is not None:
        warnings.warn(
            "run_pipeline(streaming=...) is deprecated: the keyword "
            "shadowed config.streaming; set streaming on the config "
            "(or ReaderSpec.streaming on a JobSpec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    spec = JobSpec.from_legacy(
        config, streaming=streaming, track_updates=track_updates
    )
    result = Session(spec).run()
    # Hand the caller back their exact config object (to_legacy() is an
    # equal reconstruction, but identity is cheaper to reason about).
    result.config = config
    return result
