"""The end-to-end pipeline runner: Figure 1, in miniature.

Runs one configuration through every stage the paper's Figure 1 shows —
inference logging -> Scribe (O1) -> ETL join/cluster (O2) -> Hive/DWRF on
Tectonic -> reader tier (O3/O4) -> distributed trainers (O5–O7) — and
returns the per-stage measurements every evaluation figure draws from.

The reader→trainer hand-off is **streaming** by default: each epoch the
reader fleet's batch iterator feeds the trainers directly, so reader
decode overlaps trainer steps and the run's wall-clock can be attributed
to reader-stall vs trainer-stall (:class:`~repro.metrics.OverlapReport`).
``streaming=False`` materializes every batch first — bit-identical
training results, no overlap — for A/B comparison.

Two lifecycle knobs extend the loop beyond a static table scan:

* ``autoscale=True`` puts a
  :class:`~repro.reader.autoscale.ReaderAutoscaler` in charge of the
  fleet width: after every epoch it consumes a *modeled* overlap report
  (deterministic, from the reader cost model and the trainer's modeled
  step times) and resizes the fleet for the next epoch, recording each
  decision in a :class:`~repro.metrics.ScalingTrace`.
* ``retain_partitions=K`` turns the landed table into a rolling window:
  only ``K`` time partitions are live at once; between epochs the next
  partition lands and the oldest is dropped (``drop_partition``), and
  each epoch's ``plan_epoch``/``iter_epoch`` scan only the live window —
  the production land→train→age lifecycle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..datagen.generator import TraceConfig, TraceGenerator
from ..datagen.session import Sample
from ..distributed.costmodel import sim_cluster
from ..distributed.trainer import DistributedTrainer, TrainingReport
from ..etl.pipeline import ETLConfig, ETLJob
from ..metrics.overlap import OverlapReport
from ..metrics.scaling import ScalingTrace
from ..reader.autoscale import ReaderAutoscaler
from ..reader.fleet import FleetReport, ReaderFleet
from ..reader.node import ReaderReport
from ..scribe.bus import ScribeCluster, ScribeStats
from ..scribe.message import split_sample
from ..scribe.sharding import ShardKeyPolicy
from ..storage.hive import HiveTable, PartitionInfo
from ..storage.tectonic import TectonicFS
from ..trainer.model import DLRM, DLRMConfig
from .config import PipelineConfig

__all__ = [
    "PipelineResult",
    "run_pipeline",
    "build_trainer",
    "land_table",
    "plan_retention_windows",
]


@dataclass
class PipelineResult:
    """Every stage's measurements for one configuration."""

    config: PipelineConfig
    scribe: ScribeStats
    scribe_ingest_bytes: int
    #: the landed table rolled up across partitions (storage totals)
    partition: PartitionInfo
    reader: ReaderReport
    training: TrainingReport
    samples_landed: int
    #: per-worker + queue-wait detail behind the merged ``reader`` report
    fleet: FleetReport | None = None
    #: per-partition landing detail behind the rolled-up ``partition``
    #: (under retention: every partition that landed, dropped or not)
    partitions: list[PartitionInfo] = field(default_factory=list)
    #: wall-clock attribution of the train loop: reader-stall vs
    #: trainer-stall (populated for streaming and materialized runs)
    overlap: OverlapReport | None = None
    #: which partitions each epoch actually scanned, in epoch order
    epoch_partitions: list[list[str]] = field(default_factory=list)
    #: partitions aged out by rolling-window retention, in drop order
    dropped_partitions: list[str] = field(default_factory=list)
    #: the autoscaler's decision history (``autoscale=True`` runs only)
    scaling: ScalingTrace | None = None

    # -- the Fig 7 headline metrics ------------------------------------------

    @property
    def trainer_qps(self) -> float:
        """Mean trainer throughput in samples/second (Fig 7)."""
        return self.training.mean_samples_per_second

    @property
    def reader_qps(self) -> float:
        """Reader throughput in samples per CPU-second (Fig 7)."""
        return self.reader.samples_per_cpu_second

    @property
    def storage_compression(self) -> float:
        """Landed table compression ratio (raw / compressed bytes)."""
        return self.partition.compression_ratio

    @property
    def scribe_compression(self) -> float:
        """Scribe transport compression ratio."""
        return self.scribe.compression_ratio


def _rollup_partitions(partitions: list[PartitionInfo]) -> PartitionInfo:
    """One table-level PartitionInfo summing the landed partitions."""
    if len(partitions) == 1:
        return partitions[0]
    total = PartitionInfo(name="+".join(p.name for p in partitions))
    for p in partitions:
        total.files.extend(p.files)
        total.num_rows += p.num_rows
        total.raw_bytes += p.raw_bytes
        total.compressed_bytes += p.compressed_bytes
    return total


def _partition_slices(
    total_rows: int, num_partitions: int
) -> list[tuple[int, int]]:
    """Contiguous, near-equal ``[start, stop)`` row slices per partition."""
    base, extra = divmod(total_rows, num_partitions)
    slices: list[tuple[int, int]] = []
    start = 0
    for i in range(num_partitions):
        size = base + (1 if i < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


def plan_retention_windows(
    num_partitions: int, retain_partitions: int, train_epochs: int
) -> list[list[int]]:
    """Which partition indices each epoch scans under retention.

    Epoch 0 opens on the first ``min(retain_partitions,
    num_partitions)`` partitions; between epochs the window slides one
    partition forward — the next partition lands, the oldest ages out —
    until the stream of ``num_partitions`` time partitions is exhausted,
    after which the window stays put.

    Args:
        num_partitions: total time partitions in the stream.
        retain_partitions: maximum live partitions at any moment.
        train_epochs: epochs to plan.

    Returns:
        One list of partition indices per epoch, each of length at most
        ``retain_partitions``.

    Raises:
        ValueError: if any argument is not positive.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    if retain_partitions <= 0:
        raise ValueError("retain_partitions must be positive")
    if train_epochs <= 0:
        raise ValueError("train_epochs must be positive")
    window = min(retain_partitions, num_partitions)
    lo, hi = 0, window - 1
    windows: list[list[int]] = []
    for _ in range(train_epochs):
        windows.append(list(range(lo, hi + 1)))
        if hi < num_partitions - 1:
            hi += 1
            if hi - lo + 1 > window:
                lo += 1
    return windows


def _prepare_table(
    config: PipelineConfig,
) -> tuple[HiveTable, ScribeStats, int, list[Sample]]:
    """Stages 1–3: generate, transport, join — nothing landed yet."""
    w = config.workload
    samples = TraceGenerator(
        w.schema,
        TraceConfig(
            seed=config.seed,
            mean_samples_per_session=config.mean_samples_per_session,
        ),
    ).generate_partition(config.num_sessions)

    policy = (
        ShardKeyPolicy.SESSION_ID
        if config.toggles.o1_shard_by_session
        else ShardKeyPolicy.RANDOM
    )
    scribe = ScribeCluster(
        num_shards=config.num_scribe_shards, policy=policy
    )
    for s in samples:
        feat, ev = split_sample(s)
        scribe.log_features(feat)
        scribe.log_event(ev)
    scribe.flush()

    etl = ETLJob(ETLConfig(cluster=config.toggles.o2_cluster_table))
    etl_result = etl.run_from_scribe(scribe)

    fs = TectonicFS()
    # Stripes are small relative to the partition so that a stripe's time
    # window matches the paper's regime: in the interleaved baseline a
    # stripe holds ~1 sample/session (Fig 3), and only clustering (O2)
    # makes a session's duplicates stripe-local.
    table = HiveTable(
        f"{w.name.lower()}_table",
        w.schema,
        fs,
        rows_per_file=8192,
        stripe_rows=64,
    )
    return table, scribe.stats, scribe.etl_ingest_bytes, etl_result.samples


def land_table(
    config: PipelineConfig,
) -> tuple[HiveTable, ScribeStats, int, list[PartitionInfo], list[Sample]]:
    """Stages 1–4: generate, transport, join, land.

    The joined rows land as ``config.num_partitions`` time partitions
    ``p0..p{N-1}`` — contiguous row ranges of the ETL output, mirroring
    the paper's day-partitioned tables — so concatenating the partitions
    in order always reproduces the single-partition row order.

    Args:
        config: the run's parameters (workload, toggles, partitioning).

    Returns:
        ``(table, scribe_stats, etl_ingest_bytes, partitions, samples)``
        — the landed table, transport stats, and the joined row list.
    """
    table, scribe_stats, ingest_bytes, landed = _prepare_table(config)
    partitions = [
        table.land_partition(f"p{i}", landed[start:stop])
        for i, (start, stop) in enumerate(
            _partition_slices(len(landed), config.num_partitions)
        )
    ]
    return table, scribe_stats, ingest_bytes, partitions, landed


def _validate_epoch_batches(
    config: PipelineConfig, partitions: list[PartitionInfo]
) -> None:
    """Fail fast if the first epoch cannot fill a single batch.

    Validates from the landed metadata *before* any reader worker is
    spawned: an epoch with zero trainable batches must fail, not after
    multiprocessing workers scanned an undersized partition.
    """
    batch_size = config.effective_batch_size
    epoch_batches = sum(p.num_rows // batch_size for p in partitions)
    if config.train_batches is not None:
        epoch_batches = min(epoch_batches, config.train_batches)
    if epoch_batches == 0:
        rows = ", ".join(str(p.num_rows) for p in partitions)
        raise ValueError(
            "partition too small for even one batch: "
            f"[{rows}] rows across {len(partitions)} partition(s) "
            f"< batch {batch_size} (train_batches={config.train_batches})"
        )


def build_trainer(config: PipelineConfig) -> DistributedTrainer:
    """The run's trainer: a seeded DLRM under the modeled cluster.

    Split out of :func:`run_pipeline` so multi-job sharing
    (:func:`~repro.pipeline.multi_job.run_multi_job`) builds each job's
    trainer exactly the way a single-job run would — which is what makes
    per-job losses under sharing bit-identical to solo runs.
    """
    w = config.workload
    model = DLRM(
        list(w.schema.sparse),
        DLRMConfig.from_workload(
            w, max_table_rows=config.max_table_rows, seed=config.seed
        ),
        config.toggles.trainer_flags,
    )
    cluster = sim_cluster(
        num_gpus=config.num_gpus, gpus_per_node=config.gpus_per_node
    )
    return DistributedTrainer(model, cluster)


def run_pipeline(
    config: PipelineConfig,
    track_updates: bool = False,
    streaming: bool | None = None,
) -> PipelineResult:
    """Run every stage and collect the measurements.

    ``config.train_epochs`` epochs run over the landed partitions, each
    epoch capped at ``config.train_batches`` batches.  With
    ``config.retain_partitions`` set, partitions land and age between
    epochs and each epoch scans only the live rolling window; with
    ``config.autoscale`` set, the fleet width is re-decided between
    epochs from the epoch's modeled overlap.

    Args:
        config: the run's parameters.
        track_updates: forward per-step update tracking to the trainer
            (needed by the accuracy experiments).
        streaming: overrides ``config.streaming`` when given (the A/B
            knob) — ``True`` streams reader batches into the trainers,
            ``False`` materializes each epoch first.

    Returns:
        A :class:`PipelineResult` with every stage's measurements.

    Raises:
        ValueError: if the first epoch's landed partitions cannot fill
            a single training batch.
    """
    stream = config.streaming if streaming is None else streaming
    retention = config.retain_partitions is not None

    if retention:
        table, scribe_stats, ingest_bytes, samples = _prepare_table(config)
        slices = _partition_slices(len(samples), config.num_partitions)
        windows = plan_retention_windows(
            config.num_partitions,
            config.retain_partitions,
            config.train_epochs,
        )
        landed: dict[int, PartitionInfo] = {}
        partitions = []  # every partition ever landed, in landing order
    else:
        table, scribe_stats, ingest_bytes, partitions, samples = land_table(
            config
        )
        windows = [list(range(config.num_partitions))] * config.train_epochs
        landed = dict(enumerate(partitions))
        _validate_epoch_batches(config, partitions)

    trainer = build_trainer(config)

    width = config.num_readers
    autoscaler = (
        ReaderAutoscaler(
            width,
            target_stall=config.target_stall,
            max_readers=config.max_readers,
        )
        if config.autoscale
        else None
    )

    reader_total: FleetReport | None = None
    epoch_partitions: list[list[str]] = []
    loop_started = time.perf_counter()
    for epoch, window in enumerate(windows):
        if retention:
            # Land this window's new partitions, then age out anything
            # older than the window — the between-epoch lifecycle.
            for idx in window:
                if idx not in landed:
                    start, stop = slices[idx]
                    landed[idx] = table.land_partition(
                        f"p{idx}", samples[start:stop]
                    )
                    partitions.append(landed[idx])
            for idx in [i for i in sorted(landed) if i < window[0]]:
                table.drop_partition(f"p{idx}")
                del landed[idx]
            if epoch == 0:
                _validate_epoch_batches(
                    config, [landed[idx] for idx in window]
                )

        names = [f"p{idx}" for idx in window]
        epoch_partitions.append(names)
        fleet = ReaderFleet(
            width,
            config.dataloader_config(),
            prefetch_depth=config.prefetch_depth,
            executor=config.reader_executor,
        )
        source = fleet.iter_epoch(
            table, names, max_batches=config.train_batches
        )
        steps_before = len(trainer.report.iterations)
        if stream:
            # overlap: trainer steps consume while reader workers decode
            trainer.run(source, track_updates=track_updates)
        else:
            batches = list(source)
            trainer.run(batches, track_updates=track_updates)
        if reader_total is None:
            reader_total = fleet.report
        else:
            reader_total.merge(fleet.report)

        if autoscaler is not None:
            # Feed the controller the epoch's *modeled* overlap — reader
            # cost-model seconds spread across the width vs the trainer's
            # modeled step time — so its decisions are deterministic.
            epoch_steps = trainer.report.iterations[steps_before:]
            modeled = OverlapReport.modeled(
                reader_wall_seconds=fleet.report.balanced_wall_seconds(
                    width
                ),
                trainer_busy_seconds=sum(
                    it.iteration_seconds for it in epoch_steps
                ),
                batches=len(epoch_steps),
                streaming=stream,
            )
            width = autoscaler.observe(modeled, epoch=epoch)
    loop_wall = time.perf_counter() - loop_started

    training = trainer.report
    # Both modes attribute the same end-to-end loop wall so the A/B is
    # comparable: in the materialized mode the serialized reader scan
    # (the list() before training) shows up as other_fraction — exactly
    # the time streaming overlaps away.
    overlap = OverlapReport.from_run(
        training,
        queue=reader_total.queue,
        wall_seconds=loop_wall,
        streaming=stream,
    )

    return PipelineResult(
        config=config,
        scribe=scribe_stats,
        scribe_ingest_bytes=ingest_bytes,
        partition=_rollup_partitions(partitions),
        reader=reader_total.merged,
        training=training,
        samples_landed=len(samples),
        fleet=reader_total,
        partitions=partitions,
        overlap=overlap,
        epoch_partitions=epoch_partitions,
        dropped_partitions=list(table.dropped),
        scaling=autoscaler.trace if autoscaler is not None else None,
    )
