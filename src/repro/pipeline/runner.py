"""The end-to-end pipeline runner: Figure 1, in miniature.

Runs one configuration through every stage the paper's Figure 1 shows —
inference logging -> Scribe (O1) -> ETL join/cluster (O2) -> Hive/DWRF on
Tectonic -> reader tier (O3/O4) -> distributed trainers (O5–O7) — and
returns the per-stage measurements every evaluation figure draws from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datagen.generator import TraceConfig, TraceGenerator
from ..datagen.session import Sample
from ..distributed.costmodel import sim_cluster
from ..distributed.trainer import DistributedTrainer, TrainingReport
from ..etl.pipeline import ETLConfig, ETLJob
from ..reader.fleet import FleetReport, ReaderFleet
from ..reader.node import ReaderReport
from ..scribe.bus import ScribeCluster, ScribeStats
from ..scribe.message import split_sample
from ..scribe.sharding import ShardKeyPolicy
from ..storage.hive import HiveTable, PartitionInfo
from ..storage.tectonic import TectonicFS
from ..trainer.model import DLRM, DLRMConfig
from .config import PipelineConfig

__all__ = ["PipelineResult", "run_pipeline", "land_table"]


@dataclass
class PipelineResult:
    """Every stage's measurements for one configuration."""

    config: PipelineConfig
    scribe: ScribeStats
    scribe_ingest_bytes: int
    partition: PartitionInfo
    reader: ReaderReport
    training: TrainingReport
    samples_landed: int
    #: per-worker + queue-wait detail behind the merged ``reader`` report
    fleet: FleetReport | None = None

    # -- the Fig 7 headline metrics ------------------------------------------

    @property
    def trainer_qps(self) -> float:
        return self.training.mean_samples_per_second

    @property
    def reader_qps(self) -> float:
        return self.reader.samples_per_cpu_second

    @property
    def storage_compression(self) -> float:
        return self.partition.compression_ratio

    @property
    def scribe_compression(self) -> float:
        return self.scribe.compression_ratio


def land_table(
    config: PipelineConfig,
) -> tuple[HiveTable, ScribeStats, int, PartitionInfo, list[Sample]]:
    """Stages 1–4: generate, transport, join, land."""
    w = config.workload
    samples = TraceGenerator(
        w.schema,
        TraceConfig(
            seed=config.seed,
            mean_samples_per_session=config.mean_samples_per_session,
        ),
    ).generate_partition(config.num_sessions)

    policy = (
        ShardKeyPolicy.SESSION_ID
        if config.toggles.o1_shard_by_session
        else ShardKeyPolicy.RANDOM
    )
    scribe = ScribeCluster(
        num_shards=config.num_scribe_shards, policy=policy
    )
    for s in samples:
        feat, ev = split_sample(s)
        scribe.log_features(feat)
        scribe.log_event(ev)
    scribe.flush()

    etl = ETLJob(ETLConfig(cluster=config.toggles.o2_cluster_table))
    etl_result = etl.run_from_scribe(scribe)

    fs = TectonicFS()
    # Stripes are small relative to the partition so that a stripe's time
    # window matches the paper's regime: in the interleaved baseline a
    # stripe holds ~1 sample/session (Fig 3), and only clustering (O2)
    # makes a session's duplicates stripe-local.
    table = HiveTable(
        f"{w.name.lower()}_table",
        w.schema,
        fs,
        rows_per_file=8192,
        stripe_rows=64,
    )
    partition = table.land_partition("p0", etl_result.samples)
    return table, scribe.stats, scribe.etl_ingest_bytes, partition, etl_result.samples


def run_pipeline(config: PipelineConfig, track_updates: bool = False) -> PipelineResult:
    """Run every stage and collect the measurements."""
    table, scribe_stats, ingest_bytes, partition, samples = land_table(config)

    fleet = ReaderFleet(
        config.num_readers,
        config.dataloader_config(),
        prefetch_depth=config.prefetch_depth,
    )
    batches = fleet.run(table, "p0", max_batches=config.train_batches)
    if not batches:
        raise ValueError(
            "partition too small for even one batch: "
            f"{partition.num_rows} rows < batch {config.effective_batch_size}"
        )

    w = config.workload
    model = DLRM(
        list(w.schema.sparse),
        DLRMConfig.from_workload(
            w, max_table_rows=config.max_table_rows, seed=config.seed
        ),
        config.toggles.trainer_flags,
    )
    cluster = sim_cluster(
        num_gpus=config.num_gpus, gpus_per_node=config.gpus_per_node
    )
    trainer = DistributedTrainer(model, cluster)
    training = trainer.run(batches, track_updates=track_updates)

    return PipelineResult(
        config=config,
        scribe=scribe_stats,
        scribe_ingest_bytes=ingest_bytes,
        partition=partition,
        reader=fleet.report.merged,
        training=training,
        samples_landed=len(samples),
        fleet=fleet.report,
    )
