"""Experiment drivers: one function per paper figure/table (§3, §6).

Each driver runs the relevant configurations through the pipeline and
returns a small result object whose fields mirror the paper's reported
rows/series.  The benchmark harness prints them; EXPERIMENTS.md records
paper-vs-measured.

The matrix-driven successors live in :mod:`repro.experiments`: the
same figures rendered from the results store
(:mod:`repro.experiments.report`), populated by ``repro experiments
run`` instead of re-executing configs inline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.analytics import dedupe_factor
from ..core.dedup import measured_dedupe_factor
from ..core.jagged import JaggedTensor
from ..core.partial import PartialJaggedTensor
from ..datagen.characterization import (
    CharacterizationReport,
    batch_samples_per_session,
    characterization_schema,
    characterize_schema,
)
from ..datagen.generator import TraceConfig, TraceGenerator
from ..datagen.session import sample_session_sizes, session_size_stats
from ..datagen.workloads import RMWorkload, rm1, rm2, rm3
from ..metrics.breakdown import IterationBreakdown, ReaderCpuBreakdown
from ..reader.node import ReaderNode
from .config import PipelineConfig, RecDToggles
from .runner import PipelineResult, land_table, run_pipeline

__all__ = [
    "Fig3Result",
    "fig3_session_histogram",
    "fig4_duplication",
    "Fig7Row",
    "fig7_end_to_end",
    "Fig8Row",
    "fig8_iteration_breakdown",
    "Fig9Stage",
    "fig9_ablation",
    "Table2Row",
    "table2_resource_util",
    "Table3Row",
    "table3_reader_bytes",
    "Fig10Row",
    "fig10_reader_cpu",
    "scribe_sharding_compression",
    "single_node_speedup",
    "AccuracyResult",
    "accuracy_clustering",
    "DedupeModelPoint",
    "dedupe_factor_model_sweep",
    "PartialResult",
    "partial_vs_exact",
]


# ---------------------------------------------------------------------------
# Fig 3: samples/session in partition vs in batch
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Fig 3: samples/session in the partition vs in a batch."""

    partition_stats: dict[str, float]
    batch_mean_interleaved: float
    batch_mean_clustered: float
    histogram_counts: np.ndarray
    histogram_edges: np.ndarray


def fig3_session_histogram(
    num_sessions: int = 100_000, batch_size: int = 4096, seed: int = 0
) -> Fig3Result:
    """Fig 3: partition-level histogram (left) and per-batch means (right).

    At partition scale only session *sizes* matter, so sizes are drawn
    directly; the in-batch interleaving statistic is computed from a
    materialized (feature-free) trace ordered by timestamp.
    """
    rng = np.random.default_rng(seed)
    sizes = sample_session_sizes(num_sessions, rng=rng)
    stats = session_size_stats(sizes)
    counts, edges = np.histogram(
        sizes,
        bins=np.logspace(0, np.log10(max(sizes.max(), 10) * 1.01), 40),
    )
    # interleaving: simulate timestamp ordering without features
    starts = rng.uniform(0, 3600.0, size=num_sessions)
    durations = rng.uniform(0.3, 1.0, size=num_sessions) * 3600.0
    session_ids = np.repeat(np.arange(num_sessions), sizes)
    ts = np.repeat(starts, sizes) + rng.random(sizes.sum()) * np.repeat(
        durations, sizes
    )
    order = np.argsort(ts, kind="stable")
    interleaved = batch_samples_per_session(session_ids[order], batch_size)
    clustered = batch_samples_per_session(
        np.sort(session_ids), batch_size
    )
    return Fig3Result(
        partition_stats=stats,
        batch_mean_interleaved=float(interleaved.mean()),
        batch_mean_clustered=float(clustered.mean()),
        histogram_counts=counts,
        histogram_edges=edges,
    )


# ---------------------------------------------------------------------------
# Fig 4: per-feature duplication
# ---------------------------------------------------------------------------


def fig4_duplication(
    num_features: int = 733, num_sessions: int = 20_000, seed: int = 0
) -> CharacterizationReport:
    """Fig 4 over a paper-shaped 733-feature schema."""
    return characterize_schema(
        characterization_schema(num_features=num_features),
        num_sessions=num_sessions,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Fig 7: end-to-end trainer / reader / storage across RMs
# ---------------------------------------------------------------------------


def _workloads(scale: float) -> list[RMWorkload]:
    return [rm1(scale), rm2(scale), rm3(scale)]


@dataclass
class Fig7Row:
    """Fig 7: one workload's end-to-end RecD-vs-baseline speedups."""

    rm: str
    trainer_x: float
    reader_x: float
    storage_x: float
    scribe_x: float
    baseline: PipelineResult
    recd: PipelineResult


def fig7_end_to_end(
    scale: float = 1.0,
    num_sessions: int = 250,
    train_batches: int = 2,
    seed: int = 0,
) -> list[Fig7Row]:
    """Fig 7: trainer/reader/storage/scribe speedups per workload."""
    rows = []
    for w in _workloads(scale):
        # RM3's production table exhibits fewer samples/session, which is
        # why its storage gain is smaller (§6.1: 2.06x vs 3.71x).
        if w.name == "RM3":
            sessions, s_mean = int(num_sessions * 3.0), 5.0
        else:
            sessions, s_mean = num_sessions, 16.5
        base = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.baseline(),
                num_sessions=sessions,
                mean_samples_per_session=s_mean,
                train_batches=train_batches,
                seed=seed,
            )
        )
        recd = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.full(),
                num_sessions=sessions,
                mean_samples_per_session=s_mean,
                train_batches=train_batches,
                seed=seed,
            )
        )
        rows.append(
            Fig7Row(
                rm=w.name,
                trainer_x=recd.trainer_qps / base.trainer_qps,
                reader_x=recd.reader_qps / base.reader_qps,
                storage_x=recd.storage_compression / base.storage_compression,
                scribe_x=recd.scribe_compression / base.scribe_compression,
                baseline=base,
                recd=recd,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig 8: iteration latency breakdown at equal batch size
# ---------------------------------------------------------------------------


@dataclass
class Fig8Row:
    """Fig 8: one workload's trainer iteration-latency breakdown."""

    rm: str
    baseline: IterationBreakdown
    recd: IterationBreakdown
    recd_normalized: dict[str, float]


def fig8_iteration_breakdown(
    scale: float = 1.0, num_sessions: int = 250, seed: int = 0
) -> list[Fig8Row]:
    """Fig 8 uses the *same batch size* as the baseline for each RM."""
    rows = []
    for w in _workloads(scale):
        base = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.baseline(),
                num_sessions=num_sessions,
                batch_size=w.baseline_batch_size,
                seed=seed,
            )
        )
        recd = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.full(),
                num_sessions=num_sessions,
                batch_size=w.baseline_batch_size,
                seed=seed,
            )
        )
        b = base.training.mean_breakdown
        r = recd.training.mean_breakdown
        rows.append(
            Fig8Row(
                rm=w.name,
                baseline=b,
                recd=r,
                recd_normalized=r.normalized_to(b),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig 9: RM1 ablation
# ---------------------------------------------------------------------------


@dataclass
class Fig9Stage:
    """Fig 9: one ablation stage's throughput and normalization."""

    label: str
    qps: float
    normalized: float


def fig9_ablation(
    scale: float = 1.0, num_sessions: int = 250, seed: int = 0
) -> list[Fig9Stage]:
    """Paper stages: Baseline(B2048) -> +CT -> +DE/JIS(B4096) ->
    +DC(B4096) -> +B6144; our batch sizes scale as B, B, 2B, 2B, 3B."""
    w = rm1(scale)
    B = w.baseline_batch_size
    stages = [
        ("Baseline B1x", RecDToggles.baseline(), B),
        ("O2 CT", RecDToggles(o1_shard_by_session=True, o2_cluster_table=True), B),
        (
            "+O5 DE +O6 JIS B2x",
            RecDToggles(
                o1_shard_by_session=True,
                o2_cluster_table=True,
                o3_ikjt=True,
                o5_dedup_emb=True,
                o6_jagged_index_select=True,
            ),
            2 * B,
        ),
        ("+O7 DC B2x", RecDToggles.full(), 2 * B),
        ("+B3x", RecDToggles.full(), 3 * B),
    ]
    results: list[Fig9Stage] = []
    base_qps: float | None = None
    for label, toggles, batch in stages:
        res = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=toggles,
                num_sessions=num_sessions,
                batch_size=batch,
                seed=seed,
            )
        )
        qps = res.trainer_qps
        if base_qps is None:
            base_qps = qps
        results.append(Fig9Stage(label=label, qps=qps, normalized=qps / base_qps))
    return results


# ---------------------------------------------------------------------------
# Table 2: trainer resource utilization for RM1
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    """Table 2: one configuration's resource-utilization summary."""

    config: str
    norm_qps: float
    max_mem_util: float
    avg_mem_util: float
    norm_compute_efficiency: float


def table2_resource_util(
    scale: float = 1.0, num_sessions: int = 250, seed: int = 0
) -> list[Table2Row]:
    """Table 2: QPS, memory utilization, and compute efficiency."""
    w = rm1(scale)
    B = w.baseline_batch_size
    # The paper reinvests RecD's freed memory in 2x embedding dims (128 ->
    # 256).  Our simulation frees a smaller fraction (see EXPERIMENTS.md),
    # so the equivalent "largest dim that fits" step is 1.5x.
    configs = [
        ("Baseline", w, RecDToggles.baseline(), B),
        ("RecD", w, RecDToggles.full(), B),
        (
            "RecD + EMB D1.5x",
            replace(w, embedding_dim=int(1.5 * w.embedding_dim)),
            RecDToggles.full(),
            B,
        ),
        ("RecD + B3x", w, RecDToggles.full(), 3 * B),
    ]
    runs = []
    for label, workload, toggles, batch in configs:
        res = run_pipeline(
            PipelineConfig(
                workload=workload,
                toggles=toggles,
                num_sessions=num_sessions,
                batch_size=batch,
                # small hash-capped tables keep dynamic activations the
                # dominant memory term, matching the paper's setting
                # (baseline Table 2 has ~80% of memory in dynamic state)
                max_table_rows=500,
                seed=seed,
            )
        )
        runs.append((label, res))
    # capacity chosen so the baseline batch "required the entirety of GPU
    # memory" (§6.2): baseline peak = 99.9% utilization.
    base = runs[0][1]
    capacity = max(
        r.max_mem_bytes for r in base.training.iterations
    ) / 0.999
    base_qps = base.trainer_qps
    base_eff = base.training.mean_flops_per_gpu_second
    rows = []
    for label, res in runs:
        peak = max(r.max_mem_bytes for r in res.training.iterations)
        avg = np.mean(
            [
                (r.static_mem_bytes + 0.4 * r.dynamic_mem_bytes)
                for r in res.training.iterations
            ]
        )
        rows.append(
            Table2Row(
                config=label,
                norm_qps=res.trainer_qps / base_qps,
                max_mem_util=peak / capacity,
                avg_mem_util=float(avg) / capacity,
                norm_compute_efficiency=(
                    res.training.mean_flops_per_gpu_second / base_eff
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3: reader ingest & egress bytes for a fixed number of samples
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    """Table 3: one configuration's reader ingest/egress bytes."""

    config: str
    read_bytes: int
    send_bytes: int


def table3_reader_bytes(
    scale: float = 1.0, num_sessions: int = 250, seed: int = 0
) -> list[Table3Row]:
    """Table 3: bytes read off storage and sent to trainers."""
    w = rm1(scale)
    B = w.baseline_batch_size
    variants = [
        ("Baseline", RecDToggles.baseline()),
        (
            "with Cluster",
            RecDToggles(o1_shard_by_session=True, o2_cluster_table=True),
        ),
        ("with IKJT", RecDToggles.full()),
    ]
    # a fixed number of samples across all variants
    rows: list[Table3Row] = []
    fixed_batches: int | None = None
    for label, toggles in variants:
        cfg = PipelineConfig(
            workload=w,
            toggles=toggles,
            num_sessions=num_sessions,
            batch_size=B,
            seed=seed,
        )
        table, _, _, partitions, _ = land_table(cfg)
        if fixed_batches is None:
            fixed_batches = partitions[0].num_rows // B
        node = ReaderNode(cfg.dataloader_config())
        node.run_all(table.open_readers("p0"), max_batches=fixed_batches)
        rows.append(
            Table3Row(
                config=label,
                read_bytes=node.report.read_bytes,
                send_bytes=node.report.send_bytes,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig 10: reader CPU breakdown
# ---------------------------------------------------------------------------


@dataclass
class Fig10Row:
    """Fig 10: one workload's reader CPU-phase breakdown."""

    rm: str
    baseline: ReaderCpuBreakdown
    recd: ReaderCpuBreakdown
    recd_normalized: dict[str, float]


def fig10_reader_cpu(
    scale: float = 1.0, num_sessions: int = 200, seed: int = 0
) -> list[Fig10Row]:
    """Fig 10: Fill/Convert/Process CPU, baseline vs RecD."""
    rows = []
    for w in _workloads(scale):
        base = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.baseline(),
                num_sessions=num_sessions,
                batch_size=w.baseline_batch_size,
                train_batches=1,
                seed=seed,
            )
        )
        recd = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=RecDToggles.full(),
                num_sessions=num_sessions,
                batch_size=w.baseline_batch_size,
                train_batches=1,
                seed=seed,
            )
        )
        rows.append(
            Fig10Row(
                rm=w.name,
                baseline=base.reader.cpu,
                recd=recd.reader.cpu,
                recd_normalized=recd.reader.cpu.normalized_to(base.reader.cpu),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# §6.1: Scribe sharding compression (O1 alone)
# ---------------------------------------------------------------------------


def scribe_sharding_compression(
    scale: float = 1.0, num_sessions: int = 300, seed: int = 0
) -> dict[str, float]:
    """Paper: 1.50x (random) -> 2.25x (session sharding)."""
    w = rm1(scale)
    random_cfg = PipelineConfig(
        workload=w, toggles=RecDToggles.baseline(), num_sessions=num_sessions,
        seed=seed,
    )
    session_cfg = PipelineConfig(
        workload=w,
        toggles=RecDToggles(o1_shard_by_session=True),
        num_sessions=num_sessions,
        seed=seed,
    )
    _, random_stats, _, _, _ = land_table(random_cfg)
    _, session_stats, _, _, _ = land_table(session_cfg)
    return {
        "random": random_stats.compression_ratio,
        "session": session_stats.compression_ratio,
    }


# ---------------------------------------------------------------------------
# §6.2: single-node training
# ---------------------------------------------------------------------------


def single_node_speedup(
    scale: float = 0.5, num_sessions: int = 250, seed: int = 0
) -> dict[str, float]:
    """Downsized RM1 on one 8-GPU node (NVLink): paper reports 2.18x."""
    w = rm1(scale)
    results = {}
    for name, toggles, batch in [
        ("baseline", RecDToggles.baseline(), w.baseline_batch_size),
        ("recd", RecDToggles.full(), w.recd_batch_size),
    ]:
        res = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=toggles,
                num_sessions=num_sessions,
                num_gpus=8,
                gpus_per_node=8,
                batch_size=batch,
                seed=seed,
            )
        )
        results[name] = res.trainer_qps
    results["speedup"] = results["recd"] / results["baseline"]
    return results


# ---------------------------------------------------------------------------
# §6.2: clustering's accuracy mechanism (repeat sparse updates)
# ---------------------------------------------------------------------------


@dataclass
class AccuracyResult:
    """Repeat-update statistics: how many distinct iterations touched each
    embedding row.  Clustering concentrates a session's duplicates into one
    batch, so rows see fewer repeat updates — the §6.2 overfitting
    mechanism."""

    interleaved_repeat_fraction: float
    clustered_repeat_fraction: float
    interleaved_loss: float
    clustered_loss: float


def accuracy_clustering(
    scale: float = 0.5, num_sessions: int = 200, train_batches: int = 6,
    seed: int = 0,
) -> AccuracyResult:
    """§6.2: training-accuracy parity of clustered vs interleaved."""
    w = rm1(scale)

    def run(clustered: bool):
        """One training run, clustered (O2) or interleaved."""
        toggles = (
            RecDToggles(o1_shard_by_session=True, o2_cluster_table=True)
            if clustered
            else RecDToggles.baseline()
        )
        res = run_pipeline(
            PipelineConfig(
                workload=w,
                toggles=toggles,
                num_sessions=num_sessions,
                batch_size=w.baseline_batch_size,
                train_batches=train_batches,
                seed=seed,
            ),
            track_updates=True,
        )
        return res

    inter = run(False)
    clus = run(True)
    return AccuracyResult(
        interleaved_repeat_fraction=_repeat_fraction_for(w, False, num_sessions, train_batches, seed),
        clustered_repeat_fraction=_repeat_fraction_for(w, True, num_sessions, train_batches, seed),
        interleaved_loss=float(np.mean([r.loss for r in inter.training.iterations])),
        clustered_loss=float(np.mean([r.loss for r in clus.training.iterations])),
    )


def _repeat_fraction_for(
    w: RMWorkload, clustered: bool, num_sessions: int, train_batches: int,
    seed: int,
) -> float:
    """Fraction of touched embedding rows updated in >1 iteration."""
    from ..distributed.costmodel import sim_cluster
    from ..distributed.trainer import DistributedTrainer
    from ..trainer.model import DLRM, DLRMConfig

    toggles = (
        RecDToggles(o1_shard_by_session=True, o2_cluster_table=True)
        if clustered
        else RecDToggles.baseline()
    )
    cfg = PipelineConfig(
        workload=w,
        toggles=toggles,
        num_sessions=num_sessions,
        batch_size=w.baseline_batch_size,
        train_batches=train_batches,
        seed=seed,
    )
    table, _, _, _, _ = land_table(cfg)
    node = ReaderNode(cfg.dataloader_config())
    batches = node.run_all(table.open_readers("p0"), max_batches=train_batches)
    model = DLRM(
        list(w.schema.sparse),
        DLRMConfig.from_workload(w, max_table_rows=cfg.max_table_rows, seed=seed),
        toggles.trainer_flags,
    )
    trainer = DistributedTrainer(model, sim_cluster(num_gpus=8))
    trainer.run(batches, track_updates=True)
    touched = 0
    repeated = 0
    for t in model.sparse_arch.tables():
        for _, count in t.update_events.items():
            touched += 1
            if count > 1:
                repeated += 1
    return repeated / max(touched, 1)


# ---------------------------------------------------------------------------
# §4.2: the DedupeFactor analytical model vs measurement
# ---------------------------------------------------------------------------


@dataclass
class DedupeModelPoint:
    """One point of the §3 dedupe-factor model sweep."""

    samples_per_session: float
    d: float
    modeled: float
    measured: float


def dedupe_factor_model_sweep(seed: int = 0) -> list[DedupeModelPoint]:
    """Sweep S and d(f); compare DedupeFactor(f) with the measured ratio
    on batches generated to the model's assumptions."""
    rng = np.random.default_rng(seed)
    points = []
    for s in (2, 4, 8, 16):
        for d in (0.0, 0.5, 0.8, 0.95):
            rows = []
            next_id = 0
            for _ in range(200):  # sessions
                next_id += 1
                current = next_id
                rows.append([current] * 4)
                for _ in range(s - 1):
                    if rng.random() > d:
                        next_id += 1
                        current = next_id
                    rows.append([current] * 4)
            jt = JaggedTensor.from_lists(rows)
            points.append(
                DedupeModelPoint(
                    samples_per_session=s,
                    d=d,
                    modeled=dedupe_factor(4, len(rows), s, d),
                    measured=measured_dedupe_factor(jt),
                )
            )
    return points


# ---------------------------------------------------------------------------
# §7: partial IKJTs
# ---------------------------------------------------------------------------


@dataclass
class PartialResult:
    """Exact vs partial dedupe factors and captured fractions."""

    exact_factor: float
    partial_factor: float
    exact_captured_fraction: float
    partial_captured_fraction: float


def partial_vs_exact(
    num_sessions: int = 150, seed: int = 0
) -> PartialResult:
    """§7: partial IKJTs capture shifted lists exact dedup misses."""
    from ..datagen.schema import DatasetSchema, SparseFeatureSpec

    schema = DatasetSchema(
        sparse=(
            SparseFeatureSpec(
                "hist", avg_length=24, change_prob=0.35
            ),  # shifts often: partial's sweet spot
        )
    )
    samples = TraceGenerator(
        schema, TraceConfig(seed=seed)
    ).generate_partition(num_sessions)
    # cluster so duplicates are batch-local
    samples.sort(key=lambda s: (s.session_id, s.timestamp))
    rows = [s.sparse["hist"] for s in samples]
    jt = JaggedTensor.from_lists(rows)
    exact = measured_dedupe_factor(jt)
    partial = PartialJaggedTensor.from_jagged(jt).dedupe_factor()
    return PartialResult(
        exact_factor=exact,
        partial_factor=partial,
        exact_captured_fraction=1.0 - 1.0 / exact,
        partial_captured_fraction=1.0 - 1.0 / partial,
    )
