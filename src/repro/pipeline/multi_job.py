"""Many trainer jobs sharing one reader tier: ``run_multi_job``.

:func:`run_multi_job` is the multi-job counterpart of
:func:`~repro.pipeline.runner.run_pipeline`: every job's table is
landed and its trainer built exactly as a single-job run would, then
one :class:`~repro.reader.tier_scheduler.SharedReaderTier` — one pool
of reader workers — is multiplexed across all jobs' epochs.

Since the ``JobSpec``/``Session`` redesign this module is a thin
adapter: each flat config converts via
:meth:`~repro.pipeline.spec.JobSpec.from_legacy` and a multi-job
:class:`~repro.pipeline.session.Session` runs the shared epoch loop.
Because that loop is the *same* engine single-job runs use, the
restrictions the old dedicated wiring imposed are gone:

* **Rolling-window retention** (``retain_partitions`` /
  :class:`~repro.pipeline.spec.RetentionSpec`) now works under sharing
  — each job lands its next window and ages out expired partitions
  immediately before each of its scheduled epochs, and its losses stay
  bit-identical to the equivalent solo retention run.
* **Per-job autoscale** no longer raises: a job's scaling intent
  contributes to the shared pool's autoscaler (there is still exactly
  one pool-level width; tightest ``target_stall`` and widest
  ``max_readers`` among scaling jobs win).
* **Per-job weights** bias the stall-weighted allocator toward
  priority jobs (``weights=``), never changing batch content.

The two guarantees of the original construction are preserved:
functional isolation (per-job losses bit-identical to solo runs at any
width/policy) and the wall-clock sharing win (rounds finish with their
slowest job, not the sum of jobs).
"""

from __future__ import annotations

from collections.abc import Sequence

from .config import PipelineConfig
from .session import JobResult, MultiJobResult, Session
from .spec import JobSpec, ScalingSpec

__all__ = ["JobResult", "MultiJobResult", "run_multi_job"]


def run_multi_job(
    configs: Sequence[PipelineConfig],
    num_readers: int,
    names: Sequence[str] | None = None,
    policy: str = "stall_weighted",
    autoscale: bool = False,
    target_stall: float = 0.10,
    max_readers: int = 32,
    track_updates: bool = False,
    weights: Sequence[float] | None = None,
) -> MultiJobResult:
    """Run many training jobs against one shared reader tier.

    The legacy adapter over a multi-job
    :class:`~repro.pipeline.session.Session`: each flat config becomes
    a :class:`~repro.pipeline.spec.JobSpec` and the session schedules
    every job's epochs in rounds over one ``num_readers``-wide pool.
    New code should build the specs directly.

    Args:
        configs: one :class:`PipelineConfig` per job.
        num_readers: shared pool width (the tier's total workers) —
            this replaces the per-config ``num_readers``, which is
            ignored under sharing.
        names: job names for reports (default ``job0..job{M-1}``).
        policy: worker-allocation policy (``"stall_weighted"`` or
            ``"round_robin"``).
        autoscale: let the tier resize the shared pool between rounds
            from the aggregate stall (configs with their own
            ``autoscale=True`` also turn this on).
        target_stall: the tier autoscaler's aggregate stall band.
        max_readers: the tier autoscaler's upper width bound.
        track_updates: forward per-step update tracking to every
            trainer.
        weights: per-job scheduling weights (default 1.0 each): the
            stall-weighted allocator scales each job's observed reader
            demand by its weight, so priority jobs pull more of the
            surplus pool without affecting batch content.

    Returns:
        A :class:`MultiJobResult` with per-job reports and the tier's
        :class:`~repro.metrics.tier.TierReport`.

    Raises:
        ValueError: on an empty config list, mismatched or duplicate
            names, mismatched weights, or any tier admission failure.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("run_multi_job needs at least one config")
    if weights is None:
        weights = [1.0] * len(configs)
    weights = list(weights)
    if len(weights) != len(configs):
        raise ValueError(
            f"{len(weights)} weights for {len(configs)} configs"
        )
    specs = [
        JobSpec.from_legacy(
            config, track_updates=track_updates, weight=weight
        )
        for config, weight in zip(configs, weights)
    ]
    session = Session(
        specs,
        width=num_readers,
        policy=policy,
        scaling=(
            ScalingSpec(target_stall=target_stall, max_readers=max_readers)
            if autoscale
            else None
        ),
        names=names,
    )
    result = session.run()
    # Hand the callers back their exact config objects (to_legacy() is
    # an equal reconstruction, but identity is cheaper to reason about).
    for job, config in zip(result.jobs, configs):
        job.config = config
    return result
