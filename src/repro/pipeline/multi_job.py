"""Many trainer jobs sharing one reader tier, end to end.

:func:`run_multi_job` is the multi-job counterpart of
:func:`~repro.pipeline.runner.run_pipeline`: it lands each job's table
and builds each job's trainer exactly as a single-job run would, then
hands every job to one :class:`~repro.reader.tier_scheduler.SharedReaderTier`
— one pool of reader workers multiplexed across all jobs' epochs.

Two guarantees fall out of the construction:

* **Functional isolation** — a job's batch content never depends on how
  many workers it was leased, so every job's per-step losses are
  bit-identical to running that job alone through ``run_pipeline``.
* **Wall-clock sharing wins** — jobs' epochs run concurrently on
  disjoint worker subsets, so the tier's modeled wall-clock is bounded
  by its slowest job per round rather than the sum of jobs, and the
  stall-weighted allocation shifts workers from reader-light jobs to
  reader-heavy ones (``examples/multi_job_sharing.py`` measures both
  effects).

Rolling-window retention (``retain_partitions``) is not yet supported
under sharing — each job's table must be fully landed up front.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..distributed.trainer import TrainingReport
from ..metrics.overlap import OverlapReport
from ..metrics.tier import TierReport
from ..reader.fleet import FleetReport
from ..reader.tier_scheduler import SharedReaderTier, TierJob
from .config import PipelineConfig
from .runner import _validate_epoch_batches, build_trainer, land_table

__all__ = ["JobResult", "MultiJobResult", "run_multi_job"]


@dataclass
class JobResult:
    """One job's measurements from a shared-tier run."""

    name: str
    config: PipelineConfig
    #: the job's trainer report — per-step losses bit-identical to the
    #: same config run alone through ``run_pipeline``
    training: TrainingReport
    #: the job's reader measurements merged across every round it ran
    fleet: FleetReport
    #: the job's modeled overlap attribution, merged across rounds
    overlap: OverlapReport
    #: which partitions each of the job's epochs scanned
    epoch_partitions: list[list[str]]
    samples_landed: int


@dataclass
class MultiJobResult:
    """Every job's measurements plus the tier-level schedule."""

    jobs: list[JobResult]
    tier: TierReport

    def job(self, name: str) -> JobResult:
        """Look one job's result up by name."""
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(
            f"no job named {name!r}; jobs: {[j.name for j in self.jobs]}"
        )

    @property
    def modeled_wall_seconds(self) -> float:
        """The shared tier's modeled end-to-end wall-clock."""
        return self.tier.modeled_wall_seconds


def run_multi_job(
    configs: Sequence[PipelineConfig],
    num_readers: int,
    names: Sequence[str] | None = None,
    policy: str = "stall_weighted",
    autoscale: bool = False,
    target_stall: float = 0.10,
    max_readers: int = 32,
    track_updates: bool = False,
) -> MultiJobResult:
    """Run many training jobs against one shared reader tier.

    Each config is prepared exactly as :func:`run_pipeline` would — its
    own generated trace, Scribe transport, ETL, landed table, and
    seeded trainer — then registered with a
    :class:`~repro.reader.tier_scheduler.SharedReaderTier` of
    ``num_readers`` pooled workers.  The tier schedules every job's
    epochs in rounds; each job's scheduled epoch streams that job's
    fleet share straight into that job's trainer.

    Args:
        configs: one :class:`PipelineConfig` per job.
        num_readers: shared pool width (the tier's total workers) —
            this replaces the per-config ``num_readers``, which is
            ignored under sharing.
        names: job names for reports (default ``job0..job{M-1}``).
        policy: worker-allocation policy (``"stall_weighted"`` or
            ``"round_robin"``).
        autoscale: let the tier resize the shared pool between rounds
            from the aggregate stall.
        target_stall: the tier autoscaler's aggregate stall band.
        max_readers: the tier autoscaler's upper width bound.
        track_updates: forward per-step update tracking to every
            trainer.

    Returns:
        A :class:`MultiJobResult` with per-job reports and the tier's
        :class:`~repro.metrics.tier.TierReport`.

    Raises:
        ValueError: on an empty config list, mismatched/duplicate
            names, a config using ``retain_partitions`` or per-job
            ``autoscale`` (the tier scales the shared pool, not
            per-job fleets), or any tier admission failure.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("run_multi_job needs at least one config")
    if names is None:
        names = [f"job{i}" for i in range(len(configs))]
    names = list(names)
    if len(names) != len(configs):
        raise ValueError(
            f"{len(names)} names for {len(configs)} configs"
        )
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate job names: {names}")
    for name, config in zip(names, configs):
        if config.retain_partitions is not None:
            raise ValueError(
                f"job {name!r} sets retain_partitions, which is not "
                "supported under multi-job sharing yet: tables must be "
                "fully landed before the tier starts"
            )
        if config.autoscale:
            raise ValueError(
                f"job {name!r} sets autoscale, but under sharing there "
                "is no per-job fleet to scale — pass autoscale=True to "
                "run_multi_job itself to resize the shared pool from "
                "aggregate stall"
            )

    tier = SharedReaderTier(
        num_readers,
        policy=policy,
        autoscale=autoscale,
        target_stall=target_stall,
        max_readers=max_readers,
    )

    trainers = {}
    prepared = {}
    for name, config in zip(names, configs):
        table, scribe_stats, ingest_bytes, partitions, samples = land_table(
            config
        )
        _validate_epoch_batches(config, partitions)
        trainer = build_trainer(config)
        trainers[name] = trainer
        window = [p.name for p in partitions]
        epochs = [list(window) for _ in range(config.train_epochs)]
        prepared[name] = (config, epochs, len(samples))

        def consume(
            epoch_idx,
            source,
            trainer=trainer,
            materialize=not config.streaming,
        ):
            """Feed one scheduled epoch into this job's trainer; return
            the epoch's modeled trainer-busy seconds."""
            steps_before = len(trainer.report.iterations)
            if materialize:
                source = list(source)
            trainer.run(source, track_updates=track_updates)
            return sum(
                it.iteration_seconds
                for it in trainer.report.iterations[steps_before:]
            )

        tier.register(
            TierJob(
                name=name,
                table=table,
                config=config.dataloader_config(),
                epochs=epochs,
                max_batches=config.train_batches,
                consume=consume,
                prefetch_depth=config.prefetch_depth,
                executor=config.reader_executor,
                streaming=config.streaming,
            )
        )

    report = tier.run()
    per_job = report.per_job
    jobs = [
        JobResult(
            name=name,
            config=prepared[name][0],
            training=trainers[name].report,
            fleet=tier.job_fleets[name],
            overlap=per_job[name],
            epoch_partitions=prepared[name][1],
            samples_landed=prepared[name][2],
        )
        for name in names
    ]
    return MultiJobResult(jobs=jobs, tier=report)
