"""Composable run specifications: the ``JobSpec`` surface.

The flat :class:`~repro.pipeline.config.PipelineConfig` grew one field
at a time until data generation, cluster shape, reader sizing,
retention, and autoscaling all shared one ~20-field namespace — and the
multi-job entry point had to *forbid* whole features because its wiring
diverged from the single-job loop.  This module splits that surface
into small spec dataclasses, each owning one concern:

* :class:`DataSpec` — what lands: workload, toggles, sessions, Scribe
  shards, time partitions, seed.
* :class:`ReaderSpec` — how the reader fleet scans it: width, prefetch,
  executor, streaming hand-off.
* :class:`TrainSpec` — what the trainers do: epochs, per-epoch batch
  cap, batch size, cluster shape, update tracking.
* :class:`ScalingSpec` — whether and how the fleet/pool width adapts:
  target stall band and width bound.
* :class:`RetentionSpec` — the rolling partition window.
* :class:`StreamSpec` — continuous ingestion: the job's partitions
  land as scribe-fed micro-partitions on the modeled clock *while* the
  job trains, instead of all up front.
* :class:`CheckpointSpec` — where training (re)starts: the snapshot to
  restore and the epoch the plan resumes from.
* :class:`FaultSpec` — deterministic reader faults (shard crashes and
  stragglers) injected into the job's scheduled epochs.

A :class:`JobSpec` composes them (plus a scheduling ``weight`` and an
optional ``name``) into everything one training job needs, and
:class:`~repro.pipeline.session.Session` executes one or many of them.
``JobSpec.from_legacy`` converts a flat ``PipelineConfig`` (the adapter
path under :func:`~repro.pipeline.runner.run_pipeline` and
:func:`~repro.pipeline.multi_job.run_multi_job`), and ``to_legacy``
round-trips back.

Every ``__post_init__`` error names the spec and field it came from
(``ScalingSpec.target_stall must be in (0, 1) ...``), so a failed
construction is diagnosable without a traceback spelunk.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, fields, replace

from ..datagen.workloads import RMWorkload
from ..reader.config import DataLoaderConfig
from ..reader.costmodel import TransportSpec
from ..reader.fleet import FleetFaults
from ..trainer.sparse_arch import TrainerOptFlags
from .config import PipelineConfig, RecDToggles

__all__ = [
    "DataSpec",
    "ReaderSpec",
    "TransportSpec",
    "TrainSpec",
    "ScalingSpec",
    "RetentionSpec",
    "StreamSpec",
    "CheckpointSpec",
    "FaultSpec",
    "JobSpec",
]

#: fleet executors a ReaderSpec may name
EXECUTORS = ("auto", "process", "inprocess", "async")


def _require_positive(where: str, value) -> None:
    """Raise unless ``value`` is a positive number, naming the field."""
    if value <= 0:
        raise ValueError(f"{where} must be positive, got {value}")


@dataclass(frozen=True)
class DataSpec:
    """What one job's table is made of: workload, volume, landing shape.

    Attributes:
        workload: the RM workload (schema, duplication statistics,
            per-path batch-size defaults).
        toggles: which RecD optimizations (O1-O7) are active.
        num_sessions: sessions in the generated trace.
        mean_samples_per_session: S of the generated table (§6.1).
        num_scribe_shards: Scribe transport shards.
        num_partitions: time partitions the table lands as (the
            paper's day-partitioned tables).
        seed: the run's seed (trace generation and model init).
        transforms: reader-side preprocessing transform names.
    """

    workload: RMWorkload
    toggles: RecDToggles = field(default_factory=RecDToggles.baseline)
    num_sessions: int = 250
    mean_samples_per_session: float = 16.5
    num_scribe_shards: int = 8
    num_partitions: int = 1
    seed: int = 0
    transforms: tuple[str, ...] = ("hash_modulo",)

    def __post_init__(self) -> None:
        _require_positive("DataSpec.num_sessions", self.num_sessions)
        _require_positive(
            "DataSpec.mean_samples_per_session",
            self.mean_samples_per_session,
        )
        _require_positive("DataSpec.num_scribe_shards", self.num_scribe_shards)
        _require_positive("DataSpec.num_partitions", self.num_partitions)


@dataclass(frozen=True)
class ReaderSpec:
    """How the reader fleet scans a job's table.

    Attributes:
        num_readers: fleet width (1 = the serial single-node path);
            under a shared tier this is the job's *solo* width — the
            pool width is the Session's.
        prefetch_depth: bounded prefetch per reader worker (2 = double
            buffering).
        executor: ``"process"`` (real multiprocessing workers),
            ``"inprocess"`` (deterministic serial fallback), ``"async"``
            (deterministic coroutine scheduler — modeled queue waits,
            wide widths in tier-1 time), or ``"auto"``; the batch
            stream is bit-identical for all of them.
        transport: how batches cross the worker→trainer boundary —
            ``"copy"`` (modeled per-batch serialize cost,
            ``bytes_copied``) or ``"shm"`` (zero-copy,
            ``copies_avoided``); a mode string coerces to a
            :class:`~repro.reader.costmodel.TransportSpec`.  Pure
            cost-model A/B: the stream is bit-identical either way.
        streaming: stream batches straight into the trainer
            (overlapping decode with steps) instead of materializing
            each epoch first; both paths train bit-identically.
        dedup: ship session-deduplicated IKJT batches over the
            prefetch queues (the workload's dedup groups become
            :class:`~repro.core.ikjt.InverseKeyedJaggedTensor`\\ s and
            the trainer expands inverse indices *after* the pooled
            embedding lookup).  Unlike ``DataSpec.toggles.o3_ikjt``
            this flips *only* transport and compute — batch size and
            data layout stay the non-dedup baseline's, which is what
            makes a dedup-on/off pair a bit-identity A/B: losses are
            identical, only bytes-decoded and modeled work shrink.
    """

    num_readers: int = 1
    prefetch_depth: int = 2
    executor: str = "auto"
    transport: TransportSpec | str = field(default_factory=TransportSpec)
    streaming: bool = True
    dedup: bool = False

    def __post_init__(self) -> None:
        _require_positive("ReaderSpec.num_readers", self.num_readers)
        _require_positive("ReaderSpec.prefetch_depth", self.prefetch_depth)
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"ReaderSpec.executor must be one of {EXECUTORS}, "
                f"got {self.executor!r}"
            )
        # a grid/CLI-provided mode string becomes a real TransportSpec
        # (frozen dataclass, hence the object.__setattr__)
        object.__setattr__(
            self, "transport", TransportSpec.coerce(self.transport)
        )


@dataclass(frozen=True)
class TrainSpec:
    """What the job's trainers run: epochs, batches, cluster shape.

    Attributes:
        train_epochs: epochs over the landed partitions.
        train_batches: per-epoch batch cap (``None`` = the whole
            window).
        batch_size: overrides the workload's per-path batch size when
            set.
        num_gpus: modeled cluster size.
        gpus_per_node: modeled cluster shape.
        max_table_rows: embedding-table hash modulus cap.
        track_updates: forward per-step update tracking to the trainer
            (needed by the accuracy experiments).
    """

    train_epochs: int = 1
    train_batches: int | None = 2
    batch_size: int | None = None
    num_gpus: int = 48
    gpus_per_node: int = 8
    max_table_rows: int = 2000
    track_updates: bool = False

    def __post_init__(self) -> None:
        _require_positive("TrainSpec.train_epochs", self.train_epochs)
        if self.train_batches is not None:
            _require_positive("TrainSpec.train_batches", self.train_batches)
        if self.batch_size is not None:
            _require_positive("TrainSpec.batch_size", self.batch_size)
        _require_positive("TrainSpec.num_gpus", self.num_gpus)
        _require_positive("TrainSpec.gpus_per_node", self.gpus_per_node)
        _require_positive("TrainSpec.max_table_rows", self.max_table_rows)


@dataclass(frozen=True)
class ScalingSpec:
    """Adaptive width: the autoscaler's set-point and bound.

    Attaching a ``ScalingSpec`` to a :class:`JobSpec` turns
    autoscaling *on* (``scaling=None`` runs at fixed width): a
    :class:`~repro.reader.autoscale.ReaderAutoscaler` resizes the
    fleet — or, under a shared tier, the pool — between epochs.

    Attributes:
        target_stall: grow the width while the observed reader-stall
            fraction exceeds this band.
        max_readers: upper bound on the width.
        ewma_alpha: when set, the autoscaler decides on an exponential
            moving average of the observed overlap signals instead of
            each raw round (``new = alpha * observed + (1 - alpha) *
            old``).  Live-loop rounds are noisy — a round that landed a
            fresh micro-partition looks reader-bound, the next looks
            trainer-bound — and smoothing stops the width flapping;
            ``None`` keeps the historical raw-signal behaviour.
    """

    target_stall: float = 0.10
    max_readers: int = 32
    ewma_alpha: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target_stall < 1.0:
            raise ValueError(
                "ScalingSpec.target_stall must be in (0, 1), got "
                f"{self.target_stall}"
            )
        _require_positive("ScalingSpec.max_readers", self.max_readers)
        if self.ewma_alpha is not None and not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                "ScalingSpec.ewma_alpha must be in (0, 1], got "
                f"{self.ewma_alpha}"
            )


@dataclass(frozen=True)
class RetentionSpec:
    """Rolling-window partition retention: the land→train→age lifecycle.

    Attaching a ``RetentionSpec`` to a :class:`JobSpec` turns the
    landed table into a rolling window (``retention=None`` keeps every
    partition live): at most ``window`` partitions are live at once;
    between epochs the next time partition lands and the oldest is
    dropped, and each epoch scans only the live window.

    Attributes:
        window: maximum live partitions at any moment.
    """

    window: int = 1

    def __post_init__(self) -> None:
        _require_positive("RetentionSpec.window", self.window)


@dataclass(frozen=True)
class StreamSpec:
    """Continuous ingestion: land micro-partitions while the job trains.

    Attaching a ``StreamSpec`` to a :class:`JobSpec` replaces the
    land-everything-up-front table with a live one: the job's trace is
    re-stamped onto a modeled event-time axis and cut into
    ``DataSpec.num_partitions`` micro-partitions, each of which flows
    through a scribe cluster (sealed at its tick boundary — see
    :meth:`~repro.scribe.bus.ScribeShard.seal`), the ETL join, and a
    Hive landing *on the tier's cost-model clock*, so later epochs
    train on partitions that did not exist when the job was admitted.
    Epoch ``e`` scans the rolling window ending at micro-partition
    ``e`` (``RetentionSpec.window`` wide when retention is set), and a
    :class:`~repro.metrics.freshness.FreshnessReport` measures the
    event-time → trained-on lag per delivered batch.

    Every quantity is modeled seconds, so a streamed run is exactly as
    bit-reproducible as a static one: the realized partition sequence —
    and therefore every loss — is bitwise identical to landing the same
    stream up front and training over it.

    Attributes:
        interval_seconds: modeled event-time span of one
            micro-partition; partition ``i`` seals at
            ``(i + 1) * interval_seconds`` on the stream clock.
        land_latency_seconds: modeled scribe→ETL→storage delay between
            a tick sealing and its micro-partition becoming scannable.
        rows_per_file: DWRF file size for micro-partitions (small on
            purpose — landing latency beats layout; compaction restores
            the table's full file size as the window slides past).
        compact: rewrite each micro-partition at the table's full
            ``rows_per_file`` once the next one lands (row order — and
            hence losses — untouched; only file count and layout
            change).
    """

    interval_seconds: float = 60.0
    land_latency_seconds: float = 5.0
    rows_per_file: int = 256
    compact: bool = True

    def __post_init__(self) -> None:
        _require_positive(
            "StreamSpec.interval_seconds", self.interval_seconds
        )
        if self.land_latency_seconds < 0:
            raise ValueError(
                "StreamSpec.land_latency_seconds must be non-negative, "
                f"got {self.land_latency_seconds}"
            )
        _require_positive("StreamSpec.rows_per_file", self.rows_per_file)


@dataclass(frozen=True)
class CheckpointSpec:
    """Where training (re)starts: snapshot restore and epoch offset.

    Attaching a ``CheckpointSpec`` to a :class:`JobSpec` makes the job
    resumable: the engine restores ``restore_from`` (latest version)
    out of the session's :class:`~repro.trainer.checkpoint.ModelStore`
    into the freshly built trainer, and the epoch plan skips the first
    ``start_epoch`` epochs — exactly the shape a preempted job is
    re-registered in.  Because checkpoint/restore is exact and batch
    content never depends on scheduling, the resumed loss trajectory is
    bit-identical to the uninterrupted run's tail.

    Attributes:
        restore_from: snapshot name in the session's model store to
            restore before training (``None`` = fresh seeded init).
        start_epoch: epochs of the plan already completed before this
            registration; the job trains epochs ``start_epoch ..
            train_epochs-1``.
        save_as: snapshot name the session checkpoints this job under
            (defaults to the job's report name).
    """

    restore_from: str | None = None
    start_epoch: int = 0
    save_as: str | None = None

    def __post_init__(self) -> None:
        if self.start_epoch < 0:
            raise ValueError(
                "CheckpointSpec.start_epoch must be non-negative, got "
                f"{self.start_epoch}"
            )
        if self.restore_from is not None and not self.restore_from:
            raise ValueError(
                "CheckpointSpec.restore_from must be non-empty when set"
            )
        if self.start_epoch > 0 and self.restore_from is None:
            raise ValueError(
                "CheckpointSpec.start_epoch > 0 needs restore_from: "
                "skipping epochs without restoring their weights would "
                "silently change the loss trajectory"
            )


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic reader faults injected into a job's epochs.

    Attaching a ``FaultSpec`` to a :class:`JobSpec` makes named shard
    positions crash (the respawned worker re-scans, charging wasted
    CPU) or straggle (scaled CPU cost) during named epochs of *this
    job's* plan.  Faults only perturb the modeled cost surface — batch
    content and losses stay bit-identical — and they run on a
    deterministic executor (async when the reader asks for it,
    in-process otherwise), so a seeded faulty run is as replayable as a
    clean one.

    Attributes:
        crashes: epoch index → shard positions (modulo the epoch's
            shard count) whose worker crashes mid-scan.
        stragglers: epoch index → {shard position: slowdown factor
            >= 1.0}.
        lost_fraction: fraction of a crashed shard's work lost and
            redone, in ``[0, 1]``.
    """

    crashes: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    stragglers: Mapping[int, Mapping[int, float]] = field(
        default_factory=dict
    )
    lost_fraction: float = 0.5

    def __post_init__(self) -> None:
        for epoch, shards in self.crashes.items():
            if epoch < 0:
                raise ValueError(
                    f"FaultSpec.crashes epoch must be non-negative, "
                    f"got {epoch}"
                )
            for pos in shards:
                if pos < 0:
                    raise ValueError(
                        "FaultSpec.crashes shard positions must be "
                        f"non-negative, got {pos} (epoch {epoch})"
                    )
        for epoch, factors in self.stragglers.items():
            if epoch < 0:
                raise ValueError(
                    f"FaultSpec.stragglers epoch must be non-negative, "
                    f"got {epoch}"
                )
            for pos, factor in factors.items():
                if pos < 0:
                    raise ValueError(
                        "FaultSpec.stragglers shard positions must be "
                        f"non-negative, got {pos} (epoch {epoch})"
                    )
                if not factor >= 1.0:
                    raise ValueError(
                        "FaultSpec.stragglers factors must be >= 1.0, "
                        f"got {factor} (epoch {epoch}, shard {pos})"
                    )
        if not 0.0 <= self.lost_fraction <= 1.0:
            raise ValueError(
                "FaultSpec.lost_fraction must be in [0, 1], got "
                f"{self.lost_fraction}"
            )

    def for_epoch(self, epoch: int) -> FleetFaults | None:
        """The epoch's :class:`~repro.reader.fleet.FleetFaults`, or
        ``None`` when this epoch runs clean."""
        crashed = tuple(self.crashes.get(epoch, ()))
        factors = dict(self.stragglers.get(epoch, {}))
        if not crashed and not factors:
            return None
        return FleetFaults(
            crashed_shards=crashed,
            straggler_factors=factors,
            lost_fraction=self.lost_fraction,
        )


@dataclass(frozen=True)
class JobSpec:
    """One training job, as composed specs.

    The unit :class:`~repro.pipeline.session.Session` executes — alone
    (the ``run_pipeline`` shape) or registered with a shared reader
    tier alongside other jobs (the ``run_multi_job`` shape).  Unlike
    the flat legacy config, every combination composes: retention and
    scaling work identically for one job or many.

    Attributes:
        data: what lands (workload, toggles, volume, partitions).
        reader: how the fleet scans it.
        train: what the trainers run.
        scaling: adaptive width when set; fixed width when ``None``.
        retention: rolling partition window when set; keep-everything
            when ``None``.
        stream: continuous ingestion when set — partitions land as
            scribe-fed micro-partitions on the modeled clock while the
            job trains; ``None`` lands everything up front.
        checkpoint: snapshot restore + epoch offset when set; a fresh
            full run when ``None``.
        faults: deterministic reader faults when set; clean epochs
            when ``None``.
        weight: scheduling weight under a shared tier — the
            stall-weighted allocator scales this job's observed reader
            demand by it, so a weight-2 job pulls roughly twice the
            surplus workers of an equal-demand weight-1 job.
        name: report name under a shared tier (default ``job{i}``).
    """

    data: DataSpec
    reader: ReaderSpec = ReaderSpec()
    train: TrainSpec = TrainSpec()
    scaling: ScalingSpec | None = None
    retention: RetentionSpec | None = None
    stream: StreamSpec | None = None
    checkpoint: CheckpointSpec | None = None
    faults: FaultSpec | None = None
    weight: float = 1.0
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.weight > 0.0 or self.weight != self.weight:
            raise ValueError(
                f"JobSpec.weight must be positive and finite, got "
                f"{self.weight}"
            )
        if self.name is not None and not self.name:
            raise ValueError("JobSpec.name must be non-empty when set")
        if (
            self.checkpoint is not None
            and self.checkpoint.start_epoch >= self.train.train_epochs
        ):
            raise ValueError(
                f"CheckpointSpec.start_epoch ({self.checkpoint.start_epoch})"
                f" must be < TrainSpec.train_epochs "
                f"({self.train.train_epochs}): a resumed job needs at "
                "least one epoch left to run"
            )
        if self.faults is not None and self.reader.executor == "process":
            raise ValueError(
                "FaultSpec needs a deterministic executor; set "
                'ReaderSpec.executor to "auto", "inprocess", or "async"'
            )
        if (
            self.scaling is not None
            and self.scaling.max_readers < self.reader.num_readers
        ):
            raise ValueError(
                f"ScalingSpec.max_readers ({self.scaling.max_readers}) "
                f"must be >= ReaderSpec.num_readers "
                f"({self.reader.num_readers}): the autoscaler never "
                "starts above its own bound"
            )

    # -- derived -------------------------------------------------------------

    @property
    def effective_batch_size(self) -> int:
        """The job's batch size: the override, else the workload's
        per-path (baseline vs RecD) default."""
        if self.train.batch_size is not None:
            return self.train.batch_size
        w = self.data.workload
        return (
            w.recd_batch_size
            if self.data.toggles.o3_ikjt
            else w.baseline_batch_size
        )

    @property
    def trainer_flags(self) -> "TrainerOptFlags":
        """The trainer-side (O5–O7) flags this job's trainer runs under.

        ``ReaderSpec.dedup`` streams IKJT batches regardless of the O3
        toggle, so it upgrades the trainer to the full dedup stack
        (unique-row lookup, jagged index select, dedup compute) — the
        expansion back to batch rows happens after the pooled lookup.
        """
        if self.reader.dedup:
            return TrainerOptFlags.full()
        return self.data.toggles.trainer_flags

    def dataloader_config(self) -> DataLoaderConfig:
        """The job's DataLoader spec under the current toggles.

        ``ReaderSpec.dedup`` also selects the dedup-group config — same
        features, same batch size, IKJT transport — without touching
        the O3 toggle's batch-size or layout implications.
        """
        w = self.data.workload
        if self.data.toggles.o3_ikjt or self.reader.dedup:
            plain = tuple(
                f.name
                for f in w.schema.sparse
                if f.name not in w.dedup_feature_names
            )
            return DataLoaderConfig(
                batch_size=self.effective_batch_size,
                sparse_features=plain,
                dedup_sparse_features=w.dedup_groups,
                dense_features=tuple(w.schema.dense_names),
                transforms=self.data.transforms,
            )
        return DataLoaderConfig(
            batch_size=self.effective_batch_size,
            sparse_features=tuple(w.schema.sparse_names),
            dense_features=tuple(w.schema.dense_names),
            transforms=self.data.transforms,
        )

    def with_(self, **kwargs) -> "JobSpec":
        """A copy with the given top-level fields replaced."""
        return replace(self, **kwargs)

    # -- legacy bridge -------------------------------------------------------

    @classmethod
    def from_legacy(
        cls,
        config: PipelineConfig,
        *,
        streaming: bool | None = None,
        track_updates: bool = False,
        name: str | None = None,
        weight: float = 1.0,
    ) -> "JobSpec":
        """Convert a flat :class:`PipelineConfig` into a ``JobSpec``.

        Args:
            config: the legacy flat configuration.
            streaming: overrides ``config.streaming`` when given (the
                deprecated ``run_pipeline(streaming=...)`` keyword
                routes through here, so the override lives in exactly
                one place).
            track_updates: forward per-step update tracking.
            name: report name under a shared tier.
            weight: scheduling weight under a shared tier.

        Returns:
            The equivalent composed spec; executing it is bit-identical
            to running the flat config through the legacy entry points.
        """
        return cls(
            data=DataSpec(
                workload=config.workload,
                toggles=config.toggles,
                num_sessions=config.num_sessions,
                mean_samples_per_session=config.mean_samples_per_session,
                num_scribe_shards=config.num_scribe_shards,
                num_partitions=config.num_partitions,
                seed=config.seed,
                transforms=config.transforms,
            ),
            reader=ReaderSpec(
                num_readers=config.num_readers,
                prefetch_depth=config.prefetch_depth,
                executor=config.reader_executor,
                streaming=(
                    config.streaming if streaming is None else streaming
                ),
            ),
            train=TrainSpec(
                train_epochs=config.train_epochs,
                train_batches=config.train_batches,
                batch_size=config.batch_size,
                num_gpus=config.num_gpus,
                gpus_per_node=config.gpus_per_node,
                max_table_rows=config.max_table_rows,
                track_updates=track_updates,
            ),
            scaling=(
                ScalingSpec(
                    target_stall=config.target_stall,
                    max_readers=config.max_readers,
                )
                if config.autoscale
                else None
            ),
            retention=(
                RetentionSpec(window=config.retain_partitions)
                if config.retain_partitions is not None
                else None
            ),
            weight=weight,
            name=name,
        )

    @classmethod
    def coerce(cls, job: "JobSpec | PipelineConfig") -> "JobSpec":
        """Pass a ``JobSpec`` through; convert a flat config."""
        if isinstance(job, cls):
            return job
        if isinstance(job, PipelineConfig):
            return cls.from_legacy(job)
        raise TypeError(
            f"expected a JobSpec or PipelineConfig, got {type(job).__name__}"
        )

    def to_legacy(self) -> PipelineConfig:
        """The equivalent flat :class:`PipelineConfig`.

        Exact inverse of :meth:`from_legacy` for every field the flat
        config can express; ``scaling=None``/``retention=None`` map to
        the flat defaults (``autoscale=False``,
        ``retain_partitions=None``).  ``weight``, ``name``,
        ``track_updates``, ``reader.dedup``, ``reader.transport``, and
        ``stream`` have no flat-config home and are dropped.
        """
        scaling = self.scaling or ScalingSpec()
        return PipelineConfig(
            workload=self.data.workload,
            toggles=self.data.toggles,
            num_sessions=self.data.num_sessions,
            mean_samples_per_session=self.data.mean_samples_per_session,
            num_scribe_shards=self.data.num_scribe_shards,
            num_gpus=self.train.num_gpus,
            gpus_per_node=self.train.gpus_per_node,
            batch_size=self.train.batch_size,
            train_batches=self.train.train_batches,
            max_table_rows=self.train.max_table_rows,
            seed=self.data.seed,
            transforms=self.data.transforms,
            num_readers=self.reader.num_readers,
            prefetch_depth=self.reader.prefetch_depth,
            num_partitions=self.data.num_partitions,
            train_epochs=self.train.train_epochs,
            streaming=self.reader.streaming,
            autoscale=self.scaling is not None,
            target_stall=scaling.target_stall,
            max_readers=scaling.max_readers,
            retain_partitions=(
                self.retention.window if self.retention is not None else None
            ),
            reader_executor=self.reader.executor,
        )


def spec_field_names() -> dict[str, list[str]]:
    """Field names per spec dataclass — the public-surface manifest the
    API snapshot test (``tests/docs/test_api_surface.py``) diffs."""
    return {
        cls.__name__: [f.name for f in fields(cls)]
        for cls in (
            DataSpec,
            ReaderSpec,
            TransportSpec,
            TrainSpec,
            ScalingSpec,
            RetentionSpec,
            StreamSpec,
            CheckpointSpec,
            FaultSpec,
            JobSpec,
        )
    }
