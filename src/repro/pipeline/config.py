"""End-to-end experiment configuration: the O1–O7 toggle surface.

A :class:`RecDToggles` instance selects which of Table 1's optimizations
are active; :func:`RecDToggles.baseline` and :func:`RecDToggles.full`
are the two Fig 7 endpoints, and intermediate combinations drive the
Fig 9 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..datagen.workloads import RMWorkload
from ..reader.config import DataLoaderConfig
from ..trainer.sparse_arch import TrainerOptFlags

__all__ = ["RecDToggles", "PipelineConfig"]


@dataclass(frozen=True)
class RecDToggles:
    """Which RecD optimizations (Table 1) are enabled."""

    o1_shard_by_session: bool = False
    o2_cluster_table: bool = False
    o3_ikjt: bool = False  # readers emit IKJTs (implies O4's wrapper)
    o5_dedup_emb: bool = False
    o6_jagged_index_select: bool = False
    o7_dedup_compute: bool = False

    def __post_init__(self) -> None:
        if (self.o5_dedup_emb or self.o7_dedup_compute) and not self.o3_ikjt:
            raise ValueError("trainer dedup (O5/O7) requires IKJT input (O3)")
        if self.o7_dedup_compute and not self.o5_dedup_emb:
            raise ValueError("O7 builds on O5's deduplicated lookups")

    @classmethod
    def baseline(cls) -> "RecDToggles":
        """No optimizations: the Fig 7 baseline endpoint."""
        return cls()

    @classmethod
    def full(cls) -> "RecDToggles":
        """All of O1-O7: the Fig 7 RecD endpoint."""
        return cls(
            o1_shard_by_session=True,
            o2_cluster_table=True,
            o3_ikjt=True,
            o5_dedup_emb=True,
            o6_jagged_index_select=True,
            o7_dedup_compute=True,
        )

    def with_(self, **kwargs) -> "RecDToggles":
        """A copy with the given toggles flipped (ablation sweeps)."""
        return replace(self, **kwargs)

    @property
    def trainer_flags(self) -> TrainerOptFlags:
        """The trainer-side (O5-O7) subset, in the trainer's terms."""
        return TrainerOptFlags(
            dedup_emb=self.o5_dedup_emb,
            jagged_index_select=self.o6_jagged_index_select,
            dedup_compute=self.o7_dedup_compute,
        )


@dataclass(frozen=True)
class PipelineConfig:
    """One end-to-end run's parameters.

    Everything :func:`~repro.pipeline.runner.run_pipeline` needs to run
    the Figure 1 pipeline once: workload + optimization toggles, data
    volume, cluster shape, reader-fleet sizing (fixed or adaptive), and
    the partition lifecycle (how many time partitions land, how many
    stay live under rolling-window retention, how many epochs train
    over them).

    Raises:
        ValueError: from ``__post_init__`` when any knob is out of
            range (non-positive widths/depths/epochs, a
            ``target_stall`` outside (0, 1), ``max_readers`` below
            ``num_readers``, or a non-positive ``retain_partitions``).
    """

    workload: RMWorkload
    toggles: RecDToggles
    num_sessions: int = 250
    #: S of the generated table; RM3's production table has fewer
    #: samples/session than RM1/RM2's (§6.1)
    mean_samples_per_session: float = 16.5
    num_scribe_shards: int = 8
    num_gpus: int = 48
    gpus_per_node: int = 8
    #: overrides workload batch sizes when set
    batch_size: int | None = None
    train_batches: int = 2
    max_table_rows: int = 2000
    seed: int = 0
    transforms: tuple[str, ...] = ("hash_modulo",)
    #: reader-fleet width: how many sharded reader workers scan the
    #: landed partition (1 = the serial single-node path)
    num_readers: int = 1
    #: bounded prefetch per reader worker (2 = double buffering)
    prefetch_depth: int = 2
    #: how many time partitions the generated table lands as (the
    #: paper's day-partitioned training tables); an epoch scans them all
    num_partitions: int = 1
    #: epochs the trainer runs over the landed partitions
    train_epochs: int = 1
    #: stream reader batches straight into the trainers (overlapping
    #: decode with training steps) instead of materializing them first;
    #: both paths are bit-identical — the knob exists for A/B timing
    streaming: bool = True
    #: adapt the fleet width between epochs: a
    #: :class:`~repro.reader.autoscale.ReaderAutoscaler` consumes each
    #: epoch's modeled overlap and grows/shrinks ``num_readers`` (which
    #: then only sets the *initial* width)
    autoscale: bool = False
    #: autoscaler set-point: grow the fleet while the epoch's
    #: reader-stall fraction exceeds this band
    target_stall: float = 0.10
    #: autoscaler upper bound on the fleet width
    max_readers: int = 32
    #: rolling-window retention: at most this many partitions stay live;
    #: each epoch one new partition lands and aged ones are dropped
    #: (``None`` = keep every partition live, the non-retention path)
    retain_partitions: int | None = None
    #: which fleet executor scans shards: ``"process"`` (real
    #: multiprocessing workers), ``"inprocess"`` (deterministic serial
    #: fallback — what tests pin), ``"async"`` (deterministic coroutine
    #: scheduler with modeled queue waits), or ``"auto"`` (pick per
    #: platform); the batch stream is bit-identical for all of them
    reader_executor: str = "auto"

    def __post_init__(self) -> None:
        if self.num_readers <= 0:
            raise ValueError("num_readers must be positive")
        if self.prefetch_depth <= 0:
            raise ValueError("prefetch_depth must be positive")
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.train_epochs <= 0:
            raise ValueError("train_epochs must be positive")
        if not 0.0 < self.target_stall < 1.0:
            raise ValueError(
                f"target_stall must be in (0, 1), got {self.target_stall}"
            )
        if self.autoscale and self.max_readers < self.num_readers:
            raise ValueError(
                f"max_readers ({self.max_readers}) must be >= the "
                f"initial num_readers ({self.num_readers}) when "
                "autoscale is on"
            )
        if self.retain_partitions is not None and self.retain_partitions <= 0:
            raise ValueError(
                "retain_partitions must be positive when set, got "
                f"{self.retain_partitions}"
            )
        if self.reader_executor not in (
            "auto",
            "process",
            "inprocess",
            "async",
        ):
            raise ValueError(
                "reader_executor must be 'auto', 'process', 'inprocess' "
                f"or 'async', got {self.reader_executor!r}"
            )

    @property
    def effective_batch_size(self) -> int:
        """The run's batch size: the override, else the workload's
        per-path (baseline vs RecD) default."""
        # Delegates through the spec surface so the derivation exists
        # exactly once (imported lazily: spec.py imports this module).
        from .spec import JobSpec

        return JobSpec.from_legacy(self).effective_batch_size

    def dataloader_config(self) -> DataLoaderConfig:
        """The job's DataLoader spec under the current toggles."""
        from .spec import JobSpec

        return JobSpec.from_legacy(self).dataloader_config()
