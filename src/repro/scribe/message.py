"""Log messages flowing from inference servers into Scribe.

Inference servers log *features* for every request (to avoid data
leakage, §2.1) and user-facing services log *events* (impression
outcomes).  Both are serialized to real bytes here so that Scribe-shard
compression ratios (O1) are measured, not modeled.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..datagen.session import Sample

__all__ = ["FeatureLogRecord", "EventLogRecord", "split_sample"]

_HEADER = struct.Struct("<qqdq")  # request_id, session_id, timestamp, n_feat


@dataclass(frozen=True)
class FeatureLogRecord:
    """Features logged by an inference server for one request."""

    request_id: int
    session_id: int
    timestamp: float
    sparse: dict[str, np.ndarray]
    dense: dict[str, float]

    def serialize(self) -> bytes:
        """Binary wire format: header, then per-feature name/len/values."""
        parts = [_HEADER.pack(self.request_id, self.session_id,
                              self.timestamp, len(self.sparse))]
        for name, values in self.sparse.items():
            encoded = name.encode()
            arr = np.ascontiguousarray(values, dtype=np.int64)
            parts.append(struct.pack("<HQ", len(encoded), arr.size))
            parts.append(encoded)
            parts.append(arr.tobytes())
        parts.append(struct.pack("<q", len(self.dense)))
        for name, value in self.dense.items():
            encoded = name.encode()
            parts.append(struct.pack("<Hd", len(encoded), value))
            parts.append(encoded)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, data: bytes) -> "FeatureLogRecord":
        """Exact inverse of :meth:`serialize` (the ETL ingest path)."""
        request_id, session_id, timestamp, n_feat = _HEADER.unpack_from(data, 0)
        pos = _HEADER.size
        sparse: dict[str, np.ndarray] = {}
        for _ in range(n_feat):
            name_len, n_vals = struct.unpack_from("<HQ", data, pos)
            pos += 10
            name = data[pos : pos + name_len].decode()
            pos += name_len
            nbytes = n_vals * 8
            sparse[name] = np.frombuffer(
                data, dtype=np.int64, count=n_vals, offset=pos
            ).copy()
            pos += nbytes
        (n_dense,) = struct.unpack_from("<q", data, pos)
        pos += 8
        dense: dict[str, float] = {}
        for _ in range(n_dense):
            name_len, value = struct.unpack_from("<Hd", data, pos)
            pos += 10
            name = data[pos : pos + name_len].decode()
            pos += name_len
            dense[name] = value
        return cls(request_id, session_id, timestamp, sparse, dense)


@dataclass(frozen=True)
class EventLogRecord:
    """An impression outcome (the label source) for one request."""

    request_id: int
    session_id: int
    timestamp: float
    label: int

    _FMT = struct.Struct("<qqdq")

    def serialize(self) -> bytes:
        """Fixed-size binary wire format (id, session, time, label)."""
        return self._FMT.pack(
            self.request_id, self.session_id, self.timestamp, self.label
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "EventLogRecord":
        """Exact inverse of :meth:`serialize` (the ETL ingest path)."""
        request_id, session_id, timestamp, label = cls._FMT.unpack(data)
        return cls(request_id, session_id, timestamp, label)


def split_sample(sample: Sample) -> tuple[FeatureLogRecord, EventLogRecord]:
    """Decompose a ground-truth sample into the two raw log streams the
    production pipeline would emit (features at inference time, events when
    the outcome lands)."""
    features = FeatureLogRecord(
        request_id=sample.sample_id,
        session_id=sample.session_id,
        timestamp=sample.timestamp,
        sparse=sample.sparse,
        dense=sample.dense,
    )
    event = EventLogRecord(
        request_id=sample.sample_id,
        session_id=sample.session_id,
        timestamp=sample.timestamp,
        label=sample.label,
    )
    return features, event
