"""Scribe: a sharded, buffering, compressing message bus (§2.1, §4.1).

Each shard buffers incoming messages and compresses them in fixed-size
blocks with a black-box codec (zlib here; zstd in production — both are
window-based LZ codecs, which is all O1 relies on).  The cluster tracks:

* raw ingress bytes (network RX from inference servers);
* compressed storage bytes (what the storage nodes persist);
* egress bytes for ETL ingestion (compressed blocks shipped downstream).

O1's claim — session-ID sharding raises the compression ratio (paper:
1.50x -> 2.25x) and with it cuts storage and ETL-ingest network demand —
falls out of measuring those counters under the two policies.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from .message import EventLogRecord, FeatureLogRecord
from .sharding import ShardKeyPolicy, route

__all__ = ["ScribeShard", "ScribeCluster", "ScribeStats"]

#: compress buffered messages once this many raw bytes accumulate; sized a
#: few multiples of zlib's 32 KiB match window so cross-message duplicates
#: inside a block are actually found.
DEFAULT_BLOCK_BYTES = 256 * 1024


@dataclass
class ScribeStats:
    """Byte accounting for one shard or a whole cluster."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    num_messages: int = 0
    num_blocks: int = 0

    @property
    def compression_ratio(self) -> float:
        """Raw over compressed bytes (1.0 while nothing is sealed)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes

    def merge(self, other: "ScribeStats") -> None:
        """Fold another shard's accounting in (cluster rollup)."""
        self.raw_bytes += other.raw_bytes
        self.compressed_bytes += other.compressed_bytes
        self.num_messages += other.num_messages
        self.num_blocks += other.num_blocks


class ScribeShard:
    """One physical storage node's buffer of compressed blocks."""

    def __init__(self, shard_id: int, block_bytes: int = DEFAULT_BLOCK_BYTES):
        self.shard_id = shard_id
        self.block_bytes = block_bytes
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._blocks: list[bytes] = []
        #: how many sealed blocks :meth:`drain` has already handed out
        self._drained = 0
        self.stats = ScribeStats()

    def append(self, message: bytes) -> None:
        """Buffer one message; seal a compressed block at the high-water
        mark."""
        # 4-byte length framing so blocks are self-describing.
        framed = len(message).to_bytes(4, "little") + message
        self._pending.append(framed)
        self._pending_bytes += len(framed)
        self.stats.raw_bytes += len(framed)
        self.stats.num_messages += 1
        if self._pending_bytes >= self.block_bytes:
            self._seal_block()

    def _seal_block(self) -> None:
        if not self._pending:
            return
        raw = b"".join(self._pending)
        block = zlib.compress(raw, level=6)
        self._blocks.append(block)
        self.stats.compressed_bytes += len(block)
        self.stats.num_blocks += 1
        self._pending.clear()
        self._pending_bytes = 0

    def flush(self) -> None:
        """Seal whatever is buffered, even below the block size."""
        self._seal_block()

    def seal(self) -> int:
        """Seal the partially-filled buffer at a tick boundary.

        Streaming landers call this on the cost-model clock so a block
        lands deterministically at the tick even when it never reached
        the :data:`DEFAULT_BLOCK_BYTES` high-water mark.  Returns the
        number of blocks sealed (0 when nothing was buffered).
        """
        before = self.stats.num_blocks
        self._seal_block()
        return self.stats.num_blocks - before

    def drain(self) -> list[bytes]:
        """Hand out messages from sealed, not-yet-drained blocks.

        The incremental counterpart of :meth:`read_messages`: each call
        returns only the blocks sealed since the previous drain, in seal
        order, so a streaming lander can move one tick's messages
        downstream without re-reading history.  Buffered-but-unsealed
        messages are *not* included — seal first.

        Raises:
            ValueError: when there is nothing sealed to drain, with a
                distinct message for "messages still buffered — call
                seal() first" vs "shard is empty".
        """
        if self._drained == len(self._blocks):
            if self._pending:
                raise ValueError(
                    f"shard {self.shard_id}: nothing sealed to drain; "
                    f"{len(self._pending)} message(s) still buffered — "
                    "call seal() first"
                )
            raise ValueError(
                f"shard {self.shard_id} is empty: nothing to drain"
            )
        out: list[bytes] = []
        for block in self._blocks[self._drained :]:
            out.extend(self._decode_block(block))
        self._drained = len(self._blocks)
        return out

    @staticmethod
    def _decode_block(block: bytes) -> list[bytes]:
        """One compressed block back into its framed messages."""
        raw = zlib.decompress(block)
        out: list[bytes] = []
        pos = 0
        while pos < len(raw):
            size = int.from_bytes(raw[pos : pos + 4], "little")
            pos += 4
            out.append(raw[pos : pos + size])
            pos += size
        return out

    def read_messages(self) -> list[bytes]:
        """Decompress all sealed blocks back into messages (ETL ingest)."""
        self.flush()
        out: list[bytes] = []
        for block in self._blocks:
            out.extend(self._decode_block(block))
        return out

    @property
    def egress_bytes(self) -> int:
        """Compressed bytes an ETL ingest would pull off this shard."""
        return self.stats.compressed_bytes


@dataclass
class _Categories:
    features: list = field(default_factory=list)
    events: list = field(default_factory=list)


class ScribeCluster:
    """A Scribe deployment: N shards behind a routing policy."""

    def __init__(
        self,
        num_shards: int = 16,
        policy: ShardKeyPolicy = ShardKeyPolicy.RANDOM,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ):
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.policy = policy
        self.shards = [ScribeShard(i, block_bytes) for i in range(num_shards)]
        # Feature and event logs are distinct Scribe categories; we keep a
        # per-category record index so ETL can ingest them separately.
        self._index = _Categories()

    # -- ingestion ----------------------------------------------------------

    def log_features(self, record: FeatureLogRecord) -> int:
        """Route one feature record to its shard; returns the shard id."""
        payload = record.serialize()
        shard = route(self.policy, len(self.shards), record.session_id, payload)
        self.shards[shard].append(payload)
        self._index.features.append(shard)
        return shard

    def log_event(self, record: EventLogRecord) -> int:
        """Route one event record to its shard; returns the shard id."""
        payload = record.serialize()
        shard = route(self.policy, len(self.shards), record.session_id, payload)
        self.shards[shard].append(payload)
        self._index.events.append(shard)
        return shard

    def flush(self) -> None:
        """Seal every shard's buffered messages."""
        for shard in self.shards:
            shard.flush()

    def seal(self) -> int:
        """Seal every shard's partial buffer at a tick boundary.

        Returns the total number of blocks sealed across the cluster.
        """
        return sum(shard.seal() for shard in self.shards)

    # -- ETL-facing reads -----------------------------------------------------

    def read_all(self) -> list[bytes]:
        """Every message on every shard (shard order, arrival order)."""
        out: list[bytes] = []
        for shard in self.shards:
            out.extend(shard.read_messages())
        return out

    def drain_all(self) -> list[bytes]:
        """Every not-yet-drained sealed message (shard order, seal
        order) — one streaming tick's ETL ingest.  Shards with nothing
        sealed are skipped; an all-empty cluster drains to ``[]``.
        """
        out: list[bytes] = []
        for shard in self.shards:
            if shard.stats.num_blocks > shard._drained:
                out.extend(shard.drain())
        return out

    # -- accounting ---------------------------------------------------------

    @property
    def stats(self) -> ScribeStats:
        """Every shard's accounting merged into one cluster view."""
        total = ScribeStats()
        for shard in self.shards:
            total.merge(shard.stats)
        return total

    @property
    def compression_ratio(self) -> float:
        """Cluster-wide compression ratio (the O1 headline number)."""
        return self.stats.compression_ratio

    @property
    def etl_ingest_bytes(self) -> int:
        """Network bytes a downstream ETL job pulls (compressed)."""
        return sum(s.egress_bytes for s in self.shards)

    def shard_message_counts(self) -> list[int]:
        """Messages landed per shard (routing-balance diagnostics)."""
        return [s.stats.num_messages for s in self.shards]
