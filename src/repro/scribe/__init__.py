"""Scribe substrate: sharded, buffered, compressing log transport (O1)."""

from .bus import DEFAULT_BLOCK_BYTES, ScribeCluster, ScribeShard, ScribeStats
from .message import EventLogRecord, FeatureLogRecord, split_sample
from .sharding import ShardKeyPolicy, consistent_hash, route

__all__ = [
    "ScribeCluster",
    "ScribeShard",
    "ScribeStats",
    "DEFAULT_BLOCK_BYTES",
    "FeatureLogRecord",
    "EventLogRecord",
    "split_sample",
    "ShardKeyPolicy",
    "consistent_hash",
    "route",
]
