"""Shard routing policies for Scribe (O1: Log Sharding, §4.1).

Scribe consistently hashes each message to a shard on a physical storage
node.  The default configuration hashes the *message* (effectively random
w.r.t. sessions), scattering a session's logs across shards.  RecD
configures the **session ID** as the shard key so a session's logs land
on one shard, improving black-box compressibility.
"""

from __future__ import annotations

import enum
import hashlib

__all__ = ["ShardKeyPolicy", "consistent_hash", "route"]


class ShardKeyPolicy(enum.Enum):
    """What Scribe hashes to pick a shard."""

    #: default: hash the whole message -> sessions scatter across shards
    RANDOM = "random"
    #: RecD O1: hash the session ID -> a session's logs colocate
    SESSION_ID = "session_id"


def consistent_hash(key: bytes, num_shards: int) -> int:
    """Deterministic, well-mixed shard choice.

    Uses blake2b rather than ``hash()`` so routing is stable across
    processes (Python randomizes ``hash`` per process), which matters for
    reproducible experiments.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "little") % num_shards


def route(
    policy: ShardKeyPolicy,
    num_shards: int,
    session_id: int,
    message: bytes,
) -> int:
    """Pick the shard for one message under ``policy``."""
    if policy is ShardKeyPolicy.SESSION_ID:
        key = session_id.to_bytes(8, "little", signed=True)
    else:
        key = message
    return consistent_hash(key, num_shards)
