"""The driver: executing grids into the store and resume-on-rerun."""

import pytest

from repro.experiments import (
    RunStore,
    expand_grid,
    get_profile,
    run_grid,
    run_point,
)
from repro.experiments.grid import GridSpec

# deliberately tiny: two points, inprocess, quarter scale
TINY_GRID = GridSpec(
    name="tiny",
    base={
        "workload.scale": 0.25,
        "data.num_sessions": 60,
        "reader.executor": "inprocess",
        "train.train_batches": 2,
    },
    axes={"toggles": ["baseline", "recd"]},
)

ENV = {"python": "test"}


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.sqlite")


def test_run_point_records_full_provenance(store):
    point = expand_grid(TINY_GRID)[0]
    record = run_point(point, store, profile="smoke", env=ENV)
    assert store.has(point.run_id)
    assert record.spec == dict(point.values)
    assert record.env == ENV
    assert record.profile == "smoke"
    assert record.kind == "grid"
    assert record.created_at  # stamped
    assert record.losses  # loss trajectory captured
    for name in (
        "trainer_qps",
        "reader_qps",
        "storage_compression",
        "goodput_batches_per_second",
    ):
        assert record.metrics[name] > 0
    for name in ("tier", "slo", "training"):
        assert name in record.reports


def test_run_grid_executes_every_point(store):
    outcome = run_grid(TINY_GRID, store, env=ENV)
    points = expand_grid(TINY_GRID)
    assert outcome.executed == [p.run_id for p in points]
    assert outcome.skipped == []
    assert len(outcome.records) == len(points)


def test_rerun_skips_everything_already_in_store(store):
    first = run_grid(TINY_GRID, store, env=ENV)
    second = run_grid(TINY_GRID, store, env=ENV)
    assert second.executed == []
    assert second.skipped == first.executed
    # skipped points still surface their stored records, in order
    assert [r.run_id for r in second.records] == [
        r.run_id for r in first.records
    ]


def test_resume_false_forces_re_execution(store):
    run_grid(TINY_GRID, store, env=ENV)
    again = run_grid(TINY_GRID, store, env=ENV, resume=False)
    assert again.skipped == []
    assert len(again.executed) == 2


def test_partial_store_executes_only_the_missing_points(store):
    points = expand_grid(TINY_GRID)
    run_point(points[0], store, env=ENV)
    outcome = run_grid(TINY_GRID, store, env=ENV)
    assert outcome.skipped == [points[0].run_id]
    assert outcome.executed == [points[1].run_id]


def test_progress_lines_distinguish_run_from_skip(store):
    lines = []
    run_grid(TINY_GRID, store, env=ENV, progress=lines.append)
    run_grid(TINY_GRID, store, env=ENV, progress=lines.append)
    assert sum(line.startswith("run") for line in lines) == 2
    assert sum(line.startswith("skip") for line in lines) == 2


def test_smoke_profile_grids_expand_to_advertised_count():
    profile = get_profile("smoke")
    assert profile.num_runs == sum(
        len(expand_grid(g)) for g in profile.grids
    )


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        get_profile("warp")
