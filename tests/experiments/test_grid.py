"""Grid expansion: determinism, matrix semantics, spec building."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments import GridSpec, build_job_spec, expand_grid
from repro.experiments.grid import canonical_json, run_id_for
from repro.pipeline import JobSpec


def _grid(**kwargs) -> GridSpec:
    kwargs.setdefault("name", "g")
    return GridSpec(**kwargs)


class TestExpansion:
    def test_product_covers_every_combination(self):
        points = expand_grid(
            _grid(
                axes={
                    "workload.rm": ["RM1", "RM2"],
                    "reader.num_readers": [1, 2, 4],
                }
            )
        )
        assert len(points) == 6
        combos = {
            (p.values["workload.rm"], p.values["reader.num_readers"])
            for p in points
        }
        assert combos == {
            (rm, n) for rm in ("RM1", "RM2") for n in (1, 2, 4)
        }

    def test_base_values_shared_by_every_point(self):
        points = expand_grid(
            _grid(
                base={"data.seed": 7},
                axes={"workload.rm": ["RM1", "RM2"]},
            )
        )
        assert all(p.values["data.seed"] == 7 for p in points)

    def test_expansion_is_deterministic(self):
        grid = _grid(
            base={"data.num_sessions": 50},
            axes={
                "workload.rm": ["RM1", "RM2"],
                "toggles": ["baseline", "recd"],
            },
        )
        a = expand_grid(grid)
        b = expand_grid(grid)
        assert [p.run_id for p in a] == [p.run_id for p in b]
        assert [p.label for p in a] == [p.label for p in b]

    def test_run_id_depends_on_experiment_name(self):
        values = {"workload.rm": "RM1"}
        assert run_id_for("a", values) != run_id_for("b", values)

    def test_run_id_is_order_insensitive(self):
        assert run_id_for(
            "g", {"a.seed": 1, "workload.rm": "RM1"}
        ) == run_id_for("g", {"workload.rm": "RM1", "a.seed": 1})

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_exclude_drops_matching_combinations(self):
        points = expand_grid(
            _grid(
                axes={
                    "workload.rm": ["RM1", "RM2"],
                    "toggles": ["baseline", "recd"],
                },
                exclude=(
                    {"workload.rm": "RM2", "toggles": "baseline"},
                ),
            )
        )
        assert len(points) == 3
        assert all(
            not (
                p.values["workload.rm"] == "RM2"
                and p.values["toggles"] == "baseline"
            )
            for p in points
        )

    def test_exclude_requires_all_keys_to_match(self):
        # a one-key filter drops the whole RM2 column
        points = expand_grid(
            _grid(
                axes={
                    "workload.rm": ["RM1", "RM2"],
                    "toggles": ["baseline", "recd"],
                },
                exclude=({"workload.rm": "RM2"},),
            )
        )
        assert {p.values["workload.rm"] for p in points} == {"RM1"}

    def test_include_appends_extra_points(self):
        points = expand_grid(
            _grid(
                axes={"workload.rm": ["RM1"]},
                include=({"workload.rm": "RM3", "data.seed": 9},),
            )
        )
        assert len(points) == 2
        assert points[-1].values["workload.rm"] == "RM3"

    def test_include_not_subject_to_exclude(self):
        points = expand_grid(
            _grid(
                axes={"workload.rm": ["RM1", "RM2"]},
                exclude=({"workload.rm": "RM2"},),
                include=({"workload.rm": "RM2"},),
            )
        )
        assert {p.values["workload.rm"] for p in points} == {
            "RM1",
            "RM2",
        }

    def test_include_only_grid_emits_no_base_point(self):
        points = expand_grid(
            _grid(
                base={"data.seed": 1},
                include=({"label": "a"}, {"label": "b"}),
            )
        )
        assert [p.label for p in points] == ["a", "b"]

    def test_duplicate_points_deduplicated_by_run_id(self):
        points = expand_grid(
            _grid(
                axes={"workload.rm": ["RM1"]},
                include=({"workload.rm": "RM1"},),
            )
        )
        assert len(points) == 1

    def test_labels_use_axis_leaf_names(self):
        points = expand_grid(
            _grid(axes={"reader.num_readers": [4]})
        )
        assert points[0].label == "num_readers=4"

    def test_explicit_label_wins(self):
        points = expand_grid(
            _grid(include=({"label": "stage-1", "toggles": "recd"},))
        )
        assert points[0].label == "stage-1"

    @given(
        n_rm=st.integers(min_value=1, max_value=3),
        n_readers=st.integers(min_value=1, max_value=4),
        n_seeds=st.integers(min_value=1, max_value=3),
    )
    def test_product_count_is_axis_product(
        self, n_rm, n_readers, n_seeds
    ):
        grid = _grid(
            axes={
                "workload.rm": ["RM1", "RM2", "RM3"][:n_rm],
                "reader.num_readers": [1, 2, 4, 8][:n_readers],
                "data.seed": list(range(n_seeds)),
            }
        )
        points = expand_grid(grid)
        assert len(points) == n_rm * n_readers * n_seeds
        # content-addressing: every point distinct
        assert len({p.run_id for p in points}) == len(points)


class TestValidation:
    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError, match="unknown spec path"):
            _grid(base={"data.bogus": 1})

    def test_direct_workload_path_redirected(self):
        with pytest.raises(ValueError, match="workload.rm"):
            _grid(base={"data.workload": "RM1"})

    def test_non_json_value_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            _grid(base={"data.seed": object()})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match=">= 1 value"):
            _grid(axes={"data.seed": []})

    def test_string_axis_rejected(self):
        with pytest.raises(ValueError, match="sequence"):
            _grid(axes={"workload.rm": "RM1"})

    def test_unknown_workload_rejected_at_build(self):
        with pytest.raises(ValueError, match="workload.rm"):
            build_job_spec({"workload.rm": "RM9"})


class TestBuildJobSpec:
    def test_defaults(self):
        spec = build_job_spec({})
        assert isinstance(spec, JobSpec)
        assert spec.data.workload.name == "RM1"
        assert spec.scaling is None
        assert spec.faults is None

    def test_same_values_build_equal_specs(self):
        values = {
            "workload.rm": "RM2",
            "workload.scale": 0.25,
            "toggles": "recd",
            "data.num_sessions": 80,
            "reader.num_readers": 4,
            "train.train_batches": 3,
        }
        assert build_job_spec(values) == build_job_spec(values)

    def test_dotted_paths_land_on_their_sections(self):
        spec = build_job_spec(
            {
                "data.num_sessions": 99,
                "reader.prefetch_depth": 3,
                "train.num_gpus": 16,
                "weight": 2.0,
            }
        )
        assert spec.data.num_sessions == 99
        assert spec.reader.prefetch_depth == 3
        assert spec.train.num_gpus == 16
        assert spec.weight == 2.0

    def test_optional_sections_materialize_only_when_touched(self):
        spec = build_job_spec({"scaling.target_stall": 0.2})
        assert spec.scaling is not None
        assert spec.scaling.target_stall == 0.2
        assert spec.retention is None
        assert spec.checkpoint is None

    def test_toggle_dict_builds_partial_toggles(self):
        spec = build_job_spec(
            {
                "toggles": {
                    "o1_shard_by_session": True,
                    "o2_cluster_table": True,
                }
            }
        )
        assert spec.data.toggles.o1_shard_by_session
        assert not spec.data.toggles.o3_ikjt

    def test_fault_spec_epoch_keys_recover_from_json_strings(self):
        # JSON round-trips dict keys as strings; the builder must map
        # them back to the ints FaultSpec expects
        spec = build_job_spec(
            {
                "faults.crashes": {"0": [1]},
                "faults.stragglers": {"1": {"0": 2.0}},
                "faults.lost_fraction": 0.25,
            }
        )
        assert spec.faults.crashes == {0: (1,)}
        assert spec.faults.stragglers == {1: {0: 2.0}}

    def test_label_never_reaches_the_spec(self):
        assert build_job_spec({"label": "x"}) == build_job_spec({})

    def test_transform_lists_become_tuples(self):
        spec = build_job_spec({"data.transforms": ["hash_modulo"]})
        assert spec.data.transforms == ("hash_modulo",)
