"""The regression gate: baselines, tolerances, and the CI script."""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    RunRecord,
    RunStore,
    check_store,
    load_baselines,
    markdown_summary,
    update_baselines,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import check_regression  # noqa: E402


@pytest.fixture
def store(tmp_path):
    store = RunStore(tmp_path / "runs.sqlite")
    store.record(
        RunRecord(
            run_id="r1",
            experiment="fig7",
            label="rm=RM1",
            profile="smoke",
            created_at="2026-08-08T00:00:00+00:00",
            metrics={"trainer_qps": 100.0, "reader_qps": 50.0},
        )
    )
    return store


def _baselines(**metrics) -> dict:
    return {
        "defaults": {"tolerance": 0.2, "direction": "higher"},
        "metrics": metrics,
    }


class TestCheckStore:
    def test_within_tolerance_passes(self, store):
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM1:trainer_qps": {"value": 110.0}}),
        )
        assert not result.failed
        assert result.rows[0].status == "ok"

    def test_drop_past_tolerance_fails(self, store):
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM1:trainer_qps": {"value": 200.0}}),
        )
        assert result.failed
        assert result.rows[0].status == "regression"

    def test_direction_lower_inverts(self, store):
        # stored 100 is *above* a baseline of 50: bad when lower=better
        result = check_store(
            store,
            _baselines(
                **{
                    "fig7/rm=RM1:trainer_qps": {
                        "value": 50.0,
                        "direction": "lower",
                    }
                }
            ),
        )
        assert result.rows[0].status == "regression"

    def test_per_metric_tolerance_overrides_default(self, store):
        baselines = _baselines(
            **{
                "fig7/rm=RM1:trainer_qps": {
                    "value": 110.0,
                    "tolerance": 0.01,
                }
            }
        )
        assert check_store(store, baselines).failed

    def test_missing_metric_fails(self, store):
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM1:storage_compression": {"value": 1.0}}),
        )
        assert result.failed
        assert result.rows[0].status == "missing"

    def test_missing_run_fails(self, store):
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM9:trainer_qps": {"value": 1.0}}),
        )
        assert result.rows[0].status == "missing"

    def test_profile_filter_restricts_lookup(self, store):
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM1:trainer_qps": {"value": 100.0}}),
            profile="paper",
        )
        assert result.rows[0].status == "missing"

    def test_latest_record_wins(self, store):
        store.record(
            RunRecord(
                run_id="r2",
                experiment="fig7",
                label="rm=RM1",
                profile="smoke",
                created_at="2026-08-08T01:00:00+00:00",
                metrics={"trainer_qps": 10.0},
            )
        )
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM1:trainer_qps": {"value": 100.0}}),
        )
        assert result.rows[0].status == "regression"


class TestBaselinesFile:
    def test_load_rejects_bad_key(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"metrics": {"no-slash": {"value": 1}}}))
        with pytest.raises(ValueError, match="experiment/label:metric"):
            load_baselines(path)

    def test_load_rejects_missing_value(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"metrics": {"e/l:m": {"tolerance": 0.1}}})
        )
        with pytest.raises(ValueError, match="value"):
            load_baselines(path)

    def test_load_rejects_bad_direction(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "defaults": {"direction": "sideways"},
                    "metrics": {},
                }
            )
        )
        with pytest.raises(ValueError, match="direction"):
            load_baselines(path)

    def test_update_snapshots_store_values(self, store, tmp_path):
        path = tmp_path / "b.json"
        data = update_baselines(store, path)
        key = "fig7/rm=RM1:trainer_qps"
        assert data["metrics"][key]["value"] == 100.0
        assert load_baselines(path) == data

    def test_update_preserves_overrides(self, store, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                _baselines(
                    **{
                        "fig7/rm=RM1:trainer_qps": {
                            "value": 1.0,
                            "tolerance": 0.05,
                            "direction": "lower",
                        }
                    }
                )
            )
        )
        data = update_baselines(store, path)
        entry = data["metrics"]["fig7/rm=RM1:trainer_qps"]
        assert entry == {
            "value": 100.0,
            "tolerance": 0.05,
            "direction": "lower",
        }


class TestMarkdownSummary:
    def test_table_marks_pass_and_fail(self, store):
        result = check_store(
            store,
            _baselines(
                **{
                    "fig7/rm=RM1:trainer_qps": {"value": 100.0},
                    "fig7/rm=RM1:storage_compression": {"value": 1.0},
                }
            ),
        )
        text = markdown_summary(result)
        assert "✅ ok" in text
        assert "❌ missing" in text
        assert "1 metric(s) failed" in text

    def test_all_green_verdict(self, store):
        result = check_store(
            store,
            _baselines(**{"fig7/rm=RM1:trainer_qps": {"value": 100.0}}),
        )
        assert "All metrics within tolerance" in markdown_summary(result)


class TestCheckRegressionScript:
    """The CI entry point (acceptance: planted regression → exit 1)."""

    def _argv(self, store, baselines):
        return [
            "--store",
            str(store.path),
            "--profile",
            "smoke",
            "--baselines",
            str(baselines),
        ]

    def test_passes_when_within_tolerance(self, store, tmp_path, capsys):
        baselines = tmp_path / "b.json"
        update_baselines(store, baselines)
        assert check_regression.main(self._argv(store, baselines)) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_planted_regression_exits_nonzero(
        self, store, tmp_path, capsys
    ):
        baselines = tmp_path / "b.json"
        update_baselines(store, baselines)
        # plant the regression: the store's newest run craters a metric
        store.record(
            RunRecord(
                run_id="r-bad",
                experiment="fig7",
                label="rm=RM1",
                profile="smoke",
                created_at="2026-08-08T02:00:00+00:00",
                metrics={"trainer_qps": 1.0, "reader_qps": 50.0},
            )
        )
        assert check_regression.main(self._argv(store, baselines)) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "regressed past tolerance" in captured.err

    def test_update_flag_writes_baselines(self, store, tmp_path):
        baselines = tmp_path / "b.json"
        argv = self._argv(store, baselines) + ["--update"]
        assert check_regression.main(argv) == 0
        assert load_baselines(baselines)["metrics"]

    def test_summary_file_gets_markdown_table(self, store, tmp_path):
        baselines = tmp_path / "b.json"
        update_baselines(store, baselines)
        summary = tmp_path / "summary.md"
        argv = self._argv(store, baselines) + ["--summary", str(summary)]
        assert check_regression.main(argv) == 0
        assert "| metric |" in summary.read_text()

    def test_missing_store_exits_with_instructions(self, tmp_path):
        with pytest.raises(SystemExit, match="experiments run"):
            check_regression.main(
                ["--store", str(tmp_path / "absent.sqlite")]
            )

    def test_missing_baselines_exits_with_instructions(
        self, store, tmp_path
    ):
        with pytest.raises(SystemExit, match="--update"):
            check_regression.main(
                self._argv(store, tmp_path / "absent.json")
            )
