"""``repro experiments {run,list,query,report}`` end to end."""

import pytest

from repro.cli import main


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "runs.sqlite")


def _run_single_node(store_path) -> None:
    assert (
        main(
            [
                "experiments",
                "run",
                "--profile",
                "smoke",
                "--experiment",
                "single_node",
                "--store",
                store_path,
            ]
        )
        == 0
    )


class TestList:
    def test_lists_profiles_and_grids(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke:" in out and "paper:" in out
        assert "fig7_throughput" in out
        assert "fig9_ablation" in out

    def test_verbose_lists_run_ids(self, capsys):
        assert main(["experiments", "list", "-v"]) == 0
        out = capsys.readouterr().out
        # content-addressed IDs are 16 hex chars
        assert any(
            len(tok) == 16 and all(c in "0123456789abcdef" for c in tok)
            for tok in out.split()
        )


class TestRunAndQuery:
    def test_run_query_report_round_trip(self, store_path, capsys):
        _run_single_node(store_path)
        out = capsys.readouterr().out
        assert "executed 2, skipped 0" in out

        # resume-on-rerun through the CLI: nothing re-executes
        _run_single_node(store_path)
        assert "executed 0, skipped 2" in capsys.readouterr().out

        assert (
            main(
                [
                    "experiments",
                    "query",
                    "--store",
                    store_path,
                    "--experiment",
                    "single_node",
                    "--metric",
                    "trainer_qps",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "single_node/streaming=True" in out
        assert "trainer_qps =" in out

        assert (
            main(
                [
                    "experiments",
                    "report",
                    "--store",
                    store_path,
                    "--profile",
                    "smoke",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # the one populated experiment renders; the others degrade to
        # notes instead of crashing the report
        assert "streaming" in out

    def test_query_empty_store_fails(self, store_path, capsys):
        assert (
            main(["experiments", "query", "--store", store_path]) == 1
        )
        assert "no matching runs" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self, store_path):
        with pytest.raises(KeyError):
            main(
                [
                    "experiments",
                    "run",
                    "--experiment",
                    "bogus",
                    "--store",
                    store_path,
                ]
            )
