"""RunStore round-trips, idempotent writes, and query semantics."""

import pytest

from repro.experiments import (
    RunRecord,
    RunStore,
    build_job_spec,
    expand_grid,
)
from repro.experiments.grid import GridSpec


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.sqlite")


def _record(run_id="r1", **kwargs):
    kwargs.setdefault("experiment", "exp")
    kwargs.setdefault("label", "base")
    return RunRecord(run_id=run_id, **kwargs)


class TestRoundTrip:
    def test_full_record_survives_a_round_trip(self, store):
        rec = _record(
            profile="smoke",
            created_at="2026-08-08T00:00:00+00:00",
            spec={"workload.rm": "RM2", "data.seed": 3},
            env={"python": "3.12.0"},
            losses=(1.5, 1.25, 1.0),
            metrics={"trainer_qps": 123.5, "samples_landed": 10.0},
            reports={"tier": {"jobs": 1}},
            artifact="rendered text\n",
        )
        store.record(rec)
        assert store.get("r1") == rec

    def test_stored_spec_rebuilds_the_exact_job_spec(self, store):
        grid = GridSpec(
            name="g",
            base={"data.num_sessions": 40, "workload.scale": 0.25},
            axes={"workload.rm": ["RM2"], "toggles": ["recd"]},
        )
        point = expand_grid(grid)[0]
        store.record(
            _record(run_id=point.run_id, spec=dict(point.values))
        )
        stored = store.get(point.run_id)
        assert build_job_spec(stored.spec) == point.job_spec()

    def test_record_is_idempotent_and_replaces(self, store):
        store.record(_record(metrics={"trainer_qps": 1.0}))
        store.record(_record(metrics={"reader_qps": 2.0}))
        rec = store.get("r1")
        # old metrics gone, not merged
        assert rec.metrics == {"reader_qps": 2.0}
        assert len(store.query()) == 1

    def test_get_unknown_id_raises_key_error(self, store):
        with pytest.raises(KeyError):
            store.get("nope")

    def test_delete_removes_run_and_metrics(self, store):
        store.record(_record(metrics={"trainer_qps": 1.0}))
        store.delete("r1")
        assert not store.has("r1")
        assert store.metric("trainer_qps") == {}


class TestQueries:
    def test_has(self, store):
        assert not store.has("r1")
        store.record(_record())
        assert store.has("r1")

    def test_query_filters_compose(self, store):
        store.record(
            _record("a", experiment="e1", label="x", profile="smoke")
        )
        store.record(
            _record("b", experiment="e1", label="y", profile="paper")
        )
        store.record(
            _record("c", experiment="e2", label="x", kind="bench")
        )
        assert {r.run_id for r in store.query(experiment="e1")} == {
            "a",
            "b",
        }
        assert [r.run_id for r in store.query(profile="smoke")] == ["a"]
        assert [r.run_id for r in store.query(kind="bench")] == ["c"]
        assert [
            r.run_id
            for r in store.query(experiment="e1", label="y")
        ] == ["b"]

    def test_latest_returns_most_recent_record(self, store):
        store.record(
            _record("a", created_at="2026-01-01T00:00:00+00:00")
        )
        store.record(
            _record("b", created_at="2026-01-02T00:00:00+00:00")
        )
        assert store.latest("exp", "base").run_id == "b"

    def test_latest_raises_on_no_match(self, store):
        with pytest.raises(KeyError):
            store.latest("exp", "base")

    def test_experiments_lists_distinct_names_sorted(self, store):
        store.record(_record("a", experiment="zeta"))
        store.record(_record("b", experiment="alpha"))
        store.record(_record("c", experiment="alpha", label="y"))
        assert store.experiments() == ["alpha", "zeta"]

    def test_metric_across_runs(self, store):
        store.record(_record("a", metrics={"trainer_qps": 1.0}))
        store.record(
            _record(
                "b", experiment="other", metrics={"trainer_qps": 2.0}
            )
        )
        assert store.metric("trainer_qps") == {"a": 1.0, "b": 2.0}
        assert store.metric("trainer_qps", experiment="other") == {
            "b": 2.0
        }


class TestRecordValidation:
    def test_empty_run_id_rejected(self):
        with pytest.raises(ValueError, match="run_id"):
            RunRecord(run_id="", experiment="e", label="l")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _record(kind="other")

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(ValueError, match="number"):
            _record(metrics={"trainer_qps": "fast"})

    def test_bool_metric_rejected(self):
        with pytest.raises(ValueError, match="number"):
            _record(metrics={"ok": True})
