"""Cross-module integration tests: losslessness through the whole pipe.

The strongest correctness statement this reproduction can make is that
the *entire* RecD pipeline — Scribe transport, ETL join/cluster, DWRF
serialization, reader conversion to IKJTs, trainer dedup paths — is a
chain of lossless transformations: every sample's features survive
bit-exactly, and the trained model is identical with and without RecD.
"""

import numpy as np
import pytest

from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    FeatureKind,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import ETLConfig, ETLJob, is_clustered
from repro.reader import DataLoaderConfig, ReaderNode
from repro.scribe import ScribeCluster, ShardKeyPolicy, split_sample
from repro.storage import HiveTable, TectonicFS


def _schema():
    return DatasetSchema(
        sparse=(
            SparseFeatureSpec(
                "hist", FeatureKind.USER, avg_length=10, change_prob=0.1,
                group="g",
            ),
            SparseFeatureSpec(
                "hist2", FeatureKind.USER, avg_length=6, change_prob=0.1,
                group="g",
            ),
            SparseFeatureSpec(
                "item", FeatureKind.ITEM, avg_length=2, change_prob=0.9
            ),
        ),
        dense=(DenseFeatureSpec("d"),),
    )


@pytest.fixture(scope="module")
def stack():
    """Generate -> Scribe -> ETL(cluster) -> Hive; return all artifacts."""
    schema = _schema()
    samples = generate_partition(schema, 60, TraceConfig(seed=13))
    scribe = ScribeCluster(num_shards=4, policy=ShardKeyPolicy.SESSION_ID)
    for s in samples:
        feat, ev = split_sample(s)
        scribe.log_features(feat)
        scribe.log_event(ev)
    scribe.flush()
    etl = ETLJob(ETLConfig(cluster=True)).run_from_scribe(scribe)
    fs = TectonicFS()
    table = HiveTable("t", schema, fs, rows_per_file=512, stripe_rows=64)
    table.land_partition("p", etl.samples)
    return schema, samples, etl, table


class TestTransportAndLanding:
    def test_no_rows_lost(self, stack):
        _, samples, etl, table = stack
        assert etl.joined_rows == len(samples)
        assert table.partitions["p"].num_rows == len(samples)

    def test_landed_partition_clustered(self, stack):
        _, _, etl, _ = stack
        assert is_clustered(etl.samples)

    def test_feature_values_survive_transport_and_storage(self, stack):
        _, samples, _, table = stack
        stored = table.read_partition("p")
        by_id = {s.sample_id: s for s in samples}
        assert len(stored) == len(samples)
        for got in stored:
            want = by_id[got.sample_id]
            assert got.session_id == want.session_id
            assert got.label == want.label
            for key in ("hist", "hist2", "item"):
                np.testing.assert_array_equal(
                    got.sparse[key], want.sparse[key]
                )
            assert got.dense["d"] == pytest.approx(want.dense["d"])


class TestReaderOverTheStack:
    def test_recd_batches_encode_original_rows(self, stack):
        schema, samples, etl, table = stack
        cfg = DataLoaderConfig(
            batch_size=64,
            sparse_features=("item",),
            dedup_sparse_features=(("hist", "hist2"),),
            dense_features=("d",),
        )
        node = ReaderNode(cfg)
        batches = node.run_all(table.open_readers("p"))
        # re-expand every batch and compare against the clustered rows
        row_cursor = 0
        for batch in batches:
            expanded = batch.to_kjt_only()
            for i in range(batch.batch_size):
                want = etl.samples[row_cursor]
                for key in ("hist", "hist2", "item"):
                    np.testing.assert_array_equal(
                        expanded.kjt[key].row(i), want.sparse[key]
                    )
                assert batch.labels[i] == want.label
                row_cursor += 1
        assert row_cursor == 64 * len(batches)

    def test_grouped_ikjt_invariant_holds_over_real_data(self, stack):
        """The shared inverse_lookup must stay valid through the full
        stack — the §4.2 invariant checked on stored, re-read data."""
        _, _, _, table = stack
        cfg = DataLoaderConfig(
            batch_size=64,
            dedup_sparse_features=(("hist", "hist2"),),
        )
        node = ReaderNode(cfg)
        for batch in node.run_all(table.open_readers("p"), max_batches=3):
            (ikjt,) = batch.ikjts
            for i in range(batch.batch_size):
                u = ikjt.inverse_lookup[i]
                for key in ("hist", "hist2"):
                    jt = ikjt[key]
                    assert 0 <= u < jt.num_rows
