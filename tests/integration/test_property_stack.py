"""Hypothesis property tests across module boundaries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InverseKeyedJaggedTensor, KeyedJaggedTensor
from repro.datagen import DatasetSchema, DenseFeatureSpec, SparseFeatureSpec
from repro.datagen.session import Sample
from repro.scribe import EventLogRecord, FeatureLogRecord
from repro.storage import Codec, DwrfReader, DwrfWriter, IntEncoding


@st.composite
def arbitrary_samples(draw):
    """Random samples not produced by the trace generator — the storage
    layer must round-trip anything schema-shaped."""
    n = draw(st.integers(min_value=1, max_value=20))
    samples = []
    for i in range(n):
        samples.append(
            Sample(
                sample_id=i,
                session_id=draw(st.integers(min_value=0, max_value=5)),
                timestamp=float(
                    draw(st.floats(min_value=0, max_value=1e6,
                                   allow_nan=False))
                ),
                label=draw(st.integers(min_value=0, max_value=1)),
                sparse={
                    "f1": np.array(
                        draw(
                            st.lists(
                                st.integers(min_value=0, max_value=2**40),
                                max_size=6,
                            )
                        ),
                        dtype=np.int64,
                    ),
                    "f2": np.array(
                        draw(
                            st.lists(
                                st.integers(min_value=-(2**40), max_value=0),
                                max_size=3,
                            )
                        ),
                        dtype=np.int64,
                    ),
                },
                dense={"d": float(draw(st.floats(-1e6, 1e6,
                                                 allow_nan=False)))},
            )
        )
    return samples


_SCHEMA = DatasetSchema(
    sparse=(SparseFeatureSpec("f1"), SparseFeatureSpec("f2")),
    dense=(DenseFeatureSpec("d"),),
)


@settings(max_examples=40, deadline=None)
@given(arbitrary_samples(), st.sampled_from(list(IntEncoding)))
def test_property_dwrf_round_trip_any_samples(samples, encoding):
    writer = DwrfWriter(
        _SCHEMA, stripe_rows=7, codec=Codec.ZLIB, int_encoding=encoding
    )
    blob, _ = writer.write(samples)
    got = DwrfReader(blob, _SCHEMA).read_all()
    assert len(got) == len(samples)
    for a, b in zip(got, samples):
        assert a.sample_id == b.sample_id
        assert a.session_id == b.session_id
        assert a.label == b.label
        np.testing.assert_array_equal(a.sparse["f1"], b.sparse["f1"])
        np.testing.assert_array_equal(a.sparse["f2"], b.sparse["f2"])
        assert a.dense["d"] == b.dense["d"]


@settings(max_examples=40, deadline=None)
@given(arbitrary_samples())
def test_property_log_records_round_trip(samples):
    for s in samples:
        feat = FeatureLogRecord(
            s.sample_id, s.session_id, s.timestamp, s.sparse, s.dense
        )
        got = FeatureLogRecord.deserialize(feat.serialize())
        for k in s.sparse:
            np.testing.assert_array_equal(got.sparse[k], s.sparse[k])
        ev = EventLogRecord(s.sample_id, s.session_id, s.timestamp, s.label)
        assert EventLogRecord.deserialize(ev.serialize()) == ev


@settings(max_examples=40, deadline=None)
@given(arbitrary_samples())
def test_property_ikjt_over_any_rows(samples):
    """IKJT conversion is lossless for any schema-shaped row content."""
    kjt = KeyedJaggedTensor.from_rows(
        [s.sparse for s in samples], keys=["f1", "f2"]
    )
    grouped = InverseKeyedJaggedTensor.from_kjt(kjt, ["f1", "f2"])
    assert grouped.to_kjt() == kjt
    solo = InverseKeyedJaggedTensor.from_kjt(kjt, ["f1"])
    assert solo.to_kjt() == kjt.select(["f1"])
    # grouping never dedups more than the loosest member
    assert grouped.num_unique >= solo.num_unique
