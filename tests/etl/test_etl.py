"""Tests for the ETL substrate: join, clustering (O2), downsampling (§7)."""

import numpy as np
import pytest

from repro.datagen import (
    DatasetSchema,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import (
    ETLConfig,
    ETLJob,
    cluster_by_session,
    downsample_per_sample,
    downsample_per_session,
    is_clustered,
    join_logs,
    samples_per_session,
)
from repro.scribe import (
    ScribeCluster,
    ShardKeyPolicy,
    split_sample,
)


def _schema():
    return DatasetSchema(sparse=(SparseFeatureSpec("f", avg_length=4),))


def _trace(n=60, seed=0):
    return generate_partition(_schema(), n, TraceConfig(seed=seed))


class TestJoin:
    def test_join_matches_ground_truth(self):
        samples = _trace(20)
        feats, evs = zip(*(split_sample(s) for s in samples))
        joined = join_logs(feats, evs)
        assert len(joined) == len(samples)
        for a, b in zip(joined, samples):
            assert a.sample_id == b.sample_id
            assert a.label == b.label
            np.testing.assert_array_equal(a.sparse["f"], b.sparse["f"])

    def test_unmatched_features_dropped(self):
        samples = _trace(10)
        feats, evs = zip(*(split_sample(s) for s in samples))
        joined = join_logs(feats, evs[:5])
        matched_ids = {e.request_id for e in evs[:5]}
        assert {s.sample_id for s in joined} == matched_ids

    def test_unmatched_events_ignored(self):
        samples = _trace(10)
        feats, evs = zip(*(split_sample(s) for s in samples))
        joined = join_logs(feats[:3], evs)
        assert len(joined) == 3

    def test_preserves_feature_order(self):
        samples = _trace(30)
        feats, evs = zip(*(split_sample(s) for s in samples))
        joined = join_logs(feats, evs)
        assert [s.sample_id for s in joined] == [s.sample_id for s in samples]


class TestCluster:
    def test_clustering_makes_clustered(self):
        samples = _trace(100)
        assert not is_clustered(samples)  # interleaved by construction
        clustered = cluster_by_session(samples)
        assert is_clustered(clustered)

    def test_clustering_preserves_rows(self):
        samples = _trace(50)
        clustered = cluster_by_session(samples)
        assert sorted(s.sample_id for s in clustered) == sorted(
            s.sample_id for s in samples
        )

    def test_within_session_timestamp_order(self):
        clustered = cluster_by_session(_trace(50))
        prev_sid, prev_ts = None, None
        for s in clustered:
            if s.session_id == prev_sid:
                assert s.timestamp >= prev_ts
            prev_sid, prev_ts = s.session_id, s.timestamp

    def test_sessions_ordered_by_first_timestamp(self):
        clustered = cluster_by_session(_trace(50))
        firsts = []
        seen = set()
        for s in clustered:
            if s.session_id not in seen:
                seen.add(s.session_id)
                firsts.append(s.timestamp)
        assert firsts == sorted(firsts)

    def test_is_clustered_detects_split_runs(self):
        samples = _trace(30)
        clustered = cluster_by_session(samples)
        broken = clustered[1:] + clustered[:1]  # splits the first session
        assert not is_clustered(broken)

    def test_empty(self):
        assert cluster_by_session([]) == []
        assert is_clustered([])


class TestDownsample:
    def test_rates_comparable_but_s_differs(self):
        """§7: per-session downsampling keeps S high; per-sample collapses
        it — at similar retained volume."""
        samples = _trace(300, seed=5)
        per_sample = downsample_per_sample(samples, 0.25, seed=1)
        per_session = downsample_per_session(samples, 0.25, seed=1)
        # similar volume (within 2x)
        assert 0.5 < len(per_sample) / max(len(per_session), 1) < 2.0
        assert samples_per_session(per_session) > samples_per_session(
            per_sample
        ) * 2

    def test_keep_all(self):
        samples = _trace(10)
        assert downsample_per_sample(samples, 1.0) == samples
        assert len(downsample_per_session(samples, 1.0)) == len(samples)

    def test_keep_none(self):
        samples = _trace(10)
        assert downsample_per_sample(samples, 0.0) == []
        assert downsample_per_session(samples, 0.0) == []

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            downsample_per_sample([], 1.5)
        with pytest.raises(ValueError):
            downsample_per_session([], -0.1)

    def test_samples_per_session_empty(self):
        assert samples_per_session([]) == 0.0


class TestETLJob:
    def _scribe(self, samples):
        cluster = ScribeCluster(num_shards=4, policy=ShardKeyPolicy.SESSION_ID)
        for s in samples:
            feat, ev = split_sample(s)
            cluster.log_features(feat)
            cluster.log_event(ev)
        cluster.flush()
        return cluster

    def test_end_to_end_baseline(self):
        samples = _trace(40, seed=7)
        result = ETLJob(ETLConfig()).run_from_scribe(self._scribe(samples))
        assert result.joined_rows == len(samples)
        assert result.dropped_rows == 0
        assert result.ingest_bytes > 0
        # baseline keeps inference-time order
        ids = [s.sample_id for s in result.samples]
        assert ids == [s.sample_id for s in samples]

    def test_end_to_end_clustered(self):
        samples = _trace(40, seed=8)
        result = ETLJob(ETLConfig(cluster=True)).run_from_scribe(
            self._scribe(samples)
        )
        assert is_clustered(result.samples)
        assert len(result.samples) == len(samples)

    def test_downsampling_session_mode(self):
        samples = _trace(100, seed=9)
        result = ETLJob(
            ETLConfig(keep_rate=0.5, downsample_by="session")
        ).run_from_records(*zip(*(split_sample(s) for s in samples)))
        assert result.dropped_rows == len(samples) - len(result.samples)
        assert 0 < len(result.samples) < len(samples)

    def test_unknown_downsample_mode(self):
        samples = _trace(5)
        with pytest.raises(ValueError):
            ETLJob(
                ETLConfig(keep_rate=0.5, downsample_by="bogus")
            ).run_from_records(*zip(*(split_sample(s) for s in samples)))

    def test_round_trip_feature_values(self):
        samples = _trace(20, seed=10)
        result = ETLJob(ETLConfig()).run_from_scribe(self._scribe(samples))
        by_id = {s.sample_id: s for s in samples}
        for got in result.samples:
            np.testing.assert_array_equal(
                got.sparse["f"], by_id[got.sample_id].sparse["f"]
            )
