"""Tests for CTR evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trainer.evaluation import (
    evaluate,
    log_loss,
    normalized_entropy,
    roc_auc,
)


class TestValidation:
    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            log_loss(np.zeros(2), np.zeros(3))

    def test_empty(self):
        with pytest.raises(ValueError):
            roc_auc(np.zeros(0), np.zeros(0))

    def test_non_probability(self):
        with pytest.raises(ValueError):
            log_loss(np.array([1.5]), np.array([1.0]))

    def test_non_binary_labels(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.5]), np.array([0.3]))


class TestLogLoss:
    def test_perfect(self):
        assert log_loss(np.array([1.0, 0.0]), np.array([1.0, 0.0])) < 1e-9

    def test_uninformative(self):
        ll = log_loss(np.array([0.5, 0.5]), np.array([1.0, 0.0]))
        assert ll == pytest.approx(np.log(2))

    def test_confidently_wrong_is_costly(self):
        assert log_loss(np.array([0.99]), np.array([0.0])) > 4.0


class TestAuc:
    def test_perfect_ranking(self):
        p = np.array([0.9, 0.8, 0.2, 0.1])
        y = np.array([1.0, 1.0, 0.0, 0.0])
        assert roc_auc(p, y) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        p = np.array([0.1, 0.2, 0.8, 0.9])
        y = np.array([1.0, 1.0, 0.0, 0.0])
        assert roc_auc(p, y) == pytest.approx(0.0)

    def test_ties_average(self):
        p = np.array([0.5, 0.5])
        y = np.array([1.0, 0.0])
        assert roc_auc(p, y) == pytest.approx(0.5)

    def test_single_class(self):
        assert roc_auc(np.array([0.2, 0.8]), np.array([1.0, 1.0])) == 0.5

    def test_matches_naive_pair_counting(self):
        rng = np.random.default_rng(0)
        p = rng.random(60)
        y = (rng.random(60) < 0.4).astype(float)
        pos = p[y == 1]
        neg = p[y == 0]
        wins = sum(
            1.0 if a > b else (0.5 if a == b else 0.0)
            for a in pos
            for b in neg
        )
        assert roc_auc(p, y) == pytest.approx(wins / (pos.size * neg.size))


class TestNormalizedEntropy:
    def test_base_rate_predictor_is_one(self):
        y = np.array([1.0, 0.0, 0.0, 0.0])
        p = np.full(4, y.mean())
        assert normalized_entropy(p, y) == pytest.approx(1.0)

    def test_better_model_below_one(self):
        y = np.array([1.0, 1.0, 0.0, 0.0])
        p = np.array([0.8, 0.7, 0.3, 0.2])
        assert normalized_entropy(p, y) < 1.0

    def test_single_class_inf(self):
        assert normalized_entropy(
            np.array([0.5]), np.array([1.0])
        ) == float("inf")

    def test_evaluate_bundle(self):
        y = np.array([1.0, 0.0])
        p = np.array([0.7, 0.2])
        out = evaluate(p, y)
        assert set(out) == {"log_loss", "roc_auc", "normalized_entropy"}


@given(
    st.lists(
        st.tuples(
            # dyadic scores k/1024: halving them is exact in binary
            # floating point for *every* value (subnormals are not —
            # 5e-324 / 2 rounds to 0.0 and collapses distinct scores)
            st.integers(min_value=0, max_value=1024).map(
                lambda k: k / 1024.0
            ),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=2,
        max_size=50,
    )
)
def test_property_auc_invariant_to_monotone_transform(pairs):
    p = np.array([a for a, _ in pairs])
    y = np.array([float(b) for _, b in pairs])
    auc1 = roc_auc(p, y)
    # halving is strictly monotone and exact on dyadic rationals, so it
    # preserves the order and tie structure precisely
    auc2 = roc_auc(p / 2, y)
    assert auc1 == pytest.approx(auc2, abs=1e-9)
