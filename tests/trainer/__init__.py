"""Test package (enables absolute + relative imports across test modules)."""
