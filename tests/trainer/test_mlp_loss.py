"""Gradient-checked tests for MLP, loss, and optimizers."""

import numpy as np
import pytest

from repro.trainer import MLP, SGD, Linear, bce_with_logits, sigmoid, sparse_row_update


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    flat_x = x.ravel()
    flat_g = g.ravel()
    for i in range(flat_x.size):
        old = flat_x[i]
        flat_x[i] = old + eps
        hi = f()
        flat_x[i] = old - eps
        lo = f()
        flat_x[i] = old
        flat_g[i] = (hi - lo) / (2 * eps)
    return g


class TestLinear:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 3, rng)
        y = layer.forward(rng.normal(size=(5, 4)))
        assert y.shape == (5, 3)

    def test_backward_before_forward(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((layer.forward(x) ** 2).sum())

        layer.W.zero_grad()
        layer.b.zero_grad()
        y = layer.forward(x)
        dx = layer.backward(2 * y)
        np.testing.assert_allclose(
            layer.W.grad, numeric_grad(loss, layer.W.value), atol=1e-5
        )
        np.testing.assert_allclose(
            layer.b.grad, numeric_grad(loss, layer.b.value), atol=1e-5
        )
        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-5)

    def test_flops(self):
        layer = Linear(10, 20, np.random.default_rng(0))
        assert layer.flops(8) == 2 * 8 * 10 * 20


class TestMLP:
    def test_requires_layers(self):
        with pytest.raises(ValueError):
            MLP(4, (), np.random.default_rng(0))

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(2)
        mlp = MLP(3, (5, 2), rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((mlp.forward(x) ** 2).sum())

        for p in mlp.params():
            p.zero_grad()
        y = mlp.forward(x)
        dx = mlp.backward(2 * y)
        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-5)
        for p in mlp.params():
            np.testing.assert_allclose(
                p.grad, numeric_grad(loss, p.value), atol=1e-5
            )

    def test_out_dim(self):
        mlp = MLP(4, (8, 3), np.random.default_rng(0))
        assert mlp.out_dim == 3
        assert mlp.forward(np.zeros((2, 4))).shape == (2, 3)


class TestLoss:
    def test_sigmoid_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0])
        s = sigmoid(x)
        assert s[0] == pytest.approx(0.0)
        assert s[1] == pytest.approx(0.5)
        assert s[2] == pytest.approx(1.0)

    def test_bce_matches_numeric(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=6)
        labels = (rng.random(6) < 0.5).astype(float)

        def f():
            return bce_with_logits(logits, labels)[0]

        _, grad = bce_with_logits(logits, labels)
        np.testing.assert_allclose(grad, numeric_grad(f, logits), atol=1e-6)

    def test_bce_validation(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros(0), np.zeros(0))

    def test_perfect_prediction_low_loss(self):
        loss, _ = bce_with_logits(
            np.array([20.0, -20.0]), np.array([1.0, 0.0])
        )
        assert loss < 1e-6


class TestOptimizers:
    def test_sgd_step(self):
        rng = np.random.default_rng(4)
        layer = Linear(2, 2, rng)
        opt = SGD(layer.params(), lr=0.1)
        before = layer.W.value.copy()
        layer.W.grad[:] = 1.0
        opt.step()
        np.testing.assert_allclose(layer.W.value, before - 0.1)

    def test_sgd_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0)

    def test_sparse_row_update_accumulates_duplicates(self):
        w = np.zeros((4, 2))
        ids = np.array([1, 1, 3])
        grads = np.ones((3, 2))
        sparse_row_update(w, ids, grads, lr=0.5)
        np.testing.assert_allclose(w[1], [-1.0, -1.0])  # two hits
        np.testing.assert_allclose(w[3], [-0.5, -0.5])
        np.testing.assert_allclose(w[0], 0.0)

    def test_sparse_row_update_validation(self):
        with pytest.raises(ValueError):
            sparse_row_update(np.zeros((2, 2)), np.array([0]), np.zeros((2, 2)), 0.1)
