"""Tests for model checkpointing and the Model Store."""

import numpy as np
import pytest

from repro.datagen import rm2
from repro.storage import TectonicFS
from repro.trainer import DLRM, DLRMConfig, TrainerOptFlags
from repro.trainer.checkpoint import (
    ModelStore,
    load_model,
    model_state,
    save_model,
)

from .test_model import make_batches


def _model(seed=1, optimizer="sgd"):
    w = rm2(scale=0.1)
    cfg = DLRMConfig(
        embedding_dim=w.embedding_dim,
        bottom_mlp=tuple(w.bottom_mlp) + (w.embedding_dim,),
        top_mlp=tuple(w.top_mlp),
        num_dense=len(w.schema.dense),
        max_table_rows=200,
        sparse_optimizer=optimizer,
        seed=seed,
    )
    return DLRM(list(w.schema.sparse), cfg, TrainerOptFlags.baseline()), w


class TestSerialization:
    def test_round_trip_restores_weights(self):
        model, w = _model()
        (batch,) = make_batches(w, dedup=False, n_batches=1, seed=2)
        model.train_step(batch)
        blob = save_model(model)
        fresh, _ = _model(seed=99)  # different init
        load_model(fresh, blob)
        for a, b in zip(
            model.sparse_arch.tables(), fresh.sparse_arch.tables()
        ):
            np.testing.assert_array_equal(a.weight, b.weight)
        for pa, pb in zip(model.dense_params(), fresh.dense_params()):
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_resume_training_is_exact(self):
        """A restored model continues the identical loss trajectory."""
        model, w = _model(optimizer="rowwise_adagrad")
        batches = make_batches(w, dedup=False, n_batches=4, seed=3)
        model.train_step(batches[0])
        blob = save_model(model)
        later = [model.train_step(b) for b in batches[1:]]

        restored, _ = _model(seed=77, optimizer="rowwise_adagrad")
        load_model(restored, blob)
        resumed = [restored.train_step(b) for b in batches[1:]]
        np.testing.assert_allclose(later, resumed, rtol=1e-12)

    def test_adagrad_state_included(self):
        model, _ = _model(optimizer="rowwise_adagrad")
        state = model_state(model)
        assert any(k.startswith("adagrad/") for k in state)

    def test_architecture_mismatch_rejected(self):
        model, _ = _model()
        blob = save_model(model)
        other, _ = _model(optimizer="rowwise_adagrad")  # extra state keys
        with pytest.raises(ValueError):
            load_model(other, blob)

    def test_corrupt_version_rejected(self):
        import io

        import numpy as np2

        model, _ = _model()
        state = model_state(model)
        state["__format__"] = np2.array([999])
        buf = io.BytesIO()
        np2.savez_compressed(buf, **state)
        with pytest.raises(ValueError):
            load_model(model, buf.getvalue())


class TestLoadModelErrors:
    """load_model reports every problem, in sorted deterministic order."""

    def test_truncated_blob(self):
        model, _ = _model()
        blob = save_model(model)
        with pytest.raises(
            ValueError, match="not a model checkpoint: unreadable blob"
        ):
            load_model(model, blob[:40])

    def test_garbage_blob(self):
        model, _ = _model()
        with pytest.raises(
            ValueError, match="not a model checkpoint: unreadable blob"
        ):
            load_model(model, b"these are not the bytes you seek")

    def test_npz_without_format_marker(self):
        import io

        model, _ = _model()
        buf = io.BytesIO()
        np.savez_compressed(buf, something=np.zeros(3))
        with pytest.raises(
            ValueError,
            match="not a model checkpoint: no format marker \\('__format__'\\)",
        ):
            load_model(model, buf.getvalue())

    def test_version_mismatch_names_the_version(self):
        import io

        model, _ = _model()
        state = model_state(model)
        state["__format__"] = np.array([999])
        buf = io.BytesIO()
        np.savez_compressed(buf, **state)
        with pytest.raises(
            ValueError, match="^unsupported checkpoint version 999$"
        ):
            load_model(model, buf.getvalue())

    def test_mismatch_message_is_exact_and_sorted(self):
        """Missing, extra, and shape problems in one deterministic line."""
        import io

        model, _ = _model()
        state = model_state(model)
        emb_key = sorted(k for k in state if k.startswith("emb/"))[0]
        want_shape = state[emb_key].shape
        del state["dense/1"]
        del state["dense/0"]
        state["zz_bogus"] = np.zeros(1)
        state["aa_bogus"] = np.zeros(1)
        state[emb_key] = np.zeros((3, 3))
        buf = io.BytesIO()
        np.savez_compressed(buf, **state)
        with pytest.raises(ValueError) as err:
            load_model(model, buf.getvalue())
        assert str(err.value) == (
            "checkpoint/model mismatch: "
            "missing=dense/0, dense/1; "
            "extra=aa_bogus, zz_bogus; "
            f"shape={emb_key} (checkpoint (3, 3) vs model {want_shape})"
        )

    def test_optimizer_mismatch_lists_missing_adagrad_keys(self):
        model, _ = _model(optimizer="sgd")
        blob = save_model(model)
        other, _ = _model(optimizer="rowwise_adagrad")
        wanted = sorted(
            k for k in model_state(other) if k.startswith("adagrad/")
        )
        with pytest.raises(ValueError) as err:
            load_model(other, blob)
        assert str(err.value) == (
            "checkpoint/model mismatch: missing=" + ", ".join(wanted)
        )

    def test_mismatched_table_capacity_reports_shapes(self):
        small, _ = _model()
        blob = save_model(small)
        big_cfg_model, w = _model()
        cfg = DLRMConfig(
            embedding_dim=w.embedding_dim,
            bottom_mlp=tuple(w.bottom_mlp) + (w.embedding_dim,),
            top_mlp=tuple(w.top_mlp),
            num_dense=len(w.schema.dense),
            max_table_rows=100,  # half the capacity of the checkpoint
            seed=1,
        )
        big = DLRM(list(w.schema.sparse), cfg, TrainerOptFlags.baseline())
        with pytest.raises(
            ValueError, match="checkpoint/model mismatch: shape="
        ) as err:
            load_model(big, blob)
        assert "checkpoint (200," in str(err.value)
        assert "vs model (100," in str(err.value)

    def test_failed_load_leaves_model_untouched(self):
        """The mismatch scan happens before any write-back."""
        model, _ = _model()
        before = {
            k: v.copy() for k, v in model_state(model).items()
        }
        import io

        state = model_state(model)
        del state["dense/0"]
        buf = io.BytesIO()
        np.savez_compressed(buf, **state)
        with pytest.raises(ValueError, match="missing=dense/0"):
            load_model(model, buf.getvalue())
        for k, v in model_state(model).items():
            np.testing.assert_array_equal(v, before[k])


class TestModelStore:
    def test_versioning(self):
        fs = TectonicFS()
        store = ModelStore(fs)
        model, _ = _model()
        assert store.save("rm2", model) == 1
        assert store.save("rm2", model) == 2
        assert store.versions("rm2") == [1, 2]

    def test_load_latest_and_specific(self):
        fs = TectonicFS()
        store = ModelStore(fs)
        model, w = _model()
        store.save("rm2", model)
        (batch,) = make_batches(w, dedup=False, n_batches=1, seed=4)
        model.train_step(batch)
        store.save("rm2", model)

        latest, _ = _model(seed=5)
        assert store.load("rm2", latest) == 2
        np.testing.assert_array_equal(
            latest.sparse_arch.tables()[0].weight,
            model.sparse_arch.tables()[0].weight,
        )
        v1, _ = _model(seed=6)
        assert store.load("rm2", v1, version=1) == 1

    def test_missing_model(self):
        store = ModelStore(TectonicFS())
        model, _ = _model()
        with pytest.raises(FileNotFoundError):
            store.load("nope", model)
        store.save("m", model)
        with pytest.raises(FileNotFoundError):
            store.load("m", model, version=7)

    def test_snapshots_are_immutable(self):
        """Saving to an existing name appends a version; the underlying
        blob paths can never be overwritten in place."""
        fs = TectonicFS()
        store = ModelStore(fs)
        model, _ = _model()
        assert store.save("m", model) == 1
        with pytest.raises(FileExistsError):
            fs.write(store._path("m", 1), b"clobber")
        assert store.save("m", model) == 2

    def test_corrupt_stored_blob_is_reported(self):
        fs = TectonicFS()
        store = ModelStore(fs)
        model, _ = _model()
        store.save("m", model)
        fs.write(store._path("m", 2), b"bit rot")
        with pytest.raises(
            ValueError, match="not a model checkpoint: unreadable blob"
        ):
            store.load("m", model)  # latest (2) is the corrupt one
        assert store.load("m", model, version=1) == 1

    def test_restore_into_mismatched_architecture(self):
        store = ModelStore(TectonicFS())
        model, _ = _model(optimizer="sgd")
        store.save("m", model)
        other, _ = _model(optimizer="rowwise_adagrad")
        with pytest.raises(ValueError, match="missing=adagrad/"):
            store.load("m", other)

    def test_prune_retention(self):
        fs = TectonicFS()
        store = ModelStore(fs)
        model, _ = _model()
        for _ in range(5):
            store.save("m", model)
        deleted = store.prune("m", keep_last=2)
        assert deleted == [1, 2, 3]
        assert store.versions("m") == [4, 5]
        with pytest.raises(ValueError):
            store.prune("m", keep_last=-1)
