"""Tests for row-wise Adagrad and its DLRM integration.

A key property for RecD: the KJT and IKJT training paths must remain
*identical* under Adagrad too — the IKJT path accumulates duplicate-row
gradients before the optimizer sees them, which only matches the KJT
path if duplicate IDs are coalesced into one optimizer step (as
production row-wise Adagrad does).
"""

import numpy as np
import pytest

from repro.datagen import rm2
from repro.trainer import DLRM, DLRMConfig, RowWiseAdagrad, TrainerOptFlags

from .test_model import make_batches


class TestRowWiseAdagrad:
    def test_validation(self):
        with pytest.raises(ValueError):
            RowWiseAdagrad(0)
        with pytest.raises(ValueError):
            RowWiseAdagrad(4, lr=0)
        opt = RowWiseAdagrad(4)
        with pytest.raises(ValueError):
            opt.update(np.zeros((4, 2)), np.array([0]), np.zeros((2, 2)))

    def test_step_direction(self):
        opt = RowWiseAdagrad(4, lr=0.1)
        w = np.ones((4, 2))
        opt.update(w, np.array([1]), np.array([[1.0, 1.0]]))
        assert np.all(w[1] < 1.0)
        np.testing.assert_allclose(w[0], 1.0)

    def test_accumulator_damps_repeated_updates(self):
        opt = RowWiseAdagrad(2, lr=0.1)
        w = np.zeros((2, 1))
        opt.update(w, np.array([0]), np.array([[1.0]]))
        first = -w[0, 0]
        w[:] = 0
        opt.update(w, np.array([0]), np.array([[1.0]]))
        second = -w[0, 0]
        assert second < first

    def test_duplicate_ids_coalesced(self):
        """Two duplicate-id rows must equal one summed-gradient step."""
        a = RowWiseAdagrad(2, lr=0.1)
        wa = np.zeros((2, 2))
        a.update(wa, np.array([0, 0]), np.array([[1.0, 0.0], [1.0, 0.0]]))
        b = RowWiseAdagrad(2, lr=0.1)
        wb = np.zeros((2, 2))
        b.update(wb, np.array([0]), np.array([[2.0, 0.0]]))
        np.testing.assert_allclose(wa, wb)
        np.testing.assert_allclose(a.accumulator, b.accumulator)

    def test_empty_update_noop(self):
        opt = RowWiseAdagrad(2)
        w = np.ones((2, 2))
        opt.update(w, np.array([], dtype=np.int64), np.zeros((0, 2)))
        np.testing.assert_allclose(w, 1.0)


class TestDLRMWithAdagrad:
    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            DLRMConfig(
                embedding_dim=16,
                bottom_mlp=(16,),
                top_mlp=(8, 1),
                num_dense=4,
                sparse_optimizer="adamw",
            )

    def test_kjt_ikjt_equivalence_under_adagrad(self):
        w = rm2(scale=0.1)
        cfg = DLRMConfig.from_workload(w, max_table_rows=300, seed=5)
        cfg = DLRMConfig(
            embedding_dim=cfg.embedding_dim,
            bottom_mlp=cfg.bottom_mlp,
            top_mlp=cfg.top_mlp,
            num_dense=cfg.num_dense,
            max_table_rows=300,
            sparse_optimizer="rowwise_adagrad",
            seed=5,
        )
        base = DLRM(list(w.schema.sparse), cfg, TrainerOptFlags.baseline())
        recd = DLRM(list(w.schema.sparse), cfg, TrainerOptFlags.full())
        base_batches = make_batches(w, dedup=False, n_batches=3, seed=8)
        recd_batches = make_batches(w, dedup=True, n_batches=3, seed=8)
        for bb, rb in zip(base_batches, recd_batches):
            lb = base.train_step(bb)
            lr_ = recd.train_step(rb)
            assert lb == pytest.approx(lr_, rel=1e-9)
        for tb, tr in zip(base.sparse_arch.tables(), recd.sparse_arch.tables()):
            np.testing.assert_allclose(tb.weight, tr.weight, atol=1e-9)

    def test_adagrad_trains(self):
        w = rm2(scale=0.1)
        cfg = DLRMConfig(
            embedding_dim=w.embedding_dim,
            bottom_mlp=tuple(w.bottom_mlp) + (w.embedding_dim,),
            top_mlp=tuple(w.top_mlp),
            num_dense=len(w.schema.dense),
            max_table_rows=300,
            sparse_optimizer="rowwise_adagrad",
            seed=6,
        )
        model = DLRM(list(w.schema.sparse), cfg, TrainerOptFlags.baseline())
        (batch,) = make_batches(w, dedup=False, n_batches=1, seed=9)
        losses = [model.train_step(batch) for _ in range(6)]
        assert losses[-1] < losses[0]
