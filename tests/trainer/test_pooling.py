"""Gradient-checked tests for all pooling modules."""

import numpy as np
import pytest

from repro.trainer import (
    AttentionPooling,
    EmbeddingActivations,
    MaxPooling,
    MeanPooling,
    SumPooling,
    TransformerPooling,
)


def make_acts(rng, lengths, dim):
    total = sum(lengths)
    values = rng.normal(size=(total, dim))
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    ids = rng.integers(0, 100, size=total)
    return EmbeddingActivations(values, offsets, ids)


def numeric_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    fx, fg = x.ravel(), g.ravel()
    for i in range(fx.size):
        old = fx[i]
        fx[i] = old + eps
        hi = f()
        fx[i] = old - eps
        lo = f()
        fx[i] = old
        fg[i] = (hi - lo) / (2 * eps)
    return g


POOLINGS = {
    "sum": lambda dim, rng: SumPooling(),
    "mean": lambda dim, rng: MeanPooling(),
    "max": lambda dim, rng: MaxPooling(),
    "attention": lambda dim, rng: AttentionPooling(dim, rng=rng),
    "transformer": lambda dim, rng: TransformerPooling(dim, rng=rng),
}


@pytest.mark.parametrize("name", list(POOLINGS))
def test_input_gradients_match_numeric(name):
    rng = np.random.default_rng(7)
    dim = 3
    pool = POOLINGS[name](dim, rng)
    acts = make_acts(rng, [2, 0, 3, 1], dim)
    # a fixed random projection makes the scalar loss sensitive everywhere
    proj = rng.normal(size=(4, dim))

    def loss():
        return float((pool.forward(acts) * proj).sum())

    out = pool.forward(acts)
    dacts = pool.backward(proj)
    assert dacts.shape == acts.values.shape
    np.testing.assert_allclose(
        dacts, numeric_grad(loss, acts.values), atol=1e-5
    )


@pytest.mark.parametrize("name", ["attention", "transformer"])
def test_param_gradients_match_numeric(name):
    rng = np.random.default_rng(8)
    dim = 3
    pool = POOLINGS[name](dim, rng)
    acts = make_acts(rng, [3, 2], dim)
    proj = rng.normal(size=(2, dim))

    def loss():
        return float((pool.forward(acts) * proj).sum())

    pool.forward(acts)
    for p in pool.params():
        p.zero_grad()
    pool.forward(acts)
    pool.backward(proj)
    for p in pool.params():
        np.testing.assert_allclose(
            p.grad, numeric_grad(loss, p.value), atol=1e-5,
            err_msg=f"{name} param {p.shape}",
        )


@pytest.mark.parametrize("name", list(POOLINGS))
def test_empty_segments_pool_to_zero(name):
    rng = np.random.default_rng(9)
    dim = 4
    pool = POOLINGS[name](dim, rng)
    acts = make_acts(rng, [0, 2, 0], dim)
    out = pool.forward(acts)
    assert out.shape == (3, dim)
    np.testing.assert_allclose(out[0], 0.0)
    np.testing.assert_allclose(out[2], 0.0)


@pytest.mark.parametrize("name", list(POOLINGS))
def test_backward_before_forward_raises(name):
    pool = POOLINGS[name](3, np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        pool.backward(np.zeros((1, 3)))


class TestSemantics:
    def test_sum_pooling_values(self):
        acts = EmbeddingActivations(
            np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
            np.array([0, 2, 3]),
            np.zeros(3, dtype=np.int64),
        )
        out = SumPooling().forward(acts)
        np.testing.assert_allclose(out, [[4.0, 6.0], [5.0, 6.0]])

    def test_mean_pooling_values(self):
        acts = EmbeddingActivations(
            np.array([[2.0], [4.0]]), np.array([0, 2]), np.zeros(2, dtype=np.int64)
        )
        np.testing.assert_allclose(MeanPooling().forward(acts), [[3.0]])

    def test_max_pooling_values(self):
        acts = EmbeddingActivations(
            np.array([[1.0, 9.0], [5.0, 2.0]]),
            np.array([0, 2]),
            np.zeros(2, dtype=np.int64),
        )
        np.testing.assert_allclose(MaxPooling().forward(acts), [[5.0, 9.0]])

    def test_attention_is_convex_combination(self):
        """Attention output lies in the convex hull of the segment rows."""
        rng = np.random.default_rng(10)
        pool = AttentionPooling(3, rng=rng)
        acts = make_acts(rng, [4], 3)
        out = pool.forward(acts)[0]
        lo = acts.values.min(axis=0) - 1e-9
        hi = acts.values.max(axis=0) + 1e-9
        assert np.all(out >= lo) and np.all(out <= hi)

    def test_transformer_permutation_of_batch(self):
        """Permuting batch rows permutes outputs (no cross-row leakage)."""
        rng = np.random.default_rng(11)
        pool = TransformerPooling(3, rng=rng)
        a = make_acts(rng, [2, 3], 3)
        out = pool.forward(a)
        # swap the two rows
        values_swapped = np.concatenate([a.values[2:], a.values[:2]])
        b = EmbeddingActivations(
            values_swapped, np.array([0, 3, 5]), a.ids
        )
        out_swapped = pool.forward(b)
        np.testing.assert_allclose(out_swapped[0], out[1], atol=1e-12)
        np.testing.assert_allclose(out_swapped[1], out[0], atol=1e-12)

    def test_flop_counts_positive_and_scale(self):
        rng = np.random.default_rng(0)
        for name, factory in POOLINGS.items():
            pool = factory(8, rng)
            small = pool.flops(100, 8, 10)
            large = pool.flops(1000, 8, 10)
            assert 0 < small < large, name
