"""Functional-equivalence tests for the O5–O7 sparse paths.

The paper's correctness claim (§6.2): "IKJTs encode the exact same
logical data as KJTs and thus trainers can train on the exact same
batches."  Every flag combination must produce identical pooled outputs
AND identical embedding-table gradients.
"""

import itertools

import numpy as np
import pytest

from repro.core import InverseKeyedJaggedTensor, KeyedJaggedTensor
from repro.trainer import (
    AttentionPooling,
    EmbeddingTable,
    SparseArch,
    SparseFeature,
    SumPooling,
    TransformerPooling,
    TrainerOptFlags,
)


def make_batch_kjt(rng, batch=12, dup_factor=3):
    """A KJT whose rows repeat in blocks (session-like duplication)."""
    rows = []
    current = {}
    for i in range(batch):
        if i % dup_factor == 0:
            current = {
                "f1": rng.integers(0, 50, size=rng.integers(1, 6)).tolist(),
                "f2": rng.integers(0, 50, size=rng.integers(1, 4)).tolist(),
            }
        rows.append(dict(current))
    return KeyedJaggedTensor.from_rows(rows, keys=["f1", "f2"])


def build_arch(flags, pooling_cls, seed=0):
    rng = np.random.default_rng(seed)
    dim = 4
    features = {}
    for name in ("f1", "f2"):
        table = EmbeddingTable(64, dim, np.random.default_rng(seed + hash(name) % 97), name=name)
        pool = (
            pooling_cls(dim, rng=np.random.default_rng(5))
            if pooling_cls is not SumPooling
            else SumPooling()
        )
        features[name] = SparseFeature(name, table, pool)
    return SparseArch(features, flags)


ALL_FLAG_COMBOS = [
    TrainerOptFlags(dedup_emb=a, jagged_index_select=b, dedup_compute=c)
    for a, b, c in itertools.product([False, True], repeat=3)
    if not (c and not a)  # dedup compute requires dedup emb lookups
]


@pytest.mark.parametrize("pooling_cls", [SumPooling, AttentionPooling, TransformerPooling])
@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS)
def test_ikjt_path_matches_kjt_path(pooling_cls, flags):
    rng = np.random.default_rng(3)
    kjt = make_batch_kjt(rng)
    ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, ["f1", "f2"])

    base = build_arch(TrainerOptFlags.baseline(), pooling_cls)
    recd = build_arch(flags, pooling_cls)
    # identical initial tables by construction (same seeds)
    for t_base, t_recd in zip(base.tables(), recd.tables()):
        np.testing.assert_array_equal(t_base.weight, t_recd.weight)

    pooled_base = base.forward(kjt, [])
    pooled_recd = recd.forward(None, [ikjt])
    for a, b in zip(pooled_base, pooled_recd):
        np.testing.assert_allclose(a, b, atol=1e-10)

    # gradients must also match after backward + sparse apply
    grads = [np.random.default_rng(9).normal(size=p.shape) for p in pooled_base]
    base.backward(grads)
    recd.backward(grads)
    for t_base, t_recd in zip(base.tables(), recd.tables()):
        t_base.apply_sgd(0.1)
        t_recd.apply_sgd(0.1)
        np.testing.assert_allclose(t_base.weight, t_recd.weight, atol=1e-10)


class TestResourceCounters:
    def test_dedup_reduces_lookups_and_activation_bytes(self):
        """O5's claim: lookups and activation memory drop by the dedupe
        factor."""
        rng = np.random.default_rng(4)
        kjt = make_batch_kjt(rng, batch=30, dup_factor=5)
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, ["f1", "f2"])

        base = build_arch(TrainerOptFlags.baseline(), SumPooling)
        recd = build_arch(TrainerOptFlags.full(), SumPooling)
        base.forward(kjt, [])
        recd.forward(None, [ikjt])
        factor = ikjt.dedupe_factor()
        assert factor > 2
        assert base.counters["emb_lookups"] == pytest.approx(
            recd.counters["emb_lookups"] * factor, rel=0.01
        )
        assert recd.counters["activation_bytes"] < base.counters[
            "activation_bytes"
        ]

    def test_dedup_compute_reduces_pooling_flops(self):
        """O7's claim: pooling FLOPs drop by the dedupe factor."""
        rng = np.random.default_rng(5)
        kjt = make_batch_kjt(rng, batch=30, dup_factor=5)
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, ["f1", "f2"])
        with_dc = build_arch(TrainerOptFlags.full(), TransformerPooling)
        without_dc = build_arch(
            TrainerOptFlags(dedup_emb=True, jagged_index_select=True,
                            dedup_compute=False),
            TransformerPooling,
        )
        with_dc.forward(None, [ikjt])
        without_dc.forward(None, [ikjt])
        assert (
            with_dc.counters["pooling_flops"]
            < without_dc.counters["pooling_flops"] / 2
        )

    def test_dense_index_select_pays_densify_bytes(self):
        """Without O6, IKJT expansion allocates dense intermediates."""
        rng = np.random.default_rng(6)
        kjt = make_batch_kjt(rng, batch=20, dup_factor=4)
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt, ["f1", "f2"])
        no_jis = build_arch(
            TrainerOptFlags(dedup_emb=True, jagged_index_select=False,
                            dedup_compute=False),
            SumPooling,
        )
        jis = build_arch(
            TrainerOptFlags(dedup_emb=True, jagged_index_select=True,
                            dedup_compute=False),
            SumPooling,
        )
        no_jis.forward(None, [ikjt])
        jis.forward(None, [ikjt])
        assert no_jis.counters["densify_bytes"] > 0
        assert jis.counters["densify_bytes"] == 0


class TestValidation:
    def test_empty_features_rejected(self):
        with pytest.raises(ValueError):
            SparseArch({}, TrainerOptFlags.baseline())

    def test_unknown_feature_key(self):
        arch = build_arch(TrainerOptFlags.baseline(), SumPooling)
        kjt = KeyedJaggedTensor.from_rows([{"zzz": [1]}])
        with pytest.raises(KeyError):
            arch.forward(kjt, [])

    def test_no_sparse_features_in_batch(self):
        arch = build_arch(TrainerOptFlags.baseline(), SumPooling)
        with pytest.raises(ValueError):
            arch.forward(None, [])

    def test_gradient_count_mismatch(self):
        rng = np.random.default_rng(0)
        arch = build_arch(TrainerOptFlags.baseline(), SumPooling)
        kjt = make_batch_kjt(rng)
        arch.forward(kjt, [])
        with pytest.raises(ValueError):
            arch.backward([np.zeros((12, 4))])

    def test_backward_before_forward(self):
        arch = build_arch(TrainerOptFlags.baseline(), SumPooling)
        feature = arch.features["f1"]
        with pytest.raises(RuntimeError):
            feature.backward(np.zeros((1, 4)))
