"""End-to-end DLRM tests: training works and KJT==IKJT batches train
identically."""

import numpy as np
import pytest

from repro.datagen import (
    TraceConfig,
    generate_partition,
    rm1,
)
from repro.etl import cluster_by_session
from repro.reader import DataLoaderConfig, convert_rows
from repro.trainer import DLRM, DLRMConfig, TrainerOptFlags
from repro.trainer.embedding import EmbeddingTable


def small_workload():
    return rm1(scale=0.1)


def make_batches(workload, dedup: bool, n_batches=2, batch_size=32, seed=0):
    samples = generate_partition(
        workload.schema, 30, TraceConfig(seed=seed)
    )
    samples = cluster_by_session(samples)
    if dedup:
        cfg = DataLoaderConfig(
            batch_size=batch_size,
            sparse_features=tuple(
                f.name
                for f in workload.schema.sparse
                if f.name not in workload.dedup_feature_names
            ),
            dedup_sparse_features=workload.dedup_groups,
            dense_features=tuple(workload.schema.dense_names),
        )
    else:
        cfg = DataLoaderConfig(
            batch_size=batch_size,
            sparse_features=tuple(workload.schema.sparse_names),
            dense_features=tuple(workload.schema.dense_names),
        )
    batches = []
    for i in range(n_batches):
        rows = samples[i * batch_size : (i + 1) * batch_size]
        batch, _ = convert_rows(rows, cfg)
        batches.append(batch)
    return batches


def make_model(workload, flags, seed=1):
    cfg = DLRMConfig.from_workload(workload, max_table_rows=500, seed=seed)
    return DLRM(list(workload.schema.sparse), cfg, flags)


class TestConstruction:
    def test_requires_sparse_features(self):
        w = small_workload()
        with pytest.raises(ValueError):
            DLRM([], DLRMConfig.from_workload(w))

    def test_bottom_mlp_dim_validation(self):
        w = small_workload()
        cfg = DLRMConfig(
            embedding_dim=16,
            bottom_mlp=(8, 4),  # doesn't end at 16
            top_mlp=(8, 1),
            num_dense=4,
        )
        with pytest.raises(ValueError):
            DLRM(list(w.schema.sparse), cfg)

    def test_top_mlp_must_output_logit(self):
        w = small_workload()
        cfg = DLRMConfig(
            embedding_dim=16,
            bottom_mlp=(8, 16),
            top_mlp=(8, 2),
            num_dense=4,
        )
        with pytest.raises(ValueError):
            DLRM(list(w.schema.sparse), cfg)

    def test_table_rows_capped(self):
        w = small_workload()
        model = make_model(w, TrainerOptFlags.baseline())
        for table in model.sparse_arch.tables():
            assert table.num_rows <= 500
        assert model.embedding_nbytes() > 0


class TestTraining:
    def test_forward_shapes(self):
        w = small_workload()
        model = make_model(w, TrainerOptFlags.baseline())
        (batch,) = make_batches(w, dedup=False, n_batches=1)
        logits = model.forward(batch)
        assert logits.shape == (batch.batch_size,)
        probs = model.predict(batch)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_loss_decreases_on_repeated_batch(self):
        w = small_workload()
        model = make_model(w, TrainerOptFlags.baseline())
        (batch,) = make_batches(w, dedup=False, n_batches=1)
        losses = [model.train_step(batch) for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_backward_before_forward(self):
        w = small_workload()
        model = make_model(w, TrainerOptFlags.baseline())
        with pytest.raises(RuntimeError):
            model.backward(np.zeros(4))


class TestKjtIkjtTrainingEquivalence:
    def test_identical_training_trajectory(self):
        """Training on IKJT batches with full RecD flags must follow the
        exact same loss trajectory as KJT batches on the baseline."""
        w = small_workload()
        base_model = make_model(w, TrainerOptFlags.baseline(), seed=3)
        recd_model = make_model(w, TrainerOptFlags.full(), seed=3)
        base_batches = make_batches(w, dedup=False, n_batches=3, seed=11)
        recd_batches = make_batches(w, dedup=True, n_batches=3, seed=11)
        for bb, rb in zip(base_batches, recd_batches):
            lb = base_model.train_step(bb)
            lr_ = recd_model.train_step(rb)
            assert lb == pytest.approx(lr_, rel=1e-9)
        # weights end up identical too
        for tb, tr in zip(
            base_model.sparse_arch.tables(), recd_model.sparse_arch.tables()
        ):
            np.testing.assert_allclose(tb.weight, tr.weight, atol=1e-9)

    def test_recd_uses_fewer_resources(self):
        w = small_workload()
        base_model = make_model(w, TrainerOptFlags.baseline(), seed=3)
        recd_model = make_model(w, TrainerOptFlags.full(), seed=3)
        (bb,) = make_batches(w, dedup=False, n_batches=1, seed=12)
        (rb,) = make_batches(w, dedup=True, n_batches=1, seed=12)
        base_model.train_step(bb)
        recd_model.train_step(rb)
        assert (
            recd_model.counters["emb_lookups"]
            < base_model.counters["emb_lookups"]
        )
        assert (
            recd_model.counters["pooling_flops"]
            < base_model.counters["pooling_flops"]
        )


class TestUpdateTracking:
    def test_repeat_update_counting(self):
        table = EmbeddingTable(16, 2, np.random.default_rng(0))
        table.accumulate_grad(np.array([1, 1, 2]), np.ones((3, 2)))
        table.apply_sgd(0.1, track_updates=True)
        table.accumulate_grad(np.array([1]), np.ones((1, 2)))
        table.apply_sgd(0.1, track_updates=True)
        assert table.update_events[1] == 2
        assert table.update_events[2] == 1
