"""Tests for SDD volumes and the distributed-training latency model."""

import numpy as np
import pytest

from repro.core import InverseKeyedJaggedTensor, KeyedJaggedTensor
from repro.datagen import TraceConfig, generate_partition, rm1
from repro.distributed import (
    DistributedTrainer,
    plan_sharding,
    sdd_volume,
    sim_cluster,
)
from repro.etl import cluster_by_session
from repro.reader import Batch, DataLoaderConfig, convert_rows
from repro.trainer import DLRM, DLRMConfig, TrainerOptFlags


def dup_kjt(batch=12, values_per_row=6):
    rows = [{"f": list(range(values_per_row))} for _ in range(batch)]
    return KeyedJaggedTensor.from_rows(rows)


def make_batch(kjt=None, ikjts=None, batch=12):
    return Batch(
        dense=np.zeros((batch, 1), dtype=np.float32),
        labels=np.zeros(batch, dtype=np.float32),
        kjt=kjt,
        ikjts=ikjts or [],
    )


class TestShardingPlan:
    def test_round_robin(self):
        plan = plan_sharding(["a", "b", "c"], 2)
        assert plan.owner == {"a": 0, "b": 1, "c": 0}

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_sharding([], 2)
        with pytest.raises(ValueError):
            plan_sharding(["a"], 0)


class TestSDDVolume:
    def test_kjt_volume(self):
        kjt = dup_kjt(batch=12, values_per_row=6)
        vol = sdd_volume(make_batch(kjt=kjt))
        assert vol.input_bytes == 12 * 6 * 8 + 13 * 8
        assert vol.output_rows == 12
        assert vol.output_bytes(16) == 12 * 16 * 4

    def test_ikjt_volume_deduplicated(self):
        kjt = dup_kjt(batch=12, values_per_row=6)  # all rows identical
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt)
        vol = sdd_volume(make_batch(ikjts=[ikjt]))
        assert vol.input_bytes == 6 * 8 + 2 * 8  # one unique row
        assert vol.output_rows == 1

    def test_ikjt_without_dedup_output(self):
        kjt = dup_kjt(batch=12)
        ikjt = InverseKeyedJaggedTensor.from_kjt(kjt)
        vol = sdd_volume(make_batch(ikjts=[ikjt]), dedup_output=False)
        assert vol.output_rows == 12

    def test_recd_strictly_smaller_on_wire(self):
        """§4.2: IKJTs strictly decrease over-the-network tensor sizes."""
        kjt = dup_kjt(batch=20)
        base = sdd_volume(make_batch(kjt=kjt, batch=20))
        recd = sdd_volume(
            make_batch(ikjts=[InverseKeyedJaggedTensor.from_kjt(kjt)], batch=20)
        )
        assert recd.input_bytes < base.input_bytes


def _batches(w, dedup, batch_size, n=2, seed=0):
    samples = cluster_by_session(
        generate_partition(w.schema, 150, TraceConfig(seed=seed))
    )
    if dedup:
        cfg = DataLoaderConfig(
            batch_size=batch_size,
            sparse_features=tuple(
                f.name for f in w.schema.sparse
                if f.name not in w.dedup_feature_names
            ),
            dedup_sparse_features=w.dedup_groups,
            dense_features=tuple(w.schema.dense_names),
        )
    else:
        cfg = DataLoaderConfig(
            batch_size=batch_size,
            sparse_features=tuple(w.schema.sparse_names),
            dense_features=tuple(w.schema.dense_names),
        )
    return [
        convert_rows(samples[i * batch_size : (i + 1) * batch_size], cfg)[0]
        for i in range(n)
    ]


class TestDistributedTrainer:
    @pytest.fixture(scope="class")
    def reports(self):
        w = rm1(scale=0.5)
        cluster = sim_cluster(num_gpus=48)
        out = {}
        for name, flags, dedup in [
            ("baseline", TrainerOptFlags.baseline(), False),
            ("recd", TrainerOptFlags.full(), True),
        ]:
            model = DLRM(
                list(w.schema.sparse),
                DLRMConfig.from_workload(w, max_table_rows=1000, seed=1),
                flags,
            )
            trainer = DistributedTrainer(model, cluster)
            out[name] = trainer.run(
                _batches(w, dedup, w.baseline_batch_size)
            )
        return out

    def test_breakdown_positive(self, reports):
        for rep in reports.values():
            bd = rep.mean_breakdown
            assert bd.emb_lookup > 0
            assert bd.gemm > 0
            assert bd.a2a > 0
            assert bd.other > 0

    def test_recd_faster_at_same_batch(self, reports):
        assert (
            reports["recd"].mean_samples_per_second
            > reports["baseline"].mean_samples_per_second
        )

    def test_a2a_at_least_halved(self, reports):
        """Fig 8: RecD halves exposed A2A across all RMs."""
        assert (
            reports["recd"].mean_breakdown.a2a
            <= 0.55 * reports["baseline"].mean_breakdown.a2a
        )

    def test_emb_lookup_reduced(self, reports):
        assert (
            reports["recd"].mean_breakdown.emb_lookup
            < reports["baseline"].mean_breakdown.emb_lookup
        )

    def test_memory_reduced(self, reports):
        base_peak = max(
            r.max_mem_bytes for r in reports["baseline"].iterations
        )
        recd_peak = max(r.max_mem_bytes for r in reports["recd"].iterations)
        assert recd_peak < base_peak

    def test_other_roughly_constant(self, reports):
        """All-reduce and fixed overheads don't change with dedup."""
        b = reports["baseline"].mean_breakdown.other
        r = reports["recd"].mean_breakdown.other
        assert r == pytest.approx(b, rel=0.05)

    def test_losses_recorded(self, reports):
        for rep in reports.values():
            assert all(np.isfinite(r.loss) for r in rep.iterations)

    def test_single_node_still_benefits(self):
        """§6.2: RecD helps on one NVLink node too (compute/memory)."""
        w = rm1(scale=0.5)
        cluster = sim_cluster(num_gpus=8, gpus_per_node=8)
        qps = {}
        for name, flags, dedup in [
            ("baseline", TrainerOptFlags.baseline(), False),
            ("recd", TrainerOptFlags.full(), True),
        ]:
            model = DLRM(
                list(w.schema.sparse),
                DLRMConfig.from_workload(w, max_table_rows=1000, seed=2),
                flags,
            )
            trainer = DistributedTrainer(model, cluster)
            rep = trainer.run(_batches(w, dedup, w.baseline_batch_size, n=1))
            qps[name] = rep.mean_samples_per_second
        assert qps["recd"] > qps["baseline"]

    def test_overlap_reduces_exposed_a2a(self):
        """comm_overlap_fraction hides A2A under GEMM, shrinking only the
        a2a phase."""
        from repro.distributed import TrainerCostConstants

        w = rm1(scale=0.5)
        batches = _batches(w, False, w.baseline_batch_size, n=1, seed=3)
        results = {}
        for overlap in (0.0, 0.5):
            model = DLRM(
                list(w.schema.sparse),
                DLRMConfig.from_workload(w, max_table_rows=500, seed=4),
                TrainerOptFlags.baseline(),
            )
            trainer = DistributedTrainer(
                model,
                sim_cluster(num_gpus=48),
                TrainerCostConstants(comm_overlap_fraction=overlap),
            )
            results[overlap] = trainer.run(list(batches)).mean_breakdown
        assert results[0.5].a2a < results[0.0].a2a
        assert results[0.5].gemm == pytest.approx(results[0.0].gemm)
        assert results[0.5].other == pytest.approx(results[0.0].other)

    def test_full_overlap_clamps_at_zero(self):
        from repro.distributed import TrainerCostConstants

        w = rm1(scale=0.5)
        batches = _batches(w, False, w.baseline_batch_size, n=1, seed=5)
        model = DLRM(
            list(w.schema.sparse),
            DLRMConfig.from_workload(w, max_table_rows=500, seed=6),
            TrainerOptFlags.baseline(),
        )
        trainer = DistributedTrainer(
            model,
            sim_cluster(num_gpus=48),
            TrainerCostConstants(comm_overlap_fraction=1e9),
        )
        rep = trainer.run(list(batches))
        assert rep.mean_breakdown.a2a == 0.0

    def test_empty_report(self):
        w = rm1(scale=0.5)
        model = DLRM(
            list(w.schema.sparse),
            DLRMConfig.from_workload(w, max_table_rows=500),
            TrainerOptFlags.baseline(),
        )
        trainer = DistributedTrainer(model, sim_cluster())
        assert trainer.report.mean_samples_per_second == 0.0
        assert trainer.report.max_mem_util == 0.0


class TestStreamingIngestion:
    """run() over any iterator must equal run() over the same list."""

    def _trainer(self, w, seed=7):
        model = DLRM(
            list(w.schema.sparse),
            DLRMConfig.from_workload(w, max_table_rows=500, seed=seed),
            TrainerOptFlags.baseline(),
        )
        return DistributedTrainer(model, sim_cluster(num_gpus=48))

    def test_iterator_matches_list(self):
        w = rm1(scale=0.5)
        batches = _batches(w, False, w.baseline_batch_size, n=3, seed=8)
        over_list = self._trainer(w).run(batches)
        over_iter = self._trainer(w).run(iter(batches))
        assert over_iter.losses == over_list.losses
        assert (
            over_iter.mean_samples_per_second
            == over_list.mean_samples_per_second
        )
        assert len(over_iter.iterations) == len(over_list.iterations) == 3

    def test_generator_source(self):
        w = rm1(scale=0.5)
        batches = _batches(w, False, w.baseline_batch_size, n=2, seed=9)
        over_list = self._trainer(w).run(batches)
        over_gen = self._trainer(w).run(b for b in batches)
        assert over_gen.losses == over_list.losses

    def test_ingestion_timing_recorded(self):
        w = rm1(scale=0.5)
        batches = _batches(w, False, w.baseline_batch_size, n=2, seed=10)
        rep = self._trainer(w).run(iter(batches))
        assert rep.step_wall_seconds > 0.0
        assert rep.ingest_wait_seconds >= 0.0
        assert (
            rep.run_wall_seconds
            >= rep.ingest_wait_seconds + rep.step_wall_seconds
        )

    def test_timing_accumulates_across_runs(self):
        """Epoch loops call run() once per epoch on one trainer."""
        w = rm1(scale=0.5)
        batches = _batches(w, False, w.baseline_batch_size, n=1, seed=11)
        trainer = self._trainer(w)
        trainer.run(batches)
        first_wall = trainer.report.run_wall_seconds
        trainer.run(batches)
        assert len(trainer.report.iterations) == 2
        assert trainer.report.run_wall_seconds > first_wall
