"""Tests for device specs and collective cost models."""

import pytest

from repro.distributed import (
    ClusterSpec,
    GPUDevice,
    GPUSpec,
    all_reduce_seconds,
    all_to_all_seconds,
    sim_cluster,
    sim_gpu,
)


class TestClusterSpec:
    def test_single_node_uses_nvlink(self):
        c = ClusterSpec(num_gpus=8, gpus_per_node=8)
        assert c.single_node
        assert c.collective_bw == c.gpu.nvlink_bw

    def test_multi_node_uses_nic(self):
        c = ClusterSpec(num_gpus=48, gpus_per_node=8)
        assert not c.single_node
        assert c.num_nodes == 6
        assert c.collective_bw == c.gpu.nic_bw

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_gpus=0)
        with pytest.raises(ValueError):
            ClusterSpec(num_gpus=12, gpus_per_node=8)

    def test_device(self):
        d = GPUDevice(GPUSpec(), device_id=3)
        assert d.memory.capacity_bytes == GPUSpec().memory_bytes
        assert "id=3" in repr(d)


class TestCollectives:
    def test_single_gpu_free(self):
        c = ClusterSpec(num_gpus=1, gpus_per_node=1)
        assert all_to_all_seconds(10**9, c) == 0.0
        assert all_reduce_seconds(10**9, c) == 0.0

    def test_a2a_scales_with_bytes(self):
        c = sim_cluster(num_gpus=16)
        t1 = all_to_all_seconds(10**6, c)
        t2 = all_to_all_seconds(2 * 10**6, c)
        assert t2 > t1

    def test_a2a_latency_floor(self):
        c = sim_cluster(num_gpus=16)
        assert all_to_all_seconds(0, c) == pytest.approx(
            c.collective_latency
        )

    def test_allreduce_volume_factor(self):
        """all-reduce moves ~2x the payload of an all-to-all of the same
        per-GPU bytes."""
        c = sim_cluster(num_gpus=16)
        lat = c.collective_latency
        a2a = all_to_all_seconds(10**6, c) - lat
        ar = all_reduce_seconds(10**6, c) - lat
        assert ar == pytest.approx(2 * a2a)

    def test_negative_bytes_rejected(self):
        c = sim_cluster()
        with pytest.raises(ValueError):
            all_to_all_seconds(-1, c)
        with pytest.raises(ValueError):
            all_reduce_seconds(-1, c)

    def test_nvlink_faster_than_roce(self):
        """Single-node collectives must be faster (§6.2 single-node)."""
        single = sim_cluster(num_gpus=8)
        multi = sim_cluster(num_gpus=64)
        nbytes = 10**6
        assert all_to_all_seconds(nbytes, single) < all_to_all_seconds(
            nbytes, multi
        )

    def test_sim_gpu_ratios(self):
        g = sim_gpu()
        # HBM : NIC ratio preserved from the real envelope (~62:1)
        assert g.hbm_bw / g.nic_bw == pytest.approx(62.0, rel=0.05)
