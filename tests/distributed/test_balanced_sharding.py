"""Tests for the size-balanced sharding planner."""

import numpy as np
import pytest

from repro.distributed import plan_sharding_balanced


class TestBalancedSharding:
    def test_validation(self):
        with pytest.raises(ValueError):
            plan_sharding_balanced({}, 2)
        with pytest.raises(ValueError):
            plan_sharding_balanced({"a": 1}, 0)
        with pytest.raises(ValueError):
            plan_sharding_balanced({"a": -1}, 2)

    def test_every_feature_assigned(self):
        plan = plan_sharding_balanced({"a": 10, "b": 5, "c": 1}, 2)
        assert set(plan.owner) == {"a", "b", "c"}
        assert all(0 <= g < 2 for g in plan.owner.values())

    def test_skewed_tables_balanced(self):
        """One huge table + many small ones: the huge one gets a GPU
        largely to itself."""
        sizes = {"huge": 100, **{f"s{i}": 10 for i in range(10)}}
        plan = plan_sharding_balanced(sizes, 2)
        loads = [0, 0]
        for name, gpu in plan.owner.items():
            loads[gpu] += sizes[name]
        assert abs(loads[0] - loads[1]) <= 10  # within one small table

    def test_beats_round_robin_on_skew(self):
        rng = np.random.default_rng(0)
        sizes = {f"f{i}": int(v) for i, v in enumerate(
            rng.pareto(1.5, size=40) * 100 + 1
        )}
        n = 8
        balanced = plan_sharding_balanced(sizes, n)

        def imbalance(owner):
            loads = [0] * n
            for name, gpu in owner.items():
                loads[gpu] += sizes[name]
            return max(loads) - min(loads)

        round_robin = {name: i % n for i, name in enumerate(sizes)}
        assert imbalance(balanced.owner) <= imbalance(round_robin)

    def test_deterministic(self):
        sizes = {"a": 5, "b": 5, "c": 3}
        p1 = plan_sharding_balanced(sizes, 2)
        p2 = plan_sharding_balanced(sizes, 2)
        assert p1.owner == p2.owner
