"""Tests for the Tectonic FS stand-in and Hive partitioned tables."""

import pytest

from repro.datagen import (
    DatasetSchema,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import cluster_by_session
from repro.storage import HiveTable, TectonicFS


def _schema():
    return DatasetSchema(
        sparse=(SparseFeatureSpec("hist", avg_length=10, change_prob=0.1),)
    )


def _trace(n=50, seed=0):
    return generate_partition(_schema(), n, TraceConfig(seed=seed))


class TestTectonicFS:
    def test_write_read(self):
        fs = TectonicFS()
        fs.write("a/b", b"hello")
        assert fs.read("a/b") == b"hello"
        assert fs.stats.bytes_written == 5
        assert fs.stats.bytes_read == 5
        assert fs.stats.read_ops == 1

    def test_ranged_read(self):
        fs = TectonicFS()
        fs.write("f", b"0123456789")
        assert fs.read("f", offset=2, length=3) == b"234"
        assert fs.stats.bytes_read == 3

    def test_immutability(self):
        fs = TectonicFS()
        fs.write("f", b"x")
        with pytest.raises(FileExistsError):
            fs.write("f", b"y")

    def test_missing_file(self):
        fs = TectonicFS()
        with pytest.raises(FileNotFoundError):
            fs.read("nope")
        with pytest.raises(FileNotFoundError):
            fs.size("nope")
        with pytest.raises(FileNotFoundError):
            fs.delete("nope")

    def test_bad_offset(self):
        fs = TectonicFS()
        fs.write("f", b"ab")
        with pytest.raises(ValueError):
            fs.read("f", offset=5)

    def test_delete_and_listdir(self):
        fs = TectonicFS()
        fs.write("t/p1/f0", b"a")
        fs.write("t/p1/f1", b"b")
        fs.write("t/p2/f0", b"c")
        assert fs.listdir("t/p1/") == ["t/p1/f0", "t/p1/f1"]
        fs.delete("t/p1/f0")
        assert fs.listdir("t/p1/") == ["t/p1/f1"]
        assert fs.total_stored_bytes == 2


class TestHiveTable:
    def _table(self, fs=None):
        return HiveTable(
            "dlrm_table",
            _schema(),
            fs or TectonicFS(),
            rows_per_file=32,
            stripe_rows=16,
        )

    def test_land_and_read_partition(self):
        table = self._table()
        samples = _trace(20, seed=1)[:70]
        info = table.land_partition("2026061200", samples)
        assert info.num_rows == 70
        assert len(info.files) == 3  # ceil(70/32)
        got = table.read_partition("2026061200")
        assert [s.sample_id for s in got] == [s.sample_id for s in samples]

    def test_duplicate_partition_rejected(self):
        table = self._table()
        table.land_partition("p", _trace(5))
        with pytest.raises(ValueError):
            table.land_partition("p", _trace(5, seed=2))

    def test_drop_partition_retention(self):
        fs = TectonicFS()
        table = self._table(fs)
        table.land_partition("p", _trace(40, seed=3))
        stored = fs.total_stored_bytes
        assert stored > 0
        table.drop_partition("p")
        assert fs.total_stored_bytes == 0
        with pytest.raises(KeyError):
            table.drop_partition("p")

    def test_drop_partition_returns_the_freed_bytes(self):
        fs = TectonicFS()
        table = self._table(fs)
        info = table.land_partition("p", _trace(40, seed=3))
        freed = table.drop_partition("p")
        assert freed == info.compressed_bytes > 0

    def test_drop_unknown_partition_message(self):
        table = self._table()
        with pytest.raises(
            KeyError, match="never landed, or already dropped"
        ):
            table.drop_partition("ghost")

    def test_bytes_live_and_ever_landed_diverge_under_retention(self):
        """The retention-aware ledger: ``bytes_ever_landed`` only grows,
        ``bytes_live`` tracks what retention has not yet dropped."""
        table = self._table()
        a = table.land_partition("a", _trace(40, seed=1))
        b = table.land_partition("b", _trace(40, seed=2))
        landed = a.compressed_bytes + b.compressed_bytes
        assert table.bytes_ever_landed == landed
        assert table.bytes_live == landed
        freed = table.drop_partition("a")
        assert table.bytes_live == landed - freed == b.compressed_bytes
        assert table.bytes_ever_landed == landed  # the ledger keeps it

    def test_compact_partition_merges_small_files(self):
        fs = TectonicFS()
        small = HiveTable(
            "t", _schema(), fs, rows_per_file=8, stripe_rows=4
        )
        rows = _trace(30, seed=7)
        small.land_partition("p", rows)
        micro_files = len(small.partitions["p"].files)
        assert micro_files > 1
        small.rows_per_file = 4096
        merged = small.compact_partition("p")
        assert merged == micro_files - 1
        assert len(small.partitions["p"].files) == 1
        # Row order is preserved exactly — readers see the same stream.
        assert [s.sample_id for s in small.read_partition("p")] == [
            s.sample_id for s in rows
        ]
        # Already compact: a second pass is a no-op.
        assert small.compact_partition("p") == 0

    def test_compact_unknown_partition_message(self):
        table = self._table()
        with pytest.raises(
            KeyError, match="never landed, or dropped by retention"
        ):
            table.compact_partition("ghost")

    def test_partition_stored_bytes(self):
        fs = TectonicFS()
        table = self._table(fs)
        table.land_partition("p", _trace(40, seed=4))
        assert table.partition_stored_bytes("p") == fs.total_stored_bytes

    def test_clustered_partition_smaller(self):
        """Landing the same rows clustered must store fewer bytes (O2)."""
        fs = TectonicFS()
        table = HiveTable(
            "t", _schema(), fs, rows_per_file=4096, stripe_rows=512
        )
        samples = _trace(200, seed=5)
        base = table.land_partition("base", samples)
        clustered = table.land_partition(
            "clustered", cluster_by_session(samples)
        )
        assert clustered.compression_ratio > base.compression_ratio
        assert table.partition_stored_bytes(
            "clustered"
        ) < table.partition_stored_bytes("base")

    def test_open_readers_per_file(self):
        table = self._table()
        table.land_partition("p", _trace(20, seed=6)[:70])
        readers = table.open_readers("p")
        assert len(readers) == 3
        assert sum(len(r.read_all()) for r in readers) == 70
