"""Tests for the DWRF-like columnar format and compression accounting."""

import numpy as np
import pytest

from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    SparseFeatureSpec,
    TraceConfig,
    generate_partition,
)
from repro.etl import cluster_by_session
from repro.storage import Codec, DwrfReader, DwrfWriter, IntEncoding


def _schema():
    return DatasetSchema(
        sparse=(
            SparseFeatureSpec("hist", avg_length=20, change_prob=0.05),
            SparseFeatureSpec("short", avg_length=2, change_prob=0.5),
        ),
        dense=(DenseFeatureSpec("hour"),),
    )


def _trace(n=40, seed=0):
    return generate_partition(_schema(), n, TraceConfig(seed=seed))


class TestRoundTrip:
    @pytest.mark.parametrize("codec", [Codec.NONE, Codec.ZLIB])
    @pytest.mark.parametrize(
        "encoding", [IntEncoding.PLAIN, IntEncoding.VARINT]
    )
    def test_full_round_trip(self, codec, encoding):
        samples = _trace(20, seed=1)
        writer = DwrfWriter(
            _schema(), stripe_rows=64, codec=codec, int_encoding=encoding
        )
        blob, stats = writer.write(samples)
        reader = DwrfReader(blob, _schema())
        got = reader.read_all()
        assert len(got) == len(samples)
        for a, b in zip(got, samples):
            assert a.sample_id == b.sample_id
            assert a.session_id == b.session_id
            assert a.label == b.label
            assert a.timestamp == pytest.approx(b.timestamp)
            np.testing.assert_array_equal(a.sparse["hist"], b.sparse["hist"])
            np.testing.assert_array_equal(a.sparse["short"], b.sparse["short"])
            assert a.dense["hour"] == pytest.approx(b.dense["hour"])

    def test_multiple_stripes(self):
        samples = _trace(30, seed=2)
        writer = DwrfWriter(_schema(), stripe_rows=7)
        blob, stats = writer.write(samples)
        reader = DwrfReader(blob, _schema())
        assert reader.num_stripes == -(-len(samples) // 7)
        assert stats.num_rows == len(samples)

    def test_single_stripe_read(self):
        samples = _trace(20, seed=3)
        writer = DwrfWriter(_schema(), stripe_rows=8)
        blob, _ = writer.write(samples)
        reader = DwrfReader(blob, _schema())
        first = reader.read_stripe(0)
        assert [s.sample_id for s in first] == [
            s.sample_id for s in samples[:8]
        ]

    def test_empty_file(self):
        writer = DwrfWriter(_schema())
        blob, stats = writer.write([])
        reader = DwrfReader(blob, _schema())
        assert reader.num_stripes == 0
        assert reader.read_all() == []


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(ValueError):
            DwrfReader(b"JUNKxxxxxxxx", _schema())

    def test_bad_stripe_index(self):
        blob, _ = DwrfWriter(_schema()).write(_trace(5))
        reader = DwrfReader(blob, _schema())
        with pytest.raises(IndexError):
            reader.read_stripe(99)

    def test_bad_stripe_rows(self):
        with pytest.raises(ValueError):
            DwrfWriter(_schema(), stripe_rows=0)


class TestAccounting:
    def test_reader_byte_counters(self):
        samples = _trace(25, seed=4)
        blob, _ = DwrfWriter(_schema(), stripe_rows=8).write(samples)
        reader = DwrfReader(blob, _schema())
        assert reader.bytes_read == 0
        reader.read_stripe(0)
        after_one = reader.bytes_read
        assert after_one > 0
        reader.read_all()
        assert reader.bytes_read > after_one
        assert reader.raw_bytes >= reader.bytes_read * 0  # both tracked
        assert reader.values_decoded > 0

    def test_compression_stats_positive(self):
        samples = _trace(30, seed=5)
        _, stats = DwrfWriter(_schema(), stripe_rows=16).write(samples)
        assert stats.raw_bytes > stats.compressed_bytes > 0
        assert stats.compression_ratio > 1.0


class TestClusteringImprovesCompression:
    def test_o2_compression_gain(self):
        """O2's core claim at the file level: clustering a partition by
        session improves the stripe compression ratio (paper: up to
        3.71x relative)."""
        samples = _trace(250, seed=6)
        writer = DwrfWriter(_schema(), stripe_rows=256)
        _, base = writer.write(samples)
        _, clustered = writer.write(cluster_by_session(samples))
        assert (
            clustered.compression_ratio > base.compression_ratio * 1.3
        ), (
            f"clustered {clustered.compression_ratio:.2f} vs "
            f"baseline {base.compression_ratio:.2f}"
        )

    def test_clustered_file_strictly_smaller(self):
        samples = _trace(250, seed=7)
        writer = DwrfWriter(_schema(), stripe_rows=256)
        blob_base, _ = writer.write(samples)
        blob_clustered, _ = writer.write(cluster_by_session(samples))
        assert len(blob_clustered) < len(blob_base)
