"""Tests for the RLE and dictionary encodings and encoding selection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import (
    IntEncoding,
    best_encoding,
    decode_int64,
    encode_int64,
)


def _round_trip(values, encoding):
    v = np.asarray(values, dtype=np.int64)
    data = encode_int64(v, encoding)
    out = decode_int64(data, v.size, encoding)
    np.testing.assert_array_equal(out, v)
    return data


class TestRLE:
    def test_round_trip_runs(self):
        _round_trip([5, 5, 5, 7, 7, 5], IntEncoding.RLE)

    def test_round_trip_no_runs(self):
        _round_trip([1, 2, 3, 4], IntEncoding.RLE)

    def test_empty(self):
        data = _round_trip([], IntEncoding.RLE)
        assert data == b""

    def test_constant_column_is_tiny(self):
        data = encode_int64(np.full(10_000, 48, dtype=np.int64), IntEncoding.RLE)
        assert len(data) < 32

    def test_negative_values(self):
        _round_trip([-3, -3, -3, 9], IntEncoding.RLE)

    def test_count_mismatch(self):
        data = encode_int64(np.array([1, 1, 2], dtype=np.int64), IntEncoding.RLE)
        with pytest.raises(ValueError):
            decode_int64(data, 5, IntEncoding.RLE)

    def test_empty_stream_nonempty_count(self):
        with pytest.raises(ValueError):
            decode_int64(b"", 3, IntEncoding.RLE)


class TestDict:
    def test_round_trip(self):
        _round_trip([100, 200, 100, 100, 300], IntEncoding.DICT)

    def test_empty(self):
        _round_trip([], IntEncoding.DICT)

    def test_low_cardinality_smaller_than_varint(self):
        rng = np.random.default_rng(0)
        values = rng.choice(
            np.array([10**12, 2 * 10**12, 3 * 10**12]), size=5000
        ).astype(np.int64)
        d = encode_int64(values, IntEncoding.DICT)
        v = encode_int64(values, IntEncoding.VARINT)
        assert len(d) < len(v) / 2

    def test_negative_values(self):
        _round_trip([-5, -5, 0, 7, -5], IntEncoding.DICT)

    def test_empty_stream_nonempty_count(self):
        with pytest.raises(ValueError):
            decode_int64(b"", 2, IntEncoding.DICT)


class TestBestEncoding:
    def test_runny_column_picks_rle(self):
        assert best_encoding(np.full(100, 7)) is IntEncoding.RLE

    def test_low_cardinality_picks_dict(self):
        rng = np.random.default_rng(1)
        values = rng.choice([1, 2, 3], size=1000)
        assert best_encoding(values) is IntEncoding.DICT

    def test_high_cardinality_picks_varint(self):
        assert best_encoding(np.arange(1000) * 7919) is IntEncoding.VARINT

    def test_empty_defaults_varint(self):
        assert best_encoding(np.array([], dtype=np.int64)) is IntEncoding.VARINT


@given(
    st.lists(st.integers(min_value=-(2**50), max_value=2**50), max_size=60),
    st.sampled_from([IntEncoding.RLE, IntEncoding.DICT]),
)
def test_property_round_trip(values, encoding):
    _round_trip(values, encoding)


@given(st.lists(st.integers(min_value=0, max_value=5), max_size=100))
def test_property_best_encoding_round_trips(values):
    v = np.asarray(values, dtype=np.int64)
    enc = best_encoding(v)
    data = encode_int64(v, enc)
    np.testing.assert_array_equal(decode_int64(data, v.size, enc), v)
