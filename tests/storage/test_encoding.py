"""Round-trip tests for column stream encodings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import (
    IntEncoding,
    decode_int64,
    encode_int64,
    unzigzag,
    zigzag,
)


class TestZigzag:
    def test_small_values_stay_small(self):
        v = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        np.testing.assert_array_equal(zigzag(v), [0, 1, 2, 3, 4])

    def test_round_trip_extremes(self):
        v = np.array(
            [0, 1, -1, 2**62, -(2**62), 2**63 - 1, -(2**63)], dtype=np.int64
        )
        np.testing.assert_array_equal(unzigzag(zigzag(v)), v)


class TestPlain:
    def test_round_trip(self):
        v = np.array([1, 2, 3], dtype=np.int64)
        data = encode_int64(v, IntEncoding.PLAIN)
        np.testing.assert_array_equal(
            decode_int64(data, 3, IntEncoding.PLAIN), v
        )

    def test_length_validation(self):
        with pytest.raises(ValueError):
            decode_int64(b"\x00" * 8, 2, IntEncoding.PLAIN)


class TestVarint:
    def test_round_trip_basic(self):
        v = np.array([0, 1, 127, 128, 300, 10**12], dtype=np.int64)
        data = encode_int64(v, IntEncoding.VARINT)
        np.testing.assert_array_equal(
            decode_int64(data, v.size, IntEncoding.VARINT), v
        )

    def test_negative_values(self):
        v = np.array([-1, -127, -128, -(10**9)], dtype=np.int64)
        data = encode_int64(v, IntEncoding.VARINT)
        np.testing.assert_array_equal(
            decode_int64(data, v.size, IntEncoding.VARINT), v
        )

    def test_empty(self):
        data = encode_int64(np.array([], dtype=np.int64), IntEncoding.VARINT)
        assert data == b""
        out = decode_int64(data, 0, IntEncoding.VARINT)
        assert out.size == 0

    def test_smaller_than_plain_for_small_ids(self):
        v = np.arange(1000, dtype=np.int64)
        varint = encode_int64(v, IntEncoding.VARINT)
        plain = encode_int64(v, IntEncoding.PLAIN)
        assert len(varint) < len(plain) / 3

    def test_count_mismatch_detected(self):
        v = np.array([1, 2, 3], dtype=np.int64)
        data = encode_int64(v, IntEncoding.VARINT)
        with pytest.raises(ValueError):
            decode_int64(data, 2, IntEncoding.VARINT)

    def test_int64_extremes(self):
        v = np.array([2**63 - 1, -(2**63), 0], dtype=np.int64)
        data = encode_int64(v, IntEncoding.VARINT)
        np.testing.assert_array_equal(
            decode_int64(data, 3, IntEncoding.VARINT), v
        )


@given(
    st.lists(
        st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=100
    )
)
def test_property_varint_round_trip(values):
    v = np.array(values, dtype=np.int64)
    data = encode_int64(v, IntEncoding.VARINT)
    np.testing.assert_array_equal(
        decode_int64(data, v.size, IntEncoding.VARINT), v
    )


@given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=50))
def test_property_plain_round_trip(values):
    v = np.array(values, dtype=np.int64)
    data = encode_int64(v, IntEncoding.PLAIN)
    np.testing.assert_array_equal(
        decode_int64(data, v.size, IntEncoding.PLAIN), v
    )
