"""Tests for the RM1/RM2/RM3 workload definitions."""

import pytest

from repro.datagen import PoolingKind, all_workloads, rm1, rm2, rm3


class TestStructure:
    def test_rm1_sequence_grouping(self):
        """RM1 dedups 16 sequence features in 5 groups (§6.1)."""
        w = rm1()
        seq = [f for f in w.schema.sparse if f.is_sequence]
        assert len(seq) == 16
        assert all(f.pooling is PoolingKind.TRANSFORMER for f in seq)
        seq_groups = {f.group for f in seq}
        assert len(seq_groups) == 5

    def test_rm2_single_group(self):
        w = rm2()
        seq = [f for f in w.schema.sparse if f.is_sequence]
        assert len(seq) == 6
        assert len({f.group for f in seq}) == 1

    def test_rm3_single_group(self):
        w = rm3()
        seq = [f for f in w.schema.sparse if f.is_sequence]
        assert len(seq) == 11
        assert len({f.group for f in seq}) == 1

    def test_rm1_batch_growth_ratio(self):
        """Paper: 2048 -> 6144, a 3x growth."""
        w = rm1()
        assert w.recd_batch_size == 3 * w.baseline_batch_size

    def test_rm2_batch_static(self):
        w = rm2()
        assert w.recd_batch_size == w.baseline_batch_size

    def test_rm3_batch_growth(self):
        w = rm3()
        assert w.recd_batch_size > w.baseline_batch_size

    def test_all_workloads_names(self):
        assert [w.name for w in all_workloads()] == ["RM1", "RM2", "RM3"]


class TestDedupSpec:
    def test_dedup_groups_cover_sequences(self):
        w = rm1()
        deduped = set(w.dedup_feature_names)
        for name in w.sequence_feature_names:
            assert name in deduped

    def test_groups_are_schema_groups(self):
        w = rm2()
        schema_groups = {
            tuple(members) for members in w.schema.groups().values()
        }
        multi = {g for g in w.dedup_groups if len(g) > 1}
        assert multi <= schema_groups

    def test_elementwise_user_features_also_deduped(self):
        """Each RM also dedups ~100 element-wise pooled features (§6.1);
        in the scaled workload every user ewise feature is a singleton
        group."""
        w = rm3()
        singleton = {g[0] for g in w.dedup_groups if len(g) == 1}
        ewise_user = [
            f.name
            for f in w.schema.sparse
            if f.name.startswith("ew") and f.kind.value == "user"
        ]
        assert set(ewise_user) <= singleton

    def test_item_features_not_deduped(self):
        w = rm1()
        deduped = set(w.dedup_feature_names)
        item = {f.name for f in w.schema.item_features()}
        assert not (deduped & item)


class TestScaling:
    @pytest.mark.parametrize("factory", [rm1, rm2, rm3])
    def test_scale_shrinks_magnitudes(self, factory):
        big = factory(scale=1.0)
        small = factory(scale=0.25)
        assert small.baseline_batch_size <= big.baseline_batch_size
        assert small.embedding_dim <= big.embedding_dim
        # structure is scale-invariant
        assert len(small.sequence_feature_names) == len(
            big.sequence_feature_names
        )

    def test_minimums_enforced(self):
        w = rm1(scale=0.01)
        assert w.baseline_batch_size >= 32
        assert w.embedding_dim >= 16
