"""Tests for the Section 3 characterization estimators."""

import numpy as np
import pytest

from repro.core import exact_duplicate_fraction, partial_duplicate_fraction
from repro.datagen import (
    FeatureKind,
    SparseFeatureSpec,
    TraceConfig,
    batch_samples_per_session,
    characterization_schema,
    characterize_schema,
    generate_partition,
    simulate_feature_duplication,
)
from repro.datagen.schema import DatasetSchema


class TestSimulatedDuplication:
    def test_exact_matches_analytical_expectation(self):
        """exact fraction -> d * (S-1)/S as sessions grow (the paper's
        15.5/16.5 = 93.9% maximum argument with d = 1)."""
        spec = SparseFeatureSpec("f", change_prob=0.0)
        rng = np.random.default_rng(0)
        sizes = np.full(1000, 16, dtype=np.int64)
        dup = simulate_feature_duplication(spec, sizes, rng)
        assert dup.exact_fraction == pytest.approx(15 / 16)

    def test_exact_fraction_with_changes(self):
        spec = SparseFeatureSpec("f", change_prob=0.5)
        rng = np.random.default_rng(1)
        sizes = np.full(5000, 11, dtype=np.int64)
        dup = simulate_feature_duplication(spec, sizes, rng)
        # runs = 1 + Binomial(10, .5) -> mean 6; dups = 11-6 = 5 -> 5/11
        assert dup.exact_fraction == pytest.approx(5 / 11, rel=0.05)

    def test_partial_at_least_exact_for_user_features(self):
        spec = SparseFeatureSpec(
            "f", kind=FeatureKind.USER, avg_length=50, change_prob=0.3
        )
        rng = np.random.default_rng(2)
        sizes = np.full(2000, 16, dtype=np.int64)
        dup = simulate_feature_duplication(spec, sizes, rng)
        assert dup.partial_fraction >= dup.exact_fraction

    def test_item_partial_equals_exact(self):
        spec = SparseFeatureSpec(
            "f", kind=FeatureKind.ITEM, avg_length=3, change_prob=0.9
        )
        rng = np.random.default_rng(3)
        sizes = np.full(2000, 16, dtype=np.int64)
        dup = simulate_feature_duplication(spec, sizes, rng)
        assert dup.partial_fraction == pytest.approx(dup.exact_fraction)

    def test_empty_sessions(self):
        spec = SparseFeatureSpec("f")
        dup = simulate_feature_duplication(
            spec, np.array([], dtype=np.int64), np.random.default_rng(0)
        )
        assert dup.exact_fraction == 0.0

    def test_agrees_with_list_based_oracle(self):
        """The change-event estimator must agree with the exact list-based
        measurement from repro.core.dedup on a real generated trace."""
        schema = DatasetSchema(
            sparse=(
                SparseFeatureSpec(
                    "hist", kind=FeatureKind.USER, avg_length=20, change_prob=0.1
                ),
            )
        )
        cfg = TraceConfig(seed=11, mean_samples_per_session=16.5)
        samples = generate_partition(schema, 400, cfg)
        rows = [s.sparse["hist"] for s in samples]
        sids = [s.session_id for s in samples]
        measured_exact = exact_duplicate_fraction(rows, sids)
        measured_partial = partial_duplicate_fraction(rows, sids)

        sizes = np.bincount([s.session_id for s in samples])
        sizes = sizes[sizes > 0]
        est = simulate_feature_duplication(
            schema.sparse[0], sizes, np.random.default_rng(11)
        )
        assert est.exact_fraction == pytest.approx(measured_exact, abs=0.05)
        assert est.partial_fraction == pytest.approx(measured_partial, abs=0.06)


class TestCharacterizationReport:
    def test_paper_scale_schema(self):
        schema = characterization_schema()
        assert len(schema.sparse) == 733
        user = [f for f in schema.sparse if f.kind is FeatureKind.USER]
        assert len(user) == pytest.approx(733 * 0.85, abs=1)

    def test_report_matches_paper_bands(self):
        """Mean exact ≈ 80%, byte-weighted exact ≈ 81.6%, byte-weighted
        partial ≈ 89.4% (§3).  Bands are generous: the generator is only
        calibrated, not fitted."""
        report = characterize_schema(
            characterization_schema(), num_sessions=4000, seed=0
        )
        assert 0.72 <= report.mean_exact <= 0.88
        assert report.byte_weighted_exact >= report.mean_exact - 0.05
        assert report.byte_weighted_partial > report.byte_weighted_exact

    def test_user_features_more_duplicated_than_item(self):
        report = characterize_schema(
            characterization_schema(num_features=100), num_sessions=2000
        )
        user = [
            f.exact_fraction
            for f in report.features
            if f.kind is FeatureKind.USER
        ]
        item = [
            f.exact_fraction
            for f in report.features
            if f.kind is FeatureKind.ITEM
        ]
        assert np.mean(user) > np.mean(item) + 0.3  # the Fig 4 knee

    def test_sorted_exact_descending(self):
        report = characterize_schema(
            characterization_schema(num_features=50), num_sessions=500
        )
        fr = [f.exact_fraction for f in report.sorted_exact()]
        assert fr == sorted(fr, reverse=True)


class TestBatchSamplesPerSession:
    def test_interleaved_vs_clustered(self):
        """Fig 3, right: a timestamp-ordered batch has ~1 sample/session;
        the same rows clustered by session have many."""
        ids_interleaved = np.arange(4096) % 2048  # every session twice, far apart
        per_batch = batch_samples_per_session(ids_interleaved, 2048)
        assert per_batch[0] == pytest.approx(1.0)

        ids_clustered = np.sort(ids_interleaved)
        per_batch = batch_samples_per_session(ids_clustered, 2048)
        assert per_batch[0] == pytest.approx(2.0)

    def test_partial_batch_dropped(self):
        out = batch_samples_per_session(np.arange(10), 4)
        assert out.size == 2

    def test_generated_trace_interleaving(self):
        """The generator's timestamp ordering must reproduce the paper's
        ~1.15 samples/session per batch, while clustering recovers ~S.

        The paper uses B = 4096 against an ~O(1M)-row hourly partition;
        at our trace scale the equivalent batch-time-window-to-session-
        duration ratio is hit with B = 128.
        """
        schema = DatasetSchema(
            sparse=(SparseFeatureSpec("f", avg_length=2),)
        )
        cfg = TraceConfig(seed=21)
        samples = generate_partition(schema, 1500, cfg)
        sids = np.array([s.session_id for s in samples])
        batch = 128
        assert sids.size >= batch
        interleaved = batch_samples_per_session(sids, batch).mean()
        clustered = batch_samples_per_session(np.sort(sids), batch).mean()
        assert interleaved < 2.0  # paper: 1.15
        assert clustered > 6.0  # paper: ~16.5
