"""Tests for the synthetic trace generator and session size model."""

import numpy as np
import pytest

from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    FeatureKind,
    SparseFeatureSpec,
    TraceConfig,
    TraceGenerator,
    generate_partition,
    sample_session_sizes,
    session_size_stats,
)


def small_schema():
    return DatasetSchema(
        sparse=(
            SparseFeatureSpec(
                "hist", kind=FeatureKind.USER, avg_length=5, change_prob=0.1
            ),
            SparseFeatureSpec(
                "cart_item",
                kind=FeatureKind.USER,
                avg_length=3,
                change_prob=0.2,
                group="cart",
            ),
            SparseFeatureSpec(
                "cart_seller",
                kind=FeatureKind.USER,
                avg_length=3,
                change_prob=0.2,
                group="cart",
            ),
            SparseFeatureSpec(
                "item_id", kind=FeatureKind.ITEM, avg_length=1, change_prob=0.95
            ),
        ),
        dense=(DenseFeatureSpec("hour"),),
    )


class TestSessionSizes:
    def test_mean_calibration(self):
        rng = np.random.default_rng(0)
        sizes = sample_session_sizes(200_000, mean=16.5, rng=rng)
        assert sizes.mean() == pytest.approx(16.5, rel=0.05)

    def test_heavy_tail_exists(self):
        rng = np.random.default_rng(0)
        sizes = sample_session_sizes(200_000, mean=16.5, rng=rng)
        assert (sizes > 1000).sum() > 0  # Fig 3's ">1000 samples" tail

    def test_minimum_one(self):
        rng = np.random.default_rng(1)
        sizes = sample_session_sizes(10_000, mean=2.0, rng=rng)
        assert sizes.min() >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_session_sizes(-1)
        with pytest.raises(ValueError):
            sample_session_sizes(10, mean=0.5)

    def test_stats_empty(self):
        assert session_size_stats(np.array([]))["mean"] == 0.0

    def test_stats_fields(self):
        stats = session_size_stats(np.array([1, 2, 3, 2000]))
        assert stats["max"] == 2000
        assert stats["tail_1000"] == 1


class TestTraceGenerator:
    def test_partition_sorted_by_timestamp(self):
        samples = generate_partition(small_schema(), 50, TraceConfig(seed=1))
        ts = [s.timestamp for s in samples]
        assert ts == sorted(ts)

    def test_all_features_present(self):
        samples = generate_partition(small_schema(), 10, TraceConfig(seed=2))
        for s in samples[:20]:
            assert set(s.sparse) == {"hist", "cart_item", "cart_seller", "item_id"}
            assert set(s.dense) == {"hour"}

    def test_unique_sample_ids(self):
        samples = generate_partition(small_schema(), 30, TraceConfig(seed=3))
        ids = [s.sample_id for s in samples]
        assert len(ids) == len(set(ids))

    def test_session_ids_dense_range(self):
        samples = generate_partition(small_schema(), 30, TraceConfig(seed=3))
        sids = {s.session_id for s in samples}
        assert sids == set(range(30))

    def test_user_feature_duplication_within_session(self):
        """With change_prob 0.1, most same-session adjacent samples share
        the user feature value (by object identity, even)."""
        cfg = TraceConfig(seed=4, mean_samples_per_session=12.0)
        samples = generate_partition(small_schema(), 80, cfg)
        by_session: dict[int, list] = {}
        for s in samples:
            by_session.setdefault(s.session_id, []).append(s)
        dup = tot = 0
        for sess in by_session.values():
            sess.sort(key=lambda s: s.timestamp)
            for a, b in zip(sess, sess[1:]):
                tot += 1
                dup += np.array_equal(a.sparse["hist"], b.sparse["hist"])
        assert tot > 0
        assert dup / tot > 0.75  # d = 0.9 nominal

    def test_grouped_features_update_synchronously(self):
        cfg = TraceConfig(seed=5, mean_samples_per_session=10.0)
        samples = generate_partition(small_schema(), 60, cfg)
        by_session: dict[int, list] = {}
        for s in samples:
            by_session.setdefault(s.session_id, []).append(s)
        for sess in by_session.values():
            sess.sort(key=lambda s: s.timestamp)
            for a, b in zip(sess, sess[1:]):
                item_same = np.array_equal(
                    a.sparse["cart_item"], b.sparse["cart_item"]
                )
                seller_same = np.array_equal(
                    a.sparse["cart_seller"], b.sparse["cart_seller"]
                )
                assert item_same == seller_same  # §4.2's invariant source

    def test_item_feature_changes_often(self):
        cfg = TraceConfig(seed=6, mean_samples_per_session=12.0)
        samples = generate_partition(small_schema(), 80, cfg)
        by_session: dict[int, list] = {}
        for s in samples:
            by_session.setdefault(s.session_id, []).append(s)
        changed = tot = 0
        for sess in by_session.values():
            sess.sort(key=lambda s: s.timestamp)
            for a, b in zip(sess, sess[1:]):
                tot += 1
                changed += not np.array_equal(
                    a.sparse["item_id"], b.sparse["item_id"]
                )
        assert changed / tot > 0.8

    def test_shift_update_preserves_length_and_overlap(self):
        gen = TraceGenerator(small_schema(), TraceConfig(seed=7))
        spec = small_schema().sparse_spec("hist")
        cur = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        new = gen._shift_value(spec, cur)
        assert new.size == cur.size
        np.testing.assert_array_equal(new[:-1], cur[1:])

    def test_shift_update_empty_list(self):
        gen = TraceGenerator(small_schema(), TraceConfig(seed=8))
        spec = small_schema().sparse_spec("hist")
        new = gen._shift_value(spec, np.array([], dtype=np.int64))
        assert new.size == 1

    def test_negative_sessions_rejected(self):
        with pytest.raises(ValueError):
            generate_partition(small_schema(), -1)

    def test_deterministic_under_seed(self):
        a = generate_partition(small_schema(), 20, TraceConfig(seed=42))
        b = generate_partition(small_schema(), 20, TraceConfig(seed=42))
        assert [s.sample_id for s in a] == [s.sample_id for s in b]
        assert all(
            np.array_equal(x.sparse["hist"], y.sparse["hist"])
            for x, y in zip(a, b)
        )

    def test_payload_values(self):
        samples = generate_partition(small_schema(), 5, TraceConfig(seed=9))
        s = samples[0]
        assert s.payload_values() == sum(v.size for v in s.sparse.values())
