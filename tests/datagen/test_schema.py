"""Tests for feature/schema specifications."""

import pytest

from repro.datagen import (
    DatasetSchema,
    DenseFeatureSpec,
    FeatureKind,
    PoolingKind,
    SparseFeatureSpec,
)


class TestSparseFeatureSpec:
    def test_d_is_complement_of_change_prob(self):
        f = SparseFeatureSpec("f", change_prob=0.1)
        assert f.d == pytest.approx(0.9)

    def test_invalid_change_prob(self):
        with pytest.raises(ValueError):
            SparseFeatureSpec("f", change_prob=1.5)
        with pytest.raises(ValueError):
            SparseFeatureSpec("f", change_prob=-0.1)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            SparseFeatureSpec("f", avg_length=-1)

    def test_invalid_cardinality(self):
        with pytest.raises(ValueError):
            SparseFeatureSpec("f", cardinality=0)

    def test_is_sequence(self):
        assert SparseFeatureSpec("f", pooling=PoolingKind.ATTENTION).is_sequence
        assert SparseFeatureSpec(
            "f", pooling=PoolingKind.TRANSFORMER
        ).is_sequence
        assert not SparseFeatureSpec("f", pooling=PoolingKind.SUM).is_sequence


class TestDatasetSchema:
    def make(self):
        return DatasetSchema(
            sparse=(
                SparseFeatureSpec("u1", kind=FeatureKind.USER, group="g"),
                SparseFeatureSpec("u2", kind=FeatureKind.USER, group="g"),
                SparseFeatureSpec("i1", kind=FeatureKind.ITEM),
            ),
            dense=(DenseFeatureSpec("d1"),),
        )

    def test_names(self):
        s = self.make()
        assert s.sparse_names == ["u1", "u2", "i1"]
        assert s.dense_names == ["d1"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DatasetSchema(
                sparse=(SparseFeatureSpec("x"), SparseFeatureSpec("x"))
            )

    def test_duplicate_across_kinds_rejected(self):
        with pytest.raises(ValueError):
            DatasetSchema(
                sparse=(SparseFeatureSpec("x"),),
                dense=(DenseFeatureSpec("x"),),
            )

    def test_groups(self):
        assert self.make().groups() == {"g": ["u1", "u2"]}

    def test_kind_partition(self):
        s = self.make()
        assert [f.name for f in s.user_features()] == ["u1", "u2"]
        assert [f.name for f in s.item_features()] == ["i1"]

    def test_sparse_spec_lookup(self):
        s = self.make()
        assert s.sparse_spec("u1").group == "g"
        with pytest.raises(KeyError):
            s.sparse_spec("missing")
