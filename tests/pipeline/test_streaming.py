"""Tests for the streaming reader→trainer path: bit-identical training
under streaming vs materialized ingestion, multi-partition epochs, the
overlap attribution, and the fail-fast undersized-partition check."""

import pytest

import repro.reader.tier_scheduler as tier_mod
from repro.datagen import rm1
from repro.pipeline import PipelineConfig, RecDToggles, run_pipeline


def _cfg(**kw):
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 120)
    kw.setdefault("seed", 3)
    kw.setdefault("batch_size", 128)
    kw.setdefault("train_batches", 3)
    return PipelineConfig(**kw)


class TestStreamingEquivalence:
    @pytest.mark.parametrize("num_readers", [1, 2, 4])
    def test_streaming_losses_bit_identical(self, num_readers):
        """The acceptance bar: run_pipeline(streaming=True) must produce
        bit-identical TrainingReport losses to the materialized path at
        every fleet width, and both must report overlap fractions."""
        streamed = run_pipeline(_cfg(num_readers=num_readers, streaming=True))
        materialized = run_pipeline(
            _cfg(num_readers=num_readers, streaming=False)
        )
        assert streamed.training.losses == materialized.training.losses
        for res in (streamed, materialized):
            ov = res.overlap
            assert ov is not None
            assert 0.0 <= ov.reader_stall_fraction <= 1.0
            assert 0.0 <= ov.trainer_stall_fraction <= 1.0
        assert streamed.overlap.streaming
        assert not materialized.overlap.streaming

    def test_override_beats_config_but_is_deprecated(self):
        """The streaming= keyword still overrides config.streaming (the
        override routes through the spec conversion) but now warns."""
        with pytest.warns(DeprecationWarning, match="streaming"):
            res = run_pipeline(_cfg(streaming=True), streaming=False)
        assert not res.overlap.streaming
        assert not res.spec.reader.streaming
        # the caller's config comes back untouched
        assert res.config.streaming

    def test_fractions_sum_to_one(self):
        res = run_pipeline(_cfg(num_readers=2))
        assert sum(res.overlap.fractions.values()) == pytest.approx(1.0)
        assert res.overlap.batches == len(res.training.iterations)

    def test_streaming_measures_ingest_waits(self):
        """Streaming hands the trainer a live iterator, so some wall
        time is spent pulling batches; the materialized path shows
        essentially none."""
        streamed = run_pipeline(_cfg(num_readers=2, streaming=True))
        materialized = run_pipeline(_cfg(num_readers=2, streaming=False))
        assert streamed.training.ingest_wait_seconds > 0.0
        assert (
            materialized.overlap.reader_stall_fraction
            <= streamed.overlap.reader_stall_fraction
        )
        # both modes attribute the same end-to-end loop, so the
        # materialized run's serialized reader scan must be visible as
        # non-overlapped "other" time rather than vanishing from the A/B
        assert materialized.overlap.other_seconds > 0.0
        assert (
            materialized.overlap.wall_seconds
            > materialized.training.run_wall_seconds
        )


class TestMultiPartitionEpochs:
    def test_partitions_land_contiguously(self):
        res = run_pipeline(_cfg(num_partitions=3))
        assert len(res.partitions) == 3
        assert [p.name for p in res.partitions] == ["p0", "p1", "p2"]
        assert res.partition.num_rows == res.samples_landed
        assert (
            sum(p.num_rows for p in res.partitions) == res.samples_landed
        )

    def test_epoch_loop_multiplies_iterations(self):
        res = run_pipeline(
            _cfg(num_partitions=2, train_epochs=3, train_batches=2)
        )
        assert len(res.training.iterations) == 6
        assert res.reader.batches == 6
        assert res.overlap.batches == 6

    def test_multi_partition_prefix_matches_single(self):
        """Partitions are contiguous chunks of the same row order, so an
        epoch's first batches are bit-identical to the single-partition
        run's (the cap lands inside partition 0)."""
        single = run_pipeline(_cfg(num_partitions=1))
        multi = run_pipeline(_cfg(num_partitions=3))
        assert multi.training.losses == single.training.losses

    def test_multi_partition_streaming_equivalence(self):
        streamed = run_pipeline(
            _cfg(
                num_partitions=2,
                train_epochs=2,
                num_readers=2,
                streaming=True,
                train_batches=4,
            )
        )
        materialized = run_pipeline(
            _cfg(
                num_partitions=2,
                train_epochs=2,
                num_readers=2,
                streaming=False,
                train_batches=4,
            )
        )
        assert streamed.training.losses == materialized.training.losses
        assert len(streamed.training.iterations) == 8

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _cfg(num_partitions=0)
        with pytest.raises(ValueError):
            _cfg(train_epochs=0)


class TestFailFastValidation:
    def test_too_small_fires_before_workers_spawn(self, monkeypatch):
        """The undersized-partition error must come from the landed
        metadata, not from running (and then discarding) reader
        workers."""

        class NoFleet:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "ReaderFleet constructed before size validation"
                )

        monkeypatch.setattr(tier_mod, "ReaderFleet", NoFleet)
        with pytest.raises(ValueError, match="too small"):
            run_pipeline(
                _cfg(num_sessions=2, batch_size=100_000, train_batches=2)
            )

    def test_zero_effective_batches_counts_every_partition(self, monkeypatch):
        """Each partition sub-batch-sized: no partition can fill a batch
        even though the total row count could."""

        class NoFleet:
            def __init__(self, *args, **kwargs):
                raise AssertionError(
                    "ReaderFleet constructed before size validation"
                )

        monkeypatch.setattr(tier_mod, "ReaderFleet", NoFleet)
        with pytest.raises(ValueError, match="partition"):
            run_pipeline(
                _cfg(num_sessions=30, batch_size=200, num_partitions=8)
            )