"""Tests for pipeline config, toggles, and the end-to-end runner."""

import pytest

from repro.datagen import rm1
from repro.pipeline import PipelineConfig, RecDToggles, run_pipeline


class TestRecDToggles:
    def test_baseline_all_off(self):
        t = RecDToggles.baseline()
        assert not any(
            (
                t.o1_shard_by_session,
                t.o2_cluster_table,
                t.o3_ikjt,
                t.o5_dedup_emb,
                t.o6_jagged_index_select,
                t.o7_dedup_compute,
            )
        )

    def test_full_all_on(self):
        t = RecDToggles.full()
        assert t.o1_shard_by_session and t.o7_dedup_compute

    def test_dependency_validation(self):
        with pytest.raises(ValueError):
            RecDToggles(o5_dedup_emb=True)  # needs o3
        with pytest.raises(ValueError):
            RecDToggles(o3_ikjt=True, o7_dedup_compute=True)  # needs o5

    def test_with_override(self):
        t = RecDToggles.full().with_(o7_dedup_compute=False)
        assert t.o5_dedup_emb and not t.o7_dedup_compute

    def test_trainer_flags_mapping(self):
        flags = RecDToggles.full().trainer_flags
        assert flags.dedup_emb and flags.jagged_index_select and flags.dedup_compute


class TestPipelineConfig:
    def test_effective_batch_size_follows_toggles(self, rm1_half):
        w = rm1_half
        base = PipelineConfig(workload=w, toggles=RecDToggles.baseline())
        full = PipelineConfig(workload=w, toggles=RecDToggles.full())
        assert base.effective_batch_size == w.baseline_batch_size
        assert full.effective_batch_size == w.recd_batch_size

    def test_batch_override(self, rm1_half):
        w = rm1_half
        cfg = PipelineConfig(
            workload=w, toggles=RecDToggles.full(), batch_size=99
        )
        assert cfg.effective_batch_size == 99

    def test_dataloader_config_dedup(self, rm1_half):
        w = rm1_half
        cfg = PipelineConfig(workload=w, toggles=RecDToggles.full())
        dl = cfg.dataloader_config()
        assert dl.dedup_sparse_features == w.dedup_groups
        assert set(dl.all_sparse_names) == set(w.schema.sparse_names)

    def test_dataloader_config_baseline(self, rm1_half):
        w = rm1_half
        cfg = PipelineConfig(workload=w, toggles=RecDToggles.baseline())
        dl = cfg.dataloader_config()
        assert dl.dedup_sparse_features == ()
        assert set(dl.sparse_features) == set(w.schema.sparse_names)


class TestRunner:
    @pytest.fixture(scope="class")
    def results(self):
        w = rm1(scale=0.25)
        out = {}
        for name, toggles in [
            ("baseline", RecDToggles.baseline()),
            ("full", RecDToggles.full()),
        ]:
            out[name] = run_pipeline(
                PipelineConfig(
                    workload=w,
                    toggles=toggles,
                    num_sessions=120,
                    train_batches=2,
                    seed=3,
                )
            )
        return out

    def test_all_stages_reported(self, results):
        for res in results.values():
            assert res.samples_landed > 0
            assert res.scribe.num_messages == 2 * res.samples_landed
            assert res.partition.num_rows == res.samples_landed
            assert res.reader.batches == 2
            assert len(res.training.iterations) == 2

    def test_same_rows_both_configs(self, results):
        assert (
            results["baseline"].samples_landed
            == results["full"].samples_landed
        )

    def test_recd_wins_everywhere(self, results):
        """Fig 7's qualitative claim on every axis."""
        base, full = results["baseline"], results["full"]
        assert full.trainer_qps > base.trainer_qps
        assert full.reader_qps > base.reader_qps
        assert full.storage_compression > base.storage_compression
        assert full.scribe_compression > base.scribe_compression

    def test_partition_too_small_raises(self):
        w = rm1(scale=0.25)
        with pytest.raises(ValueError):
            run_pipeline(
                PipelineConfig(
                    workload=w,
                    toggles=RecDToggles.baseline(),
                    num_sessions=1,
                    batch_size=100_000,
                )
            )
