"""Acceptance tests for the continuous-training streaming subsystem.

The tentpole invariant: a live-loop run — micro-partitions landing on
the tier's cost-model clock *while* jobs train — produces loss
trajectories **bit-identical** to a run whose whole stream was landed
before round one.  Scheduling moves wall-clock, never batch content.

Covered here: the epoch-window planner, the :class:`StreamLander`
landing API, live-vs-land-first bit-identity (with and without a
rolling retention window, solo and sharing the pool with a static
job), mid-loop admission of a streamed job, freshness accounting, and
the ``repro stream --verify`` CLI gate.
"""

import pytest

from repro.cli import main
from repro.datagen import rm1
from repro.pipeline import (
    DataSpec,
    JobSpec,
    ReaderSpec,
    RecDToggles,
    RetentionSpec,
    Session,
    StreamSpec,
    TrainSpec,
)
from repro.streaming import StreamLander, plan_stream_windows


def _spec(
    *,
    partitions=4,
    epochs=5,
    window=None,
    interval=60.0,
    latency=5.0,
    seed=7,
    sessions=60,
    stream=True,
    name=None,
):
    return JobSpec(
        data=DataSpec(
            workload=rm1(scale=0.2),
            toggles=RecDToggles.baseline(),
            num_sessions=sessions,
            num_partitions=partitions,
            seed=seed,
        ),
        reader=ReaderSpec(num_readers=2),
        train=TrainSpec(train_epochs=epochs, train_batches=2),
        stream=(
            StreamSpec(
                interval_seconds=interval, land_latency_seconds=latency
            )
            if stream
            else None
        ),
        retention=(
            RetentionSpec(window=window) if window is not None else None
        ),
        name=name,
    )


def _land_first_losses(specs, *, width, freshness_slo=None):
    """The reference: land the whole stream, then run the tier."""
    session = Session(
        list(specs), width=width, freshness_slo=freshness_slo
    )
    session.prepare()
    session.land_all_streams()
    session.tier.run()
    result = session.collect()
    return {j.name: list(j.training.losses) for j in result.jobs}


class TestPlanStreamWindows:
    def test_unbounded_window_grows_to_the_stream_tail(self):
        assert plan_stream_windows(4, None, 5) == [
            [0],
            [0, 1],
            [0, 1, 2],
            [0, 1, 2, 3],
            [0, 1, 2, 3],
        ]

    def test_bounded_window_slides(self):
        assert plan_stream_windows(4, 2, 5) == [
            [0],
            [0, 1],
            [1, 2],
            [2, 3],
            [2, 3],
        ]

    def test_epochs_past_the_stream_rescan_the_final_window(self):
        windows = plan_stream_windows(2, None, 6)
        assert windows[2:] == [[0, 1]] * 4

    def test_validation(self):
        with pytest.raises(ValueError, match="num_partitions"):
            plan_stream_windows(0, None, 1)
        with pytest.raises(ValueError, match="retain_partitions"):
            plan_stream_windows(2, 0, 1)
        with pytest.raises(ValueError, match="train_epochs"):
            plan_stream_windows(2, None, 0)


class TestStreamLander:
    def test_requires_a_stream_spec(self):
        with pytest.raises(ValueError, match="StreamSpec"):
            StreamLander(_spec(stream=False))

    def test_avail_is_the_tick_boundary_plus_landing_latency(self):
        lander = StreamLander(_spec(interval=60.0, latency=5.0))
        assert [lander.avail(i) for i in range(4)] == [
            65.0,
            125.0,
            185.0,
            245.0,
        ]
        with pytest.raises(IndexError):
            lander.avail(4)

    def test_pump_lands_exactly_the_due_partitions(self):
        lander = StreamLander(_spec())
        assert lander.landed_count == 0
        assert not lander.exhausted
        assert lander.pump(64.9) == []
        landed = lander.pump(130.0)  # p0 (65) and p1 (125) are due
        assert landed == ["p0", "p1"]
        assert lander.landed_count == 2
        assert lander.pump(130.0) == []  # idempotent at the same clock
        lander.pump(1e9)
        assert lander.landed_count == 4
        assert lander.exhausted

    def test_next_event_clamps_to_the_clock_then_exhausts(self):
        lander = StreamLander(_spec())
        assert lander.next_event(0.0) == 65.0
        # A clock already past the landing time is itself the event.
        assert lander.next_event(70.0) == 70.0
        lander.land_all()
        assert lander.next_event(0.0) is None

    def test_partition_rows_cover_every_generated_sample(self):
        lander = StreamLander(_spec())
        rows = lander.partition_rows()
        assert list(rows) == ["p0", "p1", "p2", "p3"]
        assert sum(rows.values()) == len(lander.samples)
        assert all(n > 0 for n in rows.values())

    def test_event_times_land_inside_their_partition_tick(self):
        lander = StreamLander(_spec(interval=60.0))
        lander.land_all()
        bounds = {}
        for i, sample in zip(
            (i for i, n in enumerate(lander.partition_rows().values())
             for _ in range(n)),
            lander.samples,
        ):
            lo, hi = bounds.get(i, (float("inf"), float("-inf")))
            bounds[i] = (min(lo, sample.timestamp), max(hi, sample.timestamp))
        for i, (lo, hi) in bounds.items():
            assert i * 60.0 < lo <= hi <= (i + 1) * 60.0

    def test_landed_micro_partitions_are_compacted_behind_the_head(self):
        lander = StreamLander(_spec())
        lander.land_all()
        table = lander.table
        # Every partition behind the stream head was rewritten at the
        # table's full rows_per_file; micro-files only survive at p3.
        for name in ("p0", "p1", "p2"):
            info = table.partitions[name]
            want = max(1, -(-info.num_rows // table.rows_per_file))
            assert len(info.files) == want


class TestLiveLoopBitIdentity:
    def test_single_streamed_job_matches_land_first(self):
        live = Session(_spec(name="solo")).run()
        base = _land_first_losses([_spec(name="solo")], width=2)
        assert list(live.training.losses) == base["solo"]
        assert live.training.losses  # actually trained
        # The growing window: epoch e scans p0..min(e, P-1).
        assert live.epoch_partitions == [
            ["p0"],
            ["p0", "p1"],
            ["p0", "p1", "p2"],
            ["p0", "p1", "p2", "p3"],
            ["p0", "p1", "p2", "p3"],
        ]

    def test_retention_window_slides_and_stays_bit_identical(self):
        spec = _spec(window=2, name="rolled")
        live = Session(spec).run()
        base = _land_first_losses([_spec(window=2, name="rolled")], width=2)
        assert list(live.training.losses) == base["rolled"]
        assert live.dropped_partitions == ["p0", "p1"]
        assert live.epoch_partitions[-1] == ["p2", "p3"]

    def test_streamed_and_static_jobs_share_the_pool(self):
        def specs():
            return [
                _spec(name="streamy", seed=11),
                _spec(stream=False, partitions=2, epochs=3, seed=12,
                      name="static"),
            ]

        session = Session(specs(), width=4)
        res = session.run()
        base = _land_first_losses(specs(), width=4)
        for job in res.jobs:
            assert list(job.training.losses) == base[job.name]
        # Only the streamed job tracks freshness.
        assert res.tier.job_freshness("streamy").batches > 0
        assert res.tier.job_freshness("static").batches == 0

    def test_freshness_slo_weighting_never_touches_losses(self):
        plain = Session(_spec(name="j")).run()
        boosted = Session(
            [_spec(name="j")], width=2, freshness_slo=1.0
        ).run()
        assert list(plain.training.losses) == list(
            boosted.jobs[0].training.losses
        )

    def test_freshness_report_is_sane(self):
        session = Session([_spec(name="j")], width=2)
        res = session.run()
        fresh = res.tier.job_freshness("j")
        assert fresh.batches == sum(
            s.batches for s in res.tier.job_rounds("j")
        )
        assert 0.0 <= fresh.p50_lag_seconds <= fresh.p99_lag_seconds
        # Landing latency is a hard lower bound on any lag.
        assert fresh.max_lag_seconds >= 5.0


class TestMidLoopAdmission:
    def test_streamed_job_admitted_mid_run_stays_bit_identical(self):
        from repro.sim import Arrival, FaultPlan, ScenarioRunner

        late = _spec(partitions=3, epochs=3, seed=9, name="late")
        plan = FaultPlan(
            arrivals=(Arrival(round=2, name="late", spec=late),)
        )
        runner = ScenarioRunner(
            [_spec(name="early")], plan, width=4, names=["early"]
        )
        result = runner.run()
        baseline = runner.baseline()
        assert sorted(result.losses) == ["early", "late"]
        for name, losses in result.losses.items():
            assert losses  # both jobs trained
            assert losses == baseline[name]
        assert [ev["event"] for ev in result.trace].count("arrival") == 1
        assert result.slo.freshness.batches > 0


class TestStreamCLI:
    def test_verify_passes(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--num-partitions",
                    "3",
                    "--train-epochs",
                    "4",
                    "--sessions",
                    "50",
                    "--jobs",
                    "1",
                    "--retain-partitions",
                    "2",
                    "--freshness-slo",
                    "120",
                    "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bit-identical to the land-everything-first baseline" in out
        assert "freshness" in out

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(SystemExit):
            main(["stream", "--jobs", "0"])
