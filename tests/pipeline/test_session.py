"""Legacy-shim equivalence: the acceptance bar for the ``Session``
redesign is that ``run_pipeline(PipelineConfig(...))`` and
``Session(JobSpec.from_legacy(...))`` produce bit-identical losses,
reports, and scaling traces across retention/autoscale/executor
combinations — property-style over the knob space plus a pinned grid
of the interesting corners."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datagen import rm1
from repro.pipeline import (
    JobSpec,
    PipelineConfig,
    RecDToggles,
    Session,
    run_multi_job,
    run_pipeline,
)

WORKLOAD = rm1(scale=0.25)


def _cfg(**kw) -> PipelineConfig:
    kw.setdefault("workload", WORKLOAD)
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 60)
    kw.setdefault("batch_size", 32)
    kw.setdefault("train_batches", 2)
    kw.setdefault("seed", 3)
    kw.setdefault("reader_executor", "inprocess")
    return PipelineConfig(**kw)


def _assert_equivalent(legacy, native) -> None:
    """Bit-identical losses, reports, and scaling traces."""
    assert native.training.losses == legacy.training.losses
    assert native.samples_landed == legacy.samples_landed
    assert native.epoch_partitions == legacy.epoch_partitions
    assert native.dropped_partitions == legacy.dropped_partitions
    assert [p.name for p in native.partitions] == [
        p.name for p in legacy.partitions
    ]
    assert native.partition.num_rows == legacy.partition.num_rows
    assert native.partition.compressed_bytes == (
        legacy.partition.compressed_bytes
    )
    assert native.scribe.compression_ratio == legacy.scribe.compression_ratio
    # reader reports: same batches, samples, and modeled CPU seconds
    assert native.reader.batches == legacy.reader.batches
    assert native.reader.samples == legacy.reader.samples
    assert native.reader.cpu.total == legacy.reader.cpu.total
    assert native.fleet.num_shards == legacy.fleet.num_shards
    assert len(native.fleet.workers) == len(legacy.fleet.workers)
    # scaling traces: both absent, or bit-identical decision rows
    if legacy.scaling is None:
        assert native.scaling is None
    else:
        assert native.scaling.as_rows() == legacy.scaling.as_rows()
    assert native.overlap.streaming == legacy.overlap.streaming
    assert native.overlap.batches == legacy.overlap.batches


#: the interesting corners of the knob space, pinned
GRID = [
    {},
    {"toggles": RecDToggles.full(), "num_readers": 3},
    {"num_readers": 4, "num_partitions": 3, "train_epochs": 2},
    {"streaming": False, "num_readers": 2, "num_partitions": 2},
    {"num_partitions": 4, "train_epochs": 3, "retain_partitions": 2},
    {
        "retain_partitions": 1,
        "num_partitions": 3,
        "train_epochs": 3,
        "streaming": False,
    },
    {
        "autoscale": True,
        "num_readers": 1,
        "batch_size": 24,
        "train_batches": None,
        "train_epochs": 3,
    },
    {
        "autoscale": True,
        "retain_partitions": 2,
        "num_partitions": 4,
        "train_epochs": 3,
        "num_readers": 2,
        "max_readers": 16,
    },
]


class TestSingleJobEquivalence:
    @pytest.mark.parametrize("kw", GRID, ids=lambda kw: ",".join(kw) or "plain")
    def test_grid_corner_bit_identical(self, kw):
        config = _cfg(**kw)
        _assert_equivalent(
            run_pipeline(config), Session(JobSpec.from_legacy(config)).run()
        )

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_readers=st.integers(1, 4),
        num_partitions=st.integers(1, 3),
        train_epochs=st.integers(1, 2),
        streaming=st.booleans(),
        retain=st.sampled_from([None, 1, 2]),
        recd=st.booleans(),
    )
    def test_property_bit_identical(
        self, num_readers, num_partitions, train_epochs, streaming, retain, recd
    ):
        """Property-style: any sampled knob combination produces the
        same results through both surfaces."""
        config = _cfg(
            toggles=(
                RecDToggles.full() if recd else RecDToggles.baseline()
            ),
            num_readers=num_readers,
            num_partitions=num_partitions,
            train_epochs=train_epochs,
            streaming=streaming,
            retain_partitions=retain,
        )
        _assert_equivalent(
            run_pipeline(config), Session(JobSpec.from_legacy(config)).run()
        )

    def test_session_accepts_flat_configs_directly(self):
        config = _cfg()
        res = Session(config).run()
        assert res.training.losses == run_pipeline(config).training.losses
        assert res.spec == JobSpec.from_legacy(config)

    def test_legacy_adapter_keeps_caller_config(self):
        """run_pipeline hands back the very config object it was given
        — unchanged, deprecation-free."""
        config = _cfg()
        res = run_pipeline(config)
        assert res.config is config
        assert res.spec is not None


class TestMultiJobEquivalence:
    def test_run_multi_job_matches_native_session(self):
        configs = [
            _cfg(seed=1),
            _cfg(seed=2, toggles=RecDToggles.full()),
        ]
        legacy = run_multi_job(configs, num_readers=8, names=["a", "b"])
        native = Session(
            [JobSpec.from_legacy(c) for c in configs],
            width=8,
            names=["a", "b"],
        ).run()
        assert native.tier.as_rows() == legacy.tier.as_rows()
        for name in ("a", "b"):
            assert (
                native.job(name).training.losses
                == legacy.job(name).training.losses
            )
        assert (
            native.modeled_wall_seconds == legacy.modeled_wall_seconds
        )

    def test_named_specs_carry_their_own_names(self):
        specs = [
            JobSpec.from_legacy(_cfg(seed=1), name="alpha"),
            JobSpec.from_legacy(_cfg(seed=2), name="beta"),
        ]
        res = Session(specs, width=4).run()
        assert [j.name for j in res.jobs] == ["alpha", "beta"]
        assert res.job("beta").spec is specs[1]

    def test_single_spec_list_returns_multi_result(self):
        """The result shape follows the input shape: a one-element list
        is still a multi-job session."""
        res = Session([JobSpec.from_legacy(_cfg())], width=2).run()
        assert res.jobs[0].name == "job0"
        assert res.tier.policy == "stall_weighted"

    def test_multi_needs_explicit_width(self):
        specs = [JobSpec.from_legacy(_cfg(seed=s)) for s in (1, 2)]
        with pytest.raises(ValueError, match="width"):
            Session(specs)
