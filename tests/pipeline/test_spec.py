"""Spec-surface tests: composed-spec validation (every error names its
spec and field), the legacy bridge (``from_legacy``/``to_legacy``
round-trips every flat field), and derived config equivalence."""

import dataclasses

import pytest

from repro.datagen import rm1
from repro.pipeline import (
    DataSpec,
    JobSpec,
    PipelineConfig,
    ReaderSpec,
    RecDToggles,
    RetentionSpec,
    ScalingSpec,
    TrainSpec,
)


@pytest.fixture(scope="module")
def workload():
    return rm1(scale=0.25)


def _spec(workload, **kw) -> JobSpec:
    kw.setdefault("data", DataSpec(workload=workload))
    return JobSpec(**kw)


class TestValidationNamesSpecAndField:
    """Satellite acceptance: spec ``__post_init__`` errors carry the
    spec and field name, not the old flat-config phrasing."""

    @pytest.mark.parametrize(
        ("build", "needle"),
        [
            (lambda w: DataSpec(w, num_sessions=0), "DataSpec.num_sessions"),
            (
                lambda w: DataSpec(w, num_partitions=0),
                "DataSpec.num_partitions",
            ),
            (
                lambda w: DataSpec(w, num_scribe_shards=-1),
                "DataSpec.num_scribe_shards",
            ),
            (
                lambda w: ReaderSpec(num_readers=0),
                "ReaderSpec.num_readers",
            ),
            (
                lambda w: ReaderSpec(prefetch_depth=0),
                "ReaderSpec.prefetch_depth",
            ),
            (
                lambda w: ReaderSpec(executor="threads"),
                "ReaderSpec.executor",
            ),
            (
                lambda w: TrainSpec(train_epochs=0),
                "TrainSpec.train_epochs",
            ),
            (
                lambda w: TrainSpec(train_batches=0),
                "TrainSpec.train_batches",
            ),
            (lambda w: TrainSpec(batch_size=-5), "TrainSpec.batch_size"),
            (
                lambda w: ScalingSpec(target_stall=0.0),
                "ScalingSpec.target_stall",
            ),
            (
                lambda w: ScalingSpec(target_stall=1.0),
                "ScalingSpec.target_stall",
            ),
            (
                lambda w: ScalingSpec(max_readers=0),
                "ScalingSpec.max_readers",
            ),
            (lambda w: RetentionSpec(window=0), "RetentionSpec.window"),
        ],
    )
    def test_error_names_the_offending_field(self, workload, build, needle):
        with pytest.raises(ValueError, match=needle.replace(".", r"\.")):
            build(workload)

    def test_jobspec_weight_and_name(self, workload):
        with pytest.raises(ValueError, match=r"JobSpec\.weight"):
            _spec(workload, weight=0.0)
        with pytest.raises(ValueError, match=r"JobSpec\.weight"):
            _spec(workload, weight=float("nan"))
        with pytest.raises(ValueError, match=r"JobSpec\.name"):
            _spec(workload, name="")

    def test_scaling_bound_must_cover_initial_width(self, workload):
        with pytest.raises(ValueError, match=r"ScalingSpec\.max_readers"):
            _spec(
                workload,
                reader=ReaderSpec(num_readers=8),
                scaling=ScalingSpec(max_readers=4),
            )
        # without scaling the same width is legal (fixed-width fleets
        # are not bounded by the autoscaler's cap)
        _spec(workload, reader=ReaderSpec(num_readers=64))


class TestLegacyBridge:
    def _legacy(self, workload, **kw) -> PipelineConfig:
        kw.setdefault("toggles", RecDToggles.full())
        kw.setdefault("num_sessions", 80)
        kw.setdefault("batch_size", 32)
        kw.setdefault("num_readers", 3)
        kw.setdefault("prefetch_depth", 4)
        kw.setdefault("num_partitions", 4)
        kw.setdefault("train_epochs", 3)
        kw.setdefault("seed", 7)
        kw.setdefault("reader_executor", "inprocess")
        return PipelineConfig(workload=workload, **kw)

    def test_round_trip_is_exact(self, workload):
        for extra in (
            {},
            {"autoscale": True, "target_stall": 0.2, "max_readers": 16},
            {"retain_partitions": 2},
            {"streaming": False, "train_batches": None},
        ):
            config = self._legacy(workload, **extra)
            assert JobSpec.from_legacy(config).to_legacy() == config

    def test_every_flat_field_has_a_spec_home(self, workload):
        """The migration table in docs/api.md must stay total: every
        PipelineConfig field round-trips through the specs."""
        config = self._legacy(workload)
        spec = JobSpec.from_legacy(config)
        back = spec.to_legacy()
        for f in dataclasses.fields(PipelineConfig):
            assert getattr(back, f.name) == getattr(config, f.name), (
                f"PipelineConfig.{f.name} lost in spec round-trip"
            )

    def test_streaming_override_routes_through_conversion(self, workload):
        config = self._legacy(workload, streaming=True)
        spec = JobSpec.from_legacy(config, streaming=False)
        assert spec.reader.streaming is False
        assert JobSpec.from_legacy(config).reader.streaming is True

    def test_scaling_and_retention_map_to_presence(self, workload):
        plain = JobSpec.from_legacy(self._legacy(workload))
        assert plain.scaling is None and plain.retention is None
        scaled = JobSpec.from_legacy(
            self._legacy(workload, autoscale=True, max_readers=16)
        )
        assert scaled.scaling == ScalingSpec(
            target_stall=0.10, max_readers=16
        )
        retained = JobSpec.from_legacy(
            self._legacy(workload, retain_partitions=2)
        )
        assert retained.retention == RetentionSpec(window=2)

    def test_coerce(self, workload):
        config = self._legacy(workload)
        spec = JobSpec.coerce(config)
        assert isinstance(spec, JobSpec)
        assert JobSpec.coerce(spec) is spec
        with pytest.raises(TypeError, match="JobSpec or PipelineConfig"):
            JobSpec.coerce({"workload": workload})

    def test_derived_config_matches_legacy(self, workload):
        """effective_batch_size and dataloader_config agree with the
        flat config's own derivations under both toggle paths."""
        for toggles in (RecDToggles.baseline(), RecDToggles.full()):
            for batch_size in (None, 99):
                config = PipelineConfig(
                    workload=workload,
                    toggles=toggles,
                    batch_size=batch_size,
                )
                spec = JobSpec.from_legacy(config)
                assert (
                    spec.effective_batch_size == config.effective_batch_size
                )
                assert spec.dataloader_config() == config.dataloader_config()

    def test_with_copies_top_level_fields(self, workload):
        spec = _spec(workload)
        heavier = spec.with_(weight=2.0, name="priority")
        assert heavier.weight == 2.0 and heavier.name == "priority"
        assert heavier.data is spec.data
        assert spec.weight == 1.0
