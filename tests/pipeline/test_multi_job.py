"""Multi-job sharing acceptance: functional isolation + wall-clock win.

The two contract-level claims of the shared reader tier, end to end:
every job's per-step losses under sharing are bit-identical to the same
job run alone on its own fleet, and the shared tier's modeled
wall-clock beats running the jobs in isolation back to back.
"""

import pytest

from repro.datagen import rm1
from repro.pipeline import (
    PipelineConfig,
    RecDToggles,
    run_multi_job,
    run_pipeline,
)

WIDTH = 16


def _job_cfg(**kw) -> PipelineConfig:
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 60)
    kw.setdefault("batch_size", 32)
    kw.setdefault("train_batches", 2)
    kw.setdefault("train_epochs", 3)
    kw.setdefault("reader_executor", "inprocess")
    return PipelineConfig(**kw)


@pytest.fixture(scope="module")
def two_jobs():
    """A reader-heavy baseline job and a reader-light RecD job."""
    return (
        _job_cfg(seed=1),
        _job_cfg(seed=2, toggles=RecDToggles.full()),
    )


@pytest.fixture(scope="module")
def shared(two_jobs):
    return run_multi_job(two_jobs, num_readers=WIDTH, names=["a", "b"])


class TestFunctionalIsolation:
    def test_losses_bit_identical_to_solo_runs(self, two_jobs, shared):
        """The acceptance bar: sharing never changes training results —
        each job's losses match the same config run alone through
        run_pipeline on its own (serial) fleet."""
        for name, config in zip(("a", "b"), two_jobs):
            solo = run_pipeline(config)
            assert (
                shared.job(name).training.losses == solo.training.losses
            ), f"job {name!r} diverged under sharing"

    def test_jobs_scanned_their_own_epoch_plans(self, shared, two_jobs):
        for name, config in zip(("a", "b"), two_jobs):
            job = shared.job(name)
            assert len(job.epoch_partitions) == config.train_epochs
            assert job.fleet.merged.batches == (
                config.train_batches * config.train_epochs
            )

    def test_single_job_tier_matches_run_pipeline(self, two_jobs):
        """A one-job tier is just a fleet: same losses as run_pipeline."""
        config = two_jobs[0]
        alone = run_multi_job([config], num_readers=4)
        solo = run_pipeline(config)
        assert alone.jobs[0].training.losses == solo.training.losses

    def test_materialized_jobs_report_streaming_false(self):
        """A streaming=False config trains bit-identically and its
        overlap bookkeeping says so, matching run_pipeline's."""
        config = _job_cfg(seed=1, streaming=False, train_epochs=1)
        res = run_multi_job([config], num_readers=2)
        assert res.jobs[0].overlap.streaming is False
        assert (
            res.jobs[0].training.losses == run_pipeline(config).training.losses
        )


class TestWallClock:
    def test_shared_tier_beats_sum_of_isolated_runs(self, two_jobs, shared):
        """The acceptance bar: the tier runs jobs concurrently on one
        pool, so its modeled wall-clock beats the two jobs run in
        isolation back to back on the same width."""
        iso = [
            run_multi_job([config], num_readers=WIDTH)
            for config in two_jobs
        ]
        isolated_sum = sum(r.modeled_wall_seconds for r in iso)
        assert shared.modeled_wall_seconds < isolated_sum

    def test_stall_weighted_beats_static_half_split(self, two_jobs, shared):
        """Demand-following allocation beats carving the pool into two
        static half-width fleets (examples/multi_job_sharing.py shows
        the same comparison with commentary)."""
        halves = [
            run_multi_job([config], num_readers=WIDTH // 2)
            for config in two_jobs
        ]
        concurrent_halves = max(r.modeled_wall_seconds for r in halves)
        assert shared.modeled_wall_seconds < concurrent_halves

    def test_allocation_follows_reader_demand(self, shared):
        """After the cold-start round the reader-heavy baseline job
        holds more of the pool than the RecD job."""
        for rnd in shared.tier.rounds[1:]:
            assert rnd.allocation["a"] > rnd.allocation["b"]
            assert sum(rnd.allocation.values()) == WIDTH


class TestReports:
    def test_per_job_overlap_fractions_attribute_everything(self, shared):
        for name in ("a", "b"):
            ov = shared.tier.per_job[name]
            assert ov.wall_seconds > 0
            assert sum(ov.fractions.values()) == pytest.approx(1.0)
            assert shared.job(name).overlap.wall_seconds == ov.wall_seconds

    def test_tier_report_rows_cover_every_round_and_job(self, shared):
        rows = shared.tier.as_rows()
        assert len(rows) == len(shared.tier.rounds) * 2
        assert {r["job"] for r in rows} == {"a", "b"}
        assert all(r["workers"] > 0 for r in rows)  # nobody starved

    def test_deterministic_across_runs(self, two_jobs, shared):
        again = run_multi_job(two_jobs, num_readers=WIDTH, names=["a", "b"])
        assert again.tier.as_rows() == shared.tier.as_rows()
        assert (
            again.modeled_wall_seconds == shared.modeled_wall_seconds
        )


class TestAutoscale:
    def test_pool_resizes_from_aggregate_stall(self, two_jobs):
        """Under-provisioned shared pool: the tier autoscaler grows the
        pool from the tier-level (aggregate) overlap, and the trace
        records every decision."""
        res = run_multi_job(
            two_jobs,
            num_readers=2,
            autoscale=True,
            max_readers=32,
            names=["a", "b"],
        )
        trace = res.tier.scaling
        assert trace is not None
        assert trace.decisions[0].action == "grow"
        assert res.tier.widths[0] == 2
        assert res.tier.widths[-1] > 2

    def test_autoscaled_losses_still_bit_identical(self, two_jobs, shared):
        res = run_multi_job(
            two_jobs,
            num_readers=2,
            autoscale=True,
            max_readers=32,
            names=["a", "b"],
        )
        for name in ("a", "b"):
            assert (
                res.job(name).training.losses
                == shared.job(name).training.losses
            )


class TestValidation:
    def test_rejects_retention_configs(self, two_jobs):
        retained = _job_cfg(
            seed=1, num_partitions=4, retain_partitions=2
        )
        with pytest.raises(ValueError, match="retain_partitions"):
            run_multi_job([retained], num_readers=4)

    def test_rejects_per_job_autoscale(self):
        """Per-job autoscale has no per-job fleet to act on; the knob
        belongs to run_multi_job (the shared pool)."""
        scaled = _job_cfg(seed=1, autoscale=True)
        with pytest.raises(ValueError, match="pass autoscale=True to"):
            run_multi_job([scaled], num_readers=4)

    def test_rejects_bad_names(self, two_jobs):
        with pytest.raises(ValueError, match="duplicate"):
            run_multi_job(two_jobs, num_readers=4, names=["x", "x"])
        with pytest.raises(ValueError, match="names for"):
            run_multi_job(two_jobs, num_readers=4, names=["x"])
        with pytest.raises(ValueError, match="at least one"):
            run_multi_job([], num_readers=4)
        with pytest.raises(KeyError, match="no job named"):
            run_multi_job(
                [two_jobs[0]], num_readers=2, names=["a"]
            ).job("zzz")


class TestCli:
    def test_multijob_command(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "multijob",
                    "--job",
                    "RM1:seed=1:sessions=50",
                    "--job",
                    "RM1:recd:seed=2:sessions=50",
                    "--num-readers",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shared reader tier: 2 jobs" in out
        assert "round 0" in out
        assert "job1 (RM1, RecD)" in out

    def test_multijob_clones(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["multijob", "--jobs", "2", "--sessions", "50",
                 "--num-readers", "4"]
            )
            == 0
        )
        assert "2 jobs" in capsys.readouterr().out

    def test_bad_job_spec(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["multijob", "--job", "RM9"])
        with pytest.raises(SystemExit):
            main(["multijob", "--job", "RM1:bogus=1"])
