"""Multi-job sharing acceptance: functional isolation + wall-clock win.

The two contract-level claims of the shared reader tier, end to end:
every job's per-step losses under sharing are bit-identical to the same
job run alone on its own fleet, and the shared tier's modeled
wall-clock beats running the jobs in isolation back to back.
"""

import pytest

from repro.datagen import rm1
from repro.pipeline import (
    PipelineConfig,
    RecDToggles,
    run_multi_job,
    run_pipeline,
)

WIDTH = 16


def _job_cfg(**kw) -> PipelineConfig:
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 60)
    kw.setdefault("batch_size", 32)
    kw.setdefault("train_batches", 2)
    kw.setdefault("train_epochs", 3)
    kw.setdefault("reader_executor", "inprocess")
    return PipelineConfig(**kw)


@pytest.fixture(scope="module")
def two_jobs():
    """A reader-heavy baseline job and a reader-light RecD job."""
    return (
        _job_cfg(seed=1),
        _job_cfg(seed=2, toggles=RecDToggles.full()),
    )


@pytest.fixture(scope="module")
def shared(two_jobs):
    return run_multi_job(two_jobs, num_readers=WIDTH, names=["a", "b"])


class TestFunctionalIsolation:
    def test_losses_bit_identical_to_solo_runs(self, two_jobs, shared):
        """The acceptance bar: sharing never changes training results —
        each job's losses match the same config run alone through
        run_pipeline on its own (serial) fleet."""
        for name, config in zip(("a", "b"), two_jobs):
            solo = run_pipeline(config)
            assert (
                shared.job(name).training.losses == solo.training.losses
            ), f"job {name!r} diverged under sharing"

    def test_jobs_scanned_their_own_epoch_plans(self, shared, two_jobs):
        for name, config in zip(("a", "b"), two_jobs):
            job = shared.job(name)
            assert len(job.epoch_partitions) == config.train_epochs
            assert job.fleet.merged.batches == (
                config.train_batches * config.train_epochs
            )

    def test_single_job_tier_matches_run_pipeline(self, two_jobs):
        """A one-job tier is just a fleet: same losses as run_pipeline."""
        config = two_jobs[0]
        alone = run_multi_job([config], num_readers=4)
        solo = run_pipeline(config)
        assert alone.jobs[0].training.losses == solo.training.losses

    def test_materialized_jobs_report_streaming_false(self):
        """A streaming=False config trains bit-identically and its
        overlap bookkeeping says so, matching run_pipeline's."""
        config = _job_cfg(seed=1, streaming=False, train_epochs=1)
        res = run_multi_job([config], num_readers=2)
        assert res.jobs[0].overlap.streaming is False
        assert (
            res.jobs[0].training.losses == run_pipeline(config).training.losses
        )


class TestWallClock:
    def test_shared_tier_beats_sum_of_isolated_runs(self, two_jobs, shared):
        """The acceptance bar: the tier runs jobs concurrently on one
        pool, so its modeled wall-clock beats the two jobs run in
        isolation back to back on the same width."""
        iso = [
            run_multi_job([config], num_readers=WIDTH)
            for config in two_jobs
        ]
        isolated_sum = sum(r.modeled_wall_seconds for r in iso)
        assert shared.modeled_wall_seconds < isolated_sum

    def test_stall_weighted_beats_static_half_split(self, two_jobs, shared):
        """Demand-following allocation beats carving the pool into two
        static half-width fleets (examples/multi_job_sharing.py shows
        the same comparison with commentary)."""
        halves = [
            run_multi_job([config], num_readers=WIDTH // 2)
            for config in two_jobs
        ]
        concurrent_halves = max(r.modeled_wall_seconds for r in halves)
        assert shared.modeled_wall_seconds < concurrent_halves

    def test_allocation_follows_reader_demand(self, shared):
        """After the cold-start round the reader-heavy baseline job
        holds more of the pool than the RecD job."""
        for rnd in shared.tier.rounds[1:]:
            assert rnd.allocation["a"] > rnd.allocation["b"]
            assert sum(rnd.allocation.values()) == WIDTH


class TestReports:
    def test_per_job_overlap_fractions_attribute_everything(self, shared):
        for name in ("a", "b"):
            ov = shared.tier.per_job[name]
            assert ov.wall_seconds > 0
            assert sum(ov.fractions.values()) == pytest.approx(1.0)
            assert shared.job(name).overlap.wall_seconds == ov.wall_seconds

    def test_tier_report_rows_cover_every_round_and_job(self, shared):
        rows = shared.tier.as_rows()
        assert len(rows) == len(shared.tier.rounds) * 2
        assert {r["job"] for r in rows} == {"a", "b"}
        assert all(r["workers"] > 0 for r in rows)  # nobody starved

    def test_deterministic_across_runs(self, two_jobs, shared):
        again = run_multi_job(two_jobs, num_readers=WIDTH, names=["a", "b"])
        assert again.tier.as_rows() == shared.tier.as_rows()
        assert (
            again.modeled_wall_seconds == shared.modeled_wall_seconds
        )


class TestAutoscale:
    def test_pool_resizes_from_aggregate_stall(self, two_jobs):
        """Under-provisioned shared pool: the tier autoscaler grows the
        pool from the tier-level (aggregate) overlap, and the trace
        records every decision."""
        res = run_multi_job(
            two_jobs,
            num_readers=2,
            autoscale=True,
            max_readers=32,
            names=["a", "b"],
        )
        trace = res.tier.scaling
        assert trace is not None
        assert trace.decisions[0].action == "grow"
        assert res.tier.widths[0] == 2
        assert res.tier.widths[-1] > 2

    def test_autoscaled_losses_still_bit_identical(self, two_jobs, shared):
        res = run_multi_job(
            two_jobs,
            num_readers=2,
            autoscale=True,
            max_readers=32,
            names=["a", "b"],
        )
        for name in ("a", "b"):
            assert (
                res.job(name).training.losses
                == shared.job(name).training.losses
            )


class TestRetentionUnderSharing:
    """The lifted guard: rolling-window retention composes with the
    shared tier because both run the same Session epoch loop."""

    def _retained_cfg(self, **kw):
        kw.setdefault("num_partitions", 4)
        kw.setdefault("retain_partitions", 2)
        kw.setdefault("train_epochs", 3)
        return _job_cfg(**kw)

    def test_losses_bit_identical_to_solo_retention_run(self, two_jobs):
        """The acceptance bar: a retention job under sharing trains
        bit-identically to the same config run alone — land/age between
        epochs included."""
        retained = self._retained_cfg(seed=1)
        shared = run_multi_job(
            [retained, two_jobs[1]], num_readers=WIDTH, names=["r", "b"]
        )
        solo = run_pipeline(retained)
        assert shared.job("r").training.losses == solo.training.losses
        assert shared.job("r").epoch_partitions == solo.epoch_partitions
        assert (
            shared.job("r").dropped_partitions == solo.dropped_partitions
        )

    def test_windows_slide_and_age_under_sharing(self):
        res = run_multi_job(
            [self._retained_cfg(seed=1)], num_readers=4, names=["r"]
        )
        job = res.job("r")
        assert job.epoch_partitions == [
            ["p0", "p1"],
            ["p1", "p2"],
            ["p2", "p3"],
        ]
        assert job.dropped_partitions == ["p0", "p1"]

    def test_two_retention_jobs_stay_isolated(self):
        """Each job ages its own table: two retention jobs sharing the
        pool both match their solo windows and losses."""
        a = self._retained_cfg(seed=1)
        b = self._retained_cfg(seed=2, retain_partitions=1)
        shared = run_multi_job([a, b], num_readers=8, names=["a", "b"])
        for name, config in (("a", a), ("b", b)):
            solo = run_pipeline(config)
            assert (
                shared.job(name).training.losses == solo.training.losses
            )
            assert (
                shared.job(name).dropped_partitions
                == solo.dropped_partitions
            )


class TestPerJobKnobs:
    def test_per_job_autoscale_scales_the_shared_pool(self):
        """The lifted guard: a config with autoscale=True no longer
        raises — its scaling intent drives the pool autoscaler."""
        scaled = _job_cfg(seed=1, autoscale=True, max_readers=32)
        res = run_multi_job([scaled], num_readers=2)
        trace = res.tier.scaling
        assert trace is not None
        assert res.tier.widths[0] == 2
        solo = run_pipeline(_job_cfg(seed=1))
        assert res.jobs[0].training.losses == solo.training.losses

    def test_job_scaling_bound_never_undercuts_the_pool(self):
        """A job's solo-fleet ScalingSpec cap (max_readers=4) promoted
        to a 16-wide pool must not trip the pool autoscaler's bound
        check — the bound widens to at least the pool width."""
        capped = _job_cfg(
            seed=1, autoscale=True, num_readers=2, max_readers=4
        )
        res = run_multi_job([capped, _job_cfg(seed=2)], num_readers=16)
        assert res.tier.scaling is not None
        assert res.tier.widths[0] == 16

    def test_weights_bias_the_allocator(self, two_jobs):
        """Equal-demand clones: a weight-3 job pulls more of the
        surplus than its weight-1 twin, allocations still sum to the
        width, and losses are untouched."""
        clones = [_job_cfg(seed=1), _job_cfg(seed=1)]
        res = run_multi_job(
            clones,
            num_readers=WIDTH,
            names=["heavy", "light"],
            weights=[3.0, 1.0],
        )
        for rnd in res.tier.rounds[1:]:
            assert rnd.allocation["heavy"] > rnd.allocation["light"]
            assert sum(rnd.allocation.values()) == WIDTH
        even = run_multi_job(
            clones, num_readers=WIDTH, names=["heavy", "light"]
        )
        assert (
            res.job("heavy").training.losses
            == even.job("heavy").training.losses
        )

    def test_weights_validated(self, two_jobs):
        with pytest.raises(ValueError, match="weights for"):
            run_multi_job(two_jobs, num_readers=4, weights=[1.0])
        with pytest.raises(ValueError, match="positive"):
            run_multi_job(two_jobs, num_readers=4, weights=[1.0, 0.0])


class TestValidation:
    def test_rejects_bad_names(self, two_jobs):
        with pytest.raises(ValueError, match="duplicate"):
            run_multi_job(two_jobs, num_readers=4, names=["x", "x"])
        with pytest.raises(ValueError, match="names for"):
            run_multi_job(two_jobs, num_readers=4, names=["x"])
        with pytest.raises(ValueError, match="at least one"):
            run_multi_job([], num_readers=4)
        with pytest.raises(KeyError, match="no job named"):
            run_multi_job(
                [two_jobs[0]], num_readers=2, names=["a"]
            ).job("zzz")


class TestCli:
    def test_multijob_command(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "multijob",
                    "--job",
                    "RM1:seed=1:sessions=50",
                    "--job",
                    "RM1:recd:seed=2:sessions=50",
                    "--num-readers",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shared reader tier: 2 jobs" in out
        assert "round 0" in out
        assert "job1 (RM1, RecD)" in out

    def test_multijob_clones(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["multijob", "--jobs", "2", "--sessions", "50",
                 "--num-readers", "4"]
            )
            == 0
        )
        assert "2 jobs" in capsys.readouterr().out

    def test_bad_job_spec(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["multijob", "--job", "RM9"])
        with pytest.raises(SystemExit):
            main(["multijob", "--job", "RM1:bogus=1"])
