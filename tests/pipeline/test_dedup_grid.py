"""Bit-identity grid for the dedup hot path (``ReaderSpec.dedup``).

The acceptance bar for session-dedup as the streaming hot path: with
``dedup=True`` the fleet ships IKJT batches over the prefetch queues and
the trainer expands inverse indices *after* the pooled lookup — and the
loss trajectory must still be bit-identical to the fully-materialized
non-dedup baseline at every fleet width, on every executor, and under a
shared multi-job tier, while bytes-decoded strictly shrinks.
"""

import pytest

from repro.datagen import rm1, rm2
from repro.pipeline import JobSpec, RecDToggles, Session
from repro.pipeline.spec import DataSpec, ReaderSpec, TrainSpec

#: storage-side layout toggles only (O1+O2): duplicates become
#: batch-local, and the trainer-side path stays toggle-baseline so the
#: dedup knob is the only thing the A/B flips.
LAYOUT = RecDToggles(o1_shard_by_session=True, o2_cluster_table=True)

WIDTHS = (1, 2, 4)
EXECUTORS = ("inprocess", "process")


def _spec(
    *,
    dedup: bool,
    width: int = 2,
    executor: str = "inprocess",
    streaming: bool = True,
    workload=None,
    seed: int = 3,
    epochs: int = 2,
) -> JobSpec:
    return JobSpec(
        data=DataSpec(
            workload=workload if workload is not None else rm1(scale=0.25),
            toggles=LAYOUT,
            num_sessions=60,
            seed=seed,
        ),
        reader=ReaderSpec(
            num_readers=width,
            executor=executor,
            streaming=streaming,
            dedup=dedup,
        ),
        train=TrainSpec(train_epochs=epochs, train_batches=2, batch_size=32),
    )


class TestSingleJobGrid:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_dedup_streaming_matches_materialized_baseline(
        self, width, executor
    ):
        """width x executor: deduped streaming losses == materialized
        non-dedup losses, bit for bit, with strictly fewer decoded
        bytes for the same expanded payload."""
        dedup = Session(
            _spec(dedup=True, width=width, executor=executor)
        ).run()
        base = Session(
            _spec(
                dedup=False, width=width, executor=executor, streaming=False
            )
        ).run()
        assert dedup.training.losses == base.training.losses
        # bytes-decoded strictly shrinks; the expanded payload is the
        # baseline's wire payload, byte for byte.
        assert dedup.reader.send_bytes < base.reader.send_bytes
        assert dedup.reader.expanded_bytes == base.reader.send_bytes
        assert base.reader.expanded_bytes == base.reader.send_bytes
        assert dedup.reader.bytes_saved > 0
        assert dedup.reader.dedupe_byte_factor > 1.0

    @pytest.mark.parametrize("width", WIDTHS)
    def test_width_invariance_of_dedup_stream(self, width):
        """Every width ships the same batch stream: losses and byte
        totals match the width-1 dedup run exactly."""
        one = Session(_spec(dedup=True, width=1)).run()
        res = Session(_spec(dedup=True, width=width)).run()
        assert res.training.losses == one.training.losses
        assert res.reader.send_bytes == one.reader.send_bytes
        assert res.reader.expanded_bytes == one.reader.expanded_bytes

    def test_overlap_report_carries_byte_accounting(self):
        res = Session(_spec(dedup=True)).run()
        ov = res.overlap
        assert ov.decoded_bytes == res.reader.send_bytes
        assert ov.expanded_bytes == res.reader.expanded_bytes
        assert ov.read_bytes == res.reader.read_bytes
        assert ov.bytes_saved == ov.expanded_bytes - ov.decoded_bytes
        assert ov.dedupe_byte_factor == pytest.approx(
            ov.expanded_bytes / ov.decoded_bytes
        )

    def test_dedup_knob_does_not_change_batch_size_or_layout(self):
        """The knob flips transport/compute only — effective batch size
        and landed bytes stay the non-dedup baseline's."""
        dedup_spec = _spec(dedup=True)
        base_spec = _spec(dedup=False)
        assert dedup_spec.effective_batch_size == (
            base_spec.effective_batch_size
        )
        dedup = Session(dedup_spec).run()
        base = Session(base_spec).run()
        assert dedup.samples_landed == base.samples_landed
        assert dedup.partition.compressed_bytes == (
            base.partition.compressed_bytes
        )
        assert dedup.reader.read_bytes == base.reader.read_bytes


class TestSharedTierGrid:
    def test_shared_tier_dedup_matches_solo_materialized(self):
        """Two jobs multiplexed on one dedup tier train bit-identically
        to their solo materialized non-dedup runs."""
        specs = [
            _spec(dedup=True, workload=rm1(scale=0.25), seed=3),
            _spec(dedup=True, workload=rm2(scale=0.25), seed=4),
        ]
        tier = Session(specs, width=4, names=["alpha", "beta"]).run()
        for name, spec in zip(["alpha", "beta"], specs):
            solo = Session(
                spec.with_(
                    reader=ReaderSpec(
                        num_readers=2, streaming=False, dedup=False
                    )
                )
            ).run()
            assert (
                tier.job(name).training.losses == solo.training.losses
            )

    def test_shared_tier_byte_accounting_shrinks_under_dedup(self):
        def run(dedup: bool):
            specs = [
                _spec(dedup=dedup, workload=rm1(scale=0.25), seed=3),
                _spec(dedup=dedup, workload=rm2(scale=0.25), seed=4),
            ]
            return Session(specs, width=4, names=["alpha", "beta"]).run()

        deduped, base = run(True), run(False)
        for name in ("alpha", "beta"):
            d = deduped.tier.job_overlap(name)
            b = base.tier.job_overlap(name)
            assert (
                deduped.job(name).training.losses
                == base.job(name).training.losses
            )
            assert d.decoded_bytes < b.decoded_bytes
            assert d.expanded_bytes == b.decoded_bytes
            assert d.dedupe_byte_factor > 1.0
        agg_d, agg_b = deduped.tier.aggregate, base.tier.aggregate
        assert agg_d.decoded_bytes < agg_b.decoded_bytes
        assert agg_d.expanded_bytes == agg_b.expanded_bytes
