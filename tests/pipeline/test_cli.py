"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "pipeline" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.scale == 0.5
        assert args.sessions == 200


class TestSmallRuns:
    def test_dedupe_model(self, capsys):
        assert main(["dedupe-model"]) == 0
        assert "modeled" in capsys.readouterr().out

    def test_partial(self, capsys):
        assert main(["partial", "--sessions", "60"]) == 0
        out = capsys.readouterr().out
        assert "partial factor" in out

    def test_scribe(self, capsys):
        assert main(
            ["scribe", "--scale", "0.1", "--sessions", "60"]
        ) == 0
        assert "session" in capsys.readouterr().out

    def test_pipeline_baseline(self, capsys):
        assert main(
            ["pipeline", "--rm", "RM2", "--scale", "0.1", "--sessions", "80"]
        ) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "trainer throughput" in out

    def test_pipeline_epochs_partitions(self, capsys):
        assert main(
            [
                "pipeline",
                "--rm",
                "RM2",
                "--scale",
                "0.1",
                "--sessions",
                "80",
                "--num-partitions",
                "2",
                "--train-epochs",
                "2",
                "--num-readers",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 epoch(s)" in out
        assert "overlap (stream)" in out and "reader-stall" in out

    def test_pipeline_no_streaming(self, capsys):
        assert main(
            [
                "pipeline",
                "--rm",
                "RM2",
                "--scale",
                "0.1",
                "--sessions",
                "80",
                "--no-streaming",
            ]
        ) == 0
        assert "overlap (materi)" in capsys.readouterr().out

    def test_pipeline_recd(self, capsys):
        assert main(
            [
                "pipeline",
                "--rm",
                "RM2",
                "--recd",
                "--scale",
                "0.1",
                "--sessions",
                "80",
            ]
        ) == 0
        assert "RecD" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--sessions-large", "5000"]) == 0
        assert "partition mean" in capsys.readouterr().out
