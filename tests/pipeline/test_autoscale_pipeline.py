"""Pipeline-level autoscaler tests: convergence into the target stall
band on a reader-bound workload, trace reproducibility under the
deterministic executor, and functional bit-identity with fixed-width
runs."""

import pytest

from repro.datagen import rm1
from repro.pipeline import PipelineConfig, RecDToggles, run_pipeline


def _reader_bound_cfg(**kw):
    """A workload whose modeled reader CPU dwarfs the trainer's modeled
    step time at width 1 (~0.9 reader-stall), with enough batches per
    epoch for the fleet to spread out."""
    kw.setdefault("workload", rm1(scale=0.25))
    kw.setdefault("toggles", RecDToggles.baseline())
    kw.setdefault("num_sessions", 80)
    kw.setdefault("seed", 3)
    kw.setdefault("batch_size", 48)
    kw.setdefault("train_batches", None)  # train the whole window
    kw.setdefault("train_epochs", 4)
    kw.setdefault("autoscale", True)
    kw.setdefault("target_stall", 0.10)
    kw.setdefault("reader_executor", "inprocess")
    return PipelineConfig(**kw)


class TestConvergence:
    def test_converges_within_band_in_four_epochs(self):
        """The acceptance bar: a reader-bound workload must enter the
        target stall band within 4 epochs and stay there."""
        res = run_pipeline(_reader_bound_cfg(num_readers=1))
        trace = res.scaling
        assert trace is not None
        # epoch 0 really was reader-bound
        assert trace.decisions[0].reader_stall_fraction > 0.5
        assert trace.converged_epoch is not None
        assert trace.converged_epoch <= 3
        # once in the band it stays: every later observation in band
        for d in trace.decisions[trace.converged_epoch:]:
            assert trace.in_band(d.reader_stall_fraction)
        assert trace.final_width > 1

    def test_trace_reproducible_across_runs(self):
        """The acceptance bar: identical configs produce bit-identical
        ScalingTraces under the deterministic executor."""
        a = run_pipeline(_reader_bound_cfg(num_readers=1))
        b = run_pipeline(_reader_bound_cfg(num_readers=1))
        assert a.scaling.as_rows() == b.scaling.as_rows()

    def test_shrinks_overprovisioned_fleet_with_hysteresis(self):
        res = run_pipeline(
            _reader_bound_cfg(num_readers=32, max_readers=32)
        )
        trace = res.scaling
        assert "shrink" in trace.actions
        # hysteresis: the shrink cannot be the very first action
        assert trace.actions[0] == "hold"
        assert trace.final_width < 32

    def test_both_directions_agree(self):
        """Growing from 1 and shrinking from 32 settle in the same
        neighbourhood.  They need not match exactly: sharding has real
        modeled overhead (boundary stripes decode in both neighbouring
        shards), so aggregate reader CPU rises with width and the
        downward fixed point sits slightly above the upward one."""
        up = run_pipeline(_reader_bound_cfg(num_readers=1))
        down = run_pipeline(
            _reader_bound_cfg(num_readers=32, max_readers=32, train_epochs=8)
        )
        assert down.scaling.actions.count("shrink") >= 2
        assert (
            up.scaling.final_width
            <= down.scaling.final_width
            <= 2 * up.scaling.final_width
        )
        # and both ended inside the band
        for res in (up, down):
            last = res.scaling.decisions[-1]
            assert res.scaling.in_band(last.reader_stall_fraction)


class TestFunctionalIdentity:
    def test_autoscale_keeps_losses_bit_identical(self):
        """Fleet width never changes which rows form which batch, so an
        autoscaled run trains bit-identically to any fixed width."""
        scaled = run_pipeline(_reader_bound_cfg(num_readers=1))
        fixed = run_pipeline(
            _reader_bound_cfg(num_readers=4, autoscale=False)
        )
        assert scaled.training.losses == fixed.training.losses

    def test_autoscale_off_records_no_trace(self):
        res = run_pipeline(
            _reader_bound_cfg(autoscale=False, train_epochs=1)
        )
        assert res.scaling is None

    def test_autoscale_with_retention(self):
        """The two lifecycle knobs compose: the window slides while the
        fleet resizes."""
        res = run_pipeline(
            _reader_bound_cfg(
                num_readers=1,
                num_partitions=4,
                train_epochs=3,
                retain_partitions=2,
            )
        )
        assert res.scaling is not None
        assert len(res.scaling.decisions) == 3
        assert res.dropped_partitions == ["p0", "p1"]
        assert res.scaling.decisions[0].action == "grow"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            _reader_bound_cfg(target_stall=0.0)
        with pytest.raises(ValueError):
            _reader_bound_cfg(num_readers=8, max_readers=4)
        # the bound only applies to autoscale runs: a fixed-width fleet
        # wider than max_readers stays legal
        _reader_bound_cfg(num_readers=64, autoscale=False)
